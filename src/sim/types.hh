/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 *
 * All simulated time is expressed in *ticks*; one tick is one processor
 * cycle (10 ns at the paper's 100 MHz default). Addresses index the DSM
 * global shared address space, which starts at zero and is contiguous.
 */

#ifndef NCP2_SIM_TYPES_HH
#define NCP2_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace sim
{

/** Simulated time, in processor cycles. */
using Tick = std::uint64_t;

/** A duration, in processor cycles. */
using Cycles = std::uint64_t;

/** Identifier of a node (processor + controller + NIC) in the system. */
using NodeId = std::uint32_t;

/** Byte address in the DSM global shared address space. */
using GAddr = std::uint64_t;

/** Page number (GAddr >> page_shift). */
using PageId = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalid_node = ~NodeId{0};

/** Sentinel tick, used as "never". */
inline constexpr Tick tick_never = ~Tick{0};

} // namespace sim

#endif // NCP2_SIM_TYPES_HH
