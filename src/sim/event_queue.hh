/**
 * @file
 * The global discrete-event scheduler.
 *
 * Events are closures scheduled at absolute ticks. Two events scheduled
 * for the same tick execute in schedule order (a monotonically increasing
 * sequence number breaks ties), which keeps the whole simulation
 * deterministic.
 *
 * The implementation is a two-level calendar queue tuned for this
 * simulator's event population: almost every event is scheduled a small
 * bounded delta ahead of now (memory, bus, mesh-hop, and controller
 * service latencies), so the common case lands in a power-of-two ring
 * of per-tick buckets and costs O(1) amortized per event with no
 * allocation (event nodes are free-listed, callbacks are stored inline
 * via InplaceEvent). Events beyond the ring horizon go to a binary-heap
 * overflow tier and are merged back - in (tick, seq) order - when their
 * tick comes up. The execution order is bit-identical to the original
 * single-heap implementation (sim::LegacyEventQueue), which is kept as
 * the reference and proven equivalent by the test suite.
 */

#ifndef NCP2_SIM_EVENT_QUEUE_HH
#define NCP2_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/inplace_event.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sim
{

class SchedulerGroup;

/**
 * A (tick, seq) ordered event scheduler. A standalone EventQueue
 * drives an entire simulated system single-threadedly. Bound to a
 * SchedulerGroup (one queue per simulated node), it becomes one shard
 * of a partitioned scheduler: sequence numbers come from the group's
 * shared counter (so the merged execution order is the same global
 * (tick, seq) order a single queue would produce) and run()/
 * advanceIfIdle() are driven by the group's serial or parallel
 * executor instead of being called directly.
 */
class EventQueue
{
  public:
    /** Callbacks accept any void() callable; small captures are inline. */
    using Callback = InplaceEvent;

    /** Ring horizon: events within [now, now + ring_size) are O(1). */
    static constexpr std::size_t ring_size = 4096;

    EventQueue() : buckets_(ring_size), occupied_(ring_size / 64, 0) {}

    /** Identity of the next event to run: execution order is (when, seq). */
    struct Key
    {
        Tick when;
        std::uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /**
     * Become queue @p qid of @p group. Must happen before any event is
     * scheduled; from then on sequence numbers are allocated from the
     * group's shared counter and the group's executor drives the queue.
     */
    void
    bindGroup(SchedulerGroup *group, std::uint32_t qid)
    {
        ncp2_assert(!pending_ && !executed_, "bindGroup on a live queue");
        group_ = group;
        qid_ = qid;
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return pending_; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedule @p f to run at absolute time @p when.
     * Scheduling in the past is an error.
     */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        ncp2_assert(when >= now_, "event scheduled in the past (%llu < %llu)",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(now_));
        Node *n = allocNode();
        try {
            n->cb.emplace(std::forward<F>(f));
        } catch (...) {
            // A failed emplace leaves the callback empty, so the node
            // can go straight back on the free list.
            recycle(n);
            throw;
        }
        n->when = when;
        n->seq = group_ ? groupSchedule(when) : seq_++;
        ++pending_;
        if (when - now_ < ring_size)
            appendRing(n);
        else
            overflow_.push(n);
    }

    /** Schedule @p f to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Cycles delay, F &&f)
    {
        schedule(now_ + delay, std::forward<F>(f));
    }

    /**
     * Advance now() straight to @p t when no pending event is due at or
     * before @p t, and return true. Nothing can observe the skipped
     * ticks in that case, so this is exactly equivalent to scheduling a
     * wake-up at @p t and draining the queue to it - minus the host
     * cost of the schedule/dispatch round-trip. Returns false (time
     * untouched) when an event at tick <= @p t exists; the caller must
     * then take the ordinary schedule-and-yield path so that event runs
     * first.
     */
    bool
    advanceIfIdle(Tick t)
    {
        ncp2_assert(t >= now_, "advanceIfIdle into the past");
        if (group_)
            return groupAdvanceIfIdle(t);
        if (pending_ && nextTick() <= t)
            return false;
        now_ = t;
        return true;
    }

    /**
     * Run events until the queue drains or @p limit ticks is reached.
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool
    run(Tick limit = tick_never)
    {
        while (pending_) {
            const Tick t = nextTick();
            if (t > limit) {
                now_ = limit;
                return false;
            }
            executeFront(t);
        }
        return true;
    }

    /** Execute exactly one event if present; returns false if empty. */
    bool
    step()
    {
        if (!pending_)
            return false;
        executeFront(nextTick());
        return true;
    }

    // ------------------------------------------------------------------
    // scheduler-group surface (also usable standalone)
    // ------------------------------------------------------------------

    /**
     * (tick, seq) of the next event to execute; requires pending() > 0.
     * The ring bucket at the earliest occupied tick is seq-sorted, so
     * its head is the bucket minimum; an overflow event at the same
     * tick can still precede it.
     */
    Key
    nextKey() const
    {
        Key k{tick_never, ~std::uint64_t{0}};
        if (ring_count_) {
            const Tick t = nextRingTick();
            k = {t, buckets_[static_cast<std::size_t>(t) & mask_].head->seq};
        }
        if (!overflow_.empty()) {
            const Node *top = overflow_.top();
            if (top->when < k.when ||
                (top->when == k.when && top->seq < k.seq))
                k = {top->when, top->seq};
        }
        return k;
    }

    /** Execute the next event; requires pending() > 0. */
    void executeNext() { executeFront(nextTick()); }

    /**
     * Move now() forward to @p t without running anything. Group
     * executors use this to commit an idle advance; @p t must be below
     * the queue's next event tick.
     */
    void
    syncNow(Tick t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        for (Bucket &b : buckets_) {
            while (b.head) {
                Node *n = b.head;
                b.head = n->next;
                recycle(n);
            }
            b.tail = nullptr;
        }
        while (!overflow_.empty()) {
            recycle(overflow_.top());
            overflow_.pop();
        }
        std::fill(occupied_.begin(), occupied_.end(), 0);
        ring_count_ = 0;
        pending_ = 0;
        now_ = 0;
        seq_ = 0;
        executed_ = 0;
    }

  private:
    /// Group-aware seq allocation + schedule notification; out of line
    /// so this header does not depend on sched_group.hh (defined in
    /// sim/sched_group.cc).
    std::uint64_t groupSchedule(Tick when);
    /// Idle-advance decision delegated to the group's executor.
    bool groupAdvanceIfIdle(Tick t);

    static constexpr std::size_t mask_ = ring_size - 1;
    static constexpr std::size_t bitmap_words_ = ring_size / 64;
    static constexpr std::size_t block_nodes_ = 128;

    struct Node
    {
        Tick when;
        std::uint64_t seq;
        Node *next;
        InplaceEvent cb;
    };

    struct Bucket
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    struct OverflowLater
    {
        bool
        operator()(const Node *a, const Node *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    // ------------------------------------------------------------------
    // node free list (chunked arena; nodes are never returned to the OS
    // until the queue is destroyed)
    // ------------------------------------------------------------------

    Node *
    allocNode()
    {
        if (!free_) {
            blocks_.push_back(
                std::make_unique_for_overwrite<Node[]>(block_nodes_));
            Node *blk = blocks_.back().get();
            for (std::size_t i = 0; i < block_nodes_; ++i) {
                blk[i].next = free_;
                free_ = &blk[i];
            }
        }
        Node *n = free_;
        free_ = n->next;
        return n;
    }

    void
    recycle(Node *n)
    {
        n->cb.reset();
        n->next = free_;
        free_ = n;
    }

    // ------------------------------------------------------------------
    // ring + occupancy bitmap
    // ------------------------------------------------------------------

    void setBit(std::size_t b) { occupied_[b >> 6] |= 1ull << (b & 63); }
    void clearBit(std::size_t b) { occupied_[b >> 6] &= ~(1ull << (b & 63)); }

    /** Append at tail: the schedule path, where seq is the global max. */
    void
    appendRing(Node *n)
    {
        Bucket &b = buckets_[static_cast<std::size_t>(n->when) & mask_];
        n->next = nullptr;
        if (!b.head) {
            b.head = b.tail = n;
            setBit(static_cast<std::size_t>(n->when) & mask_);
        } else {
            b.tail->next = n;
            b.tail = n;
        }
        ++ring_count_;
    }

    /** Seq-ordered insert: the overflow-merge path. */
    void
    insertRingSorted(Node *n)
    {
        Bucket &b = buckets_[static_cast<std::size_t>(n->when) & mask_];
        if (!b.head) {
            n->next = nullptr;
            b.head = b.tail = n;
            setBit(static_cast<std::size_t>(n->when) & mask_);
        } else if (b.tail->seq < n->seq) {
            n->next = nullptr;
            b.tail->next = n;
            b.tail = n;
        } else {
            Node **pp = &b.head;
            while ((*pp)->seq < n->seq)
                pp = &(*pp)->next;
            n->next = *pp;
            *pp = n;
        }
        ++ring_count_;
    }

    /** Earliest occupied ring tick; requires ring_count_ > 0. */
    Tick
    nextRingTick() const
    {
        const std::size_t start = static_cast<std::size_t>(now_) & mask_;
        std::size_t word = start >> 6;
        std::uint64_t bits = occupied_[word] & (~std::uint64_t{0}
                                                << (start & 63));
        for (;;) {
            if (bits) {
                const std::size_t idx =
                    (word << 6) +
                    static_cast<std::size_t>(__builtin_ctzll(bits));
                return now_ + ((idx - start) & mask_);
            }
            word = (word + 1) & (bitmap_words_ - 1);
            bits = occupied_[word];
        }
    }

    /**
     * Tick of the next event to execute; requires pending_ > 0. Pure
     * peek: the ring and overflow tiers are not modified, so run(limit)
     * can stop at the limit without perturbing bucket membership.
     */
    Tick
    nextTick() const
    {
        const Tick ring_t = ring_count_ ? nextRingTick() : tick_never;
        if (!overflow_.empty()) {
            const Tick over_t = overflow_.top()->when;
            if (!ring_count_ || over_t < ring_t)
                return over_t;
        }
        return ring_t;
    }

    /** Pop and run the front event at tick @p t (the nextTick() value). */
    void
    executeFront(Tick t)
    {
        // Merge overflow events due exactly now so that ring and
        // overflow events at the same tick interleave in seq order.
        // t is the minimum pending tick, so t's bucket can hold only
        // tick-t events (any resident tick is within [now_, now_+ring)
        // and congruent mod ring_size, hence equal).
        while (!overflow_.empty() && overflow_.top()->when == t) {
            Node *n = overflow_.top();
            overflow_.pop();
            insertRingSorted(n);
        }
        Bucket &b = buckets_[static_cast<std::size_t>(t) & mask_];
        Node *n = b.head;
        b.head = n->next;
        if (!b.head) {
            b.tail = nullptr;
            clearBit(static_cast<std::size_t>(t) & mask_);
        }
        --ring_count_;
        --pending_;
        now_ = t;
        ++executed_;
        n->cb();
        recycle(n);
    }

    std::vector<Bucket> buckets_;
    std::vector<std::uint64_t> occupied_;
    std::priority_queue<Node *, std::vector<Node *>, OverflowLater> overflow_;
    std::vector<std::unique_ptr<Node[]>> blocks_;
    Node *free_ = nullptr;
    std::size_t ring_count_ = 0;
    std::size_t pending_ = 0;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    SchedulerGroup *group_ = nullptr; ///< non-null once bound to a group
    std::uint32_t qid_ = 0;           ///< this queue's index in the group
};

} // namespace sim

#endif // NCP2_SIM_EVENT_QUEUE_HH
