#include "sim/logging.hh"

#include <atomic>
#include <cstdarg>
#include <stdexcept>

#include "sim/context.hh"

namespace sim
{

namespace
{
/// Process-wide default; per-simulation overrides live in sim::Context.
/// Atomic so concurrent simulations can consult it without racing.
std::atomic<bool> g_quiet{false};
} // namespace

void
setQuiet(bool quiet)
{
    if (Context *ctx = Context::current())
        ctx->quiet = quiet;
    else
        g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    if (const Context *ctx = Context::current())
        return ctx->quiet;
    return g_quiet.load(std::memory_order_relaxed);
}

namespace detail
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than abort()) lets unit tests exercise panic paths.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace sim
