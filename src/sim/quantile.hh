#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "sim/logging.hh"

namespace sim
{

// Online quantile sketch over unsigned 64-bit samples (cycle counts),
// built as an HDR-style log-linear histogram:
//
//   - values below 2^sub_bits land in one bucket each (exact);
//   - above that, each power-of-two octave [2^m, 2^(m+1)) is split into
//     2^(sub_bits-1) equal sub-buckets.
//
// quantile() returns the LOWER BOUND of the bucket holding the target
// rank, so for a true quantile value x the reported value q satisfies
//
//   q <= x   and   x - q < x * 2^(1 - sub_bits)     (x >= 2^sub_bits)
//   q == x                                          (x <  2^sub_bits)
//
// i.e. relative error is under 1/32 (~3.2%) at the default sub_bits=6,
// and zero for samples below 64. Bucket boundaries depend only on the
// value, so merging sketches is an elementwise count add — exact,
// associative and commutative. Everything is integer arithmetic; a
// host-side mirror (tools/trace_summary.py) reproduces results
// bit-for-bit. Tests: tests/test_serve.cc (QuantileSketch*).
class QuantileSketch
{
  public:
    static constexpr unsigned sub_bits = 6;
    static constexpr std::uint64_t linear_max = 1ull << sub_bits;
    static constexpr unsigned sub_buckets = 1u << (sub_bits - 1);
    static constexpr unsigned num_buckets =
        unsigned(linear_max) + (64 - sub_bits) * sub_buckets;

    static constexpr unsigned
    bucketOf(std::uint64_t v)
    {
        if (v < linear_max)
            return unsigned(v);
        const unsigned m = 63 - unsigned(std::countl_zero(v));
        const unsigned shift = m - (sub_bits - 1);
        const unsigned sub = unsigned(v >> shift) - sub_buckets;
        return unsigned(linear_max) + (m - sub_bits) * sub_buckets + sub;
    }

    static constexpr std::uint64_t
    lowerBound(unsigned bucket)
    {
        if (bucket < linear_max)
            return bucket;
        const unsigned level = (bucket - unsigned(linear_max)) / sub_buckets;
        const unsigned sub = (bucket - unsigned(linear_max)) % sub_buckets;
        const unsigned shift = level + 1;
        return std::uint64_t(sub_buckets + sub) << shift;
    }

    void
    sample(std::uint64_t v)
    {
        ++counts_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    // Value at rank ceil(num/den * count), 1-based, clamped to
    // [1, count]. Integer-only so any faithful mirror agrees exactly.
    std::uint64_t
    quantile(std::uint64_t num, std::uint64_t den) const
    {
        ncp2_assert(den > 0 && num <= den, "quantile fraction out of range");
        if (!count_)
            return 0;
        std::uint64_t target = (num * count_ + den - 1) / den;
        if (target < 1)
            target = 1;
        std::uint64_t cum = 0;
        for (unsigned i = 0; i < num_buckets; ++i) {
            cum += counts_[i];
            if (cum >= target)
                return lowerBound(i);
        }
        return max_;    // unreachable: cum reaches count_ >= target
    }

    void
    merge(const QuantileSketch &o)
    {
        for (unsigned i = 0; i < num_buckets; ++i)
            counts_[i] += o.counts_[i];
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    void
    reset()
    {
        counts_.fill(0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    const std::array<std::uint64_t, num_buckets> &counts() const
    {
        return counts_;
    }

  private:
    std::array<std::uint64_t, num_buckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace sim
