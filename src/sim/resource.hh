/**
 * @file
 * Occupancy-based contention modelling.
 *
 * Buses, memory banks, network links, the protocol controller core and
 * the DMA engine are all modelled as single-server FIFO resources: a
 * request arriving at tick t is serviced starting at max(t, free_at) for
 * its service time, and the resource is busy until service completes.
 * This is the standard queuing approximation for execution-driven
 * simulators of this class and captures the contention effects the paper
 * reports (clustered prefetch traffic degrading network performance,
 * automatic-update traffic delaying synchronisation messages, ...).
 */

#ifndef NCP2_SIM_RESOURCE_HH
#define NCP2_SIM_RESOURCE_HH

#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace sim
{

/** A single-server FIFO resource with busy-until bookkeeping. */
class Resource
{
  public:
    explicit Resource(std::string name) : name_(std::move(name)) {}

    /**
     * Reserve the resource for @p service cycles for a request arriving
     * at @p arrival.
     * @return the tick at which service *completes*.
     */
    Tick
    acquire(Tick arrival, Cycles service)
    {
        Tick start = arrival > free_at_ ? arrival : free_at_;
        queue_cycles_ += start - arrival;
        busy_cycles_ += service;
        ++requests_;
        free_at_ = start + service;
        return free_at_;
    }

    /** Like acquire() but does not advance free_at_ (a probe). */
    [[nodiscard]] Tick
    peek(Tick arrival, Cycles service) const
    {
        Tick start = arrival > free_at_ ? arrival : free_at_;
        return start + service;
    }

    /** Earliest tick at which a new request could begin service. */
    [[nodiscard]] Tick freeAt() const { return free_at_; }

    [[nodiscard]] const std::string &name() const { return name_; }
    [[nodiscard]] std::uint64_t requests() const { return requests_; }
    [[nodiscard]] std::uint64_t busyCycles() const { return busy_cycles_; }
    [[nodiscard]] std::uint64_t queueCycles() const { return queue_cycles_; }

    /** Fraction of time busy over [0, horizon]. */
    double
    utilization(Tick horizon) const
    {
        return horizon ? static_cast<double>(busy_cycles_) /
                         static_cast<double>(horizon)
                       : 0.0;
    }

    void
    reset()
    {
        free_at_ = 0;
        requests_ = 0;
        busy_cycles_ = 0;
        queue_cycles_ = 0;
    }

  private:
    std::string name_;
    Tick free_at_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t busy_cycles_ = 0;
    std::uint64_t queue_cycles_ = 0;
};

} // namespace sim

#endif // NCP2_SIM_RESOURCE_HH
