#include "sim/sched_group.hh"

#include "sim/context.hh"
#include "sim/logging.hh"

#include <optional>

namespace sim
{

thread_local std::int32_t current_exec_node = -1;

namespace
{
constexpr EventQueue::Key no_key{tick_never, ~std::uint64_t{0}};
}

// ----------------------------------------------------------------------
// EventQueue group hooks (out of line so event_queue.hh stays free of a
// sched_group.hh dependency)
// ----------------------------------------------------------------------

std::uint64_t
EventQueue::groupSchedule(Tick when)
{
    const std::uint64_t s = group_->nextSeq();
    group_->noteScheduled(qid_, when, s);
    return s;
}

bool
EventQueue::groupAdvanceIfIdle(Tick t)
{
    return group_->advanceIfIdle(qid_, t);
}

// ----------------------------------------------------------------------
// SchedulerGroup
// ----------------------------------------------------------------------

SchedulerGroup::SchedulerGroup(unsigned nqueues) : nq_(nqueues)
{
    ncp2_assert(nq_ >= 1, "scheduler group needs at least one queue");
    queues_.reserve(nq_);
    for (unsigned i = 0; i < nq_; ++i) {
        queues_.push_back(std::make_unique<EventQueue>());
        queues_.back()->bindGroup(this, i);
    }
    cached_.assign(nq_, no_key);
}

std::size_t
SchedulerGroup::pending() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q->pending();
    return n;
}

EventQueue::Key
SchedulerGroup::liveKey(unsigned qid) const
{
    const EventQueue &q = *queues_[qid];
    return q.pending() ? q.nextKey() : no_key;
}

bool
SchedulerGroup::run(Tick limit)
{
    for (unsigned i = 0; i < nq_; ++i)
        cached_[i] = liveKey(i);
    serial_running_ = true;
    for (;;) {
        unsigned best = nq_;
        EventQueue::Key bk = no_key;
        for (unsigned i = 0; i < nq_; ++i) {
            if (cached_[i] < bk) {
                bk = cached_[i];
                best = i;
            }
        }
        if (best == nq_) {
            serial_running_ = false;
            return true;
        }
        if (bk.when > limit) {
            serial_running_ = false;
            return false;
        }
        // Broadcast the global tick: bk.when is <= every pending event,
        // so each queue's ring invariant survives the jump. Keeping all
        // clocks at the global now preserves the single-queue semantics
        // for code that still reads a *remote* node's clock in place
        // (Cpu::wake on a lock grant, for one) instead of going through
        // a message edge.
        for (unsigned i = 0; i < nq_; ++i)
            queues_[i]->syncNow(bk.when);
        current_exec_node = static_cast<std::int32_t>(best);
        queues_[best]->executeNext();
        current_exec_node = -1;
        cached_[best] = liveKey(best);
    }
}

bool
SchedulerGroup::advanceIfIdle(std::uint32_t qid, Tick t)
{
    EventQueue &q = *queues_[qid];
    if (pdes_running_) {
        // Within a window a node only needs to clear its own pending
        // events: remote events cannot reach it before the window ends
        // (that is the lookahead invariant), and t < win_end_ keeps the
        // jump inside the window.
        if (t >= win_end_)
            return false;
        if (q.pending() && q.nextKey().when <= t)
            return false;
        q.syncNow(t);
        return true;
    }
    // Serial: exactly the single-queue rule — refuse if ANY pending
    // event anywhere is due at or before t. The caller's own cached key
    // is stale while its callback runs, so use the live key for it.
    for (unsigned i = 0; i < nq_; ++i) {
        const EventQueue::Key k = i == qid ? liveKey(i) : cached_[i];
        if (k.when <= t)
            return false;
    }
    // Commit the jump on every queue (t is below all pending events, so
    // the ring invariants hold): the fiber keeps running at time t and
    // may still touch remote nodes directly, whose clocks must agree.
    for (unsigned i = 0; i < nq_; ++i)
        queues_[i]->syncNow(t);
    return true;
}

void
SchedulerGroup::runWindow(unsigned worker)
{
    const unsigned lo = worker * nq_ / nworkers_;
    const unsigned hi = (worker + 1) * nq_ / nworkers_;
    for (;;) {
        unsigned best = nq_;
        EventQueue::Key bk = no_key;
        for (unsigned i = lo; i < hi; ++i) {
            const EventQueue::Key k = liveKey(i);
            if (k < bk) {
                bk = k;
                best = i;
            }
        }
        if (best == nq_ || bk.when >= win_end_)
            return;
        current_exec_node = static_cast<std::int32_t>(best);
        queues_[best]->executeNext();
        current_exec_node = -1;
    }
}

void
SchedulerGroup::workerLoop(unsigned worker, Context *ctx)
{
    std::optional<Context::Scope> scope;
    if (ctx)
        scope.emplace(*ctx);
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_start_.wait(lk, [&] { return stop_ || gen_ != seen; });
            if (stop_)
                return;
            seen = gen_;
        }
        runWindow(worker);
        {
            std::lock_guard<std::mutex> lk(m_);
            if (--running_ == 0)
                cv_done_.notify_all();
        }
    }
}

bool
SchedulerGroup::runParallel(Tick limit, unsigned workers, Cycles lookahead,
                            Context *ctx,
                            const std::function<std::size_t()> &drain)
{
    if (workers > nq_)
        workers = nq_;
    if (workers <= 1 || lookahead == 0)
        return run(limit);

    nworkers_ = workers;
    pdes_running_ = true;
    stop_ = false;
    gen_ = 0;

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(&SchedulerGroup::workerLoop, this, w, ctx);

    bool drained = true;
    for (;;) {
        Tick t_min = tick_never;
        for (unsigned i = 0; i < nq_; ++i) {
            if (queues_[i]->pending()) {
                const Tick t = queues_[i]->nextKey().when;
                if (t < t_min)
                    t_min = t;
            }
        }
        if (t_min == tick_never) {
            // Queues are dry; deferred sends may still carry work.
            if (drain && drain())
                continue;
            break;
        }
        if (t_min > limit) {
            drained = false;
            break;
        }
        win_end_ = lookahead >= tick_never - t_min ? tick_never
                                                   : t_min + lookahead;
        {
            std::lock_guard<std::mutex> lk(m_);
            running_ = workers - 1;
            ++gen_;
        }
        cv_start_.notify_all();
        runWindow(0);
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_done_.wait(lk, [&] { return running_ == 0; });
        }
        if (drain)
            drain();
    }

    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto &t : pool)
        t.join();
    pdes_running_ = false;
    return drained;
}

} // namespace sim
