/**
 * @file
 * A small gem5-flavoured statistics framework.
 *
 * Stats are plain member objects registered with a StatGroup by name;
 * groups nest, and dump() renders "group.sub.stat  value  # desc" lines.
 * The DSM layer builds the paper's execution-time breakdowns on top of
 * these primitives.
 */

#ifndef NCP2_SIM_STATS_HH
#define NCP2_SIM_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/quantile.hh"
#include "sim/types.hh"

namespace sim
{

namespace detail
{

/** Relaxed add to an atomic double (no fetch_add for FP pre-C++20 ABI). */
inline void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed))
        ;
}

/** Relaxed max of an atomic double. */
inline void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

} // namespace detail

/**
 * A monotonically increasing 64-bit event counter. Updates are relaxed
 * atomics so the parallel in-run executor (sim/sched_group.hh) can bump
 * protocol stats from several worker threads; the final values are
 * order-independent sums, identical to a serial run's.
 */
class Counter
{
  public:
    Counter &
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    Counter &
    operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** An accumulator of simulated cycles (or any additive scalar). */
class Accum
{
  public:
    Accum &
    operator+=(double v)
    {
        detail::atomicAdd(sum_, v);
        samples_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    void
    reset()
    {
        sum_.store(0, std::memory_order_relaxed);
        samples_.store(0, std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t
    samples() const
    {
        return samples_.load(std::memory_order_relaxed);
    }
    double mean() const
    {
        const std::uint64_t n = samples();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }

  private:
    std::atomic<double> sum_{0};
    std::atomic<std::uint64_t> samples_{0};
};

/** A fixed-bucket histogram for distributions (latency, sizes). */
class Histogram
{
  public:
    /** Buckets are [bounds[i-1], bounds[i]); a final overflow bucket. */
    explicit Histogram(std::vector<double> bounds = {})
        : bounds_(std::move(bounds)),
          counts_(bounds_.size() + 1)
    {
        for (auto &c : counts_)
            c.store(0, std::memory_order_relaxed);
    }

    void
    sample(double v)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && v >= bounds_[i])
            ++i;
        counts_[i].fetch_add(1, std::memory_order_relaxed);
        detail::atomicAdd(sum_, v);
        total_.fetch_add(1, std::memory_order_relaxed);
        // max_ rests at -infinity, not 0, so all-negative sample
        // streams report their own largest element; max() masks the
        // sentinel while the histogram is empty.
        detail::atomicMax(max_, v);
    }

    std::uint64_t
    total() const
    {
        return total_.load(std::memory_order_relaxed);
    }
    double mean() const
    {
        const std::uint64_t n = total();
        return n ? sum_.load(std::memory_order_relaxed) /
                       static_cast<double>(n)
                 : 0.0;
    }
    double
    max() const
    {
        return total() ? max_.load(std::memory_order_relaxed) : 0.0;
    }

    std::vector<std::uint64_t>
    counts() const
    {
        std::vector<std::uint64_t> out(counts_.size());
        for (std::size_t i = 0; i < counts_.size(); ++i)
            out[i] = counts_[i].load(std::memory_order_relaxed);
        return out;
    }
    const std::vector<double> &bounds() const { return bounds_; }

    void
    reset()
    {
        for (auto &c : counts_)
            c.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        total_.store(0, std::memory_order_relaxed);
        max_.store(lowest_, std::memory_order_relaxed);
    }

  private:
    static constexpr double lowest_ = -1.7976931348623157e308;

    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<double> sum_{0};
    std::atomic<std::uint64_t> total_{0};
    std::atomic<double> max_{lowest_};
};

/**
 * A by-value copy of a StatGroup's contents at a point in time.
 *
 * StatGroups register raw pointers into live protocol objects, which die
 * with the System; a snapshot taken at end-of-run survives into the
 * RunResult and can be serialized long after the run is gone. Entries
 * preserve registration order so any rendering of a snapshot is
 * deterministic.
 */
struct StatSnapshot
{
    struct Scalar { std::string name; double value; std::string desc; };
    struct AccumVal
    {
        std::string name;
        double sum;
        std::uint64_t samples;
        double mean;
        std::string desc;
    };
    struct HistVal
    {
        std::string name;
        std::uint64_t total;
        double mean;
        double max;
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        std::string desc;
    };
    /**
     * Point-in-time read of a QuantileSketch: the integer percentiles
     * plus count/sum/max, all exactly reproducible from the raw sample
     * stream by a mirror of the sketch (see tools/trace_summary.py).
     */
    struct SketchVal
    {
        std::string name;
        std::uint64_t count;
        std::uint64_t sum;
        std::uint64_t max;
        std::uint64_t p50;
        std::uint64_t p99;
        std::uint64_t p999;
        std::string desc;
    };

    std::string name;
    std::vector<Scalar> counters;
    std::vector<AccumVal> accums;
    std::vector<HistVal> hists;
    std::vector<SketchVal> sketches;
    std::vector<StatSnapshot> children;

    /** Flatten counters/accum sums into "group.sub.stat" -> value. */
    std::map<std::string, double> flat() const;

    /** Counter/accum-sum lookup by dotted path ("tmk.lock_acquires"). */
    bool has(const std::string &dotted) const;
    double value(const std::string &dotted) const;
};

/**
 * A named bag of stats for dumping. Members register a pointer plus
 * name/description; the group does not own the stats.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    void addAccum(const std::string &name, const Accum *a,
                  const std::string &desc);
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc);
    void addSketch(const std::string &name, const QuantileSketch *q,
                   const std::string &desc);
    void addChild(const StatGroup *child);

    /** Render all registered stats to @p os, prefixed by the group name. */
    void dump(std::ostream &os) const;

    /** Copy every registered stat (recursively) into a value tree. */
    StatSnapshot snapshot() const;

    const std::string &name() const { return name_; }

  private:
    struct CounterEntry { std::string name; const Counter *stat; std::string desc; };
    struct AccumEntry { std::string name; const Accum *stat; std::string desc; };
    struct HistEntry { std::string name; const Histogram *stat; std::string desc; };
    struct SketchEntry { std::string name; const QuantileSketch *stat; std::string desc; };

    std::string name_;
    std::vector<CounterEntry> counters_;
    std::vector<AccumEntry> accums_;
    std::vector<HistEntry> hists_;
    std::vector<SketchEntry> sketches_;
    std::vector<const StatGroup *> children_;
};

/**
 * Fixed-width text table used by the benches to print the paper's
 * figure data as aligned rows.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment. */
    void print(std::ostream &os) const;

    static std::string fmt(double v, int precision = 2);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sim

#endif // NCP2_SIM_STATS_HH
