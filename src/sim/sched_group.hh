/**
 * @file
 * Partitioned event scheduling: one EventQueue per simulated node,
 * merged by a serial executor or run concurrently by a conservative
 * parallel (PDES) executor.
 *
 * The group owns N per-node queues sharing one sequence counter, so
 * the set of pending events is totally ordered by (tick, seq) exactly
 * as if they all sat in a single queue.
 *
 * Serial executor (run()): repeatedly executes the globally minimal
 * (tick, seq) event. Since sequence numbers are allocated in the same
 * program order a single queue would allocate them, the execution
 * order — and therefore every simulated result — is bit-identical to
 * the historical single-queue scheduler, regardless of which queue
 * each event was scheduled on. A per-queue cached-key array keeps the
 * arg-min scan cheap: a queue's cached key is exact whenever the queue
 * is not the one currently executing (keys are only lowered by
 * schedule() notifications and recomputed after the queue runs).
 *
 * Parallel executor (runParallel()): conservative lookahead windows.
 * All events in [T, T + L) are causally independent across nodes when
 * L is a lower bound on the cross-node message latency and every
 * cross-node interaction is a message (see net/router.hh): a message
 * sent at tick >= T cannot be delivered before T + L, so each worker
 * may run its nodes' sub-window without synchronizing. Cross-node
 * sends are deferred to per-node outboxes and drained between windows
 * by the single-threaded coordinator, which also forms the
 * happens-before edges that make cross-window reads of remote state
 * well-defined. Execution is deterministic for a fixed worker count
 * except where nodes genuinely race inside one window (lock-grant
 * rendezvous; see DESIGN.md).
 */

#ifndef NCP2_SIM_SCHED_GROUP_HH
#define NCP2_SIM_SCHED_GROUP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace sim
{

class Context;

/**
 * The simulated node whose event is executing on the calling host
 * thread, or -1 between events (host-side code: planning, validation,
 * result assembly). Set by the group executors around every callback;
 * owner-asserting shard accessors (dsm/shard.hh) check against it.
 */
extern thread_local std::int32_t current_exec_node;

class SchedulerGroup
{
  public:
    explicit SchedulerGroup(unsigned nqueues);

    SchedulerGroup(const SchedulerGroup &) = delete;
    SchedulerGroup &operator=(const SchedulerGroup &) = delete;

    EventQueue &queue(unsigned qid) { return *queues_[qid]; }
    unsigned size() const { return nq_; }

    /** Events pending across all queues. */
    std::size_t pending() const;

    /**
     * Serial merged run: execute events in global (tick, seq) order
     * until every queue drains or an event beyond @p limit comes up.
     * @return true if drained, false if the limit stopped us.
     */
    bool run(Tick limit = tick_never);

    /**
     * Conservative-lookahead parallel run over @p workers host threads
     * (clamped to the queue count; <= 1 falls back to run()). Workers
     * own static, contiguous queue ranges — a node's events, and hence
     * its fiber, always execute on the same host thread. @p lookahead
     * is the safe horizon L (minimum cross-node message latency);
     * @p drain is invoked between windows on the coordinator to flush
     * deferred cross-node sends, returning how many it delivered.
     * @p ctx, if non-null, is installed on every worker thread.
     */
    bool runParallel(Tick limit, unsigned workers, Cycles lookahead,
                     Context *ctx, const std::function<std::size_t()> &drain);

    // ----- called by bound queues -----

    /** Allocate the next global sequence number. */
    std::uint64_t
    nextSeq()
    {
        return seq_.fetch_add(1, std::memory_order_relaxed);
    }

    /** schedule() notification: keeps the serial key cache exact. */
    void
    noteScheduled(std::uint32_t qid, Tick when, std::uint64_t seq)
    {
        if (!serial_running_)
            return;
        const EventQueue::Key k{when, seq};
        if (k < cached_[qid])
            cached_[qid] = k;
    }

    /** advanceIfIdle() decision for queue @p qid (see EventQueue). */
    bool advanceIfIdle(std::uint32_t qid, Tick t);

  private:
    EventQueue::Key liveKey(unsigned qid) const;
    void runWindow(unsigned worker);
    void workerLoop(unsigned worker, Context *ctx);

    unsigned nq_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::atomic<std::uint64_t> seq_{0};

    // serial executor state
    std::vector<EventQueue::Key> cached_;
    bool serial_running_ = false;

    // parallel executor state (workers only touch it between the
    // generation condvar hand-offs, which order every access)
    bool pdes_running_ = false;
    unsigned nworkers_ = 1;
    Tick win_end_ = 0;
    std::mutex m_;
    std::condition_variable cv_start_, cv_done_;
    std::uint64_t gen_ = 0;
    unsigned running_ = 0;
    bool stop_ = false;
};

} // namespace sim

#endif // NCP2_SIM_SCHED_GROUP_HH
