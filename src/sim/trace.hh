/**
 * @file
 * Cycle-accurate structured event tracing.
 *
 * A Trace is a fixed-capacity ring of POD records emitted from the DSM
 * hot paths: page faults, diff create/apply, controller command-queue
 * occupancy, lock acquire/grant, barrier epochs, mesh message
 * send/deliver, prefetch issue/hit/useless, and cumulative breakdown
 * snapshots at barrier-epoch boundaries. Each record carries the
 * simulated tick, the node it happened on, the engine (track) within
 * that node — CPU fiber, protocol controller, or NIC — an event kind,
 * and a 64-bit argument plus a 16-bit auxiliary field whose meaning is
 * per-kind (see TraceKind).
 *
 * Tracing is off by default: a System only owns a Trace when
 * SysConfig::trace_capacity is non-zero, and every emission site guards
 * on the trace pointer, so the disabled cost is one predictable
 * never-taken branch. When the ring fills, the oldest records are
 * overwritten and dropped() reports how many were lost; drain() returns
 * the surviving records in emission order.
 *
 * Emission order is deterministic (the simulator is single-threaded per
 * System and all arguments are simulated quantities), so a trace is
 * byte-identical across repeated runs of the same configuration and
 * across harness worker counts. writeChromeTrace() renders a record set
 * as Chrome trace_event JSON loadable in Perfetto / chrome://tracing,
 * with one process per node and one named thread per engine.
 */

#ifndef NCP2_SIM_TRACE_HH
#define NCP2_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace sim
{

/** Which engine within a node a record belongs to (Perfetto track). */
enum class TraceEngine : std::uint8_t
{
    cpu = 0,  ///< the computation processor's fiber
    ctrl = 1, ///< the protocol controller
    nic = 2,  ///< the network interface
    num_engines
};

inline const char *
traceEngineName(TraceEngine e)
{
    switch (e) {
      case TraceEngine::cpu: return "cpu";
      case TraceEngine::ctrl: return "ctrl";
      case TraceEngine::nic: return "nic";
      default: return "?";
    }
}

/** What happened. The arg/aux meaning is listed per kind. */
enum class TraceKind : std::uint8_t
{
    page_fault = 0,  ///< arg=page, aux=1 for write fault else 0
    fault_done,      ///< arg=page
    diff_create,     ///< arg=page, aux=words in the diff
    diff_apply,      ///< arg=page, aux=words applied
    ctrl_queue,      ///< arg=queue depth after the transition
    lock_acquire,    ///< arg=lock id
    lock_grant,      ///< arg=lock id
    barrier_epoch,   ///< arg=per-proc epoch index, aux=barrier id
    msg_send,        ///< arg=payload bytes, aux=destination node
    msg_deliver,     ///< arg=payload bytes, aux=source node
    prefetch_issue,  ///< arg=page
    prefetch_hit,    ///< arg=page (demand access found prefetch in flight)
    prefetch_useless,///< arg=page (invalidated before any reference)
    bd_snapshot,     ///< arg=cumulative cycles, aux=category index
    req_enqueue,     ///< arg=request id, aux=1 for write; tick=arrival
    req_start,       ///< arg=request id, aux=1 for write; tick=first access
    req_done,        ///< arg=request id, aux=1 for write; tick=completion
    num_kinds
};

inline const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::page_fault: return "page_fault";
      case TraceKind::fault_done: return "fault_done";
      case TraceKind::diff_create: return "diff_create";
      case TraceKind::diff_apply: return "diff_apply";
      case TraceKind::ctrl_queue: return "ctrl_queue";
      case TraceKind::lock_acquire: return "lock_acquire";
      case TraceKind::lock_grant: return "lock_grant";
      case TraceKind::barrier_epoch: return "barrier_epoch";
      case TraceKind::msg_send: return "msg_send";
      case TraceKind::msg_deliver: return "msg_deliver";
      case TraceKind::prefetch_issue: return "prefetch_issue";
      case TraceKind::prefetch_hit: return "prefetch_hit";
      case TraceKind::prefetch_useless: return "prefetch_useless";
      case TraceKind::bd_snapshot: return "bd_snapshot";
      case TraceKind::req_enqueue: return "req_enqueue";
      case TraceKind::req_start: return "req_start";
      case TraceKind::req_done: return "req_done";
      default: return "?";
    }
}

/** One trace event. POD; 24 bytes. */
struct TraceRecord
{
    Tick tick;           ///< simulated time of the event
    std::uint64_t arg;   ///< per-kind payload (see TraceKind)
    std::uint32_t node;  ///< node the event happened on
    std::uint16_t aux;   ///< per-kind secondary payload
    TraceEngine engine;  ///< track within the node
    TraceKind kind;

    bool
    operator==(const TraceRecord &o) const
    {
        return tick == o.tick && arg == o.arg && node == o.node &&
               aux == o.aux && engine == o.engine && kind == o.kind;
    }
};

static_assert(sizeof(TraceRecord) == 24, "TraceRecord must stay compact");

/** The fixed-capacity ring of trace records. */
class Trace
{
  public:
    /** @p capacity must be non-zero; it bounds memory, not the run. */
    explicit Trace(std::size_t capacity);

    /** Append one record; overwrites the oldest once the ring is full. */
    void
    emit(Tick tick, std::uint32_t node, TraceEngine engine, TraceKind kind,
         std::uint64_t arg, std::uint16_t aux = 0)
    {
        TraceRecord &r = ring_[head_ % cap_];
        r.tick = tick;
        r.arg = arg;
        r.node = node;
        r.aux = aux;
        r.engine = engine;
        r.kind = kind;
        ++head_;
    }

    std::size_t capacity() const { return cap_; }

    /** Records emitted over the whole run (including overwritten ones). */
    std::uint64_t emitted() const { return head_; }

    /** Records lost to ring overflow (oldest-first overwrite). */
    std::uint64_t dropped() const { return head_ > cap_ ? head_ - cap_ : 0; }

    /** The surviving records, oldest first. */
    std::vector<TraceRecord> drain() const;

  private:
    std::vector<TraceRecord> ring_;
    std::size_t cap_;
    std::uint64_t head_ = 0;
};

/**
 * Render @p records as a Chrome trace_event JSON document.
 *
 * Layout: pid = node, tid = engine; process/thread metadata events name
 * the tracks. Most kinds become instant events ("ph":"i"); ctrl_queue
 * becomes a counter track ("ph":"C") so queue occupancy plots as a
 * filled graph. Timestamps are microseconds (1 tick = 10 ns = 0.01 us)
 * with fixed two-decimal formatting, so the byte stream is a pure
 * function of the record list. @p meta keys land in "otherData"
 * verbatim (values are JSON-escaped); "dropped" is always included.
 */
void writeChromeTrace(
    std::ostream &os, const std::vector<TraceRecord> &records,
    std::uint64_t dropped, unsigned num_nodes,
    const std::vector<std::pair<std::string, std::string>> &meta = {});

} // namespace sim

#endif // NCP2_SIM_TRACE_HH
