#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sim
{

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters_.push_back({name, c, desc});
}

void
StatGroup::addAccum(const std::string &name, const Accum *a,
                    const std::string &desc)
{
    accums_.push_back({name, a, desc});
}

void
StatGroup::addHistogram(const std::string &name, const Histogram *h,
                        const std::string &desc)
{
    hists_.push_back({name, h, desc});
}

void
StatGroup::addSketch(const std::string &name, const QuantileSketch *q,
                     const std::string &desc)
{
    sketches_.push_back({name, q, desc});
}

void
StatGroup::addChild(const StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : counters_) {
        os << name_ << '.' << e.name << ' ' << e.stat->value()
           << "  # " << e.desc << '\n';
    }
    for (const auto &e : accums_) {
        os << name_ << '.' << e.name << ' ' << e.stat->sum()
           << "  # " << e.desc << '\n';
    }
    for (const auto &e : hists_) {
        os << name_ << '.' << e.name << " total=" << e.stat->total()
           << " mean=" << e.stat->mean() << " max=" << e.stat->max()
           << "  # " << e.desc << '\n';
    }
    for (const auto &e : sketches_) {
        os << name_ << '.' << e.name << " count=" << e.stat->count()
           << " p50=" << e.stat->quantile(50, 100)
           << " p99=" << e.stat->quantile(99, 100)
           << " p999=" << e.stat->quantile(999, 1000)
           << " max=" << e.stat->max() << "  # " << e.desc << '\n';
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

StatSnapshot
StatGroup::snapshot() const
{
    StatSnapshot s;
    s.name = name_;
    s.counters.reserve(counters_.size());
    for (const auto &e : counters_) {
        s.counters.push_back(
            {e.name, static_cast<double>(e.stat->value()), e.desc});
    }
    s.accums.reserve(accums_.size());
    for (const auto &e : accums_) {
        s.accums.push_back({e.name, e.stat->sum(), e.stat->samples(),
                            e.stat->mean(), e.desc});
    }
    s.hists.reserve(hists_.size());
    for (const auto &e : hists_) {
        s.hists.push_back({e.name, e.stat->total(), e.stat->mean(),
                           e.stat->max(), e.stat->bounds(),
                           e.stat->counts(), e.desc});
    }
    s.sketches.reserve(sketches_.size());
    for (const auto &e : sketches_) {
        s.sketches.push_back({e.name, e.stat->count(), e.stat->sum(),
                              e.stat->max(), e.stat->quantile(50, 100),
                              e.stat->quantile(99, 100),
                              e.stat->quantile(999, 1000), e.desc});
    }
    s.children.reserve(children_.size());
    for (const StatGroup *child : children_)
        s.children.push_back(child->snapshot());
    return s;
}

namespace
{

void
flattenInto(const StatSnapshot &s, const std::string &prefix,
            std::map<std::string, double> &out)
{
    const std::string base = prefix.empty() ? s.name : prefix + "." + s.name;
    for (const auto &c : s.counters)
        out[base + "." + c.name] = c.value;
    for (const auto &a : s.accums)
        out[base + "." + a.name] = a.sum;
    for (const auto &q : s.sketches) {
        out[base + "." + q.name + ".count"] = static_cast<double>(q.count);
        out[base + "." + q.name + ".p50"] = static_cast<double>(q.p50);
        out[base + "." + q.name + ".p99"] = static_cast<double>(q.p99);
        out[base + "." + q.name + ".p999"] = static_cast<double>(q.p999);
    }
    for (const auto &child : s.children)
        flattenInto(child, base, out);
}

} // namespace

std::map<std::string, double>
StatSnapshot::flat() const
{
    std::map<std::string, double> out;
    flattenInto(*this, "", out);
    return out;
}

bool
StatSnapshot::has(const std::string &dotted) const
{
    return flat().count(dotted) != 0;
}

double
StatSnapshot::value(const std::string &dotted) const
{
    const auto m = flat();
    const auto it = m.find(dotted);
    return it == m.end() ? 0.0 : it->second;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    ncp2_assert(cells.size() == headers_.size(),
                "table row has %zu cells, want %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << cells[i];
        }
        os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i)
        rule += std::string(width[i], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
Table::pct(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << (v * 100.0) << '%';
    return ss.str();
}

} // namespace sim
