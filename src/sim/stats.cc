#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sim
{

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters_.push_back({name, c, desc});
}

void
StatGroup::addAccum(const std::string &name, const Accum *a,
                    const std::string &desc)
{
    accums_.push_back({name, a, desc});
}

void
StatGroup::addChild(const StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : counters_) {
        os << name_ << '.' << e.name << ' ' << e.stat->value()
           << "  # " << e.desc << '\n';
    }
    for (const auto &e : accums_) {
        os << name_ << '.' << e.name << ' ' << e.stat->sum()
           << "  # " << e.desc << '\n';
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    ncp2_assert(cells.size() == headers_.size(),
                "table row has %zu cells, want %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << cells[i];
        }
        os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i)
        rule += std::string(width[i], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
Table::pct(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << (v * 100.0) << '%';
    return ss.str();
}

} // namespace sim
