/**
 * @file
 * Single-writer append-only log with lock-free concurrent readers.
 *
 * The parallel executor (sim/sched_group.hh) lets different nodes'
 * event streams run on different host threads inside one lookahead
 * window. Most protocol state is owned by exactly one node and never
 * observed cross-node within a window, but a few containers grow on
 * one node while being *indexed* from another (TreadMarks interval
 * page lists, per-page closed-interval sequences, vector-time sums):
 * the values read are always entries that were published before the
 * message that triggered the read was sent — properly ordered — but a
 * std::vector would still invalidate them by reallocating under the
 * reader's feet.
 *
 * AppendLog fixes exactly that: entries live in geometrically growing
 * chunks that are never moved or freed while the log lives, the size
 * is published with a release store and read with an acquire load, and
 * entries are immutable once pushed. One writer, any number of
 * readers; readers may only index below a size() they observed. Under
 * the serial scheduler it behaves like (and costs the same as) a plain
 * vector with stable element addresses.
 */

#ifndef NCP2_SIM_APPEND_LOG_HH
#define NCP2_SIM_APPEND_LOG_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>

#include "sim/logging.hh"

namespace sim
{

template <typename T>
class AppendLog
{
  public:
    AppendLog() = default;

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;

    ~AppendLog()
    {
        for (auto &c : chunks_)
            delete[] c.load(std::memory_order_relaxed);
    }

    /** Entries published so far (acquire: safe to index below this). */
    std::size_t
    size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

    /** Entry @p i; @p i must be below an observed size(). */
    const T &
    operator[](std::size_t i) const
    {
        const T *c = chunks_[chunkOf(i)].load(std::memory_order_acquire);
        return c[i - chunkStart(chunkOf(i))];
    }

    /**
     * Cross-thread indexed read: performs the size() acquire itself, so
     * callers that know entry @p i happened-before them (through a
     * message chain) need no prior size() call to get the
     * happens-before edge on the entry's bytes.
     */
    const T &
    at(std::size_t i) const
    {
        const std::size_t n = size();
        ncp2_dassert(i < n, "AppendLog read beyond published size "
                            "(%zu >= %zu)", i, n);
        (void)n;
        return (*this)[i];
    }

    /** Writer-side mutable access (single writer only). */
    T &
    back()
    {
        const std::size_t i = size_.load(std::memory_order_relaxed) - 1;
        return chunks_[chunkOf(i)].load(std::memory_order_relaxed)
            [i - chunkStart(chunkOf(i))];
    }

    /** Append an entry (single writer only). */
    void
    push_back(T v)
    {
        const std::size_t i = size_.load(std::memory_order_relaxed);
        const unsigned c = chunkOf(i);
        T *chunk = chunks_[c].load(std::memory_order_relaxed);
        if (!chunk) {
            chunk = new T[chunkStart(c + 1) - chunkStart(c)];
            chunks_[c].store(chunk, std::memory_order_release);
        }
        chunk[i - chunkStart(c)] = std::move(v);
        size_.store(i + 1, std::memory_order_release);
    }

    /**
     * First index in [0, @p limit) whose entry compares greater than
     * @p v; the entries must be sorted ascending (they are: the logs
     * record monotonic interval sequence numbers). Equivalent to
     * std::upper_bound over the first @p limit entries.
     */
    std::size_t
    upperBound(const T &v, std::size_t limit) const
    {
        std::size_t lo = 0, hi = limit;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (v < (*this)[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

  private:
    /// First chunk holds 2^base_log2 entries; chunk c holds twice the
    /// entries of chunk c-1, so 40 chunk slots cover ~2^42 entries.
    static constexpr unsigned base_log2 = 3;
    static constexpr unsigned num_chunks = 40;

    static constexpr unsigned
    chunkOf(std::size_t i)
    {
        return static_cast<unsigned>(
                   std::bit_width((i >> base_log2) + 1)) - 1;
    }

    static constexpr std::size_t
    chunkStart(unsigned c)
    {
        return ((std::size_t{1} << c) - 1) << base_log2;
    }

    std::atomic<T *> chunks_[num_chunks] = {};
    std::atomic<std::size_t> size_{0};
};

} // namespace sim

#endif // NCP2_SIM_APPEND_LOG_HH
