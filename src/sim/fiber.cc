#include "sim/fiber.hh"

#include "sim/logging.hh"

namespace sim
{

namespace
{
/// The fiber currently executing on this (single) host thread.
thread_local Fiber *g_current = nullptr;
} // namespace

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes)
{
    ncp2_assert(stack_bytes >= 16 * 1024, "fiber stack too small");
}

Fiber::~Fiber() = default;

Fiber *
Fiber::current()
{
    return g_current;
}

void
Fiber::trampoline()
{
    Fiber *self = g_current;
    try {
        self->body_();
    } catch (...) {
        self->pending_exception_ = std::current_exception();
    }
    self->finished_ = true;
    // Return to the resumer; never comes back.
    g_current = nullptr;
    swapcontext(&self->context_, &self->caller_);
    ncp2_panic("resumed a finished fiber");
}

void
Fiber::resume()
{
    ncp2_assert(!g_current, "nested fiber resume is not supported");
    ncp2_assert(!finished_, "resume() on a finished fiber");

    if (!started_) {
        started_ = true;
        getcontext(&context_);
        context_.uc_stack.ss_sp = stack_.data();
        context_.uc_stack.ss_size = stack_.size();
        context_.uc_link = nullptr;
        makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
    }

    g_current = this;
    swapcontext(&caller_, &context_);
    g_current = nullptr;

    if (pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
}

void
Fiber::yield()
{
    Fiber *self = g_current;
    ncp2_assert(self, "Fiber::yield() outside any fiber");
    g_current = nullptr;
    swapcontext(&self->context_, &self->caller_);
    g_current = self;
}

} // namespace sim
