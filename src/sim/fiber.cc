#include "sim/fiber.hh"

#include "sim/logging.hh"

// ThreadSanitizer does not understand ucontext switches by itself: it
// would see one OS thread jumping between stacks and report phantom
// races (or lose the happens-before history entirely). The fiber API in
// <sanitizer/tsan_interface.h> lets us tell it about every switch.
#if defined(__SANITIZE_THREAD__)
#define NCP2_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NCP2_TSAN 1
#endif
#endif

#ifdef NCP2_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace sim
{

namespace
{
/// The fiber currently executing on this host thread. thread_local so
/// each concurrently running simulation has its own scheduler state.
thread_local Fiber *g_current = nullptr;

#ifdef NCP2_TSAN
/// TSan identity of the thread's scheduler context, captured by
/// resume() so the fiber side can switch back to it.
thread_local void *g_tsan_caller = nullptr;

void
tsanSwitch(void *to)
{
    __tsan_switch_to_fiber(to, 0);
}
#endif
} // namespace

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes)
{
    ncp2_assert(stack_bytes >= 16 * 1024, "fiber stack too small");
}

Fiber::~Fiber()
{
#ifdef NCP2_TSAN
    if (tsan_fiber_)
        __tsan_destroy_fiber(tsan_fiber_);
#endif
}

Fiber *
Fiber::current()
{
    return g_current;
}

void
Fiber::trampoline()
{
    Fiber *self = g_current;
    try {
        self->body_();
    } catch (...) {
        self->pending_exception_ = std::current_exception();
    }
    self->finished_ = true;
    // Return to the resumer; never comes back.
    g_current = nullptr;
#ifdef NCP2_TSAN
    tsanSwitch(g_tsan_caller);
#endif
    swapcontext(&self->context_, &self->caller_);
    ncp2_panic("resumed a finished fiber");
}

void
Fiber::resume()
{
    ncp2_assert(!g_current, "nested fiber resume is not supported");
    ncp2_assert(!finished_, "resume() on a finished fiber");

    if (!started_) {
        started_ = true;
        getcontext(&context_);
        context_.uc_stack.ss_sp = stack_.data();
        context_.uc_stack.ss_size = stack_.size();
        context_.uc_link = nullptr;
        makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
#ifdef NCP2_TSAN
        tsan_fiber_ = __tsan_create_fiber(0);
#endif
    }

    g_current = this;
#ifdef NCP2_TSAN
    g_tsan_caller = __tsan_get_current_fiber();
    tsanSwitch(tsan_fiber_);
#endif
    swapcontext(&caller_, &context_);
    g_current = nullptr;

    if (pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
}

void
Fiber::yield()
{
    Fiber *self = g_current;
    ncp2_assert(self, "Fiber::yield() outside any fiber");
    g_current = nullptr;
#ifdef NCP2_TSAN
    tsanSwitch(g_tsan_caller);
#endif
    swapcontext(&self->context_, &self->caller_);
    g_current = self;
}

} // namespace sim
