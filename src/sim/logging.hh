/**
 * @file
 * Error and status reporting, after gem5's logging discipline.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something looks wrong but the simulation can continue.
 * inform() - normal operational status.
 */

#ifndef NCP2_SIM_LOGGING_HH
#define NCP2_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sim
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Suppress warn()/inform() output (used by tests and benches). With a
 * sim::Context installed on the calling thread this toggles that
 * simulation only; otherwise it sets the process-wide default that new
 * Contexts inherit.
 */
void setQuiet(bool quiet);
bool quiet();

#define ncp2_panic(...) \
    ::sim::detail::panicImpl(__FILE__, __LINE__, ::sim::detail::format(__VA_ARGS__))

#define ncp2_fatal(...) \
    ::sim::detail::fatalImpl(__FILE__, __LINE__, ::sim::detail::format(__VA_ARGS__))

#define ncp2_warn(...) \
    ::sim::detail::warnImpl(::sim::detail::format(__VA_ARGS__))

#define ncp2_inform(...) \
    ::sim::detail::informImpl(::sim::detail::format(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define ncp2_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::sim::detail::panicImpl(__FILE__, __LINE__,                     \
                std::string("assertion failed: " #cond " ") +                \
                ::sim::detail::format("" __VA_ARGS__));                      \
        }                                                                    \
    } while (0)

/**
 * Assert an internal invariant on a hot path: checked in debug builds,
 * compiled out (but still parsed, so it cannot rot) under NDEBUG. Use
 * only where profiling shows the always-on form costs real time.
 */
#ifdef NDEBUG
#define ncp2_dassert(cond, ...)                                              \
    do {                                                                     \
        if (false) {                                                         \
            ncp2_assert(cond, __VA_ARGS__);                                  \
        }                                                                    \
    } while (0)
#else
#define ncp2_dassert(cond, ...) ncp2_assert(cond, __VA_ARGS__)
#endif

} // namespace sim

#endif // NCP2_SIM_LOGGING_HH
