#include "sim/context.hh"

#include "sim/logging.hh"

namespace sim
{

namespace
{
/// The simulation currently running on this host thread.
thread_local Context *t_current = nullptr;
} // namespace

Context::Context() : quiet(sim::quiet())
{
}

Context *
Context::current()
{
    return t_current;
}

Context::Scope::Scope(Context &ctx) : prev_(t_current)
{
    t_current = &ctx;
}

Context::Scope::~Scope()
{
    t_current = prev_;
}

} // namespace sim
