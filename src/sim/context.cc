#include "sim/context.hh"

#include <atomic>

#include "sim/logging.hh"

namespace sim
{

namespace
{
/// The simulation currently running on this host thread.
thread_local Context *t_current = nullptr;
} // namespace

namespace detail
{

std::size_t
nextContextSlotId()
{
    static std::atomic<std::size_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

Context::Context() : quiet(sim::quiet())
{
}

Context::~Context()
{
    // Destroy in reverse creation order in case later slots reference
    // earlier ones.
    for (auto it = slots_.rbegin(); it != slots_.rend(); ++it)
        if (it->obj)
            it->destroy(it->obj);
}

Context *
Context::current()
{
    return t_current;
}

Context::Scope::Scope(Context &ctx) : prev_(t_current)
{
    t_current = &ctx;
}

Context::Scope::~Scope()
{
    t_current = prev_;
}

} // namespace sim
