/**
 * @file
 * The original std::priority_queue event scheduler, kept as the
 * reference implementation.
 *
 * sim::EventQueue is now a calendar queue (see event_queue.hh); this
 * class preserves the old binary-heap-of-std::function behaviour so
 * that tests can prove the two produce the identical (tick, seq)
 * execution order, and so bench/perf_host can report the speedup of
 * the new kernel against the old one on the same machine.
 */

#ifndef NCP2_SIM_LEGACY_EVENT_QUEUE_HH
#define NCP2_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sim
{

/**
 * A min-heap of (tick, seq) ordered events. Reference semantics for
 * EventQueue: same API, same deterministic ordering, but O(log n)
 * per event and one std::function per callback.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * Scheduling in the past is an error.
     */
    void
    schedule(Tick when, Callback cb)
    {
        ncp2_assert(when >= now_, "event scheduled in the past (%llu < %llu)",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(now_));
        heap_.push(Item{when, seq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or @p limit ticks is reached.
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool
    run(Tick limit = tick_never)
    {
        while (!heap_.empty()) {
            if (heap_.top().when > limit) {
                now_ = limit;
                return false;
            }
            // The callback may schedule new events, so move the item
            // out and pop first. top() is const-qualified only because
            // mutating it could break the heap order; we discard the
            // element immediately, so moving from it is safe and saves
            // a std::function copy per event.
            Item item = std::move(const_cast<Item &>(heap_.top()));
            heap_.pop();
            ncp2_assert(item.when >= now_, "event queue time went backwards");
            now_ = item.when;
            ++executed_;
            item.cb();
        }
        return true;
    }

    /** Execute exactly one event if present; returns false if empty. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        Item item = std::move(const_cast<Item &>(heap_.top()));
        heap_.pop();
        now_ = item.when;
        ++executed_;
        item.cb();
        return true;
    }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        seq_ = 0;
        executed_ = 0;
    }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Item &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim

#endif // NCP2_SIM_LEGACY_EVENT_QUEUE_HH
