/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic decision in the simulator and the workloads draws from
 * an explicitly seeded Rng so that simulations are bit-reproducible.
 */

#ifndef NCP2_SIM_RNG_HH
#define NCP2_SIM_RNG_HH

#include <cstdint>

namespace sim
{

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast and of far
 * higher quality than std::minstd; header-only for inlining.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method; bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sim

#endif // NCP2_SIM_RNG_HH
