/**
 * @file
 * Small-buffer type-erased event callback.
 *
 * The simulator schedules millions of closures per run; most capture a
 * handful of pointers and integers. std::function heap-allocates any
 * capture larger than its (typically 16-byte) small-object buffer, so
 * the old event queue paid an allocation per scheduled event on the hot
 * paths. InplaceEvent stores captures up to 48 bytes inline in the
 * event node itself; larger or non-nothrow-movable callables fall back
 * to a boxed std::function (copyable) or unique_ptr (move-only), which
 * still fits the inline buffer.
 */

#ifndef NCP2_SIM_INPLACE_EVENT_HH
#define NCP2_SIM_INPLACE_EVENT_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sim
{

namespace detail
{
/** True if Fn can live in an N-byte inline buffer. */
template <typename Fn, std::size_t N>
inline constexpr bool event_fits_inline =
    sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t) &&
    std::is_nothrow_move_constructible_v<Fn>;
} // namespace detail

/**
 * A move-only callable of signature void() with inline storage for
 * small captures. Invoking an empty InplaceEvent is undefined; check
 * with operator bool first if in doubt.
 */
class InplaceEvent
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t inline_bytes = 48;

    InplaceEvent() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceEvent> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InplaceEvent(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InplaceEvent(InplaceEvent &&o) noexcept { moveFrom(o); }

    InplaceEvent &
    operator=(InplaceEvent &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InplaceEvent(const InplaceEvent &) = delete;
    InplaceEvent &operator=(const InplaceEvent &) = delete;

    ~InplaceEvent() { reset(); }

    /** Destroy the current callable and construct @p f in its place. */
    template <typename F>
    void
    emplace(F &&f)
    {
        reset();
        using Fn = std::decay_t<F>;
        if constexpr (detail::event_fits_inline<Fn, inline_bytes>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &opsFor<Fn, true>();
        } else if constexpr (std::is_copy_constructible_v<Fn>) {
            // Oversized but copyable: box into a std::function, which
            // itself fits the buffer (it heap-allocates the capture).
            using Boxed = std::function<void()>;
            static_assert(detail::event_fits_inline<Boxed, inline_bytes>);
            ::new (static_cast<void *>(buf_)) Boxed(std::forward<F>(f));
            ops_ = &opsFor<Boxed, false>();
        } else {
            // Oversized and move-only: box behind a unique_ptr.
            auto boxed = [up = std::unique_ptr<Fn>(new Fn(
                              std::forward<F>(f)))]() { (*up)(); };
            using Boxed = decltype(boxed);
            static_assert(detail::event_fits_inline<Boxed, inline_bytes>);
            ::new (static_cast<void *>(buf_)) Boxed(std::move(boxed));
            ops_ = &opsFor<Boxed, false>();
        }
    }

    /** Invoke the stored callable (must be non-empty). */
    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** Destroy the stored callable, leaving *this empty. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True if the callable lives in the inline buffer (no box). */
    bool inlineStored() const { return ops_ && ops_->inline_stored; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*destroy)(void *);
        void (*relocate)(void *dst, void *src); ///< move-construct + destroy
        bool inline_stored;
    };

    template <typename Fn, bool Inline>
    static const Ops &
    opsFor()
    {
        static constexpr Ops ops = {
            [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
            [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
            [](void *dst, void *src) {
                Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                ::new (dst) Fn(std::move(*s));
                s->~Fn();
            },
            Inline,
        };
        return ops;
    }

    void
    moveFrom(InplaceEvent &o) noexcept
    {
        if (o.ops_) {
            o.ops_->relocate(buf_, o.buf_);
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inline_bytes];
    const Ops *ops_ = nullptr;
};

} // namespace sim

#endif // NCP2_SIM_INPLACE_EVENT_HH
