/**
 * @file
 * Cooperative fibers: the execution-driven front end's threading substrate.
 *
 * Each simulated computation processor runs its application code on a
 * Fiber. When the application performs a shared-memory access (or an
 * explicit compute() charge) the memory-system back end decides how long
 * the processor stalls; the fiber yields back to the event loop and is
 * resumed by an event at the wake-up tick. This mirrors the Mint-style
 * execution-driven simulation of the paper: back-end timing feeds back
 * into front-end instruction interleaving.
 *
 * Implemented with POSIX ucontext. Fibers are strictly cooperative and
 * single-threaded; only one fiber (or the scheduler) runs at a time.
 */

#ifndef NCP2_SIM_FIBER_HH
#define NCP2_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace sim
{

/**
 * A single cooperative fiber. resume() runs it until it calls
 * Fiber::yield() or its body returns; exceptions thrown by the body are
 * captured and rethrown in the resumer.
 */
class Fiber
{
  public:
    using Body = std::function<void()>;

    /**
     * @param body     code to run on the fiber
     * @param stack_bytes stack size; workloads with deep recursion
     *                 (Barnes-Hut tree walks, TSP branch-and-bound)
     *                 need generous stacks.
     */
    explicit Fiber(Body body, std::size_t stack_bytes = 1u << 20);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch from the caller into the fiber; returns when the fiber
     * yields or finishes. Must not be called from within a fiber
     * (no nesting) or on a finished fiber.
     */
    void resume();

    /** Yield from inside the currently running fiber back to its resumer. */
    static void yield();

    /** The fiber currently executing, or nullptr if in the scheduler. */
    static Fiber *current();

    /** True once the body has returned (or thrown). */
    bool finished() const { return finished_; }

  private:
    static void trampoline();

    Body body_;
    std::vector<unsigned char> stack_;
    ucontext_t context_;
    ucontext_t caller_;
    std::exception_ptr pending_exception_;
    /// ThreadSanitizer fiber handle; TSan cannot follow swapcontext on
    /// its own, so fiber.cc tells it about every switch. Unused (and
    /// null) in non-TSan builds.
    void *tsan_fiber_ = nullptr;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace sim

#endif // NCP2_SIM_FIBER_HH
