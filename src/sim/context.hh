/**
 * @file
 * Per-simulation runtime context.
 *
 * Historically the simulator kept cross-cutting run state (verbosity)
 * in file-scope globals, which made it impossible to run two
 * dsm::Systems on different host threads without races. A Context is
 * the per-simulation home for that state: it is installed for the
 * duration of a run with Context::Scope and looked up through a
 * thread_local pointer, so each simulation is strictly thread-confined
 * and concurrent simulations never observe each other's settings.
 *
 * The other piece of per-run mutable state, the fiber scheduler's
 * current-fiber pointer, is thread_local in fiber.cc for the same
 * reason (a simulation never migrates between host threads mid-run).
 */

#ifndef NCP2_SIM_CONTEXT_HH
#define NCP2_SIM_CONTEXT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sim
{

namespace detail
{
/** Process-wide slot id allocator backing Context::of<T>(). */
std::size_t nextContextSlotId();

template <typename T>
std::size_t
contextSlotId()
{
    static const std::size_t id = nextContextSlotId();
    return id;
}
} // namespace detail

/**
 * Per-simulation state. Construction inherits the settings visible on
 * the constructing thread (the enclosing Context if one is installed,
 * the process-wide defaults otherwise), so nesting composes: an
 * experiment engine installs a per-job Context, and the System built
 * inside the job inherits its verbosity.
 */
class Context
{
  public:
    Context();
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /** Suppress warn()/inform() for this simulation. */
    bool quiet = false;

    /** Free-form run label, for diagnostics ("Em3d/I+D" and the like). */
    std::string label;

    /** The Context installed on this thread, or nullptr. */
    static Context *current();

    /**
     * The per-simulation singleton of type T, default-constructed on
     * first use and destroyed with the Context. This is how modules
     * keep thread-confined per-run caches (e.g. the dsm::DiffPool
     * buffer pool) without threading them through every constructor:
     * Context::current()->of<Pool>() is safe precisely because a
     * simulation never migrates between host threads mid-run.
     */
    template <typename T>
    T &
    of()
    {
        const std::size_t id = detail::contextSlotId<T>();
        if (slots_.size() <= id)
            slots_.resize(id + 1);
        Slot &s = slots_[id];
        if (!s.obj) {
            s.obj = new T();
            s.destroy = [](void *p) { delete static_cast<T *>(p); };
        }
        return *static_cast<T *>(s.obj);
    }

    /** RAII installation of a Context on the calling thread. */
    class Scope
    {
      public:
        explicit Scope(Context &ctx);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Context *prev_;
    };

  private:
    struct Slot
    {
        void *obj = nullptr;
        void (*destroy)(void *) = nullptr;
    };

    std::vector<Slot> slots_;
};

} // namespace sim

#endif // NCP2_SIM_CONTEXT_HH
