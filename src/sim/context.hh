/**
 * @file
 * Per-simulation runtime context.
 *
 * Historically the simulator kept cross-cutting run state (verbosity)
 * in file-scope globals, which made it impossible to run two
 * dsm::Systems on different host threads without races. A Context is
 * the per-simulation home for that state: it is installed for the
 * duration of a run with Context::Scope and looked up through a
 * thread_local pointer, so each simulation is strictly thread-confined
 * and concurrent simulations never observe each other's settings.
 *
 * The other piece of per-run mutable state, the fiber scheduler's
 * current-fiber pointer, is thread_local in fiber.cc for the same
 * reason (a simulation never migrates between host threads mid-run).
 */

#ifndef NCP2_SIM_CONTEXT_HH
#define NCP2_SIM_CONTEXT_HH

#include <string>

namespace sim
{

/**
 * Per-simulation state. Construction inherits the settings visible on
 * the constructing thread (the enclosing Context if one is installed,
 * the process-wide defaults otherwise), so nesting composes: an
 * experiment engine installs a per-job Context, and the System built
 * inside the job inherits its verbosity.
 */
class Context
{
  public:
    Context();

    /** Suppress warn()/inform() for this simulation. */
    bool quiet = false;

    /** Free-form run label, for diagnostics ("Em3d/I+D" and the like). */
    std::string label;

    /** The Context installed on this thread, or nullptr. */
    static Context *current();

    /** RAII installation of a Context on the calling thread. */
    class Scope
    {
      public:
        explicit Scope(Context &ctx);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Context *prev_;
    };
};

} // namespace sim

#endif // NCP2_SIM_CONTEXT_HH
