#include "sim/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "sim/logging.hh"

namespace sim
{

Trace::Trace(std::size_t capacity) : ring_(capacity), cap_(capacity)
{
    ncp2_assert(capacity > 0, "trace capacity must be non-zero");
}

std::vector<TraceRecord>
Trace::drain() const
{
    std::vector<TraceRecord> out;
    const std::uint64_t n = head_ < cap_ ? head_ : cap_;
    out.reserve(n);
    const std::uint64_t first = head_ > cap_ ? head_ - cap_ : 0;
    for (std::uint64_t i = first; i < head_; ++i)
        out.push_back(ring_[i % cap_]);
    return out;
}

namespace
{

/** JSON string escaping for metadata values (names are all literals). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-format microsecond timestamp: 1 tick = 10 ns = 0.01 us. */
std::string
tsString(Tick tick)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%02u", tick / 100,
                  static_cast<unsigned>(tick % 100));
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
                 std::uint64_t dropped, unsigned num_nodes,
                 const std::vector<std::pair<std::string, std::string>> &meta)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Track naming: one "process" per node, one "thread" per engine.
    for (unsigned n = 0; n < num_nodes; ++n) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << n
           << ",\"tid\":0,\"args\":{\"name\":\"node " << n << "\"}}";
        for (unsigned e = 0;
             e < static_cast<unsigned>(TraceEngine::num_engines); ++e) {
            sep();
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << n
               << ",\"tid\":" << e << ",\"args\":{\"name\":\""
               << traceEngineName(static_cast<TraceEngine>(e)) << "\"}}";
        }
    }

    for (const TraceRecord &r : records) {
        sep();
        const unsigned tid = static_cast<unsigned>(r.engine);
        if (r.kind == TraceKind::ctrl_queue) {
            // Counter track: queue occupancy as a filled graph.
            os << "{\"name\":\"ctrl_queue\",\"ph\":\"C\",\"pid\":" << r.node
               << ",\"tid\":" << tid << ",\"ts\":" << tsString(r.tick)
               << ",\"args\":{\"depth\":" << r.arg << "}}";
            continue;
        }
        os << "{\"name\":\"" << traceKindName(r.kind)
           << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << r.node
           << ",\"tid\":" << tid << ",\"ts\":" << tsString(r.tick)
           << ",\"args\":{\"arg\":" << r.arg << ",\"aux\":" << r.aux
           << ",\"tick\":" << r.tick << "}}";
    }

    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
       << dropped;
    for (const auto &[k, v] : meta)
        os << ",\"" << jsonEscape(k) << "\":\"" << jsonEscape(v) << "\"";
    os << "}}\n";
}

} // namespace sim
