/**
 * @file
 * PCI-bus timing model.
 *
 * The protocol controller and the network interface both sit on each
 * node's PCI bus (Figure 3 of the paper). Every transfer between main
 * memory and either device crosses PCI and pays setup + per-word burst
 * cost (Table 1: 10 cycles + 3 cycles/word), serialized with other PCI
 * traffic on the same node.
 */

#ifndef NCP2_PCIB_PCI_BUS_HH
#define NCP2_PCIB_PCI_BUS_HH

#include "sim/resource.hh"
#include "sim/types.hh"

namespace pcib
{

/** Timing parameters of one node's PCI bus. */
struct PciTiming
{
    sim::Cycles setup_cycles = 10;
    sim::Cycles word_cycles = 3;
};

/** Single-server FIFO PCI bus. */
class PciBus
{
  public:
    PciBus(std::string name, PciTiming timing)
        : bus_(std::move(name)), timing_(timing) {}

    [[nodiscard]] sim::Cycles
    serviceTime(unsigned words) const
    {
        return timing_.setup_cycles + timing_.word_cycles * words;
    }

    /** Burst-transfer @p words words; returns the completion tick. */
    sim::Tick
    transfer(sim::Tick arrival, unsigned words)
    {
        return bus_.acquire(arrival, serviceTime(words));
    }

    [[nodiscard]] const sim::Resource &bus() const { return bus_; }
    [[nodiscard]] const PciTiming &timing() const { return timing_; }

    void reset() { bus_.reset(); }

  private:
    sim::Resource bus_;
    PciTiming timing_;
};

} // namespace pcib

#endif // NCP2_PCIB_PCI_BUS_HH
