/**
 * @file
 * Write-buffer timing model.
 *
 * Shared-page stores are write-through (the snoop logic and automatic-
 * update hardware both depend on seeing them on the bus), so every store
 * enters a small FIFO write buffer that drains to the memory bus. With
 * the paper's 4 entries, bursts of stores stall the processor when the
 * buffer fills; that stall is part of the "others" breakdown category.
 */

#ifndef NCP2_MEM_WRITE_BUFFER_HH
#define NCP2_MEM_WRITE_BUFFER_HH

#include <vector>

#include "mem/memory.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace mem
{

/**
 * A FIFO of @p entries slots; each slot is occupied from enqueue until
 * its single-word drain to memory completes. The drain serializes
 * through the node's memory bus, so heavy controller/DMA traffic slows
 * the buffer down as well.
 */
class WriteBuffer
{
  public:
    WriteBuffer(unsigned entries, MainMemory &memory)
        : slots_(entries, 0), memory_(&memory)
    {
        ncp2_assert(entries > 0, "write buffer needs at least one entry");
    }

    /**
     * Enqueue a one-word store at @p now.
     * @return the number of cycles the *processor* stalls (zero unless
     *         the buffer is full).
     */
    sim::Cycles
    push(sim::Tick now)
    {
        // The oldest slot must have drained before we can reuse it.
        sim::Tick &slot = slots_[head_];
        head_ = (head_ + 1) % slots_.size();

        sim::Cycles stall = 0;
        sim::Tick start = now;
        if (slot > now) {
            stall = slot - now;
            start = slot;
            stall_cycles_ += stall;
            ++full_stalls_;
        }
        // Drain one word through the memory bus.
        slot = memory_->access(start, 1);
        ++stores_;
        return stall;
    }

    /** Tick by which every currently buffered store has drained. */
    sim::Tick
    drainedAt() const
    {
        sim::Tick t = 0;
        for (sim::Tick s : slots_)
            if (s > t)
                t = s;
        return t;
    }

    std::uint64_t stores() const { return stores_; }
    std::uint64_t fullStalls() const { return full_stalls_; }
    std::uint64_t stallCycles() const { return stall_cycles_; }

  private:
    std::vector<sim::Tick> slots_;  ///< drain-completion tick per slot
    MainMemory *memory_;
    std::size_t head_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t full_stalls_ = 0;
    std::uint64_t stall_cycles_ = 0;
};

} // namespace mem

#endif // NCP2_MEM_WRITE_BUFFER_HH
