/**
 * @file
 * Main-memory (DRAM + memory bus) timing model.
 *
 * The paper's Table 1 charges a fixed setup time plus a per-word burst
 * cost for every memory transaction; the memory bus is the contended
 * resource all node-local agents share (CPU cache fills, write-buffer
 * drains, controller snoop writes, DMA gathers/scatters, automatic
 * updates arriving from the network).
 */

#ifndef NCP2_MEM_MEMORY_HH
#define NCP2_MEM_MEMORY_HH

#include "sim/resource.hh"
#include "sim/types.hh"

namespace mem
{

/** Timing parameters for one node's main memory. */
struct MemoryTiming
{
    sim::Cycles setup_cycles = 10;    ///< per-transaction setup
    sim::Cycles word_cycles = 3;      ///< per 4-byte word after setup
};

/**
 * One node's main memory behind its memory bus. All transactions are
 * serialized (single-server FIFO), which is how the paper's bus
 * contention manifests.
 */
class MainMemory
{
  public:
    MainMemory(std::string name, MemoryTiming timing)
        : bus_(std::move(name)), timing_(timing) {}

    /** Service time of a @p words-word transaction, no contention. */
    sim::Cycles
    serviceTime(unsigned words) const
    {
        return timing_.setup_cycles + timing_.word_cycles * words;
    }

    /**
     * Perform a @p words-word transaction arriving at @p arrival.
     * @return completion tick (includes queuing behind earlier traffic).
     */
    sim::Tick
    access(sim::Tick arrival, unsigned words)
    {
        return bus_.acquire(arrival, serviceTime(words));
    }

    /**
     * Scattered transaction: @p words words spread over the page, moved
     * in at most @p line_words-word bursts, paying the setup per burst.
     * This is how a bit-vector-directed gather/scatter hits DRAM, which
     * is why the overlapping TreadMarks is more sensitive to memory
     * latency than AURC (figures 15/16).
     */
    sim::Tick
    accessScattered(sim::Tick arrival, unsigned words,
                    unsigned line_words = 8)
    {
        const unsigned bursts = (words + line_words - 1) / line_words;
        const sim::Cycles service =
            bursts * timing_.setup_cycles + timing_.word_cycles * words;
        return bus_.acquire(arrival, service);
    }

    const sim::Resource &bus() const { return bus_; }
    sim::Resource &bus() { return bus_; }
    const MemoryTiming &timing() const { return timing_; }

    void reset() { bus_.reset(); }

  private:
    sim::Resource bus_;
    MemoryTiming timing_;
};

} // namespace mem

#endif // NCP2_MEM_MEMORY_HH
