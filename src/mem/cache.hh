/**
 * @file
 * First-level data-cache timing model.
 *
 * Direct-mapped, physically indexed over the DSM global address space,
 * write-through with no write-allocate for shared data (writes must reach
 * the memory bus so the protocol controller's snoop logic can see them,
 * and so Shrimp-style network interfaces can propagate automatic
 * updates). Only timing and tag state are modelled; data contents live in
 * the DSM page store.
 */

#ifndef NCP2_MEM_CACHE_HH
#define NCP2_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mem
{

/** Geometry of a direct-mapped cache. */
struct CacheGeometry
{
    std::uint32_t size_bytes = 128 * 1024;
    std::uint32_t line_bytes = 32;

    std::uint32_t numLines() const { return size_bytes / line_bytes; }
};

/**
 * Tag-only direct-mapped cache. Lookup cost is folded into the 1-cycle
 * issue charge; misses cost a line fill from local memory (charged by
 * the caller, which owns the memory bus).
 */
class Cache
{
  public:
    explicit Cache(CacheGeometry geom = {})
        : geom_(geom),
          tags_(geom.numLines(), invalid_tag)
    {
        ncp2_assert((geom.line_bytes & (geom.line_bytes - 1)) == 0,
                    "cache line size must be a power of two");
        ncp2_assert((geom_.numLines() & (geom_.numLines() - 1)) == 0,
                    "cache line count must be a power of two");
        line_shift_ = ctz(geom.line_bytes);
        index_mask_ = geom_.numLines() - 1;
    }

    /**
     * Probe-and-fill for a read: returns true on hit; on miss installs
     * the line.
     */
    bool
    accessRead(sim::GAddr addr)
    {
        const std::uint64_t line = addr >> line_shift_;
        const std::uint32_t idx = static_cast<std::uint32_t>(line) & index_mask_;
        if (tags_[idx] == line) {
            ++hits_;
            return true;
        }
        tags_[idx] = line;
        ++misses_;
        return false;
    }

    /**
     * Probe for a write (write-through, no write-allocate): returns true
     * if the line is present (and thus also updated in cache).
     */
    bool
    accessWrite(sim::GAddr addr)
    {
        const std::uint64_t line = addr >> line_shift_;
        const std::uint32_t idx = static_cast<std::uint32_t>(line) & index_mask_;
        if (tags_[idx] == line) {
            ++write_hits_;
            return true;
        }
        ++write_misses_;
        return false;
    }

    /**
     * Invalidate every line belonging to [@p base, @p base + @p bytes).
     * Used when the protocol controller or an automatic update writes
     * local memory behind the processor's back (the CPU snoops those bus
     * writes, per the paper's node architecture).
     */
    void
    invalidateRange(sim::GAddr base, std::uint64_t bytes)
    {
        const std::uint64_t first = base >> line_shift_;
        const std::uint64_t last = (base + bytes - 1) >> line_shift_;
        for (std::uint64_t line = first; line <= last; ++line) {
            const std::uint32_t idx =
                static_cast<std::uint32_t>(line) & index_mask_;
            if (tags_[idx] == line) {
                tags_[idx] = invalid_tag;
                ++snoop_invalidations_;
            }
        }
    }

    void
    invalidateAll()
    {
        tags_.assign(tags_.size(), invalid_tag);
    }

    [[nodiscard]] std::uint32_t lineBytes() const { return geom_.line_bytes; }
    [[nodiscard]] std::uint32_t lineWords() const
    {
        return geom_.line_bytes / 4;
    }
    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }
    [[nodiscard]] std::uint64_t writeHits() const { return write_hits_; }
    [[nodiscard]] std::uint64_t writeMisses() const { return write_misses_; }
    [[nodiscard]] std::uint64_t snoopInvalidations() const
    {
        return snoop_invalidations_;
    }

  private:
    static constexpr std::uint64_t invalid_tag = ~std::uint64_t{0};

    static std::uint32_t
    ctz(std::uint32_t v)
    {
        std::uint32_t n = 0;
        while (!(v & 1)) {
            v >>= 1;
            ++n;
        }
        return n;
    }

    CacheGeometry geom_;
    std::vector<std::uint64_t> tags_;
    std::uint32_t line_shift_ = 5;
    std::uint32_t index_mask_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t write_hits_ = 0;
    std::uint64_t write_misses_ = 0;
    std::uint64_t snoop_invalidations_ = 0;
};

} // namespace mem

#endif // NCP2_MEM_CACHE_HH
