/**
 * @file
 * TLB timing model: a direct-mapped page-translation cache with a fixed
 * fill penalty (Table 1: 128 entries, 100-cycle fill).
 */

#ifndef NCP2_MEM_TLB_HH
#define NCP2_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mem
{

/** Direct-mapped TLB over DSM page numbers. */
class Tlb
{
  public:
    Tlb(unsigned entries = 128, sim::Cycles fill_cycles = 100)
        : slots_(entries, invalid_page), fill_cycles_(fill_cycles)
    {
        ncp2_assert(entries && (entries & (entries - 1)) == 0,
                    "TLB entry count must be a power of two");
    }

    /**
     * Look up @p page; installs on miss.
     * @return the fill penalty in cycles (0 on hit).
     */
    sim::Cycles
    access(sim::PageId page)
    {
        const std::size_t idx = page & (slots_.size() - 1);
        if (slots_[idx] == page) {
            ++hits_;
            return 0;
        }
        slots_[idx] = page;
        ++misses_;
        return fill_cycles_;
    }

    /** Drop a translation (page remapped/invalidated by the DSM). */
    void
    invalidate(sim::PageId page)
    {
        const std::size_t idx = page & (slots_.size() - 1);
        if (slots_[idx] == page)
            slots_[idx] = invalid_page;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    static constexpr sim::PageId invalid_page = ~sim::PageId{0};

    std::vector<sim::PageId> slots_;
    sim::Cycles fill_cycles_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mem

#endif // NCP2_MEM_TLB_HH
