/**
 * @file
 * TreadMarks-style lazy release consistency, with the paper's overlap
 * modes.
 *
 * Protocol summary (section 2 of the paper):
 *  - execution is divided into intervals delimited by synchronization;
 *  - page invalidation happens at lock acquires (and barriers) via write
 *    notices computed from vector timestamps;
 *  - modifications are shipped as diffs, created lazily at the first
 *    request against a twin (software) or a snooped word bit vector and
 *    DMA engine (hardware, mode D);
 *  - a faulting processor collects the diffs of all intervals with
 *    smaller vector timestamps than its own and applies them in
 *    timestamp order (we use the vector-clock component sum, a linear
 *    extension of happens-before, as the sort key).
 *
 * Overlap modes (section 3.2):
 *  - Base: everything on the computation processor;
 *  - I: controllers handle message send/receive, page/diff service and
 *    diff creation/application; the CPU is interrupted only for
 *    interval / write-notice processing;
 *  - D: twins are eliminated; diffs are created/applied by the snoop
 *    logic + DMA engine;
 *  - P: at acquires/barriers, pages that were cached-and-referenced but
 *    just got invalidated have their diffs prefetched at low priority.
 *
 * Diff representation: per (writer, page) we keep a *cumulative* diff
 * (latest value + covering interval per word). Serving a request ships
 * the words newer than the requester's per-writer watermark. Like real
 * TreadMarks' lazily-created diffs, a shipment may include modifications
 * from intervals newer than requested; this is harmless for data-race-
 * free programs and keeps diff storage bounded without a garbage-
 * collection phase.
 *
 * Data movement is real: diffs carry actual word values; the
 * applications compute correct results only if this protocol is correct.
 */

#ifndef NCP2_TMK_TREADMARKS_HH
#define NCP2_TMK_TREADMARKS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "dsm/config.hh"
#include "dsm/page.hh"
#include "dsm/protocol.hh"
#include "dsm/system.hh"
#include "dsm/vclock.hh"
#include "sim/append_log.hh"
#include "sim/stats.hh"

namespace tmk
{

/** TreadMarks protocol statistics (inputs to the paper's tables). */
struct TmkStats
{
    sim::Counter read_faults;
    sim::Counter write_faults;
    sim::Counter page_fetches;     ///< full-page cold fetches
    sim::Counter diff_requests;    ///< demand diff request messages
    sim::Counter diffs_created;
    sim::Counter diffs_applied;
    sim::Counter diff_words_moved;
    sim::Counter empty_diffs;
    sim::Counter twins_created;
    sim::Counter intervals_closed;
    sim::Counter write_notices;
    sim::Counter lock_acquires;
    sim::Counter lock_fast_grants; ///< re-acquire of an owned lock
    sim::Counter barriers;
    sim::Counter prefetches_issued;   ///< page prefetches started
    sim::Counter prefetches_useless;  ///< completed but never used
    sim::Counter prefetch_demand_waits; ///< faults on pending prefetch
    sim::Counter invalidations;
    sim::Counter stale_shipments_dropped;
    sim::Counter lh_updates;      ///< lazy-hybrid piggybacked diffs
    sim::Counter lh_update_words;
    /// Diff size distribution: words per captured diff (empties included).
    sim::Histogram diff_size{{1, 4, 16, 64, 256}};
    /// Write notices carried per lock grant.
    sim::Accum grant_notices;
};

/** The TreadMarks protocol with configurable overlap techniques. */
class TreadMarks : public dsm::Protocol
{
  public:
    explicit TreadMarks(dsm::OverlapMode mode);

    void attach(dsm::System &sys) override;
    void ensureAccess(sim::NodeId proc, sim::PageId page,
                      bool for_write) override;
    void sharedWrite(sim::NodeId proc, sim::PageId page, unsigned word,
                     unsigned words) override;
    dsm::WriteDescInfo writeDesc(sim::NodeId proc,
                                 sim::PageId page) override;
    void acquire(sim::NodeId proc, unsigned lock_id) override;
    void release(sim::NodeId proc, unsigned lock_id) override;
    void barrier(sim::NodeId proc, unsigned barrier_id) override;
    std::string name() const override;

    /**
     * Shard-safe for the parallel executor except under Lazy Hybrid,
     * whose grant-update construction probes the acquirer's page
     * presence live at the granter (a cross-node read that races with
     * the acquirer's prefetch completions).
     */
    bool pdesSafe() const override { return !mode_.lazy_hybrid; }

    void readCoherent(sim::PageId page, std::uint8_t *out) override;
    void finalize() override;
    const sim::StatGroup *statGroup() const override { return &group_; }

    const TmkStats &stats() const { return stats_; }
    const dsm::OverlapMode &mode() const { return mode_; }

  private:
    // ----- writer-side diff bookkeeping -----

    /** Latest diffed value of one word and the interval it covers. */
    struct WordRec
    {
        std::uint32_t val = 0;
        dsm::IntervalSeq end = 0;
    };

    /**
     * Per (writer, page): closed write intervals + cumulative diff.
     * Sharding rule: every field is written only by its owning node's
     * event stream; closed_seqs is additionally *read* cross-node
     * (neededWriters at a faulting processor), which is why it is an
     * append-only log — entries a reader indexes were published before
     * the write notice that led it here, and AppendLog keeps their
     * addresses stable while the owner keeps appending.
     */
    struct PageLog
    {
        sim::AppendLog<dsm::IntervalSeq> closed_seqs;
        std::unordered_map<std::uint16_t, WordRec> cum;
        dsm::IntervalSeq diffed_to = 0;
        /// True interval in which each word was last stored (recorded at
        /// write time): capture labels cumulative entries with this, so
        /// a word written under a lock in an old interval cannot
        /// masquerade as part of a newer concurrent interval and defeat
        /// the per-word happened-before merge at receivers.
        std::vector<dsm::IntervalSeq> word_interval;
    };

    /**
     * Per-processor protocol state — one shard per node. Writes are
     * owner-only (the node's fiber or events on its queue). The
     * documented cross-node *reads* the parallel executor admits:
     *  - interval_pages / logs[page].closed_seqs: append-only logs,
     *    indexed only below bounds learned through a message
     *    (happens-before through the window barrier);
     *  - vt: read by a lock granter / the barrier manager while this
     *    processor is *blocked* on that very lock or barrier, so the
     *    clock is frozen until the grant/release wakes it;
     *  - the logs map structure: guarded by logs_mu under PDES
     *    (owner inserts vs. cross-node finds; PageLog addresses are
     *    stable, unordered_map never moves its nodes).
     */
    struct ProcState
    {
        dsm::VectorClock vt;
        /// vt_sums[s-1]: sum of the vector clock at close of interval s
        /// (a linear extension of happens-before, used to order diffs).
        /// Owner-read only (buildShipment at the writer, applyShipment's
        /// local-floor lookup at the applier), so a plain vector.
        std::vector<std::uint64_t> vt_sums;
        /// interval_pages[s-1]: pages written during interval s.
        sim::AppendLog<std::vector<sim::PageId>> interval_pages;
        std::unordered_map<sim::PageId, PageLog> logs;
        /// Guards the logs *map structure* against cross-node finds
        /// racing owner inserts under the parallel executor; untaken
        /// (and uncontended) on the serial scheduler.
        mutable std::shared_mutex logs_mu;
        std::vector<sim::PageId> open_dirty;
        /// pages invalidated by the last notice round (prefetch input)
        std::vector<sim::PageId> invalidated;
        /// Reusable delta buffer for this shard's sparse-clock paths
        /// (owner-context use only; pre-sized to num_procs at attach).
        dsm::ClockDelta delta_scratch;
    };

    /**
     * Lock rendezvous state. Locks are the one protocol structure that
     * is *not* sharded: the manager's pump, the owner's release and the
     * acquirer's fast path all read-modify it. Under the parallel
     * executor every locks_ access runs under lock_mu_ (see lockGuard),
     * which is also the documented source of run-to-run nondeterminism
     * for parallel runs: two nodes reaching the same lock inside one
     * lookahead window rendezvous in mutex-acquisition order.
     */
    struct LockState
    {
        bool held = false;
        bool has_owner = false;
        /// A grant is in flight (forwarded but not yet delivered); the
        /// manager must not start a second one.
        bool granting = false;
        /// A forwarded request reached the owner while it still held the
        /// lock; it is granted at the owner's release.
        bool has_pending = false;
        sim::NodeId pending = 0;
        sim::NodeId owner = 0;
        dsm::VectorClock release_vt;
        std::deque<sim::NodeId> waiters;
    };

    struct BarrierState
    {
        unsigned arrived = 0;
        sim::Tick ready_at = 0;      ///< manager finished all arrivals
        dsm::VectorClock merged_vt;
    };

    /**
     * Combining-tree barrier state at one tree node (barrier_radix > 0).
     * Lives in the node's own shard (tree_barriers_[node]) and is
     * touched only by events on that node's queue, so the parallel
     * executor needs no extra locking — the same owner-only rule as
     * ProcState.
     */
    struct TreeBarrier
    {
        unsigned arrived = 0;       ///< children + self arrivals so far
        sim::Tick ready_at = 0;     ///< last arrival interrupt retires
        dsm::VectorClock merged_vt; ///< component max over the subtree
        /// Component-wise *minimum* clock of each direct child's
        /// subtree, recorded at its (combined) arrival: the release
        /// message down to that child must carry every write notice in
        /// (min, final], since some descendant may be that far behind.
        std::vector<std::pair<sim::NodeId, dsm::VectorClock>> child_mins;
        dsm::VectorClock min_vt;    ///< component min over the subtree
    };

    /** One diff shipment inside a fault/prefetch transaction. */
    struct Shipment
    {
        sim::NodeId writer = 0;
        dsm::IntervalSeq end = 0;     ///< per-writer watermark after apply
        std::uint64_t order_key = 0;  ///< vt-sum of the covering interval
        std::vector<std::uint16_t> idx;
        std::vector<std::uint32_t> val;
        /// Per-word happened-before keys (vt-sum of the word's covering
        /// interval): the receiver merges per word, newest-wins, which is
        /// how interval-ordered diff application behaves in TreadMarks.
        std::vector<std::uint64_t> key;
    };

    /** In-flight demand fault transaction (one per processor). */
    struct Txn
    {
        unsigned outstanding = 0;
        bool page_arrived = false;
        bool cold = false;
        std::vector<Shipment> shipments;
    };

    /** Per-page prefetch usefulness history (adaptive strategy). */
    struct PrefetchHistory
    {
        std::uint8_t useless_streak = 0; ///< consecutive unused prefetches
        bool banned = false;             ///< adaptive: stop prefetching
    };

    /** In-flight prefetch state for one (proc, page). */
    struct PagePrefetch
    {
        unsigned outstanding = 0;
        bool demand_wait = false;
        std::vector<Shipment> shipments;
    };

    struct ProcPrefetch
    {
        std::unordered_map<sim::PageId, PagePrefetch> pages;
        std::unordered_map<sim::PageId, PrefetchHistory> history;
    };

    /**
     * Everything grantLock used to mutate/read of shared lock + clock
     * state, computed under the lock rendezvous so the yielding
     * charge/send half (executeGrant) can run outside it.
     */
    struct GrantPlan
    {
        unsigned lock_id = 0;
        sim::NodeId from = 0;
        sim::NodeId to = 0;
        dsm::VectorClock eff;
        std::uint64_t notices = 0;
        sim::Cycles lh_cost = 0;
        std::uint32_t lh_bytes = 0;
        std::shared_ptr<std::vector<std::pair<sim::PageId, Shipment>>>
            updates;
    };

    // ----- helpers -----
    unsigned nprocs() const { return sys_->nprocs(); }

    /** Node @p q's protocol shard (write access is owner-only). */
    ProcState &ps(sim::NodeId q) { return *procs_[q]; }
    const ProcState &ps(sim::NodeId q) const { return *procs_[q]; }

    /**
     * The lock rendezvous: a real mutex hold under the parallel
     * executor, a free no-op lock on the serial scheduler. Never held
     * across anything that can yield the fiber (cpu.advance/flush/
     * block, fiberSend).
     */
    std::unique_lock<std::mutex>
    lockGuard()
    {
        return sys_->pdesActive()
                   ? std::unique_lock<std::mutex>(lock_mu_)
                   : std::unique_lock<std::mutex>();
    }

    /** Find @p q's PageLog for @p page; cross-node-safe (shared lock). */
    const PageLog *
    peekLog(sim::NodeId q, sim::PageId page) const
    {
        const ProcState &p = ps(q);
        std::shared_lock<std::shared_mutex> g(p.logs_mu, std::defer_lock);
        if (sys_->pdesActive())
            g.lock();
        auto it = p.logs.find(page);
        return it == p.logs.end() ? nullptr : &it->second;
    }

    /** Insert-or-get @p q's PageLog for @p page (owner-only). */
    PageLog &
    logOf(sim::NodeId q, sim::PageId page)
    {
        ProcState &p = ps(q);
        std::unique_lock<std::shared_mutex> g(p.logs_mu, std::defer_lock);
        if (sys_->pdesActive())
            g.lock();
        return p.logs[page];
    }

    sim::NodeId
    homeOf(sim::PageId page) const
    {
        return static_cast<sim::NodeId>(page % nprocs());
    }
    dsm::Node &node(sim::NodeId n) { return sys_->node(n); }
    const dsm::SysConfig &cfg() const { return sys_->cfg(); }

    /** Close the open interval of @p proc (no-op if clean). */
    void closeInterval(sim::NodeId proc);

    /**
     * Host-side content capture: fold the delta since the last capture
     * (twin comparison or bit-vector gather) into writer @p q's
     * cumulative diff for @p page.
     * @param pseudo_open include the open interval (validation only).
     * @return number of words captured (timing is charged by callers).
     */
    unsigned captureDiff(sim::NodeId q, sim::PageId page, bool pseudo_open);

    /** True if @p q must run a capture to satisfy a request for @p page. */
    bool captureNeeded(sim::NodeId q, sim::PageId page) const;

    /** Count write notices carried between two vector clocks. */
    std::uint64_t noticeCount(const dsm::VectorClock &from,
                              const dsm::VectorClock &to) const;

    /** noticeCount over a precomputed sparse delta. */
    std::uint64_t noticeCountDelta(const dsm::ClockDelta &d) const;

    /**
     * noticeCount(from, to) through the configured clock representation:
     * the sparse delta walk when cfg().sparse_clocks (leaving the delta
     * in @p scratch, cross-checked against the dense count under
     * ncp2_dassert), the dense reference loop otherwise. @p scratch must
     * be owned by the calling context (a shard's delta_scratch or a
     * local).
     */
    std::uint64_t noticesBetween(const dsm::VectorClock &from,
                                 const dsm::VectorClock &to,
                                 dsm::ClockDelta &scratch) const;

    /** Invalidate @p proc's stale copies for intervals in (from, to]. */
    void applyInvalidations(sim::NodeId proc, const dsm::VectorClock &from,
                            const dsm::VectorClock &to);

    /** Invalidate @p proc's stale copies for writer @p q's interval @p s
     *  (the shared inner body of the dense and delta notice walks). */
    void invalidateInterval(sim::NodeId proc, unsigned q,
                            dsm::IntervalSeq s);

    /**
     * applyInvalidations driven by a sparse delta (entries ascend by
     * writer, so the invalidation order — and thus every simulated side
     * effect — matches the dense loop exactly).
     */
    void applyInvalidationsDelta(sim::NodeId proc,
                                 const dsm::ClockDelta &d);

    /**
     * Deliver the clock advance (to, d) at @p proc: invalidations, then
     * the vt merge, via the sparse delta (d = delta(vt_proc, to)) or the
     * dense reference path per cfg().sparse_clocks. @p d may alias
     * @p proc's delta_scratch.
     */
    void advanceClock(sim::NodeId proc, const dsm::VectorClock &to,
                      const dsm::ClockDelta &d);

    /** Writers owing diffs to @p proc for @p page (given its watermarks). */
    std::vector<sim::NodeId> neededWriters(sim::NodeId proc,
                                           sim::PageId page) const;

    /**
     * @p proc's applied watermark for writer @p q on @p page (0 when
     * the page is absent). Owner-read on @p proc's fiber at request
     * time; the serial scheduler also reads it live at serve time.
     */
    dsm::IntervalSeq watermarkOf(sim::NodeId proc, sim::NodeId q,
                                 sim::PageId page) const;

    /**
     * Build the shipment writer @p q owes @p proc for @p page: every
     * cumulative word newer than watermark @p w (the requester's
     * applied[q], read live on the serial scheduler and carried in the
     * request message under the parallel executor — a stale-low mark
     * only ships extra words, which the per-word keys and the stale-
     * shipment drop at the receiver make harmless).
     */
    Shipment buildShipment(sim::NodeId proc, sim::NodeId q,
                           sim::PageId page, dsm::IntervalSeq w) const;

    /** Apply a shipment's bytes to @p proc's copy (host-side). */
    void applyShipment(sim::NodeId proc, sim::PageId page,
                       const Shipment &s);

    /** Sort shipments into a valid application order (vt-sum). */
    static void sortShipments(std::vector<Shipment> &v);

    /** Demand fault: fetch page/diffs, apply, revalidate. Blocks. */
    void faultIn(sim::NodeId proc, sim::PageId page);

    /**
     * Handle a diff request at writer @p q (event context). @p req_mark
     * is the requester's applied[q] watermark captured when the request
     * was sent (used in place of a live read under the parallel
     * executor).
     */
    void serveDiffRequest(sim::NodeId requester, sim::NodeId q,
                          sim::PageId page, bool is_prefetch,
                          dsm::IntervalSeq req_mark);

    /** Issue prefetches after an invalidation round (mode P). */
    void issuePrefetches(sim::NodeId proc);

    /** Prefetch completion: apply shipments, maybe revalidate. */
    void finishPrefetch(sim::NodeId proc, sim::PageId page);

    /**
     * Start the next grant of @p lock if it is free (manager side).
     * Event context only; the caller holds the lock rendezvous.
     */
    void pumpLock(unsigned lock_id, sim::NodeId manager);

    /**
     * Claim the grant of @p lock to @p to in shared lock/clock state
     * (caller holds the lock rendezvous; no yields inside).
     */
    GrantPlan prepareGrant(unsigned lock_id, sim::NodeId from,
                           sim::NodeId to);

    /** Charge and send a prepared grant (may yield when @p from_fiber). */
    void executeGrant(const GrantPlan &plan, bool from_fiber);

    /** Deliver a lock grant at the acquirer (event context). */
    void deliverGrant(unsigned lock_id, sim::NodeId to,
                      dsm::VectorClock grant_vt, std::uint64_t notices);

    // ----- combining-tree barrier (cfg().barrier_radix > 0) -----

    /** Parent of tree node @p p (root 0 is its own parent). */
    sim::NodeId
    treeParent(sim::NodeId p) const
    {
        return p == 0 ? 0 : (p - 1) / cfg().barrier_radix;
    }

    /** Direct children of tree node @p p, ascending. */
    std::vector<sim::NodeId> treeChildren(sim::NodeId p) const;

    /**
     * An arrival lands at combine node @p at (event context at @p at):
     * @p from's subtree clocks fold into the combine state. Leaf and
     * self arrivals pass null @p merged / @p mn and are read live from
     * procs_[from]->vt (frozen: @p from is blocked at this barrier);
     * forwarded internal arrivals carry snapshots.
     */
    void treeArrive(sim::NodeId at, unsigned barrier_id, sim::NodeId from,
                    std::shared_ptr<const dsm::VectorClock> merged,
                    std::shared_ptr<const dsm::VectorClock> mn,
                    std::uint64_t up_notices);

    /**
     * Release delivery at tree node @p p: apply the final clock, wake
     * the fiber, then re-broadcast down via broadcastChildren. @p base
     * is the delta (pre-merge manager watermark -> final) driving the
     * sparse paths; null when dense.
     */
    void treeDeliver(sim::NodeId p, unsigned barrier_id,
                     std::shared_ptr<const dsm::VectorClock> final_vt,
                     std::shared_ptr<const dsm::ClockDelta> base);

    /**
     * Send the release to each of @p p's tree children (ascending node
     * id; the message carries the notices in (child subtree min,
     * final]) and drop @p p's combine state. No-op when @p p holds no
     * state for @p barrier_id (leaves; the root after its broadcast).
     */
    void broadcastChildren(sim::NodeId p, unsigned barrier_id,
                           std::shared_ptr<const dsm::VectorClock> final_vt,
                           std::shared_ptr<const dsm::ClockDelta> base);

    /**
     * Lazy Hybrid: build the shipments granter @p from piggybacks on a
     * grant to @p to covering its own intervals in (vt_to, grant_vt].
     * @return total words (for timing); shipments land in @p out.
     */
    std::uint64_t buildGrantUpdates(
        sim::NodeId from, sim::NodeId to, const dsm::VectorClock &grant_vt,
        std::vector<std::pair<sim::PageId, Shipment>> &out);

    /** Apply piggybacked grant updates at the acquirer (host-side). */
    void applyGrantUpdates(
        sim::NodeId to,
        const std::vector<std::pair<sim::PageId, Shipment>> &updates);

    // ----- timing helpers (mode matrix lives here) -----

    /**
     * Send a message from the fiber of @p proc: charges the CPU (Base)
     * or enqueues on the controller (mode I), then delivers @p fn at the
     * network arrival tick.
     */
    void fiberSend(sim::NodeId proc, sim::NodeId dst, std::uint32_t bytes,
                   dsm::Cat cat, ctrl::Priority prio,
                   std::function<void(sim::Tick)> fn);

    /** Send from event context at @p src (interrupting its CPU in Base). */
    void eventSend(sim::NodeId src, sim::NodeId dst, std::uint32_t bytes,
                   ctrl::Priority prio, std::function<void(sim::Tick)> fn);

    /** Local-memory latency for @p words as seen by @p n's CPU. */
    sim::Cycles memLatency(sim::NodeId n, unsigned words);

    /** vt-sum order key of interval (q, seq). */
    std::uint64_t vtSumOf(sim::NodeId q, dsm::IntervalSeq seq) const;

    // message sizes (bytes)
    std::uint32_t lockReqBytes() const { return 16 + 4 * nprocs(); }
    std::uint32_t grantBytes(std::uint64_t notices) const
    {
        return 24 + 4 * nprocs() +
               static_cast<std::uint32_t>(8 * notices);
    }
    std::uint32_t diffReqBytes() const { return 24; }
    std::uint32_t
    diffReplyBytes(unsigned words) const
    {
        return 32 + 4 * words + words / 2;
    }
    std::uint32_t pageReqBytes() const { return 16; }
    std::uint32_t
    pageReplyBytes() const
    {
        return cfg().page_bytes + 32 + 4 * nprocs();
    }

    dsm::OverlapMode mode_;
    dsm::System *sys_ = nullptr;
    /// One shard per node (unique_ptr: ProcState owns append-only logs,
    /// which are neither copyable nor movable).
    std::vector<std::unique_ptr<ProcState>> procs_;
    /// Serializes every locks_ access under the parallel executor; see
    /// LockState. Untaken on the serial scheduler.
    std::mutex lock_mu_;
    std::unordered_map<unsigned, LockState> locks_;
    std::unordered_map<unsigned, BarrierState> barriers_;
    /// Tree-barrier combine state, one shard per node (owner-only
    /// access from that node's event queue); empty when the flat
    /// barrier is configured.
    std::vector<std::unordered_map<unsigned, TreeBarrier>> tree_barriers_;
    dsm::VectorClock mgr_known_vt_; ///< barrier manager's knowledge
    std::vector<Txn> txns_;
    std::vector<ProcPrefetch> prefetch_;
    /// Apply cost owed by an acquirer for piggybacked grant updates,
    /// charged when its fiber resumes.
    std::vector<std::uint64_t> lh_pending_words_;
    TmkStats stats_;
    sim::StatGroup group_{"tmk"};
};

/** Factory helper used by benches and tests. */
std::unique_ptr<dsm::Protocol> makeTreadMarks(dsm::OverlapMode mode);

} // namespace tmk

#endif // NCP2_TMK_TREADMARKS_HH
