#include "tmk/treadmarks.hh"

#include <algorithm>

#include "dsm/diff_pool.hh"
#include "sim/logging.hh"

namespace tmk
{

using dsm::Cat;
using sim::NodeId;
using sim::PageId;
using sim::Tick;

std::unique_ptr<dsm::Protocol>
makeTreadMarks(dsm::OverlapMode mode)
{
    return std::make_unique<TreadMarks>(mode);
}

TreadMarks::TreadMarks(dsm::OverlapMode mode) : mode_(mode)
{
    // Names keep the flat keys the results JSON has always used
    // ("tmk.prefetches", "tmk.diff_words", ...).
    group_.addCounter("read_faults", &stats_.read_faults,
                      "read access faults taken");
    group_.addCounter("write_faults", &stats_.write_faults,
                      "write access faults taken");
    group_.addCounter("page_fetches", &stats_.page_fetches,
                      "full-page cold fetches");
    group_.addCounter("diff_requests", &stats_.diff_requests,
                      "demand diff request messages");
    group_.addCounter("diffs_created", &stats_.diffs_created,
                      "diffs captured at writers");
    group_.addCounter("diffs_applied", &stats_.diffs_applied,
                      "diff shipments applied");
    group_.addCounter("diff_words", &stats_.diff_words_moved,
                      "words moved in diffs");
    group_.addCounter("empty_diffs", &stats_.empty_diffs,
                      "captures that found no modified word");
    group_.addCounter("twins", &stats_.twins_created,
                      "twin pages created");
    group_.addCounter("intervals", &stats_.intervals_closed,
                      "intervals closed");
    group_.addCounter("write_notices", &stats_.write_notices,
                      "write notices generated");
    group_.addCounter("lock_acquires", &stats_.lock_acquires,
                      "lock acquire operations");
    group_.addCounter("lock_fast_grants", &stats_.lock_fast_grants,
                      "re-acquires of an owned, uncontended lock");
    group_.addCounter("barriers", &stats_.barriers,
                      "barrier episodes completed");
    group_.addCounter("prefetches", &stats_.prefetches_issued,
                      "page prefetches started");
    group_.addCounter("prefetches_useless", &stats_.prefetches_useless,
                      "prefetched pages invalidated or never used");
    group_.addCounter("prefetch_demand_waits", &stats_.prefetch_demand_waits,
                      "demand faults that waited on a pending prefetch");
    group_.addCounter("invalidations", &stats_.invalidations,
                      "page invalidations from write notices");
    group_.addCounter("stale_shipments_dropped",
                      &stats_.stale_shipments_dropped,
                      "diff shipments superseded before application");
    group_.addCounter("lh_updates", &stats_.lh_updates,
                      "lazy-hybrid piggybacked diffs");
    group_.addCounter("lh_update_words", &stats_.lh_update_words,
                      "words in lazy-hybrid piggybacked diffs");
    group_.addHistogram("diff_size", &stats_.diff_size,
                        "words per captured diff");
    group_.addAccum("grant_notices", &stats_.grant_notices,
                    "write notices carried per lock grant");
}

std::string
TreadMarks::name() const
{
    return "TreadMarks/" + mode_.label();
}

void
TreadMarks::attach(dsm::System &sys)
{
    sys_ = &sys;
    const unsigned n = nprocs();
    procs_.clear();
    procs_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        procs_.push_back(std::make_unique<ProcState>());
        ProcState &p = *procs_.back();
        p.vt = dsm::VectorClock(n);
        // Pre-size the per-epoch containers once, from the machine
        // geometry: at 256-1024 nodes the old grow-as-you-go pattern
        // reallocated these inside every interval close / notice round.
        p.delta_scratch.entries.reserve(n);
        p.vt_sums.reserve(64);
        p.open_dirty.reserve(32);
        p.invalidated.reserve(32);
    }
    txns_.assign(n, Txn{});
    prefetch_.assign(n, ProcPrefetch{});
    lh_pending_words_.assign(n, 0);
    tree_barriers_.clear();
    if (cfg().barrier_radix != 0)
        tree_barriers_.resize(n);
    // Manager knowledge starts at the zero clock (previously
    // lazy-initialized by the first barrier arrival — same value, but
    // host-side init keeps run-time writes owner-only).
    mgr_known_vt_ = dsm::VectorClock(n);

    // Home copies exist from time zero (zero-filled, read-only); record
    // each page in its home node's heap-directory shard.
    const PageId used_pages =
        (sys.heap().used() + cfg().page_bytes - 1) / cfg().page_bytes;
    for (PageId pg = 0; pg < used_pages; ++pg) {
        const NodeId home = homeOf(pg);
        dsm::NodePage &p = node(home).pages.materialize(pg);
        p.access = dsm::Access::read;
        sys.shard(home).heap.registerHomePage(pg);
    }
}

sim::Cycles
TreadMarks::memLatency(NodeId n, unsigned words)
{
    dsm::Node &nd = node(n);
    const Tick arrive = nd.cpu.localNow();
    return nd.memory.access(arrive, words) - arrive;
}

std::uint64_t
TreadMarks::vtSumOf(NodeId q, dsm::IntervalSeq seq) const
{
    const ProcState &ps = *procs_[q];
    if (seq == 0)
        return 0;
    if (seq <= ps.vt_sums.size())
        return ps.vt_sums[seq - 1];
    // Pseudo interval covering the still-open interval (validation).
    std::uint64_t s = 1;
    for (unsigned i = 0; i < ps.vt.size(); ++i)
        s += ps.vt[i];
    return s;
}

// ---------------------------------------------------------------------
// interval / write-notice machinery
// ---------------------------------------------------------------------

void
TreadMarks::closeInterval(NodeId proc)
{
    ProcState &ps = *procs_[proc];
    if (ps.open_dirty.empty())
        return;

    const dsm::IntervalSeq seq = ++ps.vt[proc];
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < ps.vt.size(); ++i)
        sum += ps.vt[i];
    ps.vt_sums.push_back(sum);

    for (PageId page : ps.open_dirty) {
        logOf(proc, page).closed_seqs.push_back(seq);
        dsm::NodePage &pg = node(proc).pages.page(page);
        pg.dirty_in_interval = false;
        // Write-protect so the next write in the new interval traps and
        // registers the page again.
        if (pg.access == dsm::Access::readwrite)
            pg.access = dsm::Access::read;
        // Flush the write descriptor unconditionally: even a page that
        // stays writable would stamp the stale interval number now that
        // vt[proc] advanced.
        node(proc).adesc.downgradeWrite(page);
    }
    ps.interval_pages.push_back(std::move(ps.open_dirty));
    ps.open_dirty.clear();

    ++stats_.intervals_closed;
    stats_.write_notices += ps.interval_pages.back().size();
    node(proc).cpu.advance(
        cfg().list_cycles * ps.interval_pages.back().size(), Cat::synch);
}

std::uint64_t
TreadMarks::noticeCount(const dsm::VectorClock &from,
                        const dsm::VectorClock &to) const
{
    std::uint64_t count = 0;
    for (unsigned q = 0; q < from.size(); ++q) {
        const ProcState &ps = *procs_[q];
        for (dsm::IntervalSeq s = from[q] + 1; s <= to[q]; ++s)
            count += ps.interval_pages.at(s - 1).size();
    }
    return count;
}

std::uint64_t
TreadMarks::noticeCountDelta(const dsm::ClockDelta &d) const
{
    std::uint64_t count = 0;
    for (const dsm::ClockDelta::Entry &e : d.entries) {
        const ProcState &ps = *procs_[e.proc];
        for (dsm::IntervalSeq s = e.from + 1; s <= e.to; ++s)
            count += ps.interval_pages.at(s - 1).size();
    }
    return count;
}

std::uint64_t
TreadMarks::noticesBetween(const dsm::VectorClock &from,
                           const dsm::VectorClock &to,
                           dsm::ClockDelta &scratch) const
{
    if (!cfg().sparse_clocks)
        return noticeCount(from, to);
    dsm::clockDelta(from, to, scratch);
    const std::uint64_t n = noticeCountDelta(scratch);
    ncp2_dassert(n == noticeCount(from, to),
                 "sparse notice count diverged from the dense oracle");
    return n;
}

void
TreadMarks::invalidateInterval(NodeId proc, unsigned q, dsm::IntervalSeq s)
{
    ProcState &me = *procs_[proc];
    dsm::PageStore &store = node(proc).pages;
    const ProcState &ps = *procs_[q];
    for (PageId page : ps.interval_pages.at(s - 1)) {
        dsm::NodePage &pg = store.page(page);
        if (!pg.present() || pg.applied[q] >= s)
            continue;
        if (pg.access == dsm::Access::none)
            continue;
        pg.access = dsm::Access::none;
        node(proc).tlb.invalidate(page);
        node(proc).adesc.invalidate(page);
        ++stats_.invalidations;
        if (pg.prefetched_unused) {
            ++stats_.prefetches_useless;
            if (sim::Trace *tr = sys_->trace()) [[unlikely]]
                tr->emit(sys_->eq().now(), proc,
                         sim::TraceEngine::cpu,
                         sim::TraceKind::prefetch_useless, page);
            pg.prefetched_unused = false;
            PrefetchHistory &h = prefetch_[proc].history[page];
            if (++h.useless_streak >= 1)
                h.banned = true; // adaptive strategy gives up
        } else if (pg.referenced) {
            // Demand use resets the streak, but a page that was
            // ever prefetched uselessly stays banned: the
            // referenced bit already covers the optimistic case.
            prefetch_[proc].history[page].useless_streak = 0;
        }
        if (pg.referenced)
            me.invalidated.push_back(page);
    }
}

void
TreadMarks::applyInvalidations(NodeId proc, const dsm::VectorClock &from,
                               const dsm::VectorClock &to)
{
    for (unsigned q = 0; q < from.size(); ++q) {
        if (q == proc)
            continue;
        for (dsm::IntervalSeq s = from[q] + 1; s <= to[q]; ++s)
            invalidateInterval(proc, q, s);
    }
}

void
TreadMarks::applyInvalidationsDelta(NodeId proc, const dsm::ClockDelta &d)
{
    // Entries ascend by writer, so the (q, s) visit order is exactly the
    // dense loop's with its empty ranges skipped — identical simulated
    // side effects by construction.
    for (const dsm::ClockDelta::Entry &e : d.entries) {
        if (e.proc == proc)
            continue;
        for (dsm::IntervalSeq s = e.from + 1; s <= e.to; ++s)
            invalidateInterval(proc, e.proc, s);
    }
}

void
TreadMarks::advanceClock(NodeId proc, const dsm::VectorClock &to,
                         const dsm::ClockDelta &d)
{
    ProcState &me = *procs_[proc];
    if (cfg().sparse_clocks) {
        applyInvalidationsDelta(proc, d);
        dsm::applyDelta(me.vt, d);
        // The sparse merge must leave the clock exactly where the dense
        // merge would: dominating the target.
        ncp2_dassert(to.dominatedBy(me.vt),
                     "sparse clock merge fell short of the target clock");
    } else {
        applyInvalidations(proc, me.vt, to);
        me.vt.merge(to);
    }
}

// ---------------------------------------------------------------------
// diff capture / shipment
// ---------------------------------------------------------------------

bool
TreadMarks::captureNeeded(NodeId q, PageId page) const
{
    const PageLog *log = peekLog(q, page);
    if (!log)
        return false;
    const std::size_t n = log->closed_seqs.size();
    return n != 0 && log->diffed_to < log->closed_seqs[n - 1];
}

unsigned
TreadMarks::captureDiff(NodeId q, PageId page, bool pseudo_open)
{
    // Owner-side (or host-side, for validation): the owner never races
    // its own inserts, so no logs_mu is needed here.
    ProcState &ps = *procs_[q];
    auto it = ps.logs.find(page);
    if (it == ps.logs.end())
        return 0;
    PageLog &log = it->second;

    dsm::IntervalSeq target =
        log.closed_seqs.empty() ? 0 : log.closed_seqs.back();
    dsm::PageStore &store = node(q).pages;
    dsm::NodePage &pg = store.page(page);
    if (pseudo_open && pg.dirty_in_interval)
        target = ps.vt[q] + 1;
    if (log.diffed_to >= target)
        return 0;

    // Lease the diff buffers from the writer's own shard pool: after
    // warm-up diff creation allocates nothing, and workers never share
    // a free list.
    dsm::PooledDiff d(sys_->shard(q).diffs);
    if (mode_.hw_diffs) {
        if (!pg.write_bits.empty() && dsm::PageStore::writtenWords(pg)) {
            store.diffFromBits(page, pg, *d);
            std::fill(pg.write_bits.begin(), pg.write_bits.end(), 0);
        }
    } else if (pg.twin) {
        store.diffFromTwin(page, pg, *d);
        store.dropTwin(pg);
    }
    // Software diffs drop the twin, so the page must be write-protected
    // to re-twin on the next store. The hardware bit vector keeps
    // accumulating, so no protection change is needed in mode D.
    if (!pseudo_open && !mode_.hw_diffs &&
        pg.access == dsm::Access::readwrite) {
        pg.access = dsm::Access::read;
        // The dropped twin must be recreated by a write fault before the
        // next store; a lingering write descriptor would skip it.
        node(q).adesc.downgradeWrite(page);
    }

    for (unsigned i = 0; i < d->words(); ++i) {
        // Label with the word's true write interval (which may be the
        // still-open one for a value leaking ahead of its notice).
        dsm::IntervalSeq end = target;
        if (!log.word_interval.empty()) {
            const dsm::IntervalSeq wi = log.word_interval[d->idx[i]];
            if (wi != 0)
                end = wi;
        }
        log.cum[d->idx[i]] = WordRec{d->val[i], end};
    }
    log.diffed_to = target;

    ++stats_.diffs_created;
    if (d->words() == 0)
        ++stats_.empty_diffs;
    stats_.diff_words_moved += d->words();
    stats_.diff_size.sample(d->words());
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(sys_->eq().now(), q, sim::TraceEngine::cpu,
                 sim::TraceKind::diff_create, page,
                 static_cast<std::uint16_t>(d->words()));
    return d->words();
}

std::vector<NodeId>
TreadMarks::neededWriters(NodeId proc, PageId page) const
{
    std::vector<NodeId> out;
    const dsm::VectorClock &vt = procs_[proc]->vt;
    for (unsigned q = 0; q < nprocs(); ++q) {
        if (q == proc)
            continue;
        const PageLog *log = peekLog(q, page);
        if (!log)
            continue;
        const auto &seqs = log->closed_seqs;
        const dsm::IntervalSeq w = watermarkOf(proc, q, page);
        // Any closed interval of q in (w, vt[q]] that wrote the page?
        // Only entries below vt[q] are inspected: those were published
        // before the notice that taught proc about them.
        const std::size_t n = seqs.size();
        const std::size_t pos = seqs.upperBound(w, n);
        if (pos < n && seqs[pos] <= vt[q])
            out.push_back(q);
    }
    return out;
}

dsm::IntervalSeq
TreadMarks::watermarkOf(NodeId proc, NodeId q, PageId page) const
{
    const dsm::NodePage &pg = sys_->node(proc).pages.page(page);
    return pg.present() ? pg.applied[q] : 0;
}

TreadMarks::Shipment
TreadMarks::buildShipment(NodeId, NodeId q, PageId page,
                          dsm::IntervalSeq w) const
{
    Shipment s;
    s.writer = q;
    // Runs at the writer q (or host-side), so the owner-only cum map and
    // diffed_to are safe to read in place.
    const auto it = procs_[q]->logs.find(page);
    if (it == procs_[q]->logs.end())
        return s;
    const PageLog &log = it->second;
    s.end = log.diffed_to;
    s.order_key = vtSumOf(q, log.diffed_to);

    for (const auto &[idx, rec] : log.cum) {
        if (rec.end > w) {
            s.idx.push_back(idx);
            s.val.push_back(rec.val);
            s.key.push_back(vtSumOf(q, rec.end));
        }
    }
    return s;
}

void
TreadMarks::applyShipment(NodeId proc, PageId page, const Shipment &s)
{
    dsm::NodePage &pg = node(proc).pages.page(page);
    ncp2_assert(pg.present(), "applying a diff to an absent page");
    // A shipment may have been built before a page fetch that the same
    // transaction installed (requests run in parallel); if the install's
    // watermark already covers it, the shipment is stale - applying it
    // would roll fresh home bytes back (the home's own words carry no
    // per-word keys to defend themselves).
    if (s.end <= pg.applied[s.writer]) {
        ++stats_.stale_shipments_dropped;
        return;
    }
    if (!pg.word_keys && !s.idx.empty()) {
        const unsigned words = node(proc).pages.pageWords();
        // Single-pass zero-init (make_unique would zero, then memset
        // would zero again).
        pg.word_keys =
            std::make_unique_for_overwrite<std::uint64_t[]>(words);
        std::memset(pg.word_keys.get(), 0, words * 8);
    }
    auto *words = reinterpret_cast<std::uint32_t *>(pg.data.get());
    auto *twin_words = pg.twin
        ? reinterpret_cast<std::uint32_t *>(pg.twin.get()) : nullptr;
    // The receiver's own stores carry no word_keys entry, so they need
    // their own floor: the vt-sum of the word's last local store
    // interval (word_interval, maintained in every mode). Without it, a
    // diff from an interval that happened-before a local store rolls
    // the local value back - and the twin sync below then hides the
    // local store from its own capture, so it is never exported at all
    // (its write notice still goes out, wrongly advancing every
    // receiver's watermark past the lost word). A local store the
    // incoming interval happened-after is impossible while the local
    // interval is still open, so strict > is exact.
    const std::vector<dsm::IntervalSeq> *local_wi = nullptr;
    if (const auto lit = procs_[proc]->logs.find(page);
        lit != procs_[proc]->logs.end() &&
        !lit->second.word_interval.empty()) {
        local_wi = &lit->second.word_interval;
    }
    for (std::size_t i = 0; i < s.idx.size(); ++i) {
        if (local_wi && (*local_wi)[s.idx[i]] != 0 &&
            s.key[i] <= vtSumOf(proc, (*local_wi)[s.idx[i]])) {
            continue;
        }
        // Per-word happened-before merge: a writer's cumulative diff may
        // carry a word value older than what another writer's diff (or
        // the fetched copy) already provided here.
        if (s.key[i] >= pg.word_keys[s.idx[i]]) {
            pg.word_keys[s.idx[i]] = s.key[i];
            words[s.idx[i]] = s.val[i];
            // Keep the twin in sync so the next local diff does not
            // re-export foreign words as our own modifications (the
            // snoop bit vector needs no such care: only processor
            // stores set bits).
            if (twin_words)
                twin_words[s.idx[i]] = s.val[i];
        }
    }
    if (s.end > pg.applied[s.writer])
        pg.applied[s.writer] = s.end;
    ++stats_.diffs_applied;
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(sys_->eq().now(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::diff_apply, page,
                 static_cast<std::uint16_t>(s.idx.size()));
}

void
TreadMarks::sortShipments(std::vector<Shipment> &v)
{
    std::stable_sort(v.begin(), v.end(),
                     [](const Shipment &a, const Shipment &b) {
                         if (a.order_key != b.order_key)
                             return a.order_key < b.order_key;
                         return a.writer < b.writer;
                     });
}

// ---------------------------------------------------------------------
// message-send helpers (the overlap-mode matrix)
// ---------------------------------------------------------------------

void
TreadMarks::fiberSend(NodeId proc, NodeId dst, std::uint32_t bytes,
                      Cat cat, ctrl::Priority prio,
                      std::function<void(Tick)> fn)
{
    dsm::Node &n = node(proc);
    n.cpu.flush();
    if (!mode_.offload) {
        // The computation processor sets up the network interface.
        n.cpu.advance(cfg().net.msg_overhead, cat);
        n.cpu.flush();
        sys_->router().send(sys_->eq().now(), proc, dst, bytes,
                            std::move(fn));
    } else {
        // The CPU only enqueues a command; the controller pays the
        // messaging overhead.
        n.cpu.advance(cfg().cmd_issue_cycles, cat);
        n.controller.submit(
            prio,
            [this](Tick) { return cfg().net.msg_overhead; },
            [this, proc, dst, bytes, fn = std::move(fn)](Tick done) {
                sys_->router().send(done, proc, dst, bytes, fn);
            });
    }
}

void
TreadMarks::eventSend(NodeId src, NodeId dst, std::uint32_t bytes,
                      ctrl::Priority prio, std::function<void(Tick)> fn)
{
    if (!mode_.offload) {
        const Tick done =
            node(src).cpu.interrupt(cfg().net.msg_overhead);
        sys_->router().send(done, src, dst, bytes, std::move(fn));
    } else {
        node(src).controller.submit(
            prio,
            [this](Tick) { return cfg().net.msg_overhead; },
            [this, src, dst, bytes, fn = std::move(fn)](Tick done) {
                sys_->router().send(done, src, dst, bytes, fn);
            });
    }
}

// ---------------------------------------------------------------------
// access faults
// ---------------------------------------------------------------------

void
TreadMarks::ensureAccess(NodeId proc, PageId page, bool for_write)
{
    dsm::Node &n = node(proc);
    dsm::NodePage &pg = n.pages.page(page);

    // Uniprocessor runs approximate plain sequential execution: no
    // twins, no intervals, no faults beyond first-touch mapping.
    if (nprocs() == 1) {
        if (!pg.present()) {
            n.pages.materialize(page);
        }
        pg.access = dsm::Access::readwrite;
        return;
    }

    // Fast path.
    if (pg.present() && pg.access != dsm::Access::none &&
        (!for_write || pg.access == dsm::Access::readwrite)) {
        return;
    }

    // A pending prefetch for this page: wait for it instead of faulting.
    auto &pp = prefetch_[proc].pages;
    auto pit = pp.find(page);
    if (pit != pp.end()) {
        ++stats_.prefetch_demand_waits;
        pit->second.demand_wait = true;
        if (sim::Trace *tr = sys_->trace()) [[unlikely]]
            tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                     sim::TraceKind::prefetch_hit, page);
        n.cpu.block(Cat::data);
    }

    if (!pg.present() || pg.access == dsm::Access::none)
        faultIn(proc, page);

    if (for_write && pg.access != dsm::Access::readwrite) {
        // Write fault: trap, then prepare modification tracking.
        ++stats_.write_faults;
        if (sim::Trace *tr = sys_->trace()) [[unlikely]]
            tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                     sim::TraceKind::page_fault, page, 1);
        n.cpu.advance(cfg().interrupt_cycles, Cat::data);

        if (mode_.hw_diffs) {
            // Arm the snoop bit vector (passive hardware; the CPU just
            // tells the controller the page went writable).
            if (pg.write_bits.empty())
                n.pages.armWriteBits(pg);
            n.cpu.advance(cfg().cmd_issue_cycles, Cat::data);
        } else if (!pg.twin) {
            ++stats_.twins_created;
            const sim::Cycles cpu_cycles =
                cfg().twin_cycles_per_word * n.pages.pageWords();
            if (!mode_.offload) {
                // CPU copies the page (read + write cross the bus).
                const sim::Cycles mem =
                    memLatency(proc, 2 * n.pages.pageWords());
                n.cpu.bd.diff_op_cycles += cpu_cycles + mem;
                n.cpu.advance(cpu_cycles + mem, Cat::data);
            } else {
                // Controller performs the twin copy; the CPU must wait
                // (the write cannot proceed before the snapshot).
                n.cpu.advance(cfg().cmd_issue_cycles, Cat::data);
                n.cpu.flush();
                n.controller.submit(
                    ctrl::Priority::high,
                    [this, proc, cpu_cycles](Tick start) {
                        dsm::Node &nd = node(proc);
                        const Tick m = nd.memory.access(
                            start, 2 * nd.pages.pageWords());
                        const sim::Cycles t = cpu_cycles + (m - start);
                        nd.cpu.bd.diff_op_ctrl_cycles += t;
                        return t;
                    },
                    [this, proc](Tick) { node(proc).cpu.wake(); });
                n.cpu.block(Cat::data);
            }
            n.pages.makeTwin(pg);
        }

        pg.access = dsm::Access::readwrite;
        if (!pg.dirty_in_interval) {
            pg.dirty_in_interval = true;
            procs_[proc]->open_dirty.push_back(page);
        }
    }
}

void
TreadMarks::faultIn(NodeId proc, PageId page)
{
    dsm::Node &n = node(proc);
    dsm::NodePage &pg = n.pages.page(page);

    ++stats_.read_faults;
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::page_fault, page, 0);
    n.cpu.advance(cfg().interrupt_cycles, Cat::data); // VM trap

    const bool cold = !pg.present();
    const NodeId home = homeOf(page);

    const std::vector<NodeId> writers = neededWriters(proc, page);

    // Reset in place: reassigning a fresh Txn would free the shipments
    // buffer (and each shipment's word vectors) on every fault, which is
    // pure allocator churn at scale. clear() keeps the capacity.
    Txn &txn = txns_[proc];
    txn.shipments.clear();
    txn.page_arrived = false;
    txn.cold = cold;
    // Preset the reply count before issuing anything: fiberSend may
    // yield the fiber, and early replies must not hit zero prematurely.
    txn.outstanding =
        (cold ? 1u : 0u) + static_cast<unsigned>(writers.size());
    const bool expect_replies = txn.outstanding > 0;

    // --- cold: fetch the full page from home, in parallel with diffs ---
    if (cold) {
        ++stats_.page_fetches;
        fiberSend(proc, home, pageReqBytes(), Cat::data,
                  ctrl::Priority::high, [this, proc, page, home](Tick) {
            // At home: serve the page (basic task - controller in I).
            const auto serve = [this, proc, page, home]() {
                // Snapshot home's bytes + watermarks now; ship them.
                dsm::Node &h = node(home);
                dsm::NodePage &hp = h.pages.page(page);
                auto bytes =
                    std::make_shared<std::vector<std::uint8_t>>(
                        hp.data.get(), hp.data.get() + cfg().page_bytes);
                auto marks = std::make_shared<std::vector<dsm::IntervalSeq>>(
                    hp.applied);
                (*marks)[home] = ps(home).vt[home];
                // Ship per-word defense keys consistent with the bytes:
                // the home copy's word_keys raised to the floor of the
                // home's own stores (word_interval). A local store
                // registers no word_keys entry - it is defended on the
                // home only by the proc-local word_interval floor in
                // applyShipment - so without the fold, a remote diff
                // whose shipment end outruns the install marks but whose
                // word records predate the home's store would roll the
                // fetched bytes back at the requester. Snapshotting at
                // serve (rather than reading live at install) also keeps
                // the keys consistent with the byte snapshot under the
                // parallel executor.
                std::shared_ptr<std::vector<std::uint64_t>> keys;
                const PageLog *hlog = peekLog(home, page);
                const bool have_wi =
                    hlog && !hlog->word_interval.empty();
                if (hp.word_keys || have_wi) {
                    const unsigned pw = cfg().pageWords();
                    keys = std::make_shared<std::vector<std::uint64_t>>(
                        pw, 0);
                    if (hp.word_keys) {
                        std::copy(hp.word_keys.get(),
                                  hp.word_keys.get() + pw, keys->begin());
                    }
                    if (have_wi) {
                        for (unsigned wd = 0; wd < pw; ++wd) {
                            const dsm::IntervalSeq wi =
                                hlog->word_interval[wd];
                            if (wi == 0)
                                continue;
                            const std::uint64_t k = vtSumOf(home, wi);
                            if (k > (*keys)[wd])
                                (*keys)[wd] = k;
                        }
                    }
                }
                eventSend(home, proc, pageReplyBytes(),
                          ctrl::Priority::high,
                          [this, proc, page, bytes, marks, keys](Tick t) {
                    // Page arrival at the faulting node: unload across
                    // PCI into memory, install, then continue the txn.
                    dsm::Node &me = node(proc);
                    const unsigned words = cfg().pageWords();
                    const Tick p1 = me.pci.transfer(t, words);
                    const Tick p2 = me.memory.access(p1, words);
                    sys_->eq().schedule(p2, [this, proc, page, bytes,
                                             marks, keys]() {
                        dsm::Node &me2 = node(proc);
                        dsm::NodePage &mp = me2.pages.materialize(page);
                        std::memcpy(mp.data.get(), bytes->data(),
                                    cfg().page_bytes);
                        for (unsigned q = 0; q < nprocs(); ++q) {
                            if ((*marks)[q] > mp.applied[q])
                                mp.applied[q] = (*marks)[q];
                        }
                        // Inherit the serve-time key snapshot so that a
                        // diff older than a fetched value cannot regress
                        // it (includes the home's local-store floor).
                        const std::uint64_t *hk =
                            keys ? keys->data() : nullptr;
                        if (hk) {
                            const unsigned pw = me2.pages.pageWords();
                            if (!mp.word_keys) {
                                // Fully overwritten by the memcpy:
                                // skip zero-init.
                                mp.word_keys =
                                    std::make_unique_for_overwrite<
                                        std::uint64_t[]>(pw);
                            }
                            std::memcpy(mp.word_keys.get(), hk, pw * 8);
                        }
                        Txn &tx = txns_[proc];
                        tx.page_arrived = true;
                        if (--tx.outstanding == 0)
                            node(proc).cpu.wake();
                    });
                });
            };
            if (!mode_.offload) {
                // Home CPU is interrupted to look up and send the page.
                node(home).cpu.interrupt(cfg().interrupt_cycles +
                                         cfg().list_cycles * 4);
                serve();
            } else {
                // Controller handles page requests without the CPU.
                node(home).controller.submit(
                    ctrl::Priority::high,
                    [this, home](Tick start) {
                        // Lookup plus streaming the page from memory
                        // across PCI to the NI.
                        dsm::Node &h = node(home);
                        const unsigned words = cfg().pageWords();
                        const Tick m = h.memory.access(start + 50, words);
                        const Tick p = h.pci.transfer(m, words);
                        return static_cast<sim::Cycles>(p - start);
                    },
                    [serve](Tick) { serve(); });
            }
        });
    }

    // --- diff requests to every writer owing us intervals ---
    for (NodeId q : writers) {
        ++stats_.diff_requests;
        // The request carries our applied[q] watermark: the serve side
        // must not read our page table across shards.
        const dsm::IntervalSeq mark = watermarkOf(proc, q, page);
        fiberSend(proc, q, diffReqBytes(), Cat::data, ctrl::Priority::high,
                  [this, proc, q, page, mark](Tick) {
                      serveDiffRequest(proc, q, page, false, mark);
                  });
    }

    if (expect_replies)
        n.cpu.block(Cat::data);

    // --- all replies arrived: apply diffs in timestamp order ---
    if (!txn.shipments.empty()) {
        sortShipments(txn.shipments);
        for (const Shipment &s : txn.shipments) {
            const unsigned words = static_cast<unsigned>(s.idx.size());
            applyShipment(proc, page, s);
            if (words == 0)
                continue;
            if (mode_.hw_diffs) {
                // DMA scatter; CPU waits (demand fault critical path).
                n.cpu.flush();
                n.controller.submit(
                    ctrl::Priority::high,
                    [this, proc, words](Tick start) {
                        const sim::Cycles t =
                            node(proc).controller.dmaApplyDiff(start,
                                                               words);
                        node(proc).cpu.bd.diff_op_ctrl_cycles += t;
                        return t;
                    },
                    [this, proc](Tick) { node(proc).cpu.wake(); });
                n.cpu.block(Cat::data);
            } else if (mode_.offload) {
                n.cpu.flush();
                n.controller.submit(
                    ctrl::Priority::high,
                    [this, proc, words](Tick start) {
                        const sim::Cycles t =
                            node(proc).controller.swApplyDiff(start,
                                                              words);
                        node(proc).cpu.bd.diff_op_ctrl_cycles += t;
                        return t;
                    },
                    [this, proc](Tick) { node(proc).cpu.wake(); });
                n.cpu.block(Cat::data);
            } else {
                const sim::Cycles t = cfg().diff_cycles_per_word * words +
                                      memLatency(proc, 2 * words);
                n.cpu.bd.diff_op_cycles += t;
                n.cpu.advance(t, Cat::data);
            }
        }
    }

    // Revalidate.
    pg.access = dsm::Access::read;
    pg.referenced = false;
    pg.prefetched_unused = false;
    sys_->snoopInvalidatePage(proc, page);
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::fault_done, page);
}

void
TreadMarks::serveDiffRequest(NodeId requester, NodeId q, PageId page,
                             bool is_prefetch, dsm::IntervalSeq req_mark)
{
    // Interval processing always interrupts the computation processor
    // (paper section 3.2); diff creation runs per the mode matrix.
    dsm::Node &wn = node(q);
    const bool create = captureNeeded(q, page);
    unsigned created_words = 0;
    if (create)
        created_words = captureDiff(q, page, false);

    // Serial: read the requester's live watermark at serve time (the
    // historical behavior, kept bit-identical). Parallel: the
    // requester's page table is another shard, so use the mark carried
    // in the request. A stale-low mark only ships extra words; the
    // per-word keys and the stale-shipment drop keep application exact.
    const dsm::IntervalSeq w = sys_->pdesActive()
        ? req_mark : watermarkOf(requester, q, page);
    Shipment ship = buildShipment(requester, q, page, w);
    const unsigned ship_words = static_cast<unsigned>(ship.idx.size());
    const std::uint32_t reply_bytes = diffReplyBytes(ship_words);

    auto deliver = [this, requester, page, ship = std::move(ship),
                    is_prefetch](Tick) {
        if (is_prefetch) {
            auto &pp = prefetch_[requester].pages;
            auto it = pp.find(page);
            if (it == pp.end())
                return;
            it->second.shipments.push_back(ship);
            if (--it->second.outstanding == 0)
                finishPrefetch(requester, page);
        } else {
            Txn &tx = txns_[requester];
            tx.shipments.push_back(ship);
            if (--tx.outstanding == 0)
                node(requester).cpu.wake();
        }
    };

    const ctrl::Priority prio =
        is_prefetch ? ctrl::Priority::low : ctrl::Priority::high;

    if (!mode_.offload) {
        // Everything on the writer's CPU: trap, (twin-compare) diff
        // creation, reply send.
        sim::Cycles service = cfg().interrupt_cycles + cfg().list_cycles * 4;
        if (create) {
            const Tick now = sys_->eq().now();
            const sim::Cycles c =
                cfg().diff_cycles_per_word * cfg().pageWords() +
                (wn.memory.access(now, 2 * cfg().pageWords()) - now);
            service += c;
            wn.cpu.bd.diff_op_cycles += c;
        }
        service += cfg().net.msg_overhead;
        const Tick done = wn.cpu.interrupt(service);
        sys_->router().send(done, q, requester, reply_bytes, deliver);
    } else {
        // CPU interrupted only for interval processing; the controller
        // creates the diff (DMA engine in mode D) and replies.
        const Tick cpu_done =
            wn.cpu.interrupt(cfg().interrupt_cycles + cfg().list_cycles * 4);
        sys_->eq().schedule(cpu_done, [this, q, requester, reply_bytes,
                                       create, created_words, prio,
                                       deliver]() {
            dsm::Node &w = node(q);
            w.controller.submit(
                prio,
                [this, q, create, created_words](Tick start) {
                    sim::Cycles t = 100; // request decode on the core
                    if (create) {
                        dsm::Node &w2 = node(q);
                        const sim::Cycles c = mode_.hw_diffs
                            ? w2.controller.dmaCreateDiff(start + t,
                                                          created_words)
                            : w2.controller.swCreateDiff(start + t,
                                                         created_words);
                        w2.cpu.bd.diff_op_ctrl_cycles += c;
                        t += c;
                    }
                    t += cfg().net.msg_overhead;
                    return t;
                },
                [this, q, requester, reply_bytes, deliver](Tick done) {
                    sys_->router().send(done, q, requester, reply_bytes,
                                        deliver);
                });
        });
    }
}

void
TreadMarks::sharedWrite(NodeId proc, PageId page, unsigned word,
                        unsigned words)
{
    // Bit-vector snooping is passive (PageStore::snoopWrite in the
    // access path); here we record which interval stored each word so
    // that lazily-merged diffs keep per-word ordering information.
    if (nprocs() == 1)
        return;
    ProcState &ps = *procs_[proc];
    PageLog &log = logOf(proc, page);
    if (log.word_interval.empty())
        log.word_interval.assign(node(proc).pages.pageWords(), 0);
    const dsm::IntervalSeq open_seq = ps.vt[proc] + 1;
    for (unsigned w = word; w < word + words; ++w)
        log.word_interval[w] = open_seq;
}

dsm::WriteDescInfo
TreadMarks::writeDesc(NodeId proc, PageId page)
{
    // Uniprocessor: sharedWrite is an unconditional early return.
    if (nprocs() == 1)
        return {dsm::WriteHook::none, nullptr, 0};
    // Otherwise sharedWrite only stamps the open interval number into
    // the page's word_interval log; both the stamp target and value are
    // loop-invariant while the descriptor stays valid (vt[proc] only
    // advances in closeInterval, which downgrades every dirty page's
    // descriptor), so the stamping can be inlined. The vector's storage
    // is stable: assigned once, indexed thereafter, and unordered_map
    // never moves its elements.
    ProcState &ps = *procs_[proc];
    auto it = ps.logs.find(page);
    if (it == ps.logs.end() || it->second.word_interval.empty())
        return {}; // unexpected; keep the always-correct virtual call
    return {dsm::WriteHook::tmk_interval, it->second.word_interval.data(),
            ps.vt[proc] + 1};
}

// ---------------------------------------------------------------------
// prefetching (mode P)
// ---------------------------------------------------------------------

void
TreadMarks::issuePrefetches(NodeId proc)
{
    ProcState &ps = *procs_[proc];
    if (!mode_.prefetch) {
        ps.invalidated.clear();
        return;
    }
    std::vector<PageId> cands;
    std::swap(cands, ps.invalidated);
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

    dsm::Node &n = node(proc);
    unsigned issued_this_sync = 0;
    for (PageId page : cands) {
        dsm::NodePage &pg = n.pages.page(page);
        if (!pg.present() || pg.access != dsm::Access::none ||
            pg.prefetch_pending || !pg.referenced) {
            continue;
        }
        // Strategy extensions (see dsm::PrefetchStrategy): the paper's
        // heuristic prefetches every candidate; `adaptive` skips pages
        // with a record of useless prefetches; `capped` bounds the
        // per-synchronization burst.
        if (mode_.prefetch_strategy == dsm::PrefetchStrategy::adaptive &&
            prefetch_[proc].history[page].banned) {
            continue;
        }
        if (mode_.prefetch_strategy == dsm::PrefetchStrategy::capped &&
            issued_this_sync >= mode_.prefetch_cap) {
            break;
        }
        const std::vector<NodeId> writers = neededWriters(proc, page);
        if (writers.empty())
            continue;

        ++issued_this_sync;
        pg.prefetch_pending = true;
        PagePrefetch &pp = prefetch_[proc].pages[page];
        pp = PagePrefetch{};
        pp.outstanding = static_cast<unsigned>(writers.size());
        ++stats_.prefetches_issued;
        if (sim::Trace *tr = sys_->trace()) [[unlikely]]
            tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                     sim::TraceKind::prefetch_issue, page);

        for (NodeId q : writers) {
            const dsm::IntervalSeq mark = watermarkOf(proc, q, page);
            fiberSend(proc, q, diffReqBytes(), Cat::synch,
                      ctrl::Priority::low,
                      [this, proc, q, page, mark](Tick) {
                          serveDiffRequest(proc, q, page, true, mark);
                      });
        }
    }
}

void
TreadMarks::finishPrefetch(NodeId proc, PageId page)
{
    auto &pmap = prefetch_[proc].pages;
    auto it = pmap.find(page);
    ncp2_assert(it != pmap.end(), "finishPrefetch without state");

    auto shipments =
        std::make_shared<std::vector<Shipment>>(std::move(it->second.shipments));
    sortShipments(*shipments);
    unsigned total_words = 0;
    for (const auto &s : *shipments)
        total_words += static_cast<unsigned>(s.idx.size());

    dsm::Node &n = node(proc);

    auto complete = [this, proc, page]() {
        auto &pm = prefetch_[proc].pages;
        auto pit = pm.find(page);
        if (pit == pm.end())
            return;
        const bool demand_wait = pit->second.demand_wait;
        pm.erase(pit);

        dsm::Node &nd = node(proc);
        dsm::NodePage &pg = nd.pages.page(page);
        pg.prefetch_pending = false;
        // Revalidate only if no newer intervals arrived meanwhile.
        if (pg.access == dsm::Access::none &&
            neededWriters(proc, page).empty()) {
            pg.access = dsm::Access::read;
            pg.referenced = false;
            pg.prefetched_unused = !demand_wait;
            sys_->snoopInvalidatePage(proc, page);
        }
        if (demand_wait)
            nd.cpu.wake();
    };

    auto apply_all = [this, proc, page, shipments]() {
        for (const Shipment &s : *shipments)
            applyShipment(proc, page, s);
    };

    if (!mode_.offload) {
        // Plain P: the arriving diffs interrupt the computation
        // processor, which applies them itself.
        sim::Cycles service = cfg().interrupt_cycles;
        if (total_words) {
            const Tick now = sys_->eq().now();
            const sim::Cycles c =
                cfg().diff_cycles_per_word * total_words +
                (n.memory.access(now, 2 * total_words) - now);
            service += c;
            n.cpu.bd.diff_op_cycles += c;
        }
        const Tick done = n.cpu.interrupt(service);
        sys_->eq().schedule(done, [apply_all, complete]() {
            apply_all();
            complete();
        });
    } else {
        n.controller.submit(
            ctrl::Priority::low,
            [this, proc, total_words](Tick start) {
                dsm::Node &nd = node(proc);
                const sim::Cycles t = mode_.hw_diffs
                    ? nd.controller.dmaApplyDiff(start, total_words)
                    : nd.controller.swApplyDiff(start, total_words);
                nd.cpu.bd.diff_op_ctrl_cycles += t;
                return t;
            },
            [apply_all, complete](Tick) {
                apply_all();
                complete();
            });
    }
}

// ---------------------------------------------------------------------
// locks
// ---------------------------------------------------------------------



void
TreadMarks::acquire(NodeId proc, unsigned lock_id)
{
    dsm::Node &n = node(proc);
    ++stats_.lock_acquires;
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::lock_acquire, lock_id);

    if (nprocs() == 1) {
        n.cpu.advance(20, Cat::synch);
        return;
    }

    // Re-acquiring a lock we already own with no contention: TreadMarks'
    // cached-ownership fast path, no messages.
    bool fast = false;
    {
        auto g = lockGuard();
        LockState &lk = locks_[lock_id];
        if (lk.has_owner && lk.owner == proc && !lk.held && !lk.granting &&
            lk.waiters.empty()) {
            fast = true;
            // Claim under the guard, atomically with the check. The
            // charge below parks this fiber while the global clock runs
            // on, so a claim-after-charge order opens a window (serial
            // included) where a manager pump sees the lock free and
            // forwards it to us — and the forward, finding !held,
            // grants our cached ownership to the next waiter while we
            // believe the fast acquire succeeded.
            lk.held = true;
        }
    }
    if (fast) {
        ++stats_.lock_fast_grants;
        n.cpu.advance(40, Cat::synch);
        return;
    }

    const NodeId manager = static_cast<NodeId>(lock_id % nprocs());
    fiberSend(proc, manager, lockReqBytes(), Cat::synch,
              ctrl::Priority::high, [this, proc, lock_id, manager](Tick) {
        dsm::Node &m = node(manager);
        // Manager-side handling: forwarding is a basic task.
        if (!mode_.offload)
            m.cpu.interrupt(cfg().interrupt_cycles + cfg().list_cycles * 2);

        auto g = lockGuard();
        locks_[lock_id].waiters.push_back(proc);
        pumpLock(lock_id, manager);
    });
    n.cpu.block(Cat::synch);

    // Grant processing on the acquirer: write-notice handling, plus
    // application of any piggybacked Lazy Hybrid diffs.
    ProcState &ps = *procs_[proc];
    n.cpu.advance(cfg().list_cycles * ps.invalidated.size() +
                  cfg().list_cycles, Cat::synch);
    if (lh_pending_words_[proc]) {
        const std::uint64_t w = lh_pending_words_[proc];
        lh_pending_words_[proc] = 0;
        const sim::Cycles c = cfg().diff_cycles_per_word * w +
                              memLatency(proc, 2 * w);
        n.cpu.bd.diff_op_cycles += c;
        n.cpu.advance(c, Cat::synch);
    }
    issuePrefetches(proc);
}

std::uint64_t
TreadMarks::buildGrantUpdates(
    NodeId from, NodeId to, const dsm::VectorClock &grant_vt,
    std::vector<std::pair<PageId, Shipment>> &out)
{
    // Only the granter's own modifications travel with the grant: it
    // has up-to-date data for exactly those, and only for pages the
    // acquirer already caches (the Lazy Hybrid "caches and is known to
    // cache" condition; we read the acquirer's page table host-side
    // where the real protocol keeps approximate copyset knowledge).
    std::uint64_t words = 0;
    const dsm::VectorClock &vt_to = procs_[to]->vt;
    ProcState &ps = *procs_[from];
    std::vector<PageId> seen;
    for (dsm::IntervalSeq s2 = vt_to[from] + 1; s2 <= grant_vt[from];
         ++s2) {
        for (PageId page : ps.interval_pages.at(s2 - 1)) {
            if (std::find(seen.begin(), seen.end(), page) != seen.end())
                continue;
            seen.push_back(page);
            const dsm::NodePage &tp = node(to).pages.page(page);
            if (!tp.present())
                continue;
            captureDiff(from, page, false);
            Shipment ship = buildShipment(
                to, from, page, watermarkOf(to, from, page));
            words += ship.idx.size();
            ++stats_.lh_updates;
            stats_.lh_update_words += ship.idx.size();
            out.emplace_back(page, std::move(ship));
        }
    }
    return words;
}

void
TreadMarks::pumpLock(unsigned lock_id, NodeId manager)
{
    LockState &l = locks_[lock_id];
    if (l.held || l.granting || l.waiters.empty())
        return;
    l.granting = true;
    const NodeId next = l.waiters.front();
    l.waiters.pop_front();

    if (!l.has_owner) {
        // First acquisition ever: the manager grants directly. Event
        // context, so execute inline under the caller's rendezvous.
        l.has_owner = true;
        executeGrant(prepareGrant(lock_id, manager, next), false);
        return;
    }
    // Forward to the last owner, who computes the write notices. If the
    // owner still holds the lock when the request arrives, it grants at
    // its release.
    const NodeId o = l.owner;
    eventSend(manager, o, lockReqBytes(), ctrl::Priority::high,
              [this, lock_id, o, next](Tick) {
                  auto g = lockGuard();
                  LockState &l2 = locks_[lock_id];
                  if (l2.held) {
                      l2.has_pending = true;
                      l2.pending = next;
                  } else {
                      executeGrant(prepareGrant(lock_id, o, next), false);
                  }
              });
}

TreadMarks::GrantPlan
TreadMarks::prepareGrant(unsigned lock_id, NodeId from, NodeId to)
{
    LockState &lk = locks_[lock_id];
    GrantPlan plan;
    plan.lock_id = lock_id;
    plan.from = from;
    plan.to = to;

    // The grant carries the clock of the last release of this lock
    // (zero before the first release ever).
    dsm::VectorClock grant_vt = lk.release_vt.size()
        ? lk.release_vt
        : dsm::VectorClock(nprocs());
    if (from == to)
        grant_vt = ps(from).vt;

    // The grant carries write notices for intervals the acquirer has
    // not seen; computing them is "complicated" work on the granter CPU.
    // The acquirer's clock is stable here: it is blocked in acquire()
    // until this very grant is delivered.
    const dsm::VectorClock &vt_to = ps(to).vt;
    plan.eff = grant_vt;
    // Never grant a clock below the acquirer's own (merge semantics).
    // The granter runs this in its own context, so its delta scratch is
    // free to use.
    const std::uint64_t notices =
        noticesBetween(vt_to, plan.eff, ps(from).delta_scratch);
    plan.notices = notices;
    stats_.grant_notices += static_cast<double>(notices);

    lk.held = true;
    lk.owner = to;
    lk.granting = false;

    // Lazy Hybrid: attach the granter's own diffs for pages the
    // acquirer caches; their application at delivery supersedes the
    // invalidation (the per-writer watermark advances past the notice).
    plan.updates = std::make_shared<
        std::vector<std::pair<PageId, Shipment>>>();
    if (mode_.lazy_hybrid && from != to) {
        const std::uint64_t w =
            buildGrantUpdates(from, to, plan.eff, *plan.updates);
        // Creation runs on the granter (software diff costs; with mode
        // D the DMA engine makes this cheaper, approximated by the scan
        // formula) and the encoded words ride on the grant message.
        for (const auto &[pg2, ship] : *plan.updates) {
            (void)pg2;
            plan.lh_bytes += diffReplyBytes(
                static_cast<unsigned>(ship.idx.size()));
        }
        plan.lh_cost = mode_.hw_diffs
            ? node(from).controller.scanCycles(
                  static_cast<unsigned>(w))
            : cfg().diff_cycles_per_word * w;
    }
    return plan;
}

void
TreadMarks::executeGrant(const GrantPlan &plan, bool from_fiber)
{
    const unsigned lock_id = plan.lock_id;
    const NodeId from = plan.from;
    const NodeId to = plan.to;
    const dsm::VectorClock eff = plan.eff;
    const std::uint64_t notices = plan.notices;
    auto updates = plan.updates;

    if (from == to) {
        // Granting to ourselves (e.g., first acquire by the manager).
        deliverGrant(lock_id, to, eff, notices);
        return;
    }

    if (from_fiber) {
        // Called from the releaser's own release(): costs are inline.
        node(from).cpu.advance(cfg().list_cycles * notices + plan.lh_cost,
                               Cat::synch);
        fiberSend(from, to, grantBytes(notices) + plan.lh_bytes, Cat::synch,
                  ctrl::Priority::high,
                  [this, lock_id, to, eff, notices, updates](Tick) {
                      applyGrantUpdates(to, *updates);
                      deliverGrant(lock_id, to, eff, notices);
                  });
    } else {
        const sim::Cycles proc_cost = cfg().interrupt_cycles +
                                      cfg().list_cycles * notices +
                                      plan.lh_cost;
        const Tick done = node(from).cpu.interrupt(proc_cost);
        sys_->eq().schedule(done, [this, lock_id, from, to, eff, notices,
                                   lh_bytes = plan.lh_bytes, updates]() {
            eventSend(from, to, grantBytes(notices) + lh_bytes,
                      ctrl::Priority::high,
                      [this, lock_id, to, eff, notices, updates](Tick) {
                          applyGrantUpdates(to, *updates);
                          deliverGrant(lock_id, to, eff, notices);
                      });
        });
    }
}

void
TreadMarks::applyGrantUpdates(
    NodeId to, const std::vector<std::pair<PageId, Shipment>> &updates)
{
    for (const auto &[page, ship] : updates) {
        applyShipment(to, page, ship);
        lh_pending_words_[to] += ship.idx.size();
    }
}

void
TreadMarks::deliverGrant(unsigned lock_id, NodeId to,
                         dsm::VectorClock grant_vt, std::uint64_t)
{
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(sys_->eq().now(), to, sim::TraceEngine::cpu,
                 sim::TraceKind::lock_grant, lock_id);
    ProcState &ps = *procs_[to];
    if (cfg().sparse_clocks)
        dsm::clockDelta(ps.vt, grant_vt, ps.delta_scratch);
    advanceClock(to, grant_vt, ps.delta_scratch);
    node(to).cpu.wake();
}

void
TreadMarks::release(NodeId proc, unsigned lock_id)
{
    dsm::Node &n = node(proc);
    if (nprocs() == 1) {
        n.cpu.advance(10, Cat::synch);
        return;
    }

    closeInterval(proc);

    // Decide and claim the next grant under the rendezvous; the charge
    // and send (which may yield the fiber) run outside it. prepareGrant
    // sets held/owner back, so a manager pump racing the gap sees the
    // lock taken and cannot start a second grant.
    GrantPlan plan;
    bool granted = false;
    {
        auto g = lockGuard();
        LockState &lk = locks_[lock_id];
        ncp2_assert(lk.held && lk.owner == proc,
                    "release of lock %u not held by %u", lock_id, proc);
        lk.held = false;
        lk.release_vt = ps(proc).vt;

        if (lk.has_pending) {
            lk.has_pending = false;
            const NodeId pend = lk.pending;
            plan = prepareGrant(lock_id, proc, pend);
            granted = true;
        } else if (!lk.waiters.empty() && !lk.granting) {
            lk.granting = true;
            const NodeId next = lk.waiters.front();
            lk.waiters.pop_front();
            plan = prepareGrant(lock_id, proc, next);
            granted = true;
        }
    }
    if (granted)
        executeGrant(plan, true);
    else
        n.cpu.advance(10, Cat::synch);
}

// ---------------------------------------------------------------------
// barriers
// ---------------------------------------------------------------------

void
TreadMarks::barrier(NodeId proc, unsigned barrier_id)
{
    dsm::Node &n = node(proc);
    if (nprocs() == 1) {
        n.cpu.advance(10, Cat::synch);
        return;
    }

    closeInterval(proc);

    ProcState &ps = *procs_[proc];
    // The arrival carries the intervals the manager does not yet know.
    // Reading mgr_known_vt_ here is ordered: its last merge happened
    // before the previous barrier's release message woke this fiber.
    const std::uint64_t up_notices =
        noticesBetween(mgr_known_vt_, ps.vt, ps.delta_scratch);

    if (cfg().barrier_radix != 0) {
        // Combining tree: an internal node's own arrival folds into its
        // own combine state (a self-message, exactly like the flat
        // barrier's node-0 self-send); a leaf arrives at its parent.
        const NodeId at =
            treeChildren(proc).empty() ? treeParent(proc) : proc;
        fiberSend(proc, at, grantBytes(up_notices), Cat::synch,
                  ctrl::Priority::high,
                  [this, at, proc, barrier_id, up_notices](Tick) {
                      treeArrive(at, barrier_id, proc, nullptr, nullptr,
                                 up_notices);
                  });
    } else {
        const NodeId manager = 0;
        fiberSend(proc, manager, grantBytes(up_notices), Cat::synch,
                  ctrl::Priority::high,
                  [this, proc, barrier_id, up_notices](Tick) {
            // Barrier bookkeeping lives in the manager's shard: the
            // entry is created (seeded with the manager's current
            // knowledge) and merged only by arrival events on node 0's
            // queue.
            auto &b = barriers_[barrier_id];
            if (b.merged_vt.size() == 0)
                b.merged_vt = mgr_known_vt_;
            dsm::Node &mgr = node(0);
            const Tick done = mgr.cpu.interrupt(
                cfg().interrupt_cycles + cfg().list_cycles * up_notices);
            b.merged_vt.merge(procs_[proc]->vt);
            if (done > b.ready_at)
                b.ready_at = done;
            if (++b.arrived < nprocs())
                return;

            // All arrived: broadcast releases at ready_at. One shared
            // final clock and one O(n) base delta from the pre-merge
            // manager watermark replace the historical per-receiver
            // dense copies and scans (n of each, n words apiece).
            ++stats_.barriers;
            auto final_vt =
                std::make_shared<const dsm::VectorClock>(b.merged_vt);
            std::shared_ptr<dsm::ClockDelta> base;
            if (cfg().sparse_clocks) {
                base = std::make_shared<dsm::ClockDelta>();
                dsm::clockDelta(mgr_known_vt_, *final_vt, *base);
            }
            mgr_known_vt_.merge(*final_vt);
            sys_->eq().schedule(b.ready_at,
                                [this, barrier_id, final_vt, base]() {
                for (unsigned q = 0; q < nprocs(); ++q) {
                    // q's clock is frozen: it is blocked at this
                    // barrier. Every participant dominates the
                    // pre-merge watermark (it merged the previous
                    // final), so narrowing the base delta to q's clock
                    // yields exactly delta(vt_q, final).
                    ProcState &pq = *procs_[q];
                    std::uint64_t down;
                    dsm::ClockDelta dq;
                    if (base) {
                        dsm::narrowDelta(*base, pq.vt, dq);
                        down = noticeCountDelta(dq);
                        ncp2_dassert(
                            down == noticeCount(pq.vt, *final_vt),
                            "narrowed barrier delta diverged");
                    } else {
                        down = noticeCount(pq.vt, *final_vt);
                    }
                    eventSend(0, q, grantBytes(down),
                              ctrl::Priority::high,
                              [this, q, final_vt,
                               dq = std::move(dq)](Tick) {
                                  advanceClock(q, *final_vt, dq);
                                  node(q).cpu.wake();
                              });
                }
                barriers_.erase(barrier_id);
            });
        });
    }
    n.cpu.block(Cat::synch);

    // Release processing: write-notice handling on the arriving CPU.
    n.cpu.advance(cfg().list_cycles * (ps.invalidated.size() + 1),
                  Cat::synch);
    issuePrefetches(proc);
}

std::vector<NodeId>
TreadMarks::treeChildren(NodeId p) const
{
    std::vector<NodeId> out;
    const unsigned r = cfg().barrier_radix;
    const std::uint64_t first = static_cast<std::uint64_t>(p) * r + 1;
    for (std::uint64_t c = first; c < first + r && c < nprocs(); ++c)
        out.push_back(static_cast<NodeId>(c));
    return out;
}

void
TreadMarks::treeArrive(NodeId at, unsigned barrier_id, NodeId from,
                       std::shared_ptr<const dsm::VectorClock> merged,
                       std::shared_ptr<const dsm::VectorClock> mn,
                       std::uint64_t up_notices)
{
    TreeBarrier &b = tree_barriers_[at][barrier_id];
    if (b.merged_vt.size() == 0)
        b.merged_vt = mgr_known_vt_; // seed, mirroring the flat manager

    // Arrival processing interrupts the combine node, exactly as every
    // arrival interrupts the flat barrier's manager — but each node
    // absorbs at most radix+1 of them instead of node 0 absorbing n.
    const Tick done = node(at).cpu.interrupt(
        cfg().interrupt_cycles + cfg().list_cycles * up_notices);
    if (done > b.ready_at)
        b.ready_at = done;

    // Leaf/self arrivals read the arriver's clock live: it is blocked
    // at this barrier, so the clock is frozen until its release.
    // Forwarded arrivals carry their subtree's snapshots.
    const dsm::VectorClock &arr_merged = merged ? *merged : procs_[from]->vt;
    const dsm::VectorClock &arr_min = mn ? *mn : procs_[from]->vt;
    b.merged_vt.merge(arr_merged);
    if (b.min_vt.size() == 0) {
        b.min_vt = arr_min;
    } else {
        for (unsigned i = 0; i < b.min_vt.size(); ++i) {
            if (arr_min[i] < b.min_vt[i])
                b.min_vt[i] = arr_min[i];
        }
    }
    if (from != at)
        b.child_mins.emplace_back(from, arr_min);

    const unsigned expected =
        static_cast<unsigned>(treeChildren(at).size()) + 1;
    if (++b.arrived < expected)
        return;

    if (at == 0) {
        // Root: the barrier is complete. Broadcast at ready_at, self
        // first — the flat release loop's q = 0, 1, ... order.
        ++stats_.barriers;
        auto final_vt =
            std::make_shared<const dsm::VectorClock>(b.merged_vt);
        std::shared_ptr<dsm::ClockDelta> base;
        if (cfg().sparse_clocks) {
            auto bd = std::make_shared<dsm::ClockDelta>();
            dsm::clockDelta(mgr_known_vt_, *final_vt, *bd);
            base = std::move(bd);
        }
        mgr_known_vt_.merge(*final_vt);
        sys_->eq().schedule(b.ready_at, [this, barrier_id, final_vt,
                                         base]() {
            ProcState &p0 = *procs_[0];
            std::uint64_t down;
            if (base) {
                dsm::narrowDelta(*base, p0.vt, p0.delta_scratch);
                down = noticeCountDelta(p0.delta_scratch);
                ncp2_dassert(down == noticeCount(p0.vt, *final_vt),
                             "narrowed barrier delta diverged");
            } else {
                down = noticeCount(p0.vt, *final_vt);
            }
            eventSend(0, 0, grantBytes(down), ctrl::Priority::high,
                      [this, barrier_id, final_vt, base](Tick) {
                          treeDeliver(0, barrier_id, final_vt, base);
                      });
            broadcastChildren(0, barrier_id, final_vt, base);
        });
        return;
    }

    // Internal node: forward the combined arrival up the tree once the
    // local arrival processing has retired. The subtree's clocks travel
    // as snapshots (the combine state is erased at release).
    const std::uint64_t fw = noticesBetween(mgr_known_vt_, b.merged_vt,
                                            procs_[at]->delta_scratch);
    auto fmerged = std::make_shared<const dsm::VectorClock>(b.merged_vt);
    auto fmin = std::make_shared<const dsm::VectorClock>(b.min_vt);
    const NodeId parent = treeParent(at);
    sys_->eq().schedule(b.ready_at, [this, at, parent, barrier_id,
                                     fmerged, fmin, fw]() {
        eventSend(at, parent, grantBytes(fw), ctrl::Priority::high,
                  [this, parent, barrier_id, at, fmerged, fmin,
                   fw](Tick) {
                      treeArrive(parent, barrier_id, at, fmerged, fmin,
                                 fw);
                  });
    });
}

void
TreadMarks::treeDeliver(NodeId p, unsigned barrier_id,
                        std::shared_ptr<const dsm::VectorClock> final_vt,
                        std::shared_ptr<const dsm::ClockDelta> base)
{
    ProcState &pp = *procs_[p];
    if (base)
        dsm::narrowDelta(*base, pp.vt, pp.delta_scratch);
    advanceClock(p, *final_vt, pp.delta_scratch);
    node(p).cpu.wake();
    broadcastChildren(p, barrier_id, final_vt, base);
}

void
TreadMarks::broadcastChildren(
    NodeId p, unsigned barrier_id,
    std::shared_ptr<const dsm::VectorClock> final_vt,
    std::shared_ptr<const dsm::ClockDelta> base)
{
    auto &shard = tree_barriers_[p];
    auto it = shard.find(barrier_id);
    if (it == shard.end())
        return;
    auto &mins = it->second.child_mins;
    // Arrival order at a combine node is scheduler-dependent under the
    // parallel executor; broadcasting in node order keeps the release
    // sequence deterministic.
    std::sort(mins.begin(), mins.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[c, mn] : mins) {
        // The release down to c must carry every notice some descendant
        // might lack: (subtree min, final]. Each descendant applies only
        // its own narrower slice on delivery.
        std::uint64_t down;
        if (base) {
            dsm::ClockDelta dc;
            dsm::narrowDelta(*base, mn, dc);
            down = noticeCountDelta(dc);
            ncp2_dassert(down == noticeCount(mn, *final_vt),
                         "narrowed subtree-min delta diverged");
        } else {
            down = noticeCount(mn, *final_vt);
        }
        eventSend(p, c, grantBytes(down), ctrl::Priority::high,
                  [this, c, barrier_id, final_vt, base](Tick) {
                      treeDeliver(c, barrier_id, final_vt, base);
                  });
    }
    shard.erase(it);
}

// ---------------------------------------------------------------------
// validation-time reconstruction
// ---------------------------------------------------------------------

void
TreadMarks::readCoherent(PageId page, std::uint8_t *out)
{
    const NodeId home = homeOf(page);
    dsm::NodePage &hp = node(home).pages.page(page);
    if (!hp.present()) {
        std::memset(out, 0, cfg().page_bytes);
        return;
    }
    std::memcpy(out, hp.data.get(), cfg().page_bytes);
    if (nprocs() == 1)
        return;

    // Capture any still-uncaptured modifications (host-side, no timing).
    for (unsigned q = 0; q < nprocs(); ++q)
        captureDiff(q, page, true);

    // Per word, take the value of the globally newest write: every shared
    // store is captured in some writer's cumulative diff (the pseudo-open
    // capture above folds in still-open intervals), so ranking all
    // entries by their interval's vt-sum yields the final value. The home
    // bytes only stand in for words never captured at all.
    auto *words = reinterpret_cast<std::uint32_t *>(out);
    std::unordered_map<std::uint16_t, std::uint64_t> best;
    for (unsigned q = 0; q < nprocs(); ++q) {
        auto it = procs_[q]->logs.find(page);
        if (it == procs_[q]->logs.end())
            continue;
        for (const auto &[idx, rec] : it->second.cum) {
            const std::uint64_t key = vtSumOf(q, rec.end);
            auto bit = best.find(idx);
            if (bit == best.end() || key >= bit->second) {
                best[idx] = key;
                words[idx] = rec.val;
            }
        }
    }
}

void
TreadMarks::finalize()
{
    // Pages prefetched but never referenced count as useless.
    for (unsigned p = 0; p < nprocs(); ++p) {
        dsm::PageStore &store = node(p).pages;
        const PageId used_pages =
            (sys_->heap().used() + cfg().page_bytes - 1) / cfg().page_bytes;
        for (PageId pg = 0; pg < used_pages; ++pg) {
            if (store.page(pg).prefetched_unused)
                ++stats_.prefetches_useless;
        }
    }
    // Counters are exported through statGroup(): System::run snapshots
    // the group, so no hand-copy into an ad-hoc map is needed.
}

} // namespace tmk
