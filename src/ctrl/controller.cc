#include "ctrl/controller.hh"

#include "sim/logging.hh"

namespace ctrl
{

Controller::Controller(sim::NodeId node, sim::EventQueue &eq,
                       const dsm::SysConfig &cfg, mem::MainMemory &memory,
                       pcib::PciBus &pci)
    : node_(node), eq_(eq), cfg_(cfg), memory_(memory), pci_(pci),
      core_(sim::detail::format("ctrl.n%u.core", node)),
      dma_(sim::detail::format("ctrl.n%u.dma", node))
{
}

void
Controller::submit(Priority prio, RunFn run, DoneFn done)
{
    Command cmd{std::move(run), std::move(done), eq_.now()};
    if (prio == Priority::high)
        high_.push_back(std::move(cmd));
    else
        low_.push_back(std::move(cmd));
    if (trace_) [[unlikely]]
        trace_->emit(eq_.now(), node_, sim::TraceEngine::ctrl,
                     sim::TraceKind::ctrl_queue, queued());
    if (!busy_)
        startNext();
}

void
Controller::startNext()
{
    std::deque<Command> *q = nullptr;
    if (!high_.empty())
        q = &high_;
    else if (!low_.empty())
        q = &low_;
    if (!q) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Command cmd = std::move(q->front());
    q->pop_front();
    if (trace_) [[unlikely]]
        trace_->emit(eq_.now(), node_, sim::TraceEngine::ctrl,
                     sim::TraceKind::ctrl_queue, queued());

    const sim::Tick start = eq_.now();
    queue_cycles_ += start - cmd.submitted;
    const sim::Cycles service = cmd.run(start);
    core_.acquire(start, service);
    ++commands_run_;

    eq_.schedule(start + service,
                 [this, done = std::move(cmd.done)]() {
                     const sim::Tick now = eq_.now();
                     if (done)
                         done(now);
                     startNext();
                 });
}

sim::Cycles
Controller::scanCycles(unsigned written_words) const
{
    const unsigned page_words = cfg_.pageWords();
    const sim::Cycles span = cfg_.dma_scan_full - cfg_.dma_scan_empty;
    return cfg_.dma_scan_empty +
           (span * written_words) / (page_words ? page_words : 1);
}

sim::Cycles
Controller::dmaCreateDiff(sim::Tick start, unsigned written_words)
{
    // Scan the bit vector, then burst-gather the written words from main
    // memory across the PCI bridge into controller DRAM.
    sim::Cycles t = scanCycles(written_words);
    if (written_words) {
        const sim::Tick mem_done =
            memory_.accessScattered(start + t, written_words);
        const sim::Tick pci_done = pci_.transfer(mem_done, written_words);
        t = pci_done - start;
    }
    dma_.acquire(start, t);
    return t;
}

sim::Cycles
Controller::dmaApplyDiff(sim::Tick start, unsigned words)
{
    // Scatter: walk the diff's bit vector and write each word to main
    // memory; the vector walk is proportionally cheaper than a full-page
    // scan since the diff ships only the blocks containing set bits.
    sim::Cycles t = scanCycles(words);
    if (words) {
        const sim::Tick pci_done = pci_.transfer(start + t, words);
        const sim::Tick mem_done =
            memory_.accessScattered(pci_done, words);
        t = mem_done - start;
    }
    dma_.acquire(start, t);
    return t;
}

sim::Cycles
Controller::swCreateDiff(sim::Tick start, unsigned diff_words)
{
    // Software creation compares every word of the page against the twin
    // (the paper's ~7K processor cycles for a 4KB page), then moves the
    // changed words from main memory across PCI into controller DRAM.
    sim::Cycles t = cfg_.diff_cycles_per_word * cfg_.pageWords();
    const sim::Tick mem_done =
        memory_.access(start + t, diff_words ? diff_words : 1);
    const sim::Tick pci_done =
        pci_.transfer(mem_done, diff_words ? diff_words : 1);
    return pci_done - start;
}

sim::Cycles
Controller::swApplyDiff(sim::Tick start, unsigned diff_words)
{
    // Software application touches only the diff's words.
    sim::Cycles t = cfg_.diff_cycles_per_word * diff_words;
    if (diff_words) {
        const sim::Tick pci_done = pci_.transfer(start + t, diff_words);
        const sim::Tick mem_done = memory_.access(pci_done, diff_words);
        t = mem_done - start;
    }
    return t;
}

} // namespace ctrl
