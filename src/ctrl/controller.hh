/**
 * @file
 * The PCI-based programmable protocol controller (Figure 4 of the paper).
 *
 * Each node's controller contains an integer RISC core (same clock as the
 * computation processor), 4 MB of local DRAM holding the protocol
 * software, a command queue, a virtual-to-physical table, bus-snoop logic
 * that sets per-page word bit vectors on every shared write, and a
 * scatter/gather DMA engine directed by those bit vectors.
 *
 * We model the controller as two single-server resources:
 *  - the core, which executes queued commands (message handling, protocol
 *    software, software diffs when the DMA option is off);
 *  - the DMA engine, which performs bit-vector scans and word
 *    gather/scatter for hardware diffs.
 *
 * Commands carry a priority; the paper assigns prefetches low priority so
 * that demand requests are never queued behind them ("we assign low
 * priorities to prefetches, making them wait for other more urgent
 * contemporaneous commands").
 */

#ifndef NCP2_CTRL_CONTROLLER_HH
#define NCP2_CTRL_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "dsm/config.hh"
#include "mem/memory.hh"
#include "pcib/pci_bus.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace ctrl
{

/** Command priority in the controller queue. */
enum class Priority : std::uint8_t
{
    high, ///< demand requests, replies, synchronization
    low,  ///< prefetches
};

/**
 * One node's protocol controller. Commands are closures; each returns
 * its service time when it starts executing (so it can reserve the
 * memory/PCI buses at its actual start tick), and an optional completion
 * callback fires when it retires.
 */
class Controller
{
  public:
    /// Computes the command's service time; invoked at its start tick.
    using RunFn = std::function<sim::Cycles(sim::Tick start)>;
    /// Invoked when the command completes.
    using DoneFn = std::function<void(sim::Tick done)>;

    Controller(sim::NodeId node, sim::EventQueue &eq,
               const dsm::SysConfig &cfg, mem::MainMemory &memory,
               pcib::PciBus &pci);

    /** Enqueue a command. */
    void submit(Priority prio, RunFn run, DoneFn done);

    /**
     * DMA bit-vector scan time for a 4 KB page: ~200 controller cycles
     * when no word is written, ~2100 when all are (paper section 3.1);
     * linear in between.
     */
    sim::Cycles scanCycles(unsigned written_words) const;

    /**
     * Full hardware diff *creation*: scan the bit vector and gather the
     * written words from main memory across PCI into controller DRAM.
     * Reserves the memory and PCI buses at @p start.
     * @return total engine-busy cycles.
     */
    sim::Cycles dmaCreateDiff(sim::Tick start, unsigned written_words);

    /**
     * Hardware diff *application*: scatter @p words words into main
     * memory according to the diff's bit vector.
     */
    sim::Cycles dmaApplyDiff(sim::Tick start, unsigned words);

    /**
     * Software diff creation on the controller core (mode I without D):
     * full-page twin comparison plus movement of the changed words.
     */
    sim::Cycles swCreateDiff(sim::Tick start, unsigned diff_words);

    /** Software diff application on the controller core. */
    sim::Cycles swApplyDiff(sim::Tick start, unsigned diff_words);

    /** Number of commands executed. */
    std::uint64_t commandsRun() const { return commands_run_; }
    /** Cycles the core spent busy. */
    std::uint64_t coreBusyCycles() const { return core_.busyCycles(); }
    /** Cycles commands spent queued before starting. */
    std::uint64_t queueCycles() const { return queue_cycles_; }
    std::uint64_t dmaBusyCycles() const { return dma_.busyCycles(); }
    std::size_t queued() const { return high_.size() + low_.size(); }

    /** Enable event tracing: command-queue occupancy on the ctrl track. */
    void setTrace(sim::Trace *t) { trace_ = t; }

  private:
    struct Command
    {
        RunFn run;
        DoneFn done;
        sim::Tick submitted;
    };

    void startNext();

    sim::NodeId node_;
    sim::EventQueue &eq_;
    const dsm::SysConfig &cfg_;
    mem::MainMemory &memory_;
    pcib::PciBus &pci_;

    sim::Resource core_;
    sim::Resource dma_;
    std::deque<Command> high_;
    std::deque<Command> low_;
    bool busy_ = false;
    std::uint64_t commands_run_ = 0;
    std::uint64_t queue_cycles_ = 0;
    sim::Trace *trace_ = nullptr; ///< owned by the System; may be null
};

} // namespace ctrl

#endif // NCP2_CTRL_CONTROLLER_HH
