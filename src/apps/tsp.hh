/**
 * @file
 * TSP: branch-and-bound minimum-cost tour (Rice University's TreadMarks
 * distribution workload). The paper runs 18 cities; the default here is
 * smaller for simulation-time reasons (configurable).
 *
 * Sharing pattern: a lock-protected shared work stack of partial tours,
 * a lock-protected global best bound, and a read-shared distance matrix
 * - classic coarse-grained task parallelism with migratory lock data,
 * which is why TSP shows the best speedups in figure 1.
 */

#ifndef NCP2_APPS_TSP_HH
#define NCP2_APPS_TSP_HH

#include <cstdint>

#include "dsm/system.hh"
#include "dsm/workload.hh"

namespace apps
{

/** Branch-and-bound travelling salesman. */
class Tsp : public dsm::Workload
{
  public:
    struct Params
    {
        unsigned cities = 11;
        std::uint64_t seed = 42;
        unsigned stack_capacity = 1 << 14;
        /// Tours with at least this many cities fixed are solved
        /// locally (sequential branch-and-bound) instead of being
        /// split into queued subtasks - the TreadMarks TSP's coarse
        /// task grain, which is what gives it the paper's near-linear
        /// speedups.
        unsigned split_depth = 4;
    };

    explicit Tsp(Params p) : p_(p) {}

    std::string name() const override { return "TSP"; }
    void plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg) override;
    void run(dsm::Proc &p) override;
    void validate(dsm::System &sys) override;

    /** Host-side exact solution (Held-Karp), for validation. */
    std::int32_t referenceCost() const;

  private:
    /**
     * Sequential branch-and-bound below the task split depth.
     * @return the best complete tour found under @p bound, or -1.
     */
    std::int32_t solveLocal(dsm::Proc &p,
                            const std::vector<std::int32_t> &d,
                            std::int32_t cost, std::int32_t depth,
                            std::int32_t mask, std::int32_t city,
                            std::int32_t bound,
                            unsigned &nodes_since_refresh) const;

    static constexpr unsigned queue_lock = 0;
    static constexpr unsigned bound_lock = 1;

    // entry layout: [cost, depth, mask, city] (path is recomputed for
    // the best tour host-side; B&B only needs the frontier state)
    static constexpr unsigned entry_words = 4;

    sim::GAddr entryAddr(std::uint32_t slot) const
    {
        return stack_ + static_cast<sim::GAddr>(slot) * entry_words * 4;
    }

    Params p_;
    std::vector<std::int32_t> dist_;    ///< host copy (written by proc 0)
    std::vector<std::int32_t> min_out_; ///< pruning bound helper

    sim::GAddr dist_addr_ = 0;
    sim::GAddr stack_ = 0;       ///< entries
    sim::GAddr top_ = 0;         ///< int32 stack top
    sim::GAddr outstanding_ = 0; ///< int32 live work items
    sim::GAddr best_ = 0;        ///< int32 best complete tour cost
};

} // namespace apps

#endif // NCP2_APPS_TSP_HH
