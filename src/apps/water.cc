#include "apps/water.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Water::pairForce(const double *pi, const double *pj, double *f)
{
    const double dx = pi[0] - pj[0];
    const double dy = pi[1] - pj[1];
    const double dz = pi[2] - pj[2];
    const double r2 = dx * dx + dy * dy + dz * dz;
    f[0] = f[1] = f[2] = 0.0;
    if (r2 >= cutoff2 || r2 < 1e-12)
        return;
    // Lennard-Jones 6-12 on point centres.
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    const double mag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
    f[0] = mag * dx;
    f[1] = mag * dy;
    f[2] = mag * dz;
}

void
Water::plan(dsm::GlobalHeap &heap, const dsm::SysConfig &)
{
    const unsigned n = p_.molecules;
    // Slightly-perturbed cubic lattice: bounded forces, deterministic.
    sim::Rng rng(p_.seed);
    init_pos_.assign(n * 3, 0.0);
    const auto side = static_cast<unsigned>(std::ceil(std::cbrt(n)));
    for (unsigned i = 0; i < n; ++i) {
        const unsigned x = i % side;
        const unsigned y = (i / side) % side;
        const unsigned z = i / (side * side);
        init_pos_[3 * i + 0] = 1.3 * x + 0.1 * rng.uniform();
        init_pos_[3 * i + 1] = 1.3 * y + 0.1 * rng.uniform();
        init_pos_[3 * i + 2] = 1.3 * z + 0.1 * rng.uniform();
    }

    pos_ = heap.allocPages(n * 3 * 8);
    vel_ = heap.allocPages(n * 3 * 8);
    frc_ = heap.allocPages(n * 3 * 8);
}

void
Water::run(dsm::Proc &p)
{
    const unsigned n = p_.molecules;
    const unsigned np = p.nprocs();
    const unsigned lo = n * p.id() / np;
    const unsigned hi = n * (p.id() + 1) / np;

    if (p.id() == 0) {
        const std::vector<double> zeros(n * 3, 0.0);
        p.putBlock(pos_, init_pos_.data(), n * 3);
        p.putBlock(vel_, zeros.data(), n * 3);
    }
    p.barrier(0);

    std::vector<double> local(n * 3);
    std::vector<double> mypos(n * 3);
    const std::vector<double> fzero(3 * (hi - lo), 0.0);

    for (unsigned step = 0; step < p_.steps; ++step) {
        // (a) owners clear their force slots
        p.putBlock(frc_ + 8ull * (3 * lo), fzero.data(), 3 * (hi - lo));
        p.barrier(100 + step * 4);

        // (b) read all positions, compute owned pairs (i in [lo,hi), j>i)
        p.getBlock(pos_, mypos.data(), n * 3);
        std::fill(local.begin(), local.end(), 0.0);
        for (unsigned i = lo; i < hi; ++i) {
            for (unsigned j = i + 1; j < n; ++j) {
                double f[3];
                pairForce(&mypos[3 * i], &mypos[3 * j], f);
                p.compute(80);
                for (unsigned c = 0; c < 3; ++c) {
                    local[3 * i + c] += f[c];
                    local[3 * j + c] -= f[c];
                }
            }
        }

        // (c) accumulate into the shared array under per-partition locks
        for (unsigned q = 0; q < np; ++q) {
            const unsigned qlo = n * q / np;
            const unsigned qhi = n * (q + 1) / np;
            bool any = false;
            for (unsigned i = qlo * 3; i < qhi * 3 && !any; ++i)
                any = local[i] != 0.0;
            if (!any)
                continue;
            p.lock(10 + q);
            for (unsigned i = qlo * 3; i < qhi * 3; ++i) {
                if (local[i] == 0.0)
                    continue;
                const sim::GAddr a = frc_ + 8 * i;
                p.put<double>(a, p.get<double>(a) + local[i]);
            }
            p.unlock(10 + q);
        }
        p.barrier(101 + step * 4);

        // (d) owners integrate
        for (unsigned i = lo; i < hi; ++i) {
            for (unsigned c = 0; c < 3; ++c) {
                const sim::GAddr av = vel_ + 8 * (3 * i + c);
                const sim::GAddr ap = pos_ + 8 * (3 * i + c);
                const double f = p.get<double>(frc_ + 8 * (3 * i + c));
                const double v = p.get<double>(av) + f * dt;
                p.put<double>(av, v);
                p.put<double>(ap, p.get<double>(ap) + v * dt);
                p.compute(12);
            }
        }
        p.barrier(102 + step * 4);
    }
}

void
Water::referenceRun(std::vector<double> &pos, std::vector<double> &vel) const
{
    const unsigned n = p_.molecules;
    pos = init_pos_;
    vel.assign(n * 3, 0.0);
    std::vector<double> frc(n * 3);
    for (unsigned step = 0; step < p_.steps; ++step) {
        std::fill(frc.begin(), frc.end(), 0.0);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = i + 1; j < n; ++j) {
                double f[3];
                pairForce(&pos[3 * i], &pos[3 * j], f);
                for (unsigned c = 0; c < 3; ++c) {
                    frc[3 * i + c] += f[c];
                    frc[3 * j + c] -= f[c];
                }
            }
        }
        for (unsigned i = 0; i < n * 3; ++i) {
            vel[i] += frc[i] * dt;
            pos[i] += vel[i] * dt;
        }
    }
}

void
Water::validate(dsm::System &sys)
{
    std::vector<double> rp, rv;
    referenceRun(rp, rv);
    const unsigned n = p_.molecules;
    for (unsigned i = 0; i < n * 3; ++i) {
        const double got = sys.readGlobal<double>(pos_ + 8 * i);
        const double want = rp[i];
        const double err = std::fabs(got - want) /
                           std::max(1.0, std::fabs(want));
        // Force accumulation order differs between the parallel and the
        // sequential reference run (lock-arrival order), so positions
        // carry a few ULPs of drift amplified over the steps; the other
        // five applications validate exactly.
        if (!(err < 1e-5)) {
            ncp2_fatal("Water: pos[%u] = %.12g, want %.12g (err %.3g)", i,
                       got, want, err);
        }
    }
}

} // namespace apps
