/**
 * @file
 * GstlTorture: the g:: container torture workload. Where Torture
 * exercises the raw shared-access/sync surface, this app hammers the
 * distributed-STL layer itself - striped g::hash_map under concurrent
 * mixed insert/add/find traffic, g::spsc_queue mailbox rings with
 * blocking push/pop, lock-backed g::atomic counters (plus racy
 * load_relaxed reads whose values are deliberately never validated) -
 * all generated deterministically from Params::seed so a failing
 * {seed, protocol, nprocs} triple replays exactly.
 *
 * Determinism by construction, mirroring Torture's contract:
 *  - every hash_map key encodes its writing processor, so no key ever
 *    has two writers; accumulate keys take only commutative adds;
 *  - queue i is produced by proc i and consumed by proc (i+1)%nprocs
 *    only (the SPSC contract), so each consumer pops its producer's
 *    exact FIFO sequence;
 *  - counter deltas commute;
 *  - cross-processor lookups happen after the round barrier, so the
 *    probed entries are guaranteed present.
 * validate() therefore replays the whole program host-side and demands
 * exact equality of counters, map contents, and per-proc checksums.
 */

#ifndef NCP2_APPS_GSTL_TORTURE_HH
#define NCP2_APPS_GSTL_TORTURE_HH

#include <cstdint>
#include <vector>

#include "gstl/gstl.hh"

namespace apps
{

class GstlTorture : public g::App
{
  public:
    struct Params
    {
        std::uint64_t seed = 1;
        unsigned rounds = 5;
        unsigned keys_per_round = 6; ///< fresh map inserts per proc/round
        unsigned q_items = 6;        ///< mailbox items per proc/round
        unsigned counters = 4;       ///< g::atomic counters
        unsigned adds_per_round = 3; ///< fetch_adds per proc/round
        unsigned stripes = 4;        ///< hash_map stripe count
    };

    GstlTorture() : GstlTorture(Params()) {}
    explicit GstlTorture(Params prm) : prm_(prm) {}

    std::string name() const override { return "GstlTorture"; }
    void plan(g::context &ctx) override;
    void run(g::context &ctx) override;
    void validate(dsm::System &sys) override;

    const Params &params() const { return prm_; }

  private:
    // --- the deterministic program, shared by run() and validate() ---
    static std::uint64_t mix(std::uint64_t x);
    std::uint64_t valueOf(unsigned proc, unsigned round,
                          unsigned j) const;
    std::uint64_t freshKey(unsigned proc, unsigned round,
                           unsigned j) const;
    std::uint64_t accKey(unsigned proc, unsigned j) const;
    std::uint64_t qItem(unsigned proc, unsigned round, unsigned j) const;
    unsigned addTarget(unsigned proc, unsigned round, unsigned j) const;
    std::uint64_t addDelta(unsigned proc, unsigned round,
                           unsigned j) const;

    static std::uint64_t
    fold(std::uint64_t chk, std::uint64_t x)
    {
        return (chk ^ x) * 0x100000001b3ULL;
    }

    Params prm_;
    unsigned nprocs_ = 0;

    g::hash_map<std::uint64_t, std::uint64_t> map_;
    std::vector<g::spsc_queue<std::uint64_t>> queues_; ///< one per proc
    std::vector<g::atomic<std::uint64_t>> counters_;
    g::vector<std::uint64_t> checks_; ///< per-proc published checksums
    g::barrier round_;
    g::barrier done_;

    /// Racy load_relaxed landing zone; never validated (timing-
    /// dependent by design - it exercises the oracle's acceptance of
    /// concurrent values, not determinism).
    std::uint64_t racy_sink_ = 0;
};

} // namespace apps

#endif // NCP2_APPS_GSTL_TORTURE_HH
