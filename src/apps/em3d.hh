/**
 * @file
 * Em3d (Split-C / Culler et al.): electromagnetic wave propagation
 * through a bipartite graph of E and H field objects. The paper runs
 * 40064 objects connected randomly with 10% remote neighbours for 6
 * iterations; defaults here are smaller (configurable).
 *
 * Sharing pattern: owner-writes with fine-grained reads of remote
 * neighbour values every iteration, all-barrier synchronization - the
 * paper's heaviest diff workload (26.7% in figure 2) and the main
 * beneficiary of both offloading (I) and prefetching (P).
 */

#ifndef NCP2_APPS_EM3D_HH
#define NCP2_APPS_EM3D_HH

#include <cstdint>
#include <vector>

#include "dsm/system.hh"
#include "gstl/gstl.hh"

namespace apps
{

/** Bipartite E/H field relaxation. */
class Em3d : public g::App
{
  public:
    struct Params
    {
        unsigned nodes_per_kind = 2048; ///< E nodes and H nodes each
        unsigned degree = 3;
        double remote_fraction = 0.10;
        unsigned iters = 6;
        std::uint64_t seed = 1234;
        /// Partition count used to classify edges as remote; 0 means
        /// "the running system's processor count". Pinned explicitly by
        /// the validation reference run so both builds share a topology.
        unsigned partitions = 0;
    };

    explicit Em3d(Params p) : p_(p) {}

    std::string name() const override { return "Em3d"; }
    void plan(g::context &ctx) override;
    void run(g::context &ctx) override;
    void validate(dsm::System &sys) override;

    void disableValidation() { skip_validate_ = true; }

  private:
    Params p_;
    bool skip_validate_ = false;
    unsigned nprocs_hint_ = 16;

    // host-side read-only topology (identical on every node)
    std::vector<std::uint32_t> e_adj_, h_adj_;
    std::vector<double> e_w_, h_w_;
    std::vector<double> init_e_, init_h_;

    g::vector<double> e_val_; ///< owner-partitioned
    g::vector<double> h_val_;
    g::barrier phase_; ///< between-phase barrier, reused
};

} // namespace apps

#endif // NCP2_APPS_EM3D_HH
