/**
 * @file
 * Radix (SPLASH-2): parallel integer radix sort. The paper sorts 1M
 * keys; the default here is smaller (configurable).
 *
 * Sharing pattern: the permute phase scatters keys into a destination
 * array at global rank offsets, producing heavy page-level false sharing
 * and large diffs - Radix has the paper's highest diff cost after Em3d
 * (20.6% in figure 2) and is a prefetching worst case (>85% useless).
 */

#ifndef NCP2_APPS_RADIX_HH
#define NCP2_APPS_RADIX_HH

#include <cstdint>
#include <vector>

#include "dsm/system.hh"
#include "gstl/gstl.hh"

namespace apps
{

/** Parallel radix sort, one digit per iteration. */
class Radix : public g::App
{
  public:
    struct Params
    {
        unsigned keys = 32768;
        unsigned radix_bits = 8; ///< digit width
        unsigned key_bits = 32;  ///< key range; key_bits/radix_bits passes
        std::uint64_t seed = 99;
    };

    explicit Radix(Params p) : p_(p) {}

    std::string name() const override { return "Radix"; }
    void plan(g::context &ctx) override;
    void run(g::context &ctx) override;
    void validate(dsm::System &sys) override;

  private:
    unsigned buckets() const { return 1u << p_.radix_bits; }
    unsigned passes() const { return p_.key_bits / p_.radix_bits; }

    Params p_;
    std::vector<std::uint32_t> init_keys_;
    std::uint64_t key_sum_ = 0;

    g::vector<std::uint32_t> a_;    ///< key array A
    g::vector<std::uint32_t> b_;    ///< key array B
    g::vector<std::uint32_t> hist_; ///< [nprocs][buckets] counts, then ranks
    g::barrier phase_;              ///< between-phase barrier, reused
};

} // namespace apps

#endif // NCP2_APPS_RADIX_HH
