/**
 * @file
 * The application workload suite (section 4.2 of the paper): TSP,
 * Water, Radix, Barnes, Em3d and Ocean, re-implemented against the DSM
 * Proc API with the same sharing and synchronization patterns as the
 * originals (TreadMarks distribution / SPLASH-2 / Split-C).
 *
 * Problem sizes are configurable; the defaults are scaled down from the
 * paper's (as the paper itself scaled down from Iftode et al.'s "since
 * simulation time limitations prevented us from using inputs as large as
 * theirs"). Every workload self-validates against a host-side reference
 * computation, which makes the whole protocol stack correctness-tested
 * end to end.
 */

#ifndef NCP2_APPS_APPS_HH
#define NCP2_APPS_APPS_HH

#include <memory>
#include <string>
#include <vector>

#include "dsm/workload.hh"

namespace apps
{

/** Workload size preset. */
enum class Scale
{
    tiny,    ///< unit tests: seconds even under ASan
    small,   ///< quick benches
    standard ///< the figures' default size
};

/** Instantiate a workload by paper name (case-insensitive). */
std::unique_ptr<dsm::Workload> make(const std::string &name, Scale scale);

/** The six paper applications, in the paper's presentation order. */
const std::vector<std::string> &names();

} // namespace apps

#endif // NCP2_APPS_APPS_HH
