/**
 * @file
 * Ocean (SPLASH-2): large-scale ocean circulation. The paper simulates a
 * 258x258 grid; we implement the red-black successive-over-relaxation
 * solver that dominates Ocean's sharing behaviour (the full multigrid
 * driver is replaced by a fixed-depth relaxation - see DESIGN.md), on a
 * smaller default grid (configurable).
 *
 * Sharing pattern: row-block partitioned grid, nearest-neighbour page
 * sharing at partition boundaries, barriers after every half-sweep -
 * lots of barriers plus large multi-page diffs, the paper's worst
 * TreadMarks performer (figure 1) and the biggest winner from I+P+D
 * (49% of Base in figure 10).
 */

#ifndef NCP2_APPS_OCEAN_HH
#define NCP2_APPS_OCEAN_HH

#include <vector>

#include "dsm/system.hh"
#include "dsm/workload.hh"

namespace apps
{

/**
 * Red-black SOR over a three-level grid hierarchy (a structural stand-in
 * for Ocean's multigrid solver: the coarse levels carry ~16x and ~256x
 * less work per processor for the same barrier cost, which is what makes
 * Ocean the paper's worst scaler).
 */
class Ocean : public dsm::Workload
{
  public:
    struct Params
    {
        unsigned grid = 130;  ///< interior + 2 boundary rows/cols (4k+2)
        unsigned sweeps = 12; ///< fine-grid red+black sweeps (2 per V-cycle)
        std::uint64_t seed = 31337;
    };

    explicit Ocean(Params p) : p_(p) {}

    std::string name() const override { return "Ocean"; }
    void plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg) override;
    void run(dsm::Proc &p) override;
    void validate(dsm::System &sys) override;

    void disableValidation() { skip_validate_ = true; }

  private:
    static constexpr double omega = 1.6; ///< over-relaxation factor

    Params p_;
    bool skip_validate_ = false;
    std::vector<double> boundary_; ///< top/bottom/left/right values

    sim::GAddr grid_ = 0;  ///< L0, the solution grid
    sim::GAddr grid1_ = 0; ///< L1, half resolution
    sim::GAddr grid2_ = 0; ///< L2, quarter resolution
};

} // namespace apps

#endif // NCP2_APPS_OCEAN_HH
