#include "apps/ocean.hh"

#include <cmath>

#include "apps/refcheck.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Ocean::plan(dsm::GlobalHeap &heap, const dsm::SysConfig &)
{
    const unsigned g = p_.grid;
    ncp2_assert(g >= 10 && (g - 2) % 4 == 0,
                "Ocean grid must be 4k+2 and >= 10");
    sim::Rng rng(p_.seed);
    boundary_.assign(4 * g, 0.0);
    for (unsigned i = 0; i < 4 * g; ++i)
        boundary_[i] = 10.0 * rng.uniform() - 5.0;

    // Three grid levels: the solve lives on L0; the coarse levels give
    // Ocean its multigrid character - tiny per-processor work slices
    // between barriers, which is what makes it the paper's worst scaler.
    grid_ = heap.allocPages(8ull * g * g);
    const unsigned g1 = (g - 2) / 2 + 2;
    const unsigned g2 = (g - 2) / 4 + 2;
    grid1_ = heap.allocPages(8ull * g1 * g1);
    grid2_ = heap.allocPages(8ull * g2 * g2);
}

void
Ocean::run(dsm::Proc &p)
{
    const unsigned g0 = p_.grid;
    const unsigned g1 = (g0 - 2) / 2 + 2;
    const unsigned g2 = (g0 - 2) / 4 + 2;
    const unsigned np = p.nprocs();
    const sim::GAddr bases[3] = {grid_, grid1_, grid2_};
    const unsigned dims[3] = {g0, g1, g2};

    auto at = [&](unsigned lvl, unsigned r, unsigned c) {
        return bases[lvl] +
               8ull * (static_cast<std::uint64_t>(r) * dims[lvl] + c);
    };
    auto rowsOf = [&](unsigned lvl, unsigned &rlo, unsigned &rhi) {
        const unsigned rows = dims[lvl] - 2;
        rlo = 1 + rows * p.id() / np;
        rhi = 1 + rows * (p.id() + 1) / np;
    };

    unsigned bar = 0;
    auto barrier = [&]() { p.barrier(bar++); };

    // One red or black half-sweep of SOR on a level, own rows only.
    auto relax = [&](unsigned lvl, unsigned color) {
        const unsigned g = dims[lvl];
        unsigned rlo, rhi;
        rowsOf(lvl, rlo, rhi);
        for (unsigned r = rlo; r < rhi; ++r) {
            for (unsigned c = 1 + ((r + color) & 1); c < g - 1; c += 2) {
                const double up = p.get<double>(at(lvl, r - 1, c));
                const double down = p.get<double>(at(lvl, r + 1, c));
                const double left = p.get<double>(at(lvl, r, c - 1));
                const double right = p.get<double>(at(lvl, r, c + 1));
                const double old = p.get<double>(at(lvl, r, c));
                const double gs = 0.25 * (up + down + left + right);
                p.put<double>(at(lvl, r, c), old + omega * (gs - old));
                p.compute(20);
            }
        }
        barrier();
    };

    // Injection restriction fine -> coarse: owners of coarse rows read
    // the coincident fine points (including the boundary ring).
    auto restrictTo = [&](unsigned coarse) {
        const unsigned fine = coarse - 1;
        const unsigned gc = dims[coarse];
        const unsigned gf = dims[fine];
        unsigned rlo, rhi;
        rowsOf(coarse, rlo, rhi);
        auto fr = [&](unsigned r) {
            return r == 0 ? 0u : (r == gc - 1 ? gf - 1 : 2 * r - 1);
        };
        const unsigned lo = p.id() == 0 ? 0 : rlo;
        const unsigned hi = p.id() == np - 1 ? gc : rhi;
        for (unsigned r = lo; r < hi; ++r) {
            for (unsigned c = 0; c < gc; ++c) {
                p.put<double>(at(coarse, r, c),
                              p.get<double>(at(fine, fr(r), fr(c))));
                p.compute(4);
            }
        }
        barrier();
    };

    // Injection prolongation coarse -> fine at the coincident points.
    auto prolongFrom = [&](unsigned coarse) {
        const unsigned fine = coarse - 1;
        const unsigned gc = dims[coarse];
        unsigned rlo, rhi;
        rowsOf(coarse, rlo, rhi);
        for (unsigned r = rlo; r < rhi; ++r) {
            for (unsigned c = 1; c < gc - 1; ++c) {
                p.put<double>(at(fine, 2 * r - 1, 2 * c - 1),
                              p.get<double>(at(coarse, r, c)));
                p.compute(4);
            }
        }
        barrier();
    };

    if (p.id() == 0) {
        // Boundaries hold the forcing; the interiors start at zero.
        for (unsigned i = 0; i < g0; ++i) {
            p.put<double>(at(0, 0, i), boundary_[i]);
            p.put<double>(at(0, g0 - 1, i), boundary_[g0 + i]);
            p.put<double>(at(0, i, 0), boundary_[2 * g0 + i]);
            p.put<double>(at(0, i, g0 - 1), boundary_[3 * g0 + i]);
        }
        const std::vector<double> zrow(g0 - 2, 0.0);
        for (unsigned r = 1; r < g0 - 1; ++r)
            p.putBlock(at(0, r, 1), zrow.data(), g0 - 2);
    }
    barrier();

    // V-cycles: relax fine, restrict, relax mid, restrict, relax coarse
    // (twice - it is cheap), prolong back up with a relaxation at each
    // level. Every phase is barrier-separated; the coarse phases have
    // ~16x / ~256x less work per processor for the same barrier cost.
    const unsigned cycles = (p_.sweeps + 1) / 2;
    for (unsigned cy = 0; cy < cycles; ++cy) {
        relax(0, 0);
        relax(0, 1);
        restrictTo(1);
        relax(1, 0);
        relax(1, 1);
        restrictTo(2);
        relax(2, 0);
        relax(2, 1);
        relax(2, 0);
        relax(2, 1);
        prolongFrom(2);
        relax(1, 0);
        relax(1, 1);
        prolongFrom(1);
        relax(0, 0);
        relax(0, 1);
    }
}

void
Ocean::validate(dsm::System &sys)
{
    if (skip_validate_)
        return;
    Ocean ref(p_);
    ref.disableValidation();
    auto refsys = referenceRun(ref, sys.cfg());
    compareDoubles(sys, *refsys, grid_,
                   static_cast<std::size_t>(p_.grid) * p_.grid, 1e-12,
                   "Ocean.grid");
    const unsigned g1 = (p_.grid - 2) / 2 + 2;
    compareDoubles(sys, *refsys, grid1_,
                   static_cast<std::size_t>(g1) * g1, 1e-12,
                   "Ocean.grid1");
}

} // namespace apps
