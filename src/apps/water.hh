/**
 * @file
 * Water (SPLASH-2 style): O(n^2) molecular dynamics. The paper runs 512
 * molecules; the default here is smaller (configurable).
 *
 * Sharing pattern: molecule state partitioned by owner; the force phase
 * accumulates pairwise contributions into remote molecules' force slots
 * under per-partition locks - fine-grained locking plus barrier phases,
 * moderate diff traffic (7.6% diff-op time in figure 2).
 */

#ifndef NCP2_APPS_WATER_HH
#define NCP2_APPS_WATER_HH

#include <vector>

#include "dsm/system.hh"
#include "dsm/workload.hh"

namespace apps
{

/** Simplified O(n^2) molecular dynamics (Lennard-Jones point bodies). */
class Water : public dsm::Workload
{
  public:
    struct Params
    {
        unsigned molecules = 64;
        unsigned steps = 3;
        std::uint64_t seed = 7;
    };

    explicit Water(Params p) : p_(p) {}

    std::string name() const override { return "Water"; }
    void plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg) override;
    void run(dsm::Proc &p) override;
    void validate(dsm::System &sys) override;

  private:
    static constexpr double dt = 1e-3;
    static constexpr double cutoff2 = 6.25;

    /** Pairwise force on i from j; returns fx,fy,fz. */
    static void pairForce(const double *pi, const double *pj, double *f);

    /** Host-side reference trajectory. */
    void referenceRun(std::vector<double> &pos,
                      std::vector<double> &vel) const;

    Params p_;
    std::vector<double> init_pos_;

    sim::GAddr pos_ = 0; ///< [n][3] doubles
    sim::GAddr vel_ = 0; ///< [n][3] doubles
    sim::GAddr frc_ = 0; ///< [n][3] doubles
};

} // namespace apps

#endif // NCP2_APPS_WATER_HH
