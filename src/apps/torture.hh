/**
 * @file
 * Torture: the seed-deterministic random workload behind the fuzzing
 * campaign (bench/fuzz_check).
 *
 * The whole op program is generated host-side in plan() from
 * Params::seed, so a failing seed replays exactly. Execution is split
 * into barrier-delimited rounds mixing the sharing patterns the paper's
 * protocols must get right:
 *
 *  - page-granularity false sharing: each shared arena page is split
 *    into 16 word chunks whose ownership rotates every round, so every
 *    page is concurrently written by several processors while no word
 *    ever has two same-round writers;
 *  - migratory data: chunk ownership rotation means each chunk's words
 *    migrate processor to processor round after round (the new owner
 *    reads what the previous owner wrote before overwriting);
 *  - lock-protected counters packed on one hot page (migratory +
 *    true sharing through acquire/release);
 *  - producer/consumer: a rotating producer fills one half of a
 *    double-buffered mailbox each round, consumers read the half
 *    written the round before;
 *  - racy reads of arbitrary arena words (legal under LRC - the value
 *    feeds a sink, never the validated state) so the oracle's
 *    concurrent-value acceptance is exercised, not just avoided.
 *
 * Every value that reaches validated state is deterministic by
 * construction (single-writer words per round, commutative locked
 * additions, read-after-barrier consumption), so validate() replays the
 * program against host arrays and demands exact equality - on top of
 * whatever the LRC oracle checks access by access.
 */

#ifndef NCP2_APPS_TORTURE_HH
#define NCP2_APPS_TORTURE_HH

#include <cstdint>
#include <vector>

#include "gstl/gstl.hh"

namespace apps
{

class Torture : public g::App
{
  public:
    struct Params
    {
        std::uint64_t seed = 1;
        unsigned rounds = 10;
        unsigned data_pages = 4;       ///< false-sharing arena pages
        unsigned counters = 8;         ///< lock-protected counters
        unsigned pc_slots = 8;         ///< mailbox slots per buffer half
        // --- op mix (fuzz-varied) ---
        unsigned block_pct = 33;       ///< chance a chunk op is bulk
        unsigned singles_per_chunk = 6;///< word ops when not bulk
        unsigned cadds_per_round = 2;  ///< locked counter adds per proc
        unsigned racy_per_round = 3;   ///< unvalidated racy reads
        unsigned max_compute = 200;    ///< busy-cycles cap per round
    };

    Torture() : Torture(Params()) {}
    explicit Torture(Params prm) : prm_(prm) {}

    std::string name() const override { return "Torture"; }
    void plan(g::context &ctx) override;
    void run(g::context &ctx) override;
    void validate(dsm::System &sys) override;

    const Params &params() const { return prm_; }

  private:
    struct Op
    {
        enum class K : std::uint8_t
        {
            cread,     ///< checksum one owned-chunk word
            creadblk,  ///< checksum a whole chunk via getBlock
            cwrite,    ///< write one owned-chunk word
            cwriteblk, ///< write a whole chunk via putBlock
            cadd,      ///< lock-protected counter += delta
            pcwrite,   ///< producer fills one mailbox slot
            pcread,    ///< consumer checksums one mailbox slot
            rread,     ///< racy arena read into the sink
            comp,      ///< charge busy cycles
        };
        K k;
        std::uint32_t a = 0; ///< word / counter / slot index, or cycles
        std::uint32_t b = 0; ///< element count for bulk ops
        std::uint64_t v = 0; ///< write value / add delta
    };

    std::vector<Op> genRound(unsigned proc, unsigned round) const;
    void replayReference();

    static std::uint64_t
    fold(std::uint64_t chk, std::uint64_t x)
    {
        return (chk ^ x) * 0x100000001b3ULL;
    }

    Params prm_;
    unsigned nprocs_ = 0;
    unsigned page_words_ = 0;
    unsigned chunk_words_ = 0;
    g::vector<std::uint32_t> arena_;
    g::vector<std::uint64_t> counters_;
    g::vector<std::uint64_t> pc_;
    g::vector<std::uint64_t> checks_;
    std::vector<g::mutex> counter_mus_; ///< one per counter
    g::barrier round_; ///< end-of-round barrier, reused every round
    g::barrier done_;  ///< final checksum-publication barrier
    /// prog_[proc][round]: generated once in plan(), interpreted by run.
    std::vector<std::vector<std::vector<Op>>> prog_;
    std::vector<std::uint32_t> ref_arena_;
    std::vector<std::uint64_t> ref_counters_;
    std::vector<std::uint64_t> ref_pc_;
    std::vector<std::uint64_t> ref_checks_;
    /// Racy-read landing zone; fibers share one host thread, and the
    /// value is deliberately never validated (it is timing-dependent).
    std::uint64_t racy_sink_ = 0;

    static constexpr unsigned chunks_per_page = 16;
};

} // namespace apps

#endif // NCP2_APPS_TORTURE_HH
