#include "apps/em3d.hh"

#include <algorithm>

#include "apps/refcheck.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Em3d::plan(g::context &ctx)
{
    const unsigned n = p_.nodes_per_kind;
    const unsigned d = p_.degree;
    nprocs_hint_ = p_.partitions ? p_.partitions : ctx.nprocs();
    sim::Rng rng(p_.seed);

    // Nodes are block-partitioned by owner; an edge is "remote" when it
    // crosses a partition boundary. Pick ~remote_fraction of neighbours
    // uniformly from other partitions, the rest from the local block.
    const unsigned np = nprocs_hint_ ? nprocs_hint_ : 1;
    auto build = [&](std::vector<std::uint32_t> &adj,
                     std::vector<double> &w) {
        adj.assign(static_cast<std::size_t>(n) * d, 0);
        w.assign(static_cast<std::size_t>(n) * d, 0.0);
        for (unsigned i = 0; i < n; ++i) {
            unsigned owner = std::min(np - 1, i * np / n);
            while (n * owner / np > i)
                --owner;
            while (n * (owner + 1) / np <= i)
                ++owner;
            const unsigned lo = n * owner / np;
            const unsigned hi = n * (owner + 1) / np;
            for (unsigned k = 0; k < d; ++k) {
                std::uint32_t nb;
                if (rng.uniform() < p_.remote_fraction && np > 1) {
                    do {
                        nb = static_cast<std::uint32_t>(rng.below(n));
                    } while (nb >= lo && nb < hi);
                } else {
                    nb = static_cast<std::uint32_t>(
                        lo + rng.below(hi - lo));
                }
                adj[static_cast<std::size_t>(i) * d + k] = nb;
                w[static_cast<std::size_t>(i) * d + k] =
                    0.05 + 0.10 * rng.uniform();
            }
        }
    };
    build(e_adj_, e_w_); // E nodes read H neighbours
    build(h_adj_, h_w_); // H nodes read E neighbours

    init_e_.assign(n, 0.0);
    init_h_.assign(n, 0.0);
    for (unsigned i = 0; i < n; ++i) {
        init_e_[i] = rng.uniform();
        init_h_[i] = rng.uniform();
    }

    e_val_.allocate(ctx, n);
    h_val_.allocate(ctx, n);
    phase_ = ctx.make_barrier("phase");
}

void
Em3d::run(g::context &ctx)
{
    const unsigned n = p_.nodes_per_kind;
    const unsigned d = p_.degree;
    const unsigned np = ctx.proc().nprocs();
    const unsigned lo = n * ctx.id() / np;
    const unsigned hi = n * (ctx.id() + 1) / np;

    // Owners initialize their blocks (first touch), one bulk sweep per
    // field array.
    e_val_.write(ctx, lo, &init_e_[lo], hi - lo);
    h_val_.write(ctx, lo, &init_h_[lo], hi - lo);
    phase_.wait(ctx);

    for (unsigned it = 0; it < p_.iters; ++it) {
        // E phase: E_i -= sum w_ik * H_adj(i,k)
        for (unsigned i = lo; i < hi; ++i) {
            double acc = 0.0;
            for (unsigned k = 0; k < d; ++k) {
                const std::size_t e = static_cast<std::size_t>(i) * d + k;
                acc += e_w_[e] * h_val_.get(ctx, e_adj_[e]);
            }
            e_val_.set(ctx, i, e_val_.get(ctx, i) - acc);
            ctx.compute(20 * d + 10);
        }
        phase_.wait(ctx);

        // H phase: H_i -= sum w_ik * E_adj(i,k)
        for (unsigned i = lo; i < hi; ++i) {
            double acc = 0.0;
            for (unsigned k = 0; k < d; ++k) {
                const std::size_t e = static_cast<std::size_t>(i) * d + k;
                acc += h_w_[e] * e_val_.get(ctx, h_adj_[e]);
            }
            h_val_.set(ctx, i, h_val_.get(ctx, i) - acc);
            ctx.compute(20 * d + 10);
        }
        phase_.wait(ctx);
    }
}

void
Em3d::validate(dsm::System &sys)
{
    if (skip_validate_)
        return;
    Params ref_params = p_;
    ref_params.partitions = nprocs_hint_; // identical topology
    Em3d ref(ref_params);
    ref.disableValidation();
    auto refsys = referenceRun(ref, sys.cfg());
    compareDoubles(sys, *refsys, e_val_.addr(), p_.nodes_per_kind, 1e-12,
                   "Em3d.E");
    compareDoubles(sys, *refsys, h_val_.addr(), p_.nodes_per_kind, 1e-12,
                   "Em3d.H");
}

} // namespace apps
