#include "apps/tsp.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Tsp::plan(dsm::GlobalHeap &heap, const dsm::SysConfig &)
{
    const unsigned n = p_.cities;
    ncp2_assert(n >= 3 && n <= 16, "TSP supports 3..16 cities");

    // Deterministic symmetric distance matrix (host copy; proc 0 writes
    // it into shared memory during the run's init phase).
    sim::Rng rng(p_.seed);
    dist_.assign(n * n, 0);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = i + 1; j < n; ++j) {
            const auto d = static_cast<std::int32_t>(rng.range(10, 99));
            dist_[i * n + j] = d;
            dist_[j * n + i] = d;
        }
    }
    min_out_.assign(n, 0);
    for (unsigned i = 0; i < n; ++i) {
        std::int32_t m = 1 << 30;
        for (unsigned j = 0; j < n; ++j)
            if (j != i && dist_[i * n + j] < m)
                m = dist_[i * n + j];
        min_out_[i] = m;
    }

    dist_addr_ = heap.allocPages(n * n * 4);
    stack_ = heap.allocPages(static_cast<std::uint64_t>(p_.stack_capacity) *
                             entry_words * 4);
    top_ = heap.allocPages(4);
    outstanding_ = heap.alloc(4);
    best_ = heap.allocPages(4);
}

void
Tsp::run(dsm::Proc &p)
{
    const unsigned n = p_.cities;

    if (p.id() == 0) {
        for (unsigned i = 0; i < n * n; ++i)
            p.put<std::int32_t>(dist_addr_ + 4 * i, dist_[i]);
        // Seed the bound with a greedy nearest-neighbour tour: without
        // it, concurrent tasks all start with an infinite bound and
        // explore redundantly (the classic parallel-B&B cold start).
        {
            std::int32_t greedy = 0;
            unsigned cur = 0, vis = 1;
            for (unsigned step = 1; step < n; ++step) {
                unsigned bestj = 0;
                std::int32_t bd = 1 << 30;
                for (unsigned j = 1; j < n; ++j) {
                    if (vis & (1u << j))
                        continue;
                    if (dist_[cur * n + j] < bd) {
                        bd = dist_[cur * n + j];
                        bestj = j;
                    }
                }
                greedy += bd;
                vis |= 1u << bestj;
                cur = bestj;
                p.compute(4 * n);
            }
            greedy += dist_[cur * n + 0];
            p.put<std::int32_t>(best_, greedy + 1);
        }
        // Root: at city 0, depth 1, only city 0 visited.
        p.put<std::int32_t>(entryAddr(0) + 0, 0);
        p.put<std::int32_t>(entryAddr(0) + 4, 1);
        p.put<std::int32_t>(entryAddr(0) + 8, 1);
        p.put<std::int32_t>(entryAddr(0) + 12, 0);
        p.put<std::int32_t>(top_, 1);
        p.put<std::int32_t>(outstanding_, 1);
    }
    p.barrier(0);

    // Cache the distance matrix privately after one shared read each
    // (the real program reads it through shared memory, where it stays
    // cached; re-reading every row through the simulator would charge
    // the same hits, so fold it into one pass + compute charges).
    std::vector<std::int32_t> d(n * n);
    for (unsigned i = 0; i < n * n; ++i)
        d[i] = p.get<std::int32_t>(dist_addr_ + 4 * i);

    const std::int32_t total_min_out =
        [&] {
            std::int32_t s = 0;
            for (unsigned i = 0; i < n; ++i)
                s += min_out_[i];
            return s;
        }();

    for (;;) {
        // --- pop one work item ---
        p.lock(queue_lock);
        const auto top = p.get<std::int32_t>(top_);
        std::int32_t cost = 0, depth = 0, mask = 0, city = 0;
        bool got = false;
        if (top > 0) {
            const sim::GAddr e = entryAddr(top - 1);
            cost = p.get<std::int32_t>(e + 0);
            depth = p.get<std::int32_t>(e + 4);
            mask = p.get<std::int32_t>(e + 8);
            city = p.get<std::int32_t>(e + 12);
            p.put<std::int32_t>(top_, top - 1);
            got = true;
        }
        const auto outstanding = p.get<std::int32_t>(outstanding_);
        p.unlock(queue_lock);

        if (!got) {
            if (outstanding == 0)
                break;      // global termination
            p.compute(5000); // back off and poll again
            continue;
        }

        // --- expand ---
        const auto best_now = p.get<std::int32_t>(best_);
        std::int32_t children_cost[16], children_mask[16];
        std::int32_t children_city[16];
        unsigned nchildren = 0;
        std::int32_t closed = -1;

        if (depth == static_cast<std::int32_t>(n)) {
            closed = cost + d[static_cast<unsigned>(city) * n + 0];
        } else if (depth >= static_cast<std::int32_t>(p_.split_depth)) {
            // Coarse grain: finish this subtree locally (the TreadMarks
            // TSP's recursive solver) and report only the best tour.
            unsigned nodes_since_refresh = 0;
            closed = solveLocal(p, d, cost, depth, mask, city, best_now,
                                nodes_since_refresh);
        } else {
            // Remaining lower bound: min outgoing edge per open city.
            std::int32_t rem = total_min_out;
            for (unsigned j = 0; j < n; ++j)
                if (mask & (1 << j))
                    rem -= min_out_[j];
            for (unsigned j = 1; j < n; ++j) {
                if (mask & (1 << j))
                    continue;
                const std::int32_t c =
                    cost + d[static_cast<unsigned>(city) * n + j];
                p.compute(8);
                if (c + rem - min_out_[j] >= best_now)
                    continue; // pruned
                children_cost[nchildren] = c;
                children_mask[nchildren] =
                    mask | static_cast<std::int32_t>(1 << j);
                children_city[nchildren] = static_cast<std::int32_t>(j);
                ++nchildren;
            }
        }

        // --- commit results ---
        if (closed >= 0) {
            p.lock(bound_lock);
            if (closed < p.get<std::int32_t>(best_))
                p.put<std::int32_t>(best_, closed);
            p.unlock(bound_lock);
        }
        p.lock(queue_lock);
        auto t = p.get<std::int32_t>(top_);
        for (unsigned k = 0; k < nchildren; ++k) {
            ncp2_assert(t < static_cast<std::int32_t>(p_.stack_capacity),
                        "TSP work stack overflow");
            const sim::GAddr e = entryAddr(static_cast<std::uint32_t>(t));
            p.put<std::int32_t>(e + 0, children_cost[k]);
            p.put<std::int32_t>(e + 4, depth + 1);
            p.put<std::int32_t>(e + 8, children_mask[k]);
            p.put<std::int32_t>(e + 12, children_city[k]);
            ++t;
        }
        p.put<std::int32_t>(top_, t);
        p.put<std::int32_t>(outstanding_,
                            p.get<std::int32_t>(outstanding_) +
                                static_cast<std::int32_t>(nchildren) - 1);
        p.unlock(queue_lock);
    }

    p.barrier(1);
}

std::int32_t
Tsp::solveLocal(dsm::Proc &p, const std::vector<std::int32_t> &d,
                std::int32_t cost, std::int32_t depth, std::int32_t mask,
                std::int32_t city, std::int32_t bound,
                unsigned &nodes_since_refresh) const
{
    const unsigned n = p_.cities;
    // Distance lookups, bound arithmetic and branch bookkeeping per
    // tree node (roughly what the real recursive solver executes).
    p.compute(20 + 8 * (n - static_cast<unsigned>(depth)));
    // Periodically refresh the global bound so long subtrees benefit
    // from tours other processors completed meanwhile.
    if (++nodes_since_refresh >= 4096) {
        nodes_since_refresh = 0;
        p.lock(bound_lock);
        const auto g = p.get<std::int32_t>(best_);
        p.unlock(bound_lock);
        if (g < bound)
            bound = g;
    }
    if (depth == static_cast<std::int32_t>(n)) {
        const std::int32_t c =
            cost + d[static_cast<unsigned>(city) * n + 0];
        return c < bound ? c : -1;
    }
    std::int32_t rem = 0;
    for (unsigned j = 0; j < n; ++j)
        if (!(mask & (1 << j)))
            rem += min_out_[j];
    std::int32_t best_here = -1;
    for (unsigned j = 1; j < n; ++j) {
        if (mask & (1 << j))
            continue;
        const std::int32_t c =
            cost + d[static_cast<unsigned>(city) * n + j];
        if (c + rem - min_out_[j] >= bound)
            continue;
        const std::int32_t sub = solveLocal(
            p, d, c, depth + 1, mask | static_cast<std::int32_t>(1 << j),
            static_cast<std::int32_t>(j), bound, nodes_since_refresh);
        if (sub >= 0 && (best_here < 0 || sub < best_here)) {
            best_here = sub;
            bound = sub;
        }
    }
    return best_here;
}

std::int32_t
Tsp::referenceCost() const
{
    // Held-Karp over subsets of {1..n-1}.
    const unsigned n = p_.cities;
    const unsigned full = 1u << (n - 1);
    const std::int32_t inf = 1 << 29;
    std::vector<std::int32_t> dp(full * (n - 1), inf);

    for (unsigned j = 1; j < n; ++j)
        dp[(1u << (j - 1)) * (n - 1) + (j - 1)] = dist_[0 * n + j];

    for (unsigned s = 1; s < full; ++s) {
        for (unsigned j = 1; j < n; ++j) {
            if (!(s & (1u << (j - 1))))
                continue;
            const std::int32_t cur = dp[s * (n - 1) + (j - 1)];
            if (cur >= inf)
                continue;
            for (unsigned k = 1; k < n; ++k) {
                if (s & (1u << (k - 1)))
                    continue;
                const unsigned s2 = s | (1u << (k - 1));
                std::int32_t &slot = dp[s2 * (n - 1) + (k - 1)];
                const std::int32_t c = cur + dist_[j * n + k];
                if (c < slot)
                    slot = c;
            }
        }
    }
    std::int32_t best = inf;
    for (unsigned j = 1; j < n; ++j) {
        const std::int32_t c =
            dp[(full - 1) * (n - 1) + (j - 1)] + dist_[j * n + 0];
        if (c < best)
            best = c;
    }
    return best;
}

void
Tsp::validate(dsm::System &sys)
{
    const auto got = sys.readGlobal<std::int32_t>(best_);
    const std::int32_t want = referenceCost();
    if (got != want) {
        ncp2_fatal("TSP: best tour %d != exact optimum %d", got, want);
    }
    const auto left = sys.readGlobal<std::int32_t>(outstanding_);
    if (left != 0)
        ncp2_fatal("TSP: %d work items leaked", left);
}

} // namespace apps
