#include "apps/apps.hh"

#include <algorithm>

#include "apps/barnes.hh"
#include "apps/em3d.hh"
#include "apps/ocean.hh"
#include "apps/radix.hh"
#include "apps/serve/serve.hh"
#include "apps/torture.hh"
#include "apps/tsp.hh"
#include "apps/water.hh"
#include "sim/logging.hh"

namespace apps
{

const std::vector<std::string> &
names()
{
    static const std::vector<std::string> n = {"TSP",   "Water", "Radix",
                                               "Barnes", "Em3d", "Ocean"};
    return n;
}

std::unique_ptr<dsm::Workload>
make(const std::string &name, Scale scale)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(), ::tolower);

    if (n == "tsp") {
        Tsp::Params p;
        p.cities = scale == Scale::tiny ? 8
                 : scale == Scale::small ? 10 : 16;
        if (scale == Scale::standard)
            p.split_depth = 3; // ~130 coarse tasks for 16 processors
        return std::make_unique<Tsp>(p);
    }
    if (n == "water") {
        Water::Params p;
        if (scale == Scale::tiny) {
            p.molecules = 24;
            p.steps = 2;
        } else if (scale == Scale::small) {
            p.molecules = 64;
            p.steps = 2;
        } else {
            p.molecules = 512; // the paper's input
            p.steps = 2;
        }
        return std::make_unique<Water>(p);
    }
    if (n == "radix") {
        Radix::Params p;
        if (scale == Scale::tiny) {
            p.keys = 4096;
        } else if (scale == Scale::small) {
            p.keys = 32768;
        } else {
            // The paper's 1M keys; 8-bit digits over the full 32-bit
            // range, one iteration per digit as in SPLASH-2.
            p.keys = 1u << 20;
            p.radix_bits = 8;
            p.key_bits = 32;
        }
        return std::make_unique<Radix>(p);
    }
    if (n == "barnes") {
        Barnes::Params p;
        if (scale == Scale::tiny) {
            p.bodies = 96;
            p.steps = 1;
        } else if (scale == Scale::small) {
            p.bodies = 512;
            p.steps = 2;
        } else {
            p.bodies = 4096; // the paper's 4K bodies
            p.steps = 2;
        }
        return std::make_unique<Barnes>(p);
    }
    if (n == "em3d") {
        Em3d::Params p;
        if (scale == Scale::tiny) {
            p.nodes_per_kind = 512;
            p.iters = 3;
        } else if (scale == Scale::small) {
            p.nodes_per_kind = 2048;
            p.iters = 4;
        } else {
            // The paper's 40064 objects = 20032 of each kind.
            p.nodes_per_kind = 20032;
            p.degree = 5;
            p.iters = 6;
        }
        return std::make_unique<Em3d>(p);
    }
    if (n == "ocean") {
        Ocean::Params p;
        if (scale == Scale::tiny) {
            p.grid = 34;
            p.sweeps = 4;
        } else if (scale == Scale::small) {
            p.grid = 130;
            p.sweeps = 8;
        } else {
            p.grid = 258; // the paper's 258x258 ocean
            p.sweeps = 12;
        }
        return std::make_unique<Ocean>(p);
    }
    // Not one of the six paper apps (and not in names()): the fuzzing
    // campaign's random workload, runnable by hand for debugging.
    if (n == "torture") {
        Torture::Params p;
        if (scale == Scale::tiny) {
            p.rounds = 6;
            p.data_pages = 2;
        } else if (scale == Scale::small) {
            p.rounds = 10;
            p.data_pages = 4;
        } else {
            p.rounds = 16;
            p.data_pages = 8;
            p.counters = 16;
        }
        return std::make_unique<Torture>(p);
    }
    // The serving-store workload family (bench/fig18_serving drives it
    // with explicit Params; this registry entry is for hand runs).
    if (n == "serve") {
        ServeApp::Params p;
        if (scale == Scale::tiny) {
            p.load.keys_log2 = 6;
            p.load.requests_per_node = 24;
        } else if (scale == Scale::small) {
            p.load.keys_log2 = 8;
            p.load.requests_per_node = 96;
            p.stripes = 8;
        } else {
            p.load.keys_log2 = 10;
            p.load.requests_per_node = 256;
            p.stripes = 16;
            p.streams = 2;
        }
        return std::make_unique<ServeApp>(p);
    }
    ncp2_fatal("unknown workload '%s'", name.c_str());
}

} // namespace apps
