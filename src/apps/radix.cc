#include "apps/radix.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Radix::plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg)
{
    sim::Rng rng(p_.seed);
    init_keys_.assign(p_.keys, 0);
    key_sum_ = 0;
    const std::uint32_t key_mask = p_.key_bits >= 32
        ? ~0u
        : ((1u << p_.key_bits) - 1);
    for (auto &k : init_keys_) {
        k = static_cast<std::uint32_t>(rng.next()) & key_mask;
        key_sum_ += k;
    }

    a_ = heap.allocPages(p_.keys * 4ull);
    b_ = heap.allocPages(p_.keys * 4ull);
    // One page-aligned histogram row per processor: the counting phase
    // is then free of false sharing, concentrating it in the permute
    // phase exactly as in SPLASH-2 Radix.
    hist_ = heap.allocPages(static_cast<std::uint64_t>(cfg.num_procs) *
                            buckets() * 4);
}

void
Radix::run(dsm::Proc &p)
{
    const unsigned n = p_.keys;
    const unsigned np = p.nprocs();
    const unsigned nb = buckets();
    const unsigned lo = n * p.id() / np;
    const unsigned hi = n * (p.id() + 1) / np;
    auto row = [&](unsigned q) {
        return hist_ + static_cast<sim::GAddr>(q) * nb * 4;
    };

    if (p.id() == 0)
        p.putBlock(a_, init_keys_.data(), n);
    p.barrier(0);

    sim::GAddr src = a_, dst = b_;
    std::vector<std::uint32_t> counts(nb), mykeys(hi - lo);

    for (unsigned pass = 0; pass < passes(); ++pass) {
        const unsigned shift = pass * p_.radix_bits;

        // (1) local histogram of the owned chunk
        std::fill(counts.begin(), counts.end(), 0);
        for (unsigned i = lo; i < hi; ++i) {
            const auto k = p.get<std::uint32_t>(src + 4ull * i);
            mykeys[i - lo] = k;
            ++counts[(k >> shift) & (nb - 1)];
            p.compute(30);
        }
        p.putBlock(row(p.id()), counts.data(), nb);
        p.barrier(1 + pass * 3);

        // (2) proc 0 turns counts into global starting ranks:
        //     rank[q][d] = sum(counts[*][<d]) + sum(counts[<q][d])
        if (p.id() == 0) {
            std::vector<std::uint32_t> all(np * nb);
            for (unsigned q = 0; q < np; ++q)
                p.getBlock(row(q), &all[q * nb], nb);
            std::uint32_t base = 0;
            std::vector<std::uint32_t> rank(np * nb);
            for (unsigned d = 0; d < nb; ++d) {
                for (unsigned q = 0; q < np; ++q) {
                    rank[q * nb + d] = base;
                    base += all[q * nb + d];
                }
                p.compute(2 * np);
            }
            for (unsigned q = 0; q < np; ++q)
                p.putBlock(row(q), &rank[q * nb], nb);
        }
        p.barrier(2 + pass * 3);

        // (3) permute into the destination at global offsets (the
        //     false-sharing hotspot: neighbours' ranks interleave pages)
        p.getBlock(row(p.id()), counts.data(), nb);
        for (unsigned i = lo; i < hi; ++i) {
            const std::uint32_t k = mykeys[i - lo];
            const unsigned d = (k >> shift) & (nb - 1);
            p.put<std::uint32_t>(dst + 4ull * counts[d], k);
            ++counts[d];
            p.compute(50);
        }
        p.barrier(3 + pass * 3);
        std::swap(src, dst);
    }
}

void
Radix::validate(dsm::System &sys)
{
    // An even number of passes leaves the result in a_.
    const sim::GAddr fin = (passes() % 2 == 0) ? a_ : b_;
    std::uint64_t sum = 0;
    std::uint32_t prev = 0;
    for (unsigned i = 0; i < p_.keys; ++i) {
        const auto k = sys.readGlobal<std::uint32_t>(fin + 4ull * i);
        if (k < prev)
            ncp2_fatal("Radix: output not sorted at %u (%u < %u)", i, k,
                       prev);
        prev = k;
        sum += k;
    }
    if (sum != key_sum_) {
        ncp2_fatal("Radix: key checksum mismatch (%llu != %llu)",
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(key_sum_));
    }
}

} // namespace apps
