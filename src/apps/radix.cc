#include "apps/radix.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Radix::plan(g::context &ctx)
{
    sim::Rng rng(p_.seed);
    init_keys_.assign(p_.keys, 0);
    key_sum_ = 0;
    const std::uint32_t key_mask = p_.key_bits >= 32
        ? ~0u
        : ((1u << p_.key_bits) - 1);
    for (auto &k : init_keys_) {
        k = static_cast<std::uint32_t>(rng.next()) & key_mask;
        key_sum_ += k;
    }

    a_.allocate(ctx, p_.keys);
    b_.allocate(ctx, p_.keys);
    // One page-aligned histogram row per processor: the counting phase
    // is then free of false sharing, concentrating it in the permute
    // phase exactly as in SPLASH-2 Radix.
    hist_.allocate(ctx,
                   static_cast<std::uint64_t>(ctx.nprocs()) * buckets());
    phase_ = ctx.make_barrier("phase");
}

void
Radix::run(g::context &ctx)
{
    const unsigned n = p_.keys;
    const unsigned np = ctx.proc().nprocs();
    const unsigned nb = buckets();
    const unsigned lo = n * ctx.id() / np;
    const unsigned hi = n * (ctx.id() + 1) / np;

    if (ctx.id() == 0)
        a_.write(ctx, 0, init_keys_.data(), n);
    phase_.wait(ctx);

    g::vector<std::uint32_t> src = a_, dst = b_;
    std::vector<std::uint32_t> counts(nb), mykeys(hi - lo);

    for (unsigned pass = 0; pass < passes(); ++pass) {
        const unsigned shift = pass * p_.radix_bits;

        // (1) local histogram of the owned chunk
        std::fill(counts.begin(), counts.end(), 0);
        for (unsigned i = lo; i < hi; ++i) {
            const auto k = src.get(ctx, i);
            mykeys[i - lo] = k;
            ++counts[(k >> shift) & (nb - 1)];
            ctx.compute(30);
        }
        hist_.write(ctx, std::uint64_t(ctx.id()) * nb, counts.data(), nb);
        phase_.wait(ctx);

        // (2) proc 0 turns counts into global starting ranks:
        //     rank[q][d] = sum(counts[*][<d]) + sum(counts[<q][d])
        if (ctx.id() == 0) {
            std::vector<std::uint32_t> all(np * nb);
            for (unsigned q = 0; q < np; ++q)
                hist_.read(ctx, std::uint64_t(q) * nb, &all[q * nb], nb);
            std::uint32_t base = 0;
            std::vector<std::uint32_t> rank(np * nb);
            for (unsigned d = 0; d < nb; ++d) {
                for (unsigned q = 0; q < np; ++q) {
                    rank[q * nb + d] = base;
                    base += all[q * nb + d];
                }
                ctx.compute(2 * np);
            }
            for (unsigned q = 0; q < np; ++q)
                hist_.write(ctx, std::uint64_t(q) * nb, &rank[q * nb], nb);
        }
        phase_.wait(ctx);

        // (3) permute into the destination at global offsets (the
        //     false-sharing hotspot: neighbours' ranks interleave pages)
        hist_.read(ctx, std::uint64_t(ctx.id()) * nb, counts.data(), nb);
        for (unsigned i = lo; i < hi; ++i) {
            const std::uint32_t k = mykeys[i - lo];
            const unsigned d = (k >> shift) & (nb - 1);
            dst.set(ctx, counts[d], k);
            ++counts[d];
            ctx.compute(50);
        }
        phase_.wait(ctx);
        std::swap(src, dst);
    }
}

void
Radix::validate(dsm::System &sys)
{
    // An even number of passes leaves the result in a_.
    const g::vector<std::uint32_t> &fin = (passes() % 2 == 0) ? a_ : b_;
    std::uint64_t sum = 0;
    std::uint32_t prev = 0;
    for (unsigned i = 0; i < p_.keys; ++i) {
        const auto k = g::peek(sys, fin, i);
        if (k < prev)
            ncp2_fatal("Radix: output not sorted at %u (%u < %u)", i, k,
                       prev);
        prev = k;
        sum += k;
    }
    if (sum != key_sum_) {
        ncp2_fatal("Radix: key checksum mismatch (%llu != %llu)",
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(key_sum_));
    }
}

} // namespace apps
