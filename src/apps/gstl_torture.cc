#include "apps/gstl_torture.hh"

#include "dsm/system.hh"
#include "sim/logging.hh"

namespace apps
{

std::uint64_t
GstlTorture::mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::uint64_t
GstlTorture::valueOf(unsigned proc, unsigned round, unsigned j) const
{
    return mix(prm_.seed ^ 0x76616c75ULL ^
               (std::uint64_t{proc} << 40 | std::uint64_t{round} << 20 |
                j));
}

// Key spaces are kept disjoint by a tag in the top bits; tagOf() then
// guarantees they are nonzero and never the reserved all-ones encoding.
std::uint64_t
GstlTorture::freshKey(unsigned proc, unsigned round, unsigned j) const
{
    return (1ULL << 60) | (std::uint64_t{proc} << 40) |
           (std::uint64_t{round} << 20) | j;
}

std::uint64_t
GstlTorture::accKey(unsigned proc, unsigned j) const
{
    return (2ULL << 60) | (std::uint64_t{proc} << 20) | j;
}

std::uint64_t
GstlTorture::qItem(unsigned proc, unsigned round, unsigned j) const
{
    return mix(prm_.seed ^ 0x71697465ULL ^
               (std::uint64_t{proc} << 40 | std::uint64_t{round} << 20 |
                j));
}

unsigned
GstlTorture::addTarget(unsigned proc, unsigned round, unsigned j) const
{
    return static_cast<unsigned>(
        mix(prm_.seed ^ 0x74676574ULL ^
            (std::uint64_t{proc} << 40 | std::uint64_t{round} << 20 |
             j)) %
        prm_.counters);
}

std::uint64_t
GstlTorture::addDelta(unsigned proc, unsigned round, unsigned j) const
{
    return mix(prm_.seed ^ 0x64656c74ULL ^
               (std::uint64_t{proc} << 40 | std::uint64_t{round} << 20 |
                j)) &
           0xffffULL;
}

void
GstlTorture::plan(g::context &ctx)
{
    ncp2_assert(prm_.rounds && prm_.keys_per_round && prm_.q_items &&
                    prm_.counters && prm_.adds_per_round && prm_.stripes,
                "gstl-torture parameters must be non-zero");
    nprocs_ = ctx.nprocs();

    // Fresh keys per proc per round plus one set of accumulate keys per
    // proc; 3x headroom keeps every stripe comfortably under capacity
    // whatever the hash spread (a full stripe is fatal by contract).
    const std::uint64_t entries =
        std::uint64_t{nprocs_} * prm_.keys_per_round * (prm_.rounds + 1);
    map_.allocate(ctx, "map", 3 * entries, prm_.stripes);

    queues_.assign(nprocs_, {});
    for (unsigned q = 0; q < nprocs_; ++q)
        queues_[q].allocate(ctx, "q" + std::to_string(q), prm_.q_items);

    counters_.assign(prm_.counters, {});
    for (unsigned c = 0; c < prm_.counters; ++c)
        counters_[c].allocate(ctx, "ctr" + std::to_string(c));

    checks_.allocate(ctx, nprocs_);
    round_ = ctx.make_barrier("round");
    done_ = ctx.make_barrier("done");
}

void
GstlTorture::run(g::context &ctx)
{
    const unsigned me = ctx.id();
    const unsigned np = ctx.proc().nprocs();
    const unsigned peer = (me + 1) % np;      ///< whose keys we look up
    const unsigned pred = (me + np - 1) % np; ///< whose queue we drain
    std::uint64_t chk = 0;

    for (unsigned r = 0; r < prm_.rounds; ++r) {
        // Map traffic: fresh single-writer inserts plus commutative
        // accumulation, all racing through the stripe locks.
        for (unsigned j = 0; j < prm_.keys_per_round; ++j) {
            map_.insert(ctx, freshKey(me, r, j), valueOf(me, r, j));
            map_.add(ctx, accKey(me, j), valueOf(me, r, j) & 0xffffULL);
        }

        // Mailbox ring: fill my queue, then drain my predecessor's.
        // Capacity equals q_items, so pushes never block (the queue is
        // empty at round start) while pops block until the predecessor
        // catches up - the blocking path is exercised without a cycle
        // of full queues that could deadlock.
        for (unsigned j = 0; j < prm_.q_items; ++j)
            queues_[me].push(ctx, qItem(me, r, j));
        for (unsigned j = 0; j < prm_.q_items; ++j)
            chk = fold(chk, queues_[pred].pop(ctx));

        // Commutative counter adds plus a racy unvalidated peek.
        for (unsigned j = 0; j < prm_.adds_per_round; ++j)
            counters_[addTarget(me, r, j)].fetch_add(ctx,
                                                     addDelta(me, r, j));
        racy_sink_ += counters_[r % prm_.counters].load_relaxed(ctx);

        round_.wait(ctx);

        // Post-barrier lookups: my peer's round-r keys are guaranteed
        // present (and immutable), so every find result is
        // deterministic; one probe targets a never-inserted key.
        for (unsigned j = 0; j < prm_.keys_per_round; ++j) {
            const auto v = map_.find(ctx, freshKey(peer, r, j));
            chk = fold(chk, v ? *v : 0xdeadULL);
        }
        const auto miss =
            map_.find(ctx, freshKey(peer, r, prm_.keys_per_round + 31));
        chk = fold(chk, miss ? *miss : 0x6e6f6e65ULL);
    }

    checks_.set(ctx, me, chk);
    done_.wait(ctx);
}

void
GstlTorture::validate(dsm::System &sys)
{
    const auto fail = [&](const char *what) {
        ncp2_fatal("gstl-torture seed %llu: %s mismatch",
                   static_cast<unsigned long long>(prm_.seed), what);
    };

    // Map contents: every fresh key holds its single writer's value,
    // every accumulate key the commutative sum of its deltas.
    for (unsigned p = 0; p < nprocs_; ++p) {
        for (unsigned r = 0; r < prm_.rounds; ++r)
            for (unsigned j = 0; j < prm_.keys_per_round; ++j) {
                const auto v = map_.peek_find(sys, freshKey(p, r, j));
                if (!v || *v != valueOf(p, r, j))
                    fail("fresh map entry");
            }
        for (unsigned j = 0; j < prm_.keys_per_round; ++j) {
            std::uint64_t want = 0;
            for (unsigned r = 0; r < prm_.rounds; ++r)
                want += valueOf(p, r, j) & 0xffffULL;
            const auto v = map_.peek_find(sys, accKey(p, j));
            if (!v || *v != want)
                fail("accumulated map entry");
        }
    }

    // Counters: deltas commute, so the sums are schedule-independent.
    for (unsigned c = 0; c < prm_.counters; ++c) {
        std::uint64_t want = 0;
        for (unsigned p = 0; p < nprocs_; ++p)
            for (unsigned r = 0; r < prm_.rounds; ++r)
                for (unsigned j = 0; j < prm_.adds_per_round; ++j)
                    if (addTarget(p, r, j) == c)
                        want += addDelta(p, r, j);
        if (sys.readGlobal<std::uint64_t>(counters_[c].addr()) != want)
            fail("counter");
    }

    // Checksums: replay each proc's folds in program order.
    for (unsigned p = 0; p < nprocs_; ++p) {
        const unsigned peer = (p + 1) % nprocs_;
        const unsigned pred = (p + nprocs_ - 1) % nprocs_;
        std::uint64_t want = 0;
        for (unsigned r = 0; r < prm_.rounds; ++r) {
            for (unsigned j = 0; j < prm_.q_items; ++j)
                want = fold(want, qItem(pred, r, j));
            for (unsigned j = 0; j < prm_.keys_per_round; ++j)
                want = fold(want, valueOf(peer, r, j));
            want = fold(want, 0x6e6f6e65ULL);
        }
        if (g::peek(sys, checks_, p) != want)
            fail("proc checksum");
    }
}

} // namespace apps
