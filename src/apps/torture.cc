#include "apps/torture.hh"

#include <algorithm>

#include "dsm/system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Torture::plan(g::context &ctx)
{
    nprocs_ = ctx.nprocs();
    page_words_ = ctx.cfg().pageWords();
    ncp2_assert(page_words_ % chunks_per_page == 0,
                "page size not divisible into %u chunks", chunks_per_page);
    chunk_words_ = page_words_ / chunks_per_page;
    ncp2_assert(prm_.rounds && prm_.data_pages && prm_.counters &&
                    prm_.pc_slots,
                "torture parameters must be non-zero");

    arena_.allocate(ctx, std::uint64_t{prm_.data_pages} * page_words_);
    counters_.allocate(ctx, prm_.counters); ///< one hot page on purpose
    pc_.allocate(ctx, 2ull * prm_.pc_slots);
    checks_.allocate(ctx, nprocs_);
    counter_mus_ = ctx.make_mutexes("counter", prm_.counters);
    round_ = ctx.make_barrier("round");
    done_ = ctx.make_barrier("done");

    prog_.assign(nprocs_, {});
    for (unsigned p = 0; p < nprocs_; ++p) {
        prog_[p].reserve(prm_.rounds);
        for (unsigned r = 0; r < prm_.rounds; ++r)
            prog_[p].push_back(genRound(p, r));
    }
    replayReference();
}

std::vector<Torture::Op>
Torture::genRound(unsigned proc, unsigned round) const
{
    // One generator per (seed, proc, round): programs depend on nothing
    // else, so a failing {seed, protocol, nprocs} triple replays bit for
    // bit from the command line.
    sim::Rng g(prm_.seed ^
               0x517cc1b727220a95ULL * (round * 1315423911ull + proc + 1));
    std::vector<Op> ops;
    const unsigned arena_words = prm_.data_pages * page_words_;

    // False-sharing arena: this round's owned chunks. Reads checksum
    // what the previous owner left (migratory hand-off), writes claim
    // the chunk for this round; single-writer per word per round.
    for (unsigned pg = 0; pg < prm_.data_pages; ++pg) {
        for (unsigned c = 0; c < chunks_per_page; ++c) {
            if ((c + round + pg) % nprocs_ != proc)
                continue;
            const std::uint32_t base = pg * page_words_ + c * chunk_words_;
            if (g.below(100) < prm_.block_pct) {
                ops.push_back({Op::K::creadblk, base, chunk_words_, 0});
            } else {
                for (unsigned i = 0; i < prm_.singles_per_chunk; ++i)
                    ops.push_back(
                        {Op::K::cread,
                         base + static_cast<std::uint32_t>(
                                    g.below(chunk_words_)),
                         0, 0});
            }
            if (g.below(100) < prm_.block_pct) {
                ops.push_back(
                    {Op::K::cwriteblk, base, chunk_words_, g.next()});
            } else {
                for (unsigned i = 0; i < prm_.singles_per_chunk; ++i)
                    ops.push_back(
                        {Op::K::cwrite,
                         base + static_cast<std::uint32_t>(
                                    g.below(chunk_words_)),
                         0, g.next() & 0xffffffffull});
            }
        }
    }

    // Migratory counters behind locks; deltas commute, so the final
    // sums are schedule-independent.
    for (unsigned i = 0; i < prm_.cadds_per_round; ++i)
        ops.push_back({Op::K::cadd,
                       static_cast<std::uint32_t>(g.below(prm_.counters)),
                       0, g.next() & 0xffffull});

    // Producer/consumer mailbox: the round-r producer fills half
    // (r % 2); consumers checksum the half filled in round r-1, which
    // nobody writes this round.
    if (proc == round % nprocs_) {
        for (unsigned s = 0; s < prm_.pc_slots; ++s)
            ops.push_back({Op::K::pcwrite,
                           (round % 2) * prm_.pc_slots + s, 0, g.next()});
    } else if (round > 0) {
        for (unsigned s = 0; s < prm_.pc_slots; ++s)
            if (g.below(2))
                ops.push_back({Op::K::pcread,
                               ((round + 1) % 2) * prm_.pc_slots + s, 0,
                               0});
    }

    // Racy reads: any arena word, mid-round. Legal under LRC (the
    // oracle checks the observed value against concurrent writers);
    // the result feeds the sink, never validated state.
    for (unsigned i = 0; i < prm_.racy_per_round; ++i)
        ops.push_back({Op::K::rread,
                       static_cast<std::uint32_t>(g.below(arena_words)), 0,
                       0});

    if (prm_.max_compute)
        ops.push_back({Op::K::comp,
                       static_cast<std::uint32_t>(
                           g.below(prm_.max_compute) + 1),
                       0, 0});

    // Shuffle: every op sequence is deterministic in program order
    // whatever the interleaving (single-writer words, commutative adds,
    // cross-round mailbox), so an arbitrary order is fair game and
    // shakes out ordering assumptions in the protocols.
    for (std::size_t i = ops.size(); i > 1; --i)
        std::swap(ops[i - 1], ops[g.below(i)]);
    return ops;
}

void
Torture::replayReference()
{
    // Host replay in (round, proc, program) order. Any per-round proc
    // order gives the same state: same-round writes never share a word,
    // counter adds commute, and mailbox reads target the half written
    // last round.
    ref_arena_.assign(std::size_t{prm_.data_pages} * page_words_, 0);
    ref_counters_.assign(prm_.counters, 0);
    ref_pc_.assign(2ull * prm_.pc_slots, 0);
    ref_checks_.assign(nprocs_, 0);
    for (unsigned r = 0; r < prm_.rounds; ++r) {
        for (unsigned p = 0; p < nprocs_; ++p) {
            for (const Op &op : prog_[p][r]) {
                switch (op.k) {
                  case Op::K::cread:
                    ref_checks_[p] = fold(ref_checks_[p], ref_arena_[op.a]);
                    break;
                  case Op::K::creadblk:
                    for (unsigned i = 0; i < op.b; ++i)
                        ref_checks_[p] =
                            fold(ref_checks_[p], ref_arena_[op.a + i]);
                    break;
                  case Op::K::cwrite:
                    ref_arena_[op.a] = static_cast<std::uint32_t>(op.v);
                    break;
                  case Op::K::cwriteblk:
                    for (unsigned i = 0; i < op.b; ++i)
                        ref_arena_[op.a + i] =
                            static_cast<std::uint32_t>(op.v + i);
                    break;
                  case Op::K::cadd:
                    ref_counters_[op.a] += op.v;
                    break;
                  case Op::K::pcwrite:
                    ref_pc_[op.a] = op.v;
                    break;
                  case Op::K::pcread:
                    ref_checks_[p] = fold(ref_checks_[p], ref_pc_[op.a]);
                    break;
                  case Op::K::rread:
                  case Op::K::comp:
                    break;
                }
            }
        }
    }
}

void
Torture::run(g::context &ctx)
{
    const unsigned me = ctx.id();
    std::uint64_t chk = 0;
    std::vector<std::uint32_t> buf(chunk_words_);
    for (unsigned r = 0; r < prm_.rounds; ++r) {
        for (const Op &op : prog_[me][r]) {
            switch (op.k) {
              case Op::K::cread:
                chk = fold(chk, arena_.get(ctx, op.a));
                break;
              case Op::K::creadblk:
                arena_.read(ctx, op.a, buf.data(), op.b);
                for (unsigned i = 0; i < op.b; ++i)
                    chk = fold(chk, buf[i]);
                break;
              case Op::K::cwrite:
                arena_.set(ctx, op.a, static_cast<std::uint32_t>(op.v));
                break;
              case Op::K::cwriteblk:
                for (unsigned i = 0; i < op.b; ++i)
                    buf[i] = static_cast<std::uint32_t>(op.v + i);
                arena_.write(ctx, op.a, buf.data(), op.b);
                break;
              case Op::K::cadd:
                // The counters array is one hot page of lock-protected
                // slots; the per-element atomic view keeps that layout.
                g::atomic<std::uint64_t>(counters_, op.a,
                                         counter_mus_[op.a])
                    .fetch_add(ctx, op.v);
                break;
              case Op::K::pcwrite:
                pc_.set(ctx, op.a, op.v);
                break;
              case Op::K::pcread:
                chk = fold(chk, pc_.get(ctx, op.a));
                break;
              case Op::K::rread:
                racy_sink_ += arena_.get(ctx, op.a);
                break;
              case Op::K::comp:
                ctx.compute(op.a);
                break;
            }
        }
        // One reused barrier handle on purpose: generation bookkeeping
        // (protocol and oracle) must survive a processor racing a full
        // round ahead before a laggard's fiber resumes.
        round_.wait(ctx);
    }
    checks_.set(ctx, me, chk);
    done_.wait(ctx);
}

void
Torture::validate(dsm::System &sys)
{
    for (std::size_t w = 0; w < ref_arena_.size(); ++w) {
        const auto got = g::peek(sys, arena_, w);
        if (got != ref_arena_[w])
            ncp2_fatal("torture seed %llu: arena word %zu = %u, expected "
                       "%u",
                       static_cast<unsigned long long>(prm_.seed), w, got,
                       ref_arena_[w]);
    }
    for (std::size_t c = 0; c < ref_counters_.size(); ++c) {
        const auto got = g::peek(sys, counters_, c);
        if (got != ref_counters_[c])
            ncp2_fatal("torture seed %llu: counter %zu = %llu, expected "
                       "%llu",
                       static_cast<unsigned long long>(prm_.seed), c,
                       static_cast<unsigned long long>(got),
                       static_cast<unsigned long long>(ref_counters_[c]));
    }
    for (unsigned p = 0; p < nprocs_; ++p) {
        const auto got = g::peek(sys, checks_, p);
        if (got != ref_checks_[p])
            ncp2_fatal("torture seed %llu: proc %u checksum %llx, expected "
                       "%llx (a read observed a value the reference replay "
                       "never produced)",
                       static_cast<unsigned long long>(prm_.seed), p,
                       static_cast<unsigned long long>(got),
                       static_cast<unsigned long long>(ref_checks_[p]));
    }
}

} // namespace apps
