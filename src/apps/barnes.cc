#include "apps/barnes.hh"

#include <cmath>

#include "apps/refcheck.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps
{

void
Barnes::plan(dsm::GlobalHeap &heap, const dsm::SysConfig &)
{
    const unsigned n = p_.bodies;
    sim::Rng rng(p_.seed);
    init_pos_.assign(3 * n, 0.0);
    // A Plummer-ish ball: uniform in a sphere, radius 10.
    for (unsigned i = 0; i < n; ++i) {
        double x, y, z;
        do {
            x = 2.0 * rng.uniform() - 1.0;
            y = 2.0 * rng.uniform() - 1.0;
            z = 2.0 * rng.uniform() - 1.0;
        } while (x * x + y * y + z * z > 1.0);
        init_pos_[3 * i + 0] = 10.0 * x;
        init_pos_[3 * i + 1] = 10.0 * y;
        init_pos_[3 * i + 2] = 10.0 * z;
    }

    const unsigned m = maxNodes();
    pos_ = heap.allocPages(3ull * n * 8);
    vel_ = heap.allocPages(3ull * n * 8);
    node_mass_ = heap.allocPages(8ull * m);
    node_com_ = heap.allocPages(24ull * m);
    node_half_ = heap.allocPages(8ull * m);
    node_center_ = heap.allocPages(24ull * m);
    node_child_ = heap.allocPages(32ull * m);
    node_count_ = heap.allocPages(4);
}

/**
 * Child slot encoding: 0 = empty, k > 0 = internal node k, v < 0 = leaf
 * holding body (-v - 1).
 */
void
Barnes::buildTree(dsm::Proc &p)
{
    const unsigned n = p_.bodies;

    // Bounding cube.
    double half = 1.0;
    std::vector<double> bp(3 * n);
    for (unsigned i = 0; i < 3 * n; ++i) {
        bp[i] = p.get<double>(pos_ + 8ull * i);
        if (std::fabs(bp[i]) > half)
            half = std::fabs(bp[i]);
    }
    half *= 1.01;

    // Root = node 1 (0 is the "empty" sentinel).
    unsigned used = 2;
    p.put<double>(nHalf(1), half);
    for (unsigned c = 0; c < 3; ++c)
        p.put<double>(nCenter(1, c), 0.0);
    for (unsigned c = 0; c < 8; ++c)
        p.put<std::int32_t>(nChild(1, c), 0);

    auto octant = [](const double *ctr, const double *b) {
        unsigned o = 0;
        if (b[0] >= ctr[0])
            o |= 1;
        if (b[1] >= ctr[1])
            o |= 2;
        if (b[2] >= ctr[2])
            o |= 4;
        return o;
    };

    for (unsigned i = 0; i < n; ++i) {
        unsigned node = 1;
        for (;;) {
            p.compute(20);
            double ctr[3], h;
            for (unsigned c = 0; c < 3; ++c)
                ctr[c] = p.get<double>(nCenter(node, c));
            h = p.get<double>(nHalf(node));
            const unsigned o = octant(ctr, &bp[3 * i]);
            const auto ch = p.get<std::int32_t>(nChild(node, o));
            if (ch == 0) {
                p.put<std::int32_t>(nChild(node, o),
                                    -static_cast<std::int32_t>(i) - 1);
                break;
            }
            if (ch > 0) {
                node = static_cast<unsigned>(ch);
                continue;
            }
            // Occupied leaf: split into a fresh child cell.
            const unsigned other = static_cast<unsigned>(-ch - 1);
            const unsigned fresh = used++;
            ncp2_assert(fresh < maxNodes(), "Barnes tree overflow");
            double fctr[3];
            const double fh = h / 2.0;
            for (unsigned c = 0; c < 3; ++c) {
                const double sign = (o >> c) & 1 ? 1.0 : -1.0;
                fctr[c] = ctr[c] + sign * fh;
                p.put<double>(nCenter(fresh, c), fctr[c]);
            }
            p.put<double>(nHalf(fresh), fh);
            for (unsigned c = 0; c < 8; ++c)
                p.put<std::int32_t>(nChild(fresh, c), 0);
            // Re-insert the displaced body one level down, then retry
            // the current body from the fresh cell.
            const unsigned oo = octant(fctr, &bp[3 * other]);
            p.put<std::int32_t>(nChild(fresh, oo),
                                -static_cast<std::int32_t>(other) - 1);
            p.put<std::int32_t>(nChild(node, o),
                                static_cast<std::int32_t>(fresh));
            node = fresh;
        }
    }
    p.put<std::int32_t>(node_count_, static_cast<std::int32_t>(used));

    // Bottom-up mass / centre-of-mass (iterate nodes in reverse creation
    // order: children always have higher indices than their parents).
    for (unsigned k = used; k-- > 1;) {
        double m = 0.0, com[3] = {0, 0, 0};
        for (unsigned c = 0; c < 8; ++c) {
            const auto ch = p.get<std::int32_t>(nChild(k, c));
            if (ch == 0)
                continue;
            double cm, cc[3];
            if (ch < 0) {
                const unsigned b = static_cast<unsigned>(-ch - 1);
                cm = 1.0;
                for (unsigned x = 0; x < 3; ++x)
                    cc[x] = bp[3 * b + x];
            } else {
                cm = p.get<double>(nMass(static_cast<unsigned>(ch)));
                for (unsigned x = 0; x < 3; ++x)
                    cc[x] = p.get<double>(
                        nCom(static_cast<unsigned>(ch), x));
            }
            m += cm;
            for (unsigned x = 0; x < 3; ++x)
                cc[x] *= cm, com[x] += cc[x];
            p.compute(12);
        }
        p.put<double>(nMass(k), m);
        for (unsigned x = 0; x < 3; ++x)
            p.put<double>(nCom(k, x), m > 0 ? com[x] / m : 0.0);
    }
}

void
Barnes::bodyForce(dsm::Proc &p, unsigned i, const double *bp, double *acc)
{
    acc[0] = acc[1] = acc[2] = 0.0;
    unsigned stack[128];
    unsigned sp = 0;
    stack[sp++] = 1;

    auto addPoint = [&](double m, const double *c) {
        const double dx = c[0] - bp[0];
        const double dy = c[1] - bp[1];
        const double dz = c[2] - bp[2];
        const double r2 = dx * dx + dy * dy + dz * dz + eps2;
        const double inv = 1.0 / std::sqrt(r2);
        const double f = m * inv * inv * inv;
        acc[0] += f * dx;
        acc[1] += f * dy;
        acc[2] += f * dz;
        p.compute(30);
    };

    while (sp) {
        const unsigned node = stack[--sp];
        const double m = p.get<double>(nMass(node));
        if (m <= 0.0)
            continue;
        double com[3];
        for (unsigned c = 0; c < 3; ++c)
            com[c] = p.get<double>(nCom(node, c));
        const double h = p.get<double>(nHalf(node));
        const double dx = com[0] - bp[0];
        const double dy = com[1] - bp[1];
        const double dz = com[2] - bp[2];
        const double dist2 = dx * dx + dy * dy + dz * dz;
        const double size = 2.0 * h;
        if (size * size < p_.theta * p_.theta * dist2) {
            addPoint(m, com); // far enough: use the aggregate
            continue;
        }
        for (unsigned c = 0; c < 8; ++c) {
            const auto ch = p.get<std::int32_t>(nChild(node, c));
            if (ch == 0)
                continue;
            if (ch < 0) {
                const unsigned b = static_cast<unsigned>(-ch - 1);
                if (b == i)
                    continue;
                double bc[3];
                for (unsigned x = 0; x < 3; ++x)
                    bc[x] = p.get<double>(bPos(b, x));
                addPoint(1.0, bc);
            } else {
                ncp2_assert(sp < 128, "Barnes traversal stack overflow");
                stack[sp++] = static_cast<unsigned>(ch);
            }
        }
    }
}

void
Barnes::run(dsm::Proc &p)
{
    const unsigned n = p_.bodies;
    const unsigned np = p.nprocs();
    const unsigned lo = n * p.id() / np;
    const unsigned hi = n * (p.id() + 1) / np;

    if (p.id() == 0) {
        for (unsigned i = 0; i < 3 * n; ++i) {
            p.put<double>(pos_ + 8ull * i, init_pos_[i]);
            p.put<double>(vel_ + 8ull * i, 0.0);
        }
    }
    p.barrier(0);

    std::vector<double> accs(3 * (hi - lo));
    for (unsigned step = 0; step < p_.steps; ++step) {
        if (p.id() == 0)
            buildTree(p);
        p.barrier(1 + 3 * step);

        // Force phase: all positions are stable until the next barrier.
        for (unsigned i = lo; i < hi; ++i) {
            double bp[3];
            for (unsigned c = 0; c < 3; ++c)
                bp[c] = p.get<double>(bPos(i, c));
            bodyForce(p, i, bp, &accs[3 * (i - lo)]);
        }
        p.barrier(2 + 3 * step);

        // Update phase: owners integrate (leapfrog-ish Euler).
        for (unsigned i = lo; i < hi; ++i) {
            for (unsigned c = 0; c < 3; ++c) {
                const double v = p.get<double>(bVel(i, c)) +
                                 accs[3 * (i - lo) + c] * dt;
                p.put<double>(bVel(i, c), v);
                p.put<double>(bPos(i, c),
                              p.get<double>(bPos(i, c)) + v * dt);
            }
        }
        p.barrier(3 + 3 * step);
    }
}

void
Barnes::validate(dsm::System &sys)
{
    if (skip_validate_)
        return;
    Barnes ref(p_);
    ref.disableValidation();
    auto refsys = referenceRun(ref, sys.cfg());
    compareDoubles(sys, *refsys, pos_, 3ull * p_.bodies, 1e-12,
                   "Barnes.pos");
}

} // namespace apps
