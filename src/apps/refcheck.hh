/**
 * @file
 * Reference-run validation: deterministic workloads (Barnes, Em3d,
 * Ocean) validate by re-running themselves on a fresh single-processor
 * system - where the protocol short-circuits to plain execution - and
 * comparing final shared memory. Per-datum arithmetic order is identical
 * in both runs, so the comparison is (near-)exact, and any divergence
 * indicts the coherence protocol.
 */

#ifndef NCP2_APPS_REFCHECK_HH
#define NCP2_APPS_REFCHECK_HH

#include <cmath>
#include <memory>

#include "dsm/system.hh"
#include "dsm/workload.hh"
#include "sim/logging.hh"
#include "tmk/treadmarks.hh"

namespace apps
{

/** Run @p w (with validation disabled by the caller) on one processor. */
inline std::unique_ptr<dsm::System>
referenceRun(dsm::Workload &w, const dsm::SysConfig &like)
{
    dsm::SysConfig cfg;
    cfg.num_procs = 1;
    cfg.heap_bytes = like.heap_bytes;
    cfg.page_bytes = like.page_bytes;
    auto sys = std::make_unique<dsm::System>(
        cfg, tmk::makeTreadMarks(dsm::OverlapMode{}));
    sys->run(w);
    return sys;
}

/** Compare @p count doubles at @p base between two systems. */
inline void
compareDoubles(dsm::System &got, dsm::System &ref, sim::GAddr base,
               std::size_t count, double tol, const char *what)
{
    for (std::size_t i = 0; i < count; ++i) {
        const double g = got.readGlobal<double>(base + 8 * i);
        const double r = ref.readGlobal<double>(base + 8 * i);
        const double err =
            std::fabs(g - r) / std::max(1.0, std::fabs(r));
        if (!(err <= tol)) {
            ncp2_fatal("%s[%zu] = %.15g, reference %.15g (err %.3g)",
                       what, i, g, r, err);
        }
    }
}

} // namespace apps

#endif // NCP2_APPS_REFCHECK_HH
