#include "apps/serve/serve.hh"

#include <algorithm>
#include <optional>

#include "dsm/system.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace apps
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

// Keys live in their own tagged space (cf. GstlTorture): nonzero, never
// the reserved all-ones tag, disjoint from any other key family. In
// partitioned mode each node gets a private colour (bits 40..50) and a
// private permutation seed, so key spaces are disjoint across nodes.
std::uint64_t
ServeApp::keyOf(unsigned node, std::uint64_t rank) const
{
    const std::uint64_t colour =
        prm_.shared ? 0 : (std::uint64_t{node} + 1) << 40;
    const std::uint64_t seed =
        prm_.shared ? prm_.load.seed
                    : prm_.load.seed +
                          0x9e3779b97f4a7c15ULL * (std::uint64_t{node} + 1);
    return (3ULL << 60) | colour |
           serve::permuteKey(rank, prm_.load.keys_log2, seed);
}

// Document slot for (node, rank). Shared mode: one document per rank.
// Partitioned mode: each node's documents are interleaved with every
// other node's at word granularity within the arena (slot stride =
// nprocs), so distinct nodes write disjoint words of the same shared
// pages -- the classic false-sharing layout, which is the coherence
// traffic this mode is designed to exercise.
std::uint64_t
ServeApp::slotOf(unsigned node, std::uint64_t rank) const
{
    return prm_.shared ? rank : rank * nprocs_ + node;
}

unsigned
ServeApp::shardOf(std::uint64_t key) const
{
    return static_cast<unsigned>(mix(key) % prm_.stripes);
}

// Header word: 16 key-check bits | 16 writer bits | 32 write-seq bits.
// wseq counts the writer's own writes to this key in actual service
// order, so the final header is always some writer's *last* write.
std::uint64_t
ServeApp::headerOf(std::uint64_t key, unsigned writer,
                   std::uint32_t wseq) const
{
    return (mix(key) >> 48 << 48) | (std::uint64_t{writer} << 32) | wseq;
}

std::array<std::uint64_t, 8>
ServeApp::docOf(std::uint64_t key, unsigned writer, std::uint32_t wseq) const
{
    std::array<std::uint64_t, 8> buf{};
    buf[0] = headerOf(key, writer, wseq);
    for (unsigned i = 1; i < prm_.doc_words; ++i)
        buf[i] = mix(key ^ (std::uint64_t{writer} << 36) ^
                     (std::uint64_t{wseq} << 3) ^ i);
    return buf;
}

void
ServeApp::plan(g::context &ctx)
{
    ncp2_assert(prm_.streams >= 1, "serve needs at least one stream");
    ncp2_assert(prm_.stripes >= 1, "serve needs at least one stripe");
    ncp2_assert(prm_.doc_words >= 2 && prm_.doc_words <= 8,
                "doc_words must be in [2, 8] (header + payload)");
    ncp2_assert(prm_.load.keys_log2 >= 1 && prm_.load.keys_log2 <= 20,
                "keys_log2 must be in [1, 20]");
    nprocs_ = ctx.nprocs();
    num_keys_ = 1ull << prm_.load.keys_log2;

    // Shared mode: one directory, one document per rank, shard locks.
    // Partitioned mode: one directory per node, node-interleaved
    // document slots (see slotOf), and no application locks at all.
    const unsigned ndirs = prm_.shared ? 1 : nprocs_;
    dirs_.assign(ndirs, {});
    for (unsigned d = 0; d < ndirs; ++d)
        dirs_[d].allocate(ctx, "serve/dir" + std::to_string(d),
                          3 * num_keys_, prm_.stripes);
    docs_.allocate(ctx, num_keys_ * ndirs * prm_.doc_words);
    locks_.clear();
    if (prm_.shared)
        locks_ = ctx.make_mutexes("serve/shard", prm_.stripes);
    ready_ = ctx.make_barrier("serve/ready");
    done_ = ctx.make_barrier("serve/done");

    // Deterministic per-node schedules; the zeta setup is shared.
    const serve::ZipfGen zipf(num_keys_, prm_.load.zipf_theta);
    schedules_.assign(nprocs_, {});
    for (unsigned n = 0; n < nprocs_; ++n)
        schedules_[n] = serve::buildSchedule(prm_.load, zipf, n);

    // Fresh metrics for this run (the same app object may be re-run).
    nm_.assign(nprocs_, {});
    for (auto &m : nm_)
        m.log.reserve(prm_.load.requests_per_node);
    wseq_.assign(nprocs_, {});
    lat_all_.reset();
    queue_all_.reset();
    service_all_.reset();
    requests_.reset();
    reads_.reset();
    writes_.reset();
    svc_busy_.reset();
    svc_data_.reset();
    svc_synch_.reset();
    svc_ipc_.reset();
    queue_delay_.reset();
    service_time_.reset();
    buildStats();
}

void
ServeApp::buildStats()
{
    root_ = std::make_unique<sim::StatGroup>("serve");
    root_->addCounter("requests", &requests_, "requests served");
    root_->addCounter("reads", &reads_, "GET requests");
    root_->addCounter("writes", &writes_, "PUT requests");
    root_->addAccum("queue_delay_cycles", &queue_delay_,
                    "enqueue -> first-access waiting per request");
    root_->addAccum("service_cycles", &service_time_,
                    "first-access -> completion per request");
    root_->addCounter("svc_busy_cycles", &svc_busy_,
                      "service time spent in Cat::busy");
    root_->addCounter("svc_data_cycles", &svc_data_,
                      "service time stalled on page/diff fetches");
    root_->addCounter("svc_synch_cycles", &svc_synch_,
                      "service time in lock waits");
    root_->addCounter("svc_ipc_cycles", &svc_ipc_,
                      "service time stolen by remote-request service");
    root_->addSketch("latency", &lat_all_,
                     "end-to-end request latency (cycles)");
    root_->addSketch("queue_delay", &queue_all_,
                     "enqueue -> first-access (cycles)");
    root_->addSketch("service", &service_all_,
                     "first-access -> completion (cycles)");
    node_groups_.clear();
    for (unsigned n = 0; n < nprocs_; ++n) {
        auto grp =
            std::make_unique<sim::StatGroup>("n" + std::to_string(n));
        grp->addSketch("latency", &nm_[n].latency,
                       "this node's request latency (cycles)");
        root_->addChild(grp.get());
        node_groups_.push_back(std::move(grp));
    }
}

void
ServeApp::populate(g::context &ctx, unsigned me)
{
    // Shared mode: each key's home (rank % nprocs) inserts the
    // directory entry and seeds the document (writer = home, wseq = 0);
    // different homes write disjoint slots, so the only contention is
    // the stripe locks. Partitioned mode: every node seeds its whole
    // private key space into its own directory. Either way the serving
    // phase is ordered behind the ready_ barrier.
    const std::uint64_t lo = prm_.shared ? me : 0;
    const std::uint64_t step = prm_.shared ? nprocs_ : 1;
    auto &dir = dirs_[prm_.shared ? 0 : me];
    for (std::uint64_t r = lo; r < num_keys_; r += step) {
        const std::uint64_t key = keyOf(me, r);
        if (!dir.insert(ctx, key, r))
            ncp2_fatal("serve seed %llu: duplicate key %llx at populate",
                       static_cast<unsigned long long>(prm_.load.seed),
                       static_cast<unsigned long long>(key));
        const auto doc = docOf(key, me, 0);
        docs_.write(ctx, slotOf(me, r) * prm_.doc_words, doc.data(),
                    prm_.doc_words);
    }
}

std::uint64_t
ServeApp::serveOne(g::context &ctx, unsigned me, const serve::Request &rq,
                   std::uint64_t arrival, unsigned stream)
{
    NodeMetrics &m = nm_[me];
    const dsm::Breakdown &bd = ctx.proc().system().node(me).cpu.bd;
    const std::uint64_t b0 = bd.get(dsm::Cat::busy);
    const std::uint64_t d0 = bd.get(dsm::Cat::data);
    const std::uint64_t s0 = bd.get(dsm::Cat::synch);
    const std::uint64_t i0 = bd.get(dsm::Cat::ipc);

    const std::uint64_t start = ctx.now();
    const std::uint64_t key = keyOf(me, rq.rank);

    // Request parse/dispatch cost, then the store operation, then
    // response formatting. Shared mode runs find + payload access under
    // the key's shard lock so they form one consistent snapshot;
    // partitioned mode is lock-free (this node is the key's only
    // writer, so its own copy is always a consistent snapshot).
    ctx.compute(prm_.service_cycles);
    {
        std::optional<g::lock_guard> lk;
        if (prm_.shared)
            lk.emplace(ctx, locks_[shardOf(key)]);
        auto &dir = dirs_[prm_.shared ? 0 : me];
        const auto slot = dir.find(ctx, key);
        if (!slot)
            ncp2_fatal("serve seed %llu node %u: key %llx missing",
                       static_cast<unsigned long long>(prm_.load.seed), me,
                       static_cast<unsigned long long>(key));
        const std::uint64_t base = slotOf(me, *slot) * prm_.doc_words;
        std::array<std::uint64_t, 8> buf{};
        if (rq.is_write) {
            const std::uint32_t wseq = ++wseq_[me][key];
            buf = docOf(key, me, wseq);
            docs_.write(ctx, base, buf.data(), prm_.doc_words);
        } else {
            docs_.read(ctx, base, buf.data(), prm_.doc_words);
            const unsigned writer =
                static_cast<unsigned>(buf[0] >> 32 & 0xffff);
            const auto wseq = static_cast<std::uint32_t>(buf[0]);
            // Partitioned reads must see this node's own last write
            // exactly; shared reads any lock-consistent snapshot.
            const bool torn =
                prm_.shared
                    ? buf != docOf(key, writer, wseq)
                    : buf != docOf(key, me, wseq_[me][key]);
            if (torn)
                ncp2_fatal("serve seed %llu node %u: torn document for "
                           "key %llx (header %llx)",
                           static_cast<unsigned long long>(prm_.load.seed),
                           me, static_cast<unsigned long long>(key),
                           static_cast<unsigned long long>(buf[0]));
        }
    }
    ctx.compute(prm_.service_cycles / 2);

    const std::uint64_t done = ctx.now();
    const std::uint64_t latency = done - arrival;
    const std::uint64_t qdelay = start - arrival;
    const std::uint64_t service = done - start;

    m.latency.sample(latency);
    m.queue.sample(qdelay);
    m.service.sample(service);
    m.svc_busy += bd.get(dsm::Cat::busy) - b0;
    m.svc_data += bd.get(dsm::Cat::data) - d0;
    m.svc_synch += bd.get(dsm::Cat::synch) - s0;
    m.svc_ipc += bd.get(dsm::Cat::ipc) - i0;
    ++requests_;
    if (rq.is_write)
        ++writes_;
    else
        ++reads_;
    queue_delay_ += static_cast<double>(qdelay);
    service_time_ += static_cast<double>(service);

    if (sim::Trace *tr = ctx.proc().system().trace()) [[unlikely]] {
        const std::uint64_t id =
            (std::uint64_t{me} << 40) | m.log.size();
        const std::uint16_t aux = rq.is_write ? 1 : 0;
        tr->emit(arrival, me, sim::TraceEngine::cpu,
                 sim::TraceKind::req_enqueue, id, aux);
        tr->emit(start, me, sim::TraceEngine::cpu,
                 sim::TraceKind::req_start, id, aux);
        tr->emit(done, me, sim::TraceEngine::cpu,
                 sim::TraceKind::req_done, id, aux);
    }
    m.log.push_back({arrival, start, done, key, stream, rq.is_write});
    return done;
}

void
ServeApp::serveOpen(g::context &ctx, unsigned me)
{
    const auto &sched = schedules_[me];
    const std::uint64_t t0 = ctx.now();
    const unsigned S = prm_.streams;
    // Request i belongs to stream i % S (round-robin dealing); head[s]
    // counts how many of stream s's requests are done. The CPU serves a
    // ready stream head per step, scanning round-robin from one past
    // the last served stream, and parks idle until the earliest head's
    // arrival when none is ready.
    std::vector<std::size_t> head(S, 0);
    std::size_t served = 0;
    unsigned cursor = 0;
    while (served < sched.size()) {
        const std::uint64_t now = ctx.now();
        unsigned pick = S;
        std::uint64_t min_arr = ~0ull;
        unsigned min_s = 0;
        for (unsigned d = 0; d < S; ++d) {
            const unsigned s = (cursor + d) % S;
            const std::size_t idx = head[s] * S + s;
            if (idx >= sched.size())
                continue;
            const std::uint64_t arr = t0 + sched[idx].arrival;
            if (arr <= now) {
                pick = s;
                break;
            }
            if (arr < min_arr) {
                min_arr = arr;
                min_s = s;
            }
        }
        if (pick == S) {
            ctx.idle_until(min_arr);
            pick = min_s;
        }
        const std::size_t idx = head[pick] * S + pick;
        serveOne(ctx, me, sched[idx], t0 + sched[idx].arrival, pick);
        ++head[pick];
        ++served;
        cursor = (pick + 1) % S;
    }
}

void
ServeApp::serveClosed(g::context &ctx, unsigned me)
{
    const auto &sched = schedules_[me];
    const std::uint64_t t0 = ctx.now();
    const unsigned S = prm_.streams;
    // S closed-loop clients per node: each issues, waits for its
    // completion, thinks, and issues again. Issue ticks double as the
    // arrival (enqueue) timestamps. Initial issues are staggered so
    // the clients don't start in lockstep.
    std::vector<std::size_t> head(S, 0);
    std::vector<std::uint64_t> next(S);
    for (unsigned s = 0; s < S; ++s)
        next[s] = t0 + s * (prm_.think_cycles / S + 1);
    std::size_t served = 0;
    while (served < sched.size()) {
        unsigned pick = S;
        std::uint64_t best = ~0ull;
        for (unsigned s = 0; s < S; ++s) {
            if (head[s] * S + s >= sched.size())
                continue;
            if (next[s] < best) {
                best = next[s];
                pick = s;
            }
        }
        ctx.idle_until(best);
        const std::size_t idx = head[pick] * S + pick;
        const std::uint64_t fin =
            serveOne(ctx, me, sched[idx], best, pick);
        next[pick] = fin + prm_.think_cycles;
        ++head[pick];
        ++served;
    }
}

void
ServeApp::run(g::context &ctx)
{
    const unsigned me = ctx.id();
    populate(ctx, me);
    ready_.wait(ctx);
    if (prm_.load.arrival == serve::Arrival::closed)
        serveClosed(ctx, me);
    else
        serveOpen(ctx, me);
    done_.wait(ctx);
}

void
ServeApp::validate(dsm::System &sys)
{
    const auto fail = [&](const char *what) {
        ncp2_fatal("serve seed %llu: %s",
                   static_cast<unsigned long long>(prm_.load.seed), what);
    };

    // Fold per-node metrics into the globals (deterministic order).
    for (unsigned n = 0; n < nprocs_; ++n) {
        const NodeMetrics &m = nm_[n];
        lat_all_.merge(m.latency);
        queue_all_.merge(m.queue);
        service_all_.merge(m.service);
        svc_busy_ += m.svc_busy;
        svc_data_ += m.svc_data;
        svc_synch_ += m.svc_synch;
        svc_ipc_ += m.svc_ipc;
    }

    // Request accounting: every scheduled request was served exactly
    // once, with sane per-request timestamps.
    std::uint64_t want_total = 0;
    for (unsigned n = 0; n < nprocs_; ++n) {
        const auto &sched = schedules_[n];
        const auto &log = nm_[n].log;
        want_total += sched.size();
        if (log.size() != sched.size())
            fail("request log incomplete");
        for (const ReqLog &r : log)
            if (r.start < r.arrival || r.done < r.start)
                fail("request timestamps out of order");
    }
    if (requests_.value() != want_total ||
        reads_.value() + writes_.value() != want_total)
        fail("request counter mismatch");

    // The online sketches must be an exact function of the request log:
    // replay every node's log into a fresh sketch and demand equality.
    // (tools/trace_summary.py repeats this from the trace records.)
    for (unsigned n = 0; n < nprocs_; ++n) {
        sim::QuantileSketch replay;
        for (const ReqLog &r : nm_[n].log)
            replay.sample(r.done - r.arrival);
        if (replay.counts() != nm_[n].latency.counts() ||
            replay.sum() != nm_[n].latency.sum() ||
            replay.max() != nm_[n].latency.max())
            fail("latency sketch does not match the request log");
    }

    // How many times each node wrote each key (the schedule fixes the
    // multiset of writes; in shared mode only their interleaving is
    // timing-dependent, in partitioned mode nothing is).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> writes;
    for (unsigned n = 0; n < nprocs_; ++n) {
        for (const auto &rq : schedules_[n])
            if (rq.is_write) {
                auto &per_node = writes[keyOf(n, rq.rank)];
                per_node.resize(nprocs_, 0);
                ++per_node[n];
            }
    }

    if (prm_.shared) {
        // Shared store: the directory is complete, and every document
        // is a consistent (key, writer, wseq) snapshot where (writer,
        // wseq) is a legal last write -- the seed value or some
        // writer's final write.
        for (std::uint64_t r = 0; r < num_keys_; ++r) {
            const std::uint64_t key = keyOf(0, r);
            const auto slot = dirs_[0].peek_find(sys, key);
            if (!slot || *slot != r)
                fail("directory entry missing or wrong slot");
            std::array<std::uint64_t, 8> buf{};
            for (unsigned i = 0; i < prm_.doc_words; ++i)
                buf[i] = g::peek(sys, docs_, r * prm_.doc_words + i);
            const unsigned writer =
                static_cast<unsigned>(buf[0] >> 32 & 0xffff);
            const auto wseq = static_cast<std::uint32_t>(buf[0]);
            if (writer >= nprocs_)
                fail("document writer out of range");
            if (buf != docOf(key, writer, wseq))
                fail("document payload inconsistent with header");
            if (wseq == 0) {
                if (writer != r % nprocs_)
                    fail("untouched document not owned by its home");
            } else {
                const auto it = writes.find(key);
                if (it == writes.end() || it->second[writer] != wseq)
                    fail("final document is not some writer's last write");
            }
        }
        return;
    }

    // Partitioned store: each key has exactly one writer, so the final
    // document is fully determined by the schedule -- writer d, wseq
    // equal to d's total scheduled writes to that key. This checks that
    // the protocol kept every node's words intact through the
    // false-sharing merges at the closing barrier.
    for (unsigned d = 0; d < nprocs_; ++d) {
        for (std::uint64_t r = 0; r < num_keys_; ++r) {
            const std::uint64_t key = keyOf(d, r);
            const auto slot = dirs_[d].peek_find(sys, key);
            if (!slot || *slot != r)
                fail("directory entry missing or wrong slot");
            std::array<std::uint64_t, 8> buf{};
            for (unsigned i = 0; i < prm_.doc_words; ++i)
                buf[i] = g::peek(sys, docs_,
                                 slotOf(d, r) * prm_.doc_words + i);
            const auto it = writes.find(key);
            const std::uint32_t want =
                it == writes.end() ? 0 : it->second[d];
            if (buf != docOf(key, d, want))
                fail("partitioned document does not match its owner's "
                     "last write");
        }
    }
}

} // namespace apps
