/**
 * @file
 * ServeApp: a sharded key-value/document store on the DSM, driven by
 * the seed-deterministic open-loop load generator (loadgen.hh). This is
 * the serving-workload family the ROADMAP's north star asks for: the
 * paper's throughput story retold as per-request tail latency.
 *
 * Store layout (all g:: containers over shared DSM memory), in two
 * modes selected by Params::shared:
 *  - shared (default): one g::hash_map directory (key -> document
 *    slot, populated once per run by each key's home node, rank %
 *    nprocs), a K x doc_words g::vector payload arena, and one
 *    g::mutex per shard. GET and PUT run entirely under the key's
 *    shard lock, so every read observes a lock-consistent document
 *    snapshot (checked inline, fatal on a torn read) even though the
 *    final interleaving of writers is schedule-dependent.
 *  - partitioned: each node serves a private key space out of its own
 *    directory with no application locks; documents of different
 *    nodes are interleaved at slot granularity on the shared pages,
 *    so the only coherence traffic is false sharing. Reads must see
 *    the node's own last write exactly. This mode is reproducible
 *    under the parallel executor (no contended-lock grant order in
 *    its output), which the shared mode, by construction, is not.
 *  - Document word 0 is a header packing (key check, writer,
 *    per-writer write sequence); the remaining words are a pure
 *    function of (key, writer, wseq).
 *
 * Serving model: each node's request schedule is dealt round-robin to S
 * server streams (Params::streams); the node's simulated CPU multiplexes
 * the streams cooperatively, serving a ready stream head per step and
 * parking in Cat::idle (Proc::idleUntil) when no request has arrived.
 * Closed-loop mode replaces arrivals with issue-after-completion plus
 * think time, as a throughput cross-check.
 *
 * Metrics: per-request {enqueue, first-access, completion} ticks go to
 *  - host-side per-node request logs (bit-identical across executors),
 *  - sim::QuantileSketch online p50/p99/p999 per node and globally,
 *  - the "serve" StatGroup (counters, queueing-delay vs service-time
 *    accums, service-time cycles attributed to busy/data/synch/ipc via
 *    the node's Breakdown), snapshotted into RunResult::app_stats,
 *  - sim::Trace req_enqueue/req_start/req_done records when tracing,
 *    from which tools/trace_summary.py reconstructs the exact same
 *    percentiles.
 *
 * validate() replays the schedule host-side: directory completeness,
 * header/payload consistency against the set of legal last writers,
 * request accounting, and an exact re-derivation of every latency
 * sketch from the request log.
 */

#ifndef NCP2_APPS_SERVE_SERVE_HH
#define NCP2_APPS_SERVE_SERVE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/serve/loadgen.hh"
#include "gstl/gstl.hh"
#include "sim/quantile.hh"
#include "sim/stats.hh"

namespace apps
{

class ServeApp : public g::App
{
  public:
    struct Params
    {
        serve::LoadSpec load;
        /**
         * true: one global store; every node GETs/PUTs every key under
         * cross-node shard locks (the contention story). Declines the
         * parallel executor: grant order under contention is the one
         * documented PDES host race, and it decides this workload's
         * visible output (wseq interleavings, latencies).
         *
         * false: partitioned store; each node owns a private key space
         * and directory shard (no cross-node locks), documents of
         * different nodes interleaved on shared pages (false-sharing
         * coherence traffic only). PDES-safe: every remaining
         * cross-node interaction is a message.
         */
        bool shared = true;
        unsigned streams = 1;      ///< S server streams per node
        unsigned stripes = 4;      ///< hash-map stripes == shard locks
        unsigned doc_words = 4;    ///< words per document (2..8)
        unsigned service_cycles = 60;       ///< busy work per request
        std::uint64_t think_cycles = 400;   ///< closed-loop think time
    };

    /** One served request as logged by its node (host-side). */
    struct ReqLog
    {
        std::uint64_t arrival = 0; ///< enqueue tick (absolute)
        std::uint64_t start = 0;   ///< first-access tick (dequeue)
        std::uint64_t done = 0;    ///< completion tick
        std::uint64_t key = 0;
        std::uint32_t stream = 0;
        bool is_write = false;

        bool
        operator==(const ReqLog &o) const
        {
            return arrival == o.arrival && start == o.start &&
                   done == o.done && key == o.key && stream == o.stream &&
                   is_write == o.is_write;
        }
    };

    ServeApp() : ServeApp(Params()) {}
    explicit ServeApp(Params prm) : prm_(prm) {}

    std::string name() const override { return "Serve"; }
    void plan(g::context &ctx) override;
    void run(g::context &ctx) override;
    void validate(dsm::System &sys) override;
    const sim::StatGroup *statGroup() const override { return root_.get(); }
    bool pdesSafe() const override { return !prm_.shared; }

    const Params &params() const { return prm_; }
    /** Node @p n's request log in service order (after a run). */
    const std::vector<ReqLog> &log(unsigned n) const { return nm_[n].log; }
    /** The merged global latency sketch (valid after validate()). */
    const sim::QuantileSketch &latencySketch() const { return lat_all_; }

  private:
    struct NodeMetrics
    {
        sim::QuantileSketch latency, queue, service;
        std::uint64_t svc_busy = 0, svc_data = 0, svc_synch = 0,
                      svc_ipc = 0;
        std::vector<ReqLog> log;
    };

    std::uint64_t keyOf(unsigned node, std::uint64_t rank) const;
    std::uint64_t slotOf(unsigned node, std::uint64_t rank) const;
    unsigned shardOf(std::uint64_t key) const;
    std::uint64_t headerOf(std::uint64_t key, unsigned writer,
                           std::uint32_t wseq) const;
    std::array<std::uint64_t, 8> docOf(std::uint64_t key, unsigned writer,
                                       std::uint32_t wseq) const;

    void populate(g::context &ctx, unsigned me);
    void serveOpen(g::context &ctx, unsigned me);
    void serveClosed(g::context &ctx, unsigned me);
    /** Serve one request now; returns its completion tick. */
    std::uint64_t serveOne(g::context &ctx, unsigned me,
                           const serve::Request &rq, std::uint64_t arrival,
                           unsigned stream);
    void buildStats();

    Params prm_;
    unsigned nprocs_ = 0;
    std::uint64_t num_keys_ = 0;

    /// Directory: one global map (shared mode) or one per node
    /// (partitioned mode; only the owner touches its map at run time).
    std::vector<g::hash_map<std::uint64_t, std::uint64_t>> dirs_;
    g::vector<std::uint64_t> docs_;
    std::vector<g::mutex> locks_;
    g::barrier ready_;
    g::barrier done_;

    std::vector<std::vector<serve::Request>> schedules_; ///< per node
    std::vector<NodeMetrics> nm_;                        ///< per node
    /// Per-node, per-key count of writes served so far (actual service
    /// order); the source of each write's wseq.
    std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> wseq_;

    // Globals (merged / folded in validate()).
    sim::QuantileSketch lat_all_, queue_all_, service_all_;
    sim::Counter requests_, reads_, writes_;
    sim::Counter svc_busy_, svc_data_, svc_synch_, svc_ipc_;
    sim::Accum queue_delay_, service_time_;

    std::unique_ptr<sim::StatGroup> root_;
    std::vector<std::unique_ptr<sim::StatGroup>> node_groups_;
};

} // namespace apps

#endif // NCP2_APPS_SERVE_SERVE_HH
