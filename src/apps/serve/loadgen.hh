/**
 * @file
 * Seed-deterministic open-loop load generation for the serving
 * workload family. Everything here is host-side and pure: given a seed
 * and a node id it produces the exact same request schedule on every
 * run, every platform and every executor (serial, NCP2_JOBS pools,
 * NCP2_PDES partitions), which is what makes per-request latency
 * percentiles bit-reproducible.
 *
 * Pieces:
 *  - ZipfGen: Zipfian rank popularity via Gray's method (the YCSB
 *    generator); theta == 0 degenerates to uniform.
 *  - permuteKey: a seeded bijection on [0, 2^bits) so that popular
 *    ranks scatter across the key space (and therefore across hash-map
 *    stripes and pages) instead of clustering at low addresses.
 *  - buildSchedule: per-node request vectors with Poisson or bursty
 *    open-loop arrival offsets, or arrival-free schedules for the
 *    closed-loop cross-check mode.
 */

#ifndef NCP2_APPS_SERVE_LOADGEN_HH
#define NCP2_APPS_SERVE_LOADGEN_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace apps::serve
{

/** How requests arrive at a node's server. */
enum class Arrival : unsigned
{
    poisson = 0, ///< open loop, exponential interarrival gaps
    bursty = 1,  ///< open loop, on/off bursts of back-to-back requests
    closed = 2,  ///< closed loop: issue after completion plus think time
};

inline const char *
arrivalName(Arrival a)
{
    switch (a) {
      case Arrival::poisson: return "poisson";
      case Arrival::bursty: return "bursty";
      case Arrival::closed: return "closed";
    }
    return "?";
}

/**
 * Zipfian rank generator over [0, n) with exponent @p theta, using
 * Gray's method (constant time per draw after an O(n) zeta setup).
 * Rank 0 is the most popular. theta == 0 is the uniform distribution;
 * theta == 1 is excluded (the alpha term degenerates).
 */
class ZipfGen
{
  public:
    ZipfGen(std::uint64_t n, double theta) : n_(n), theta_(theta)
    {
        ncp2_assert(n > 0, "zipf over an empty rank space");
        ncp2_assert(theta >= 0.0 && theta < 1.0,
                    "zipf theta must be in [0, 1)");
        if (theta_ == 0.0)
            return;
        for (std::uint64_t i = 1; i <= n_; ++i)
            zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
        const double zeta2 = 1.0 + std::pow(0.5, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        half_pow_ = std::pow(0.5, theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
    }

    std::uint64_t
    next(sim::Rng &rng)
    {
        if (theta_ == 0.0)
            return rng.below(n_);
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + half_pow_)
            return 1;
        const auto r = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return r >= n_ ? n_ - 1 : r;
    }

    /** P(rank = i); used by the chi-squared distribution tests. */
    double
    prob(std::uint64_t i) const
    {
        ncp2_assert(i < n_, "rank out of range");
        if (theta_ == 0.0)
            return 1.0 / static_cast<double>(n_);
        return 1.0 / std::pow(static_cast<double>(i + 1), theta_) / zetan_;
    }

    std::uint64_t n() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_ = 0.0;
    double alpha_ = 0.0;
    double eta_ = 0.0;
    double half_pow_ = 0.0;
};

/**
 * A seeded bijection on [0, 2^bits): rounds of an affine map (odd
 * multiplier, bijective mod 2^bits) and a masked xorshift (a 64-bit
 * bijection that preserves the subdomain). Spreads adjacent ranks far
 * apart so hot keys don't share stripes or pages.
 */
inline std::uint64_t
permuteKey(std::uint64_t x, unsigned bits, std::uint64_t seed)
{
    ncp2_assert(bits >= 1 && bits <= 32, "key space must be 2^1..2^32");
    const std::uint64_t mask = (1ull << bits) - 1;
    x &= mask;
    for (unsigned r = 0; r < 3; ++r) {
        x = (x * 0x9e3779b97f4a7c15ULL + (seed ^ (0x5bull << r))) & mask;
        x ^= x >> (bits / 2 + 1);
    }
    return x;
}

/** One planned request. Arrival is an offset from the serving-phase
 *  start tick; unused (zero) in closed-loop schedules. */
struct Request
{
    std::uint64_t arrival = 0;
    std::uint64_t rank = 0; ///< Zipf rank; key = permuteKey(rank, ...)
    bool is_write = false;
};

/** The load half of the serving parameters (see ServeApp::Params). */
struct LoadSpec
{
    std::uint64_t seed = 1;
    unsigned keys_log2 = 6;          ///< K = 2^keys_log2 keys
    unsigned requests_per_node = 32;
    unsigned read_pct = 80;          ///< 0..100
    double zipf_theta = 0.9;         ///< 0 = uniform, < 1
    Arrival arrival = Arrival::poisson;
    std::uint64_t mean_gap_cycles = 800; ///< open-loop interarrival mean
    unsigned burst_len = 8;          ///< requests per bursty on-period
};

/** Exponential gap with the given mean, in whole cycles (>= 1). */
inline std::uint64_t
expGap(sim::Rng &rng, double mean)
{
    const double g = -mean * std::log(1.0 - rng.uniform());
    return g < 1.0 ? 1 : static_cast<std::uint64_t>(g);
}

/**
 * Build node @p node's deterministic request schedule. Draw order is
 * fixed (key, op, then gap), so the same seed always yields the same
 * keys AND the same arrival process.
 */
inline std::vector<Request>
buildSchedule(const LoadSpec &spec, const ZipfGen &zipf_proto,
              unsigned node)
{
    ncp2_assert(spec.requests_per_node > 0, "empty request schedule");
    ncp2_assert(spec.read_pct <= 100, "read_pct is a percentage");
    ZipfGen zipf = zipf_proto; // cheap copy; the zeta setup is shared
    sim::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x53455256ull + node);

    std::vector<Request> out;
    out.reserve(spec.requests_per_node);
    std::uint64_t t = 0;
    for (unsigned i = 0; i < spec.requests_per_node; ++i) {
        Request rq;
        rq.rank = zipf.next(rng);
        rq.is_write = rng.below(100) >= spec.read_pct;
        switch (spec.arrival) {
          case Arrival::poisson:
            t += expGap(rng, static_cast<double>(spec.mean_gap_cycles));
            break;
          case Arrival::bursty:
            // On-periods of burst_len back-to-back requests separated
            // by exponential off-gaps sized to keep the long-run rate
            // near the Poisson schedule's.
            if (i % spec.burst_len == 0 && i != 0) {
                t += expGap(rng, static_cast<double>(spec.mean_gap_cycles) *
                                     spec.burst_len);
            } else {
                t += 1 + rng.below(spec.mean_gap_cycles / 8 + 1);
            }
            break;
          case Arrival::closed:
            break; // arrivals are generated at run time
        }
        rq.arrival = t;
        out.push_back(rq);
    }
    return out;
}

} // namespace apps::serve

#endif // NCP2_APPS_SERVE_LOADGEN_HH
