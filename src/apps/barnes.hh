/**
 * @file
 * Barnes (SPLASH-2): Barnes-Hut hierarchical N-body. The paper runs 4K
 * bodies for 4 steps (with busy-wait synchronization removed); defaults
 * here are smaller (configurable).
 *
 * Sharing pattern: the octree is rebuilt by processor 0 each step and
 * then read-shared by everyone during the force phase; bodies are
 * owner-written. Irregular read sharing of tree pages gives Barnes its
 * moderate diff cost (10.4% in figure 2) and makes offloading (I) pay
 * off through reduced synchronization interference.
 */

#ifndef NCP2_APPS_BARNES_HH
#define NCP2_APPS_BARNES_HH

#include <cstdint>
#include <vector>

#include "dsm/system.hh"
#include "dsm/workload.hh"

namespace apps
{

/** Barnes-Hut N-body simulation. */
class Barnes : public dsm::Workload
{
  public:
    struct Params
    {
        unsigned bodies = 512;
        unsigned steps = 2;
        double theta = 0.8;
        std::uint64_t seed = 4242;
    };

    explicit Barnes(Params p) : p_(p) {}

    std::string name() const override { return "Barnes"; }
    void plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg) override;
    void run(dsm::Proc &p) override;
    void validate(dsm::System &sys) override;

    /** Used by the reference run to suppress recursive validation. */
    void disableValidation() { skip_validate_ = true; }

  private:
    static constexpr double dt = 0.025;
    static constexpr double eps2 = 1e-4; ///< gravity softening

    unsigned maxNodes() const { return 4 * p_.bodies + 64; }

    // tree node field addresses
    sim::GAddr nMass(unsigned k) const { return node_mass_ + 8ull * k; }
    sim::GAddr nCom(unsigned k, unsigned c) const
    {
        return node_com_ + 8ull * (3 * k + c);
    }
    sim::GAddr nHalf(unsigned k) const { return node_half_ + 8ull * k; }
    sim::GAddr nCenter(unsigned k, unsigned c) const
    {
        return node_center_ + 8ull * (3 * k + c);
    }
    sim::GAddr nChild(unsigned k, unsigned c) const
    {
        return node_child_ + 4ull * (8 * k + c);
    }
    sim::GAddr bPos(unsigned i, unsigned c) const
    {
        return pos_ + 8ull * (3 * i + c);
    }
    sim::GAddr bVel(unsigned i, unsigned c) const
    {
        return vel_ + 8ull * (3 * i + c);
    }

    void buildTree(dsm::Proc &p);
    void bodyForce(dsm::Proc &p, unsigned i, const double *bp,
                   double *acc);

    Params p_;
    bool skip_validate_ = false;
    std::vector<double> init_pos_;

    sim::GAddr pos_ = 0;
    sim::GAddr vel_ = 0;
    sim::GAddr node_mass_ = 0;
    sim::GAddr node_com_ = 0;
    sim::GAddr node_half_ = 0;
    sim::GAddr node_center_ = 0;
    sim::GAddr node_child_ = 0;
    sim::GAddr node_count_ = 0; ///< int32: nodes used this step
};

} // namespace apps

#endif // NCP2_APPS_BARNES_HH
