/**
 * @file
 * LRC conformance oracle: ground-truth checking of every shared access.
 *
 * The oracle shadows the simulated protocol from the outside. It keeps
 * its own per-processor vector clocks, advanced only at the
 * synchronization operations the workload itself performs (acquire,
 * release, barrier), and a per-word history of every shared write with
 * its (proc, interval) provenance. At every shared read it decides
 * whether the observed value is legal under lazy release consistency:
 *
 *   - a write W = (p, s) happens-before a read by q iff vt_q[p] >= s
 *     (q synchronized with knowledge of p's interval s);
 *   - among the happens-before writes to a word, one masks another iff
 *     it also happens-after it (per the writers' interval clocks) —
 *     a masked value must never be observed again by that reader;
 *   - any write NOT ordered before the read is concurrent, and its
 *     value is always permitted (LRC propagates updates lazily, so a
 *     racing reader may or may not see it);
 *   - the initial zero contents are permitted only while no
 *     happens-before write to the word exists.
 *
 * This is exactly the LRC contract: it accepts every legal lazy
 * propagation the TreadMarks and AURC variants perform (cumulative
 * diffs, mid-interval automatic updates, combining write caches) while
 * rejecting any stale value a reader was synchronized against.
 *
 * The oracle is pure host-side bookkeeping: it issues no simulated
 * events and never perturbs timing, so simulated results are
 * bit-identical with checking on or off.
 *
 * Word granularity (4 bytes) matches the protocols' diff/update grain;
 * sub-word accesses are checked against the containing word(s).
 */

#ifndef NCP2_CHECK_ORACLE_HH
#define NCP2_CHECK_ORACLE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsm/vclock.hh"
#include "sim/types.hh"

namespace check
{

/** The conformance checker. One instance shadows one simulated run. */
class LrcOracle
{
  public:
    LrcOracle(unsigned nprocs, unsigned page_bytes);

    // ----- data hooks (called by dsm::System on the access path) -----

    /**
     * Record a shared write by @p proc covering words
     * [word, word+words) of @p page. @p page_data is the writer's page
     * copy *immediately after* the store landed: the oracle records the
     * resulting whole-word values (what any reader could observe).
     */
    void onWrite(sim::NodeId proc, sim::PageId page, unsigned word,
                 unsigned words, const std::uint8_t *page_data);

    /**
     * Validate a shared read by @p proc of words [word, word+words) of
     * @p page, whose observed contents are in @p page_data (the
     * reader's page copy at the access sequence point).
     */
    void onRead(sim::NodeId proc, sim::PageId page, unsigned word,
                unsigned words, const std::uint8_t *page_data);

    // ----- value-level core (unit tests drive these directly) -----

    /** Record one word-sized write of @p val. */
    void recordWrite(sim::NodeId proc, sim::PageId page, unsigned word,
                     std::uint32_t val);

    /** Check one word-sized read observing @p val. */
    void checkRead(sim::NodeId proc, sim::PageId page, unsigned word,
                   std::uint32_t val);

    // ----- synchronization hooks -----

    /** After a lock grant: merge the lock's last release clock. */
    void onAcquire(sim::NodeId proc, unsigned lock_id);
    /** Before the protocol release: snapshot the release clock. */
    void onRelease(sim::NodeId proc, unsigned lock_id);
    /** Before the protocol barrier call (closes the interval). */
    void onBarrierArrive(sim::NodeId proc, unsigned barrier_id);
    /** After the protocol barrier returns (joins all arrival clocks). */
    void onBarrierDepart(sim::NodeId proc, unsigned barrier_id);

    /**
     * Called with the full provenance report when a read observes an
     * illegal value. The default handler is ncp2_fatal(report); the
     * System installs one that dumps the event trace first.
     */
    using ViolationHandler = std::function<void(const std::string &report)>;
    void setViolationHandler(ViolationHandler h) { on_violation_ = std::move(h); }

    // ----- introspection (tests / reporting) -----
    std::uint64_t wordsChecked() const { return words_checked_; }
    std::uint64_t wordsRecorded() const { return words_recorded_; }
    std::uint64_t historyPrunes() const { return prunes_; }
    const dsm::VectorClock &clockOf(sim::NodeId proc) const
    {
        return vt_[proc];
    }

  private:
    /** One recorded write: the resulting word value + its provenance. */
    struct WriteRec
    {
        std::uint32_t val;
        dsm::IntervalSeq seq; ///< writer's interval (1-based)
        std::uint16_t proc;
    };

    /** Append-ordered history of one word (append order = host
     *  execution order, hence program order per processor). */
    using WordHist = std::vector<WriteRec>;

    /** One generation of one barrier id (ids may be reused). */
    struct BarrierGen
    {
        dsm::VectorClock merged;
        unsigned arrived = 0;
        unsigned departed = 0;
    };

    /** Close @p proc's interval and open the next; @p join (may be
     *  null) is merged into the new interval's clock. */
    void openNextInterval(sim::NodeId proc, const dsm::VectorClock *join);
    void refreshMinClock();

    WordHist &hist(sim::PageId page, unsigned word);
    /** Drop writes that are masked for every present and future reader
     *  (covered by the componentwise-min clock and happens-before
     *  another such write). */
    void pruneHist(WordHist &h);

    /** True iff write @p a happens-before write @p b (@p ai, @p bi are
     *  their positions in the history; same-proc order is log order). */
    bool writeHb(const WriteRec &a, std::size_t ai, const WriteRec &b,
                 std::size_t bi) const;

    [[noreturn]] void violation(sim::NodeId proc, sim::PageId page,
                                unsigned word, std::uint32_t observed,
                                const WordHist *h);

    unsigned nprocs_;
    unsigned page_bytes_;
    std::vector<dsm::VectorClock> vt_;   ///< per-proc current clock
    /// ivals_[p][s-1] = clock of p's interval s, constant from open
    /// (intervals close at *every* sync op, so no later merge can leak
    /// acquired knowledge into writes made before the acquire).
    std::vector<std::vector<dsm::VectorClock>> ivals_;
    dsm::VectorClock min_vt_;            ///< componentwise min of vt_
    std::unordered_map<unsigned, dsm::VectorClock> locks_;
    std::unordered_map<unsigned, std::deque<BarrierGen>> barriers_;
    std::unordered_map<sim::PageId, std::vector<WordHist>> pages_;
    ViolationHandler on_violation_;

    std::uint64_t words_checked_ = 0;
    std::uint64_t words_recorded_ = 0;
    std::uint64_t prunes_ = 0;
};

} // namespace check

#endif // NCP2_CHECK_ORACLE_HH
