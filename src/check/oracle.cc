#include "check/oracle.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace check
{

namespace
{

/** History length at which an append triggers a GC pass. */
constexpr std::size_t prune_threshold = 16;

std::string
fmtClock(const dsm::VectorClock &vt)
{
    std::string s = "[";
    for (unsigned i = 0; i < vt.size(); ++i) {
        if (i)
            s += ' ';
        s += std::to_string(vt[i]);
    }
    s += ']';
    return s;
}

} // namespace

LrcOracle::LrcOracle(unsigned nprocs, unsigned page_bytes)
    : nprocs_(nprocs), page_bytes_(page_bytes), min_vt_(nprocs)
{
    ncp2_assert(nprocs_ >= 1, "oracle needs at least one processor");
    vt_.reserve(nprocs_);
    ivals_.resize(nprocs_);
    for (unsigned p = 0; p < nprocs_; ++p) {
        dsm::VectorClock vt(nprocs_);
        vt[p] = 1; // interval 1 open from the start
        ivals_[p].push_back(vt);
        vt_.push_back(std::move(vt));
    }
    refreshMinClock();
    on_violation_ = [](const std::string &report) {
        ncp2_fatal("%s", report.c_str());
    };
}

void
LrcOracle::openNextInterval(sim::NodeId proc, const dsm::VectorClock *join)
{
    dsm::VectorClock &vt = vt_[proc];
    ++vt[proc];
    if (join)
        vt.merge(*join);
    ivals_[proc].push_back(vt);
    ncp2_dassert(ivals_[proc].size() == vt[proc],
                 "interval log out of step on proc %u", proc);
}

void
LrcOracle::refreshMinClock()
{
    for (unsigned q = 0; q < nprocs_; ++q) {
        dsm::IntervalSeq m = vt_[0][q];
        for (unsigned p = 1; p < nprocs_; ++p)
            m = std::min(m, vt_[p][q]);
        min_vt_[q] = m;
    }
}

void
LrcOracle::onAcquire(sim::NodeId proc, unsigned lock_id)
{
    const auto it = locks_.find(lock_id);
    // A virgin lock carries no release clock: no happens-before edge,
    // and the interval need not close (the new clock would equal the
    // old one except for the own component, which masks nothing).
    if (it != locks_.end())
        openNextInterval(proc, &it->second);
    refreshMinClock();
}

void
LrcOracle::onRelease(sim::NodeId proc, unsigned lock_id)
{
    // The release clock covers the interval being closed (own component
    // = the closing interval), then the releaser moves on.
    locks_[lock_id] = vt_[proc];
    openNextInterval(proc, nullptr);
    refreshMinClock();
}

void
LrcOracle::onBarrierArrive(sim::NodeId proc, unsigned barrier_id)
{
    auto &gens = barriers_[barrier_id];
    // Barrier ids are commonly reused; a proc racing ahead may arrive
    // at the next generation before a laggard departed the previous
    // one, so arrivals go to the youngest open generation.
    if (gens.empty() || gens.back().arrived == nprocs_) {
        gens.emplace_back();
        gens.back().merged = dsm::VectorClock(nprocs_);
    }
    BarrierGen &g = gens.back();
    g.merged.merge(vt_[proc]);
    ++g.arrived;
    // The pre-barrier interval stays open until departure; no writes
    // can land while the processor blocks, so closing there is
    // equivalent and keeps arrival/departure bookkeeping in one place.
}

void
LrcOracle::onBarrierDepart(sim::NodeId proc, unsigned barrier_id)
{
    auto &gens = barriers_[barrier_id];
    ncp2_assert(!gens.empty() && gens.front().arrived == nprocs_,
                "barrier %u departed before all %u processors arrived",
                barrier_id, nprocs_);
    BarrierGen &g = gens.front();
    openNextInterval(proc, &g.merged);
    if (++g.departed == nprocs_)
        gens.pop_front();
    refreshMinClock();
}

LrcOracle::WordHist &
LrcOracle::hist(sim::PageId page, unsigned word)
{
    auto it = pages_.find(page);
    if (it == pages_.end())
        it = pages_.emplace(page, std::vector<WordHist>(page_bytes_ / 4))
                 .first;
    return it->second[word];
}

bool
LrcOracle::writeHb(const WriteRec &a, std::size_t ai, const WriteRec &b,
                   std::size_t bi) const
{
    if (a.proc == b.proc)
        return ai < bi; // append order is program order per proc
    // a hb b iff b's interval clock covers a's interval.
    return ivals_[b.proc][b.seq - 1][a.proc] >= a.seq;
}

void
LrcOracle::recordWrite(sim::NodeId proc, sim::PageId page, unsigned word,
                       std::uint32_t val)
{
    WordHist &h = hist(page, word);
    h.push_back({val, vt_[proc][proc], static_cast<std::uint16_t>(proc)});
    ++words_recorded_;
    if (h.size() >= prune_threshold)
        pruneHist(h);
}

void
LrcOracle::pruneHist(WordHist &h)
{
    // A write covered by the componentwise-min clock is visible to
    // every present and future reader; if another such write masks it,
    // it can never be legally observed again and may be dropped.
    // Anything not universally covered stays (it is still a permitted
    // concurrent value for some reader).
    const std::size_t n = h.size();
    std::vector<bool> drop(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        if (h[i].seq > min_vt_[h[i].proc])
            continue; // not universally covered
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i || h[j].seq > min_vt_[h[j].proc])
                continue;
            if (writeHb(h[i], i, h[j], j)) {
                drop[i] = true;
                break;
            }
        }
    }
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (!drop[i])
            h[out++] = h[i];
    if (out != n) {
        h.resize(out);
        ++prunes_;
    }
}

void
LrcOracle::checkRead(sim::NodeId proc, sim::PageId page, unsigned word,
                     std::uint32_t val)
{
    ++words_checked_;
    const auto pit = pages_.find(page);
    const WordHist *h =
        pit == pages_.end() ? nullptr : &pit->second[word];
    if (!h || h->empty()) {
        if (val == 0)
            return; // untouched word: initial zero contents
        violation(proc, page, word, val, h);
    }

    const dsm::VectorClock &vt = vt_[proc];
    const std::size_t n = h->size();
    bool any_covered = false;
    bool ok = false;
    for (std::size_t i = 0; i < n && !ok; ++i) {
        const WriteRec &w = (*h)[i];
        if (w.seq > vt[w.proc]) {
            // Concurrent with the reader: LRC propagates lazily, so
            // the reader may or may not have received it — permitted.
            ok = w.val == val;
            continue;
        }
        any_covered = true;
        if (w.val != val)
            continue;
        // Covered and value matches: legal unless masked by another
        // covered write that happens-after it.
        bool masked = false;
        for (std::size_t j = 0; j < n && !masked; ++j) {
            const WriteRec &m = (*h)[j];
            if (j != i && m.seq <= vt[m.proc] && writeHb(w, i, m, j))
                masked = true;
        }
        ok = !masked;
    }
    if (!ok && !any_covered && val == 0)
        ok = true; // no visible writer yet: initial contents allowed
    if (!ok)
        violation(proc, page, word, val, h);
}

void
LrcOracle::onWrite(sim::NodeId proc, sim::PageId page, unsigned word,
                   unsigned words, const std::uint8_t *page_data)
{
    for (unsigned w = word; w < word + words; ++w) {
        std::uint32_t v;
        std::memcpy(&v, page_data + std::size_t{w} * 4, 4);
        recordWrite(proc, page, w, v);
    }
}

void
LrcOracle::onRead(sim::NodeId proc, sim::PageId page, unsigned word,
                  unsigned words, const std::uint8_t *page_data)
{
    for (unsigned w = word; w < word + words; ++w) {
        std::uint32_t v;
        std::memcpy(&v, page_data + std::size_t{w} * 4, 4);
        checkRead(proc, page, w, v);
    }
}

void
LrcOracle::violation(sim::NodeId proc, sim::PageId page, unsigned word,
                     std::uint32_t observed, const WordHist *h)
{
    const dsm::VectorClock &vt = vt_[proc];
    std::ostringstream os;
    os << "LRC conformance violation\n"
       << "  read : proc " << proc << " @ page " << page << " word " << word
       << " (byte offset " << word * 4 << ", gaddr "
       << static_cast<std::uint64_t>(page) * page_bytes_ + word * 4u
       << ")\n"
       << "  observed value : " << observed << " (0x" << std::hex
       << observed << std::dec << ")\n"
       << "  reader clock   : " << fmtClock(vt) << "\n";

    os << "  legal values:\n";
    bool any_covered = false;
    bool any_legal = false;
    const std::size_t n = h ? h->size() : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const WriteRec &w = (*h)[i];
        const bool covered = w.seq <= vt[w.proc];
        any_covered |= covered;
        bool masked = false;
        if (covered) {
            for (std::size_t j = 0; j < n && !masked; ++j) {
                const WriteRec &m = (*h)[j];
                if (j != i && m.seq <= vt[m.proc] && writeHb(w, i, m, j))
                    masked = true;
            }
        }
        if (masked)
            continue;
        any_legal = true;
        os << "    " << w.val << " (0x" << std::hex << w.val << std::dec
           << ") written by proc " << w.proc << " interval " << w.seq
           << ", clock " << fmtClock(ivals_[w.proc][w.seq - 1])
           << (covered ? " [visible]" : " [concurrent]") << "\n";
    }
    if (!any_covered) {
        any_legal = true;
        os << "    0 (initial page contents; no visible writer)\n";
    }
    if (!any_legal)
        os << "    (none)\n";

    os << "  observed-value provenance:";
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
        const WriteRec &w = (*h)[i];
        if (w.val != observed)
            continue;
        found = true;
        os << "\n    written by proc " << w.proc << " interval " << w.seq
           << ", clock " << fmtClock(ivals_[w.proc][w.seq - 1]);
        for (std::size_t j = 0; j < n; ++j) {
            const WriteRec &m = (*h)[j];
            if (j != i && m.seq <= vt[m.proc] && writeHb(w, i, m, j)) {
                os << " - masked by proc " << m.proc << " interval "
                   << m.seq;
                break;
            }
        }
    }
    if (!found)
        os << " value was never written to this word (GC keeps every"
              " still-observable write, so this is corruption)";
    os << "\n";

    on_violation_(os.str());
    // A handler that returns would let an illegal value propagate
    // unreported; insist on unwinding.
    ncp2_fatal("LRC violation handler returned");
}

} // namespace check
