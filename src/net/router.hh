/**
 * @file
 * The one cross-node message edge.
 *
 * Every cross-node interaction in the simulator — page fetch, diff
 * request/reply, lock grant, barrier arrival/broadcast, automatic
 * update — goes through Router::send(): timing from the mesh, delivery
 * as an event on the *destination* node's queue. No protocol code
 * schedules onto another node's queue directly, which is what makes
 * node state shardable (dsm/shard.hh) and the conservative parallel
 * executor sound (sim/sched_group.hh).
 *
 * Serial mode reproduces the historical behavior exactly: the mesh
 * reserves links at call time and the delivery callback is scheduled
 * at the returned tick — bit-identical results.
 *
 * Parallel mode defers: cross-node sends are appended to the sending
 * node's outbox and flushed by the single-threaded coordinator between
 * lookahead windows, sorted by (departure, src, issue order), so link
 * reservation and NetStats stay deterministic for a fixed worker
 * count. Self-sends (src == dst) touch no links and no remote state:
 * they are delivered inline at the mesh's loop-back latency, with only
 * their statistics deferred to the drain.
 */

#ifndef NCP2_NET_ROUTER_HH
#define NCP2_NET_ROUTER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/mesh.hh"
#include "sim/sched_group.hh"
#include "sim/types.hh"

namespace net
{

class Router
{
  public:
    using DeliverFn = std::function<void(sim::Tick)>;

    Router(MeshNetwork &mesh, sim::SchedulerGroup &sched)
        : mesh_(mesh), sched_(sched), outbox_(sched.size())
    {
    }

    /** Parallel (deferred) mode on/off; set by System::run. */
    void setParallel(bool on) { parallel_ = on; }
    bool parallel() const { return parallel_; }

    /**
     * Send @p payload_bytes from @p src to @p dst, first flit leaving
     * at @p departure; @p fn runs on @p dst's event queue at the
     * delivery tick (which it receives as its argument).
     *
     * @return the delivery tick when it is known at call time (serial
     * mode, and self-sends in parallel mode), sim::tick_never for a
     * deferred parallel cross-node send. Only serial-only protocols may
     * rely on the return value.
     */
    sim::Tick
    send(sim::Tick departure, sim::NodeId src, sim::NodeId dst,
         std::uint32_t payload_bytes, DeliverFn fn)
    {
        if (!parallel_) {
            const sim::Tick del =
                mesh_.send(departure, src, dst, payload_bytes);
            sched_.queue(dst).schedule(
                del, [fn = std::move(fn), del]() { fn(del); });
            return del;
        }
        ncp2_dassert(sim::current_exec_node ==
                         static_cast<std::int32_t>(src),
                     "parallel send from node %u off its own event stream",
                     static_cast<unsigned>(src));
        if (src == dst) {
            // Loop-back: no links, no remote state. Deliver inline on
            // the sender's own queue; only the fabric statistics are
            // deferred (mesh_ is coordinator-only while parallel).
            const sim::Tick del =
                departure + mesh_.selfLatency(payload_bytes);
            sched_.queue(src).schedule(
                del, [fn = std::move(fn), del]() { fn(del); });
            outbox_[src].push_back({departure, src, dst, payload_bytes,
                                    nullptr});
            return del;
        }
        outbox_[src].push_back({departure, src, dst, payload_bytes,
                                std::move(fn)});
        return sim::tick_never;
    }

    /**
     * Deliver every deferred send (coordinator, between windows).
     * @return the number of records flushed.
     */
    std::size_t drain();

  private:
    struct Pending
    {
        sim::Tick departure;
        sim::NodeId src;
        sim::NodeId dst;
        std::uint32_t payload_bytes;
        DeliverFn fn; ///< null = stats-only record of an inline self-send
    };

    MeshNetwork &mesh_;
    sim::SchedulerGroup &sched_;
    bool parallel_ = false;
    /// Per-source-node outboxes: written only by the worker owning the
    /// node during a window, read only by the coordinator between
    /// windows (the window barrier orders the two).
    std::vector<std::vector<Pending>> outbox_;
};

} // namespace net

#endif // NCP2_NET_ROUTER_HH
