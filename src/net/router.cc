#include "net/router.hh"

#include <algorithm>

namespace net
{

std::size_t
Router::drain()
{
    // Merge the per-node outboxes into one deterministic issue order:
    // by departure tick, then source node, then the source's own issue
    // order. Link reservation (and therefore contention accounting)
    // depends on this order, so it must not depend on which host
    // thread finished its window first.
    struct Ref
    {
        sim::Tick departure;
        sim::NodeId src;
        std::uint32_t idx;
    };
    std::vector<Ref> order;
    std::size_t total = 0;
    for (const auto &box : outbox_)
        total += box.size();
    if (!total)
        return 0;
    order.reserve(total);
    for (sim::NodeId n = 0; n < outbox_.size(); ++n) {
        for (std::uint32_t i = 0; i < outbox_[n].size(); ++i)
            order.push_back({outbox_[n][i].departure, n, i});
    }
    std::sort(order.begin(), order.end(), [](const Ref &a, const Ref &b) {
        if (a.departure != b.departure)
            return a.departure < b.departure;
        if (a.src != b.src)
            return a.src < b.src;
        return a.idx < b.idx;
    });

    for (const Ref &r : order) {
        Pending &p = outbox_[r.src][r.idx];
        const sim::Tick del =
            mesh_.send(p.departure, p.src, p.dst, p.payload_bytes);
        if (p.fn) {
            sched_.queue(p.dst).schedule(
                del, [fn = std::move(p.fn), del]() { fn(del); });
        }
        // Null fn: the self-send already delivered inline; mesh_.send
        // just replayed its statistics on the coordinator.
    }
    for (auto &box : outbox_)
        box.clear();
    return total;
}

} // namespace net
