/**
 * @file
 * Wormhole-routed 2D-mesh interconnect model.
 *
 * The paper simulates a mesh of workstation routers with 8-bit
 * bidirectional paths, 4-cycle switches and 2-cycle wires (=> 50 MB/s
 * per link at 100 MHz), dimension-order (X then Y) routing, and models
 * contention. We reproduce that: each directed link is a FIFO resource;
 * a message's head pays switch+wire per hop, and every link on the path
 * is occupied for the message's full transmission time (wormhole: the
 * worm straddles the path, so a blocked head holds all links).
 *
 * The per-message *messaging overhead* (network-interface setup, 200
 * cycles by default) is charged by the protocol layer to whichever agent
 * sends (CPU, protocol controller, or - for Shrimp automatic updates -
 * nothing, per the paper's optimistic 1-cycle assumption), so it is a
 * parameter here but applied by callers.
 */

#ifndef NCP2_NET_MESH_HH
#define NCP2_NET_MESH_HH

#include <cstdint>
#include <vector>

#include "sim/resource.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace net
{

/** Timing/geometry parameters of the mesh. */
struct NetTiming
{
    unsigned path_width_bits = 8;   ///< per-link path width
    sim::Cycles switch_cycles = 4;  ///< per-hop switch latency
    sim::Cycles wire_cycles = 2;    ///< per-hop wire latency
    sim::Cycles msg_overhead = 200; ///< per-message NI setup (charged by caller)
    unsigned header_bytes = 16;     ///< routing + protocol header per message

    /**
     * Cycles to push one byte onto a link. With an 8-bit path a byte
     * moves one link per wire traversal, so per-byte cost equals the
     * wire latency scaled by path width.
     */
    double
    cyclesPerByte() const
    {
        return static_cast<double>(wire_cycles) * 8.0 /
               static_cast<double>(path_width_bits);
    }

    /** Link bandwidth in MB/s assuming a 100 MHz (10 ns) clock. */
    double
    bandwidthMBs() const
    {
        return 100.0 / cyclesPerByte();
    }

    /** Set wire/path parameters so that links provide @p mbs MB/s. */
    void
    setBandwidthMBs(double mbs)
    {
        // Keep wire latency (head latency) fixed; scale effective path
        // width instead, which is how real NI generations widened.
        path_width_bits =
            static_cast<unsigned>(8.0 * mbs / 50.0 + 0.5);
        if (path_width_bits == 0)
            path_width_bits = 1;
    }
};

/** Aggregate traffic statistics for the whole fabric. */
struct NetStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t latency_cycles = 0;   ///< sum of end-to-end latencies
    std::uint64_t contention_cycles = 0; ///< sum of link-queueing delays
};

/**
 * The mesh fabric.
 *
 * Flat (cluster_size == 0, the default): node i sits at
 * (i % width, i / width) of the nearest square mesh — the paper's
 * machine, preserved bit-identically.
 *
 * Hierarchical (cluster_size >= 2): nodes are grouped into clusters of
 * cluster_size; each cluster is its own square sub-mesh over `timing`
 * links, and the clusters connect through their gateway routers (local
 * node 0) over an outer square mesh of `inter_timing` links. A
 * cross-cluster message travels store-and-forward through up to three
 * wormhole segments (source sub-mesh -> outer mesh -> destination
 * sub-mesh), each segment paying its own transmission time at that
 * fabric's path width. This keeps per-node link counts constant at
 * 256-1024 nodes and models fast intra-cluster / slower backbone
 * machines; minCrossLatency() stays a sound conservative lookahead for
 * the parallel executor (it is the brute-force minimum over every
 * ordered node pair at zero payload, computed once at construction).
 *
 * send() computes the delivery tick of a message injected at a given
 * departure tick, updating link occupancy.
 */
class MeshNetwork
{
  public:
    MeshNetwork(unsigned num_nodes, NetTiming timing,
                unsigned cluster_size = 0,
                NetTiming inter_timing = NetTiming{});

    /**
     * Inject a message.
     * @param departure tick the first flit leaves the source NI
     * @param src,dst   node ids
     * @param payload_bytes  protocol payload (header added internally)
     * @return tick at which the tail flit arrives at @p dst
     */
    sim::Tick send(sim::Tick departure, sim::NodeId src, sim::NodeId dst,
                   std::uint32_t payload_bytes);

    /** Hop count of the dimension-order route src -> dst. */
    [[nodiscard]] unsigned hops(sim::NodeId src, sim::NodeId dst) const;

    /** Zero-contention latency of a @p payload_bytes message src -> dst. */
    [[nodiscard]] sim::Cycles
    uncontendedLatency(sim::NodeId src, sim::NodeId dst,
                       std::uint32_t payload_bytes) const;

    /**
     * Latency of a loop-back (src == dst) message: transmission only,
     * no links traversed. Pure — exactly what send() charges for a
     * self-send, without the stats/link side effects.
     */
    [[nodiscard]] sim::Cycles selfLatency(std::uint32_t payload_bytes) const;

    /**
     * A lower bound on the latency of ANY cross-node (src != dst)
     * message: the zero-payload latency over the minimum hop count.
     * Contention and payload only add to it, so this is a safe
     * conservative lookahead for the parallel executor — an event at
     * tick T cannot cause a remote event before T + minCrossLatency().
     * Returns tick_never when the mesh has a single node (no cross
     * traffic exists).
     */
    [[nodiscard]] sim::Cycles minCrossLatency() const;

    [[nodiscard]] const NetTiming &timing() const { return timing_; }
    [[nodiscard]] const NetTiming &interTiming() const { return inter_timing_; }
    [[nodiscard]] const NetStats &stats() const { return stats_; }
    [[nodiscard]] unsigned numNodes() const { return num_nodes_; }
    /** Flat mesh width; intra-cluster sub-mesh width when clustered. */
    [[nodiscard]] unsigned width() const { return width_; }
    /** Effective cluster size: 0 when the mesh is flat. */
    [[nodiscard]] unsigned clusterSize() const { return cluster_size_; }
    [[nodiscard]] unsigned numClusters() const { return clusters_; }

    void reset();

    /** Enable event tracing: msg_send/msg_deliver on the NIC tracks. */
    void setTrace(sim::Trace *t) { trace_ = t; }

  private:
    /// Directed links: for each node, 4 outgoing (E, W, N, S) plus
    /// injection/ejection ports.
    enum Port { east = 0, west = 1, north = 2, south = 3, eject = 4,
                num_ports = 5 };

    [[nodiscard]] bool hierarchical() const { return cluster_size_ != 0; }

    /** Flat-mesh link lookup (grid position, port). */
    sim::Resource &link(sim::NodeId node, Port port);
    /** Link inside cluster @p c's sub-mesh (intra grid position, port). */
    sim::Resource &intraLink(unsigned c, unsigned pos, Port port);
    /** Outer-mesh link (outer grid position = cluster index, port). */
    sim::Resource &outerLink(unsigned pos, Port port);

    /** Append the dimension-order route through a @p width-wide grid to
     *  @p path as (grid position, port), ending with (dst, eject). */
    static void gridRoute(unsigned width, unsigned src, unsigned dst,
                          std::vector<std::pair<sim::NodeId, Port>> &path);
    static unsigned gridHops(unsigned width, unsigned src, unsigned dst);
    static sim::Cycles txCycles(const NetTiming &t, std::uint32_t bytes);

    /**
     * Advance a wormhole head over scratch_path_ within one fabric
     * (cluster @p c's sub-mesh, or the outer mesh when @p outer),
     * charging contention, and return the segment's delivery tick
     * (head + @p tx).
     */
    sim::Tick traverseScratch(sim::Tick head, const NetTiming &t,
                              sim::Cycles tx, bool outer, unsigned c);

    /** send() for a hierarchical cross-node message (src != dst). */
    sim::Tick sendHier(sim::Tick departure, sim::NodeId src,
                       sim::NodeId dst, std::uint32_t payload_bytes);

    unsigned num_nodes_;
    unsigned width_;            ///< flat width, or intra-cluster width
    NetTiming timing_;
    unsigned cluster_size_ = 0; ///< 0 = flat (normalized in constructor)
    NetTiming inter_timing_;
    unsigned clusters_ = 1;
    unsigned outer_width_ = 1;
    std::size_t outer_base_ = 0;      ///< index of the first outer link
    sim::Cycles min_cross_ = 0;       ///< cached bound (hierarchical)
    std::vector<sim::Resource> links_;
    NetStats stats_;
    sim::Trace *trace_ = nullptr; ///< owned by the System; may be null
    mutable std::vector<std::pair<sim::NodeId, Port>> scratch_path_;
};

} // namespace net

#endif // NCP2_NET_MESH_HH
