#include "net/mesh.hh"

#include <cmath>

#include "sim/logging.hh"

namespace net
{

MeshNetwork::MeshNetwork(unsigned num_nodes, NetTiming timing)
    : num_nodes_(num_nodes), timing_(timing)
{
    ncp2_assert(num_nodes >= 1, "mesh needs at least one node");
    width_ = 1;
    while (width_ * width_ < num_nodes)
        ++width_;
    // Allocate links for every grid position: dimension-order routes may
    // traverse router positions that have no attached node.
    const unsigned grid = width_ * width_;
    links_.reserve(static_cast<std::size_t>(grid) * num_ports);
    for (unsigned n = 0; n < grid; ++n) {
        for (unsigned p = 0; p < num_ports; ++p) {
            links_.emplace_back(
                sim::detail::format("link.n%u.p%u", n, p));
        }
    }
}

sim::Resource &
MeshNetwork::link(sim::NodeId node, Port port)
{
    return links_[static_cast<std::size_t>(node) * num_ports + port];
}

void
MeshNetwork::route(sim::NodeId src, sim::NodeId dst,
                   std::vector<std::pair<sim::NodeId, Port>> &path) const
{
    path.clear();
    unsigned x = src % width_;
    unsigned y = src / width_;
    const unsigned dx = dst % width_;
    const unsigned dy = dst / width_;

    // Dimension order: X first, then Y.
    while (x != dx) {
        const sim::NodeId here = y * width_ + x;
        if (x < dx) {
            path.emplace_back(here, east);
            ++x;
        } else {
            path.emplace_back(here, west);
            --x;
        }
    }
    while (y != dy) {
        const sim::NodeId here = y * width_ + x;
        if (y < dy) {
            path.emplace_back(here, south);
            ++y;
        } else {
            path.emplace_back(here, north);
            --y;
        }
    }
    path.emplace_back(dst, eject);
}

unsigned
MeshNetwork::hops(sim::NodeId src, sim::NodeId dst) const
{
    const unsigned x = src % width_, y = src / width_;
    const unsigned dx = dst % width_, dy = dst / width_;
    const unsigned hx = x > dx ? x - dx : dx - x;
    const unsigned hy = y > dy ? y - dy : dy - y;
    return hx + hy;
}

sim::Cycles
MeshNetwork::uncontendedLatency(sim::NodeId src, sim::NodeId dst,
                                std::uint32_t payload_bytes) const
{
    const std::uint32_t bytes = payload_bytes + timing_.header_bytes;
    const auto tx = static_cast<sim::Cycles>(
        std::ceil(bytes * timing_.cyclesPerByte()));
    const unsigned h = hops(src, dst) + 1;  // +1 for ejection
    return h * (timing_.switch_cycles + timing_.wire_cycles) + tx;
}

sim::Cycles
MeshNetwork::selfLatency(std::uint32_t payload_bytes) const
{
    const std::uint32_t bytes = payload_bytes + timing_.header_bytes;
    return static_cast<sim::Cycles>(
        std::ceil(bytes * timing_.cyclesPerByte()));
}

sim::Cycles
MeshNetwork::minCrossLatency() const
{
    if (num_nodes_ < 2)
        return sim::tick_never;
    // Adjacent nodes (one hop) with an empty payload: every other
    // src != dst pair has at least as many hops and at least as many
    // payload bytes, and contention can only delay further.
    return uncontendedLatency(0, 1, 0);
}

sim::Tick
MeshNetwork::send(sim::Tick departure, sim::NodeId src, sim::NodeId dst,
                  std::uint32_t payload_bytes)
{
    ncp2_assert(src < num_nodes_ && dst < num_nodes_,
                "message endpoints out of range");

    const std::uint32_t bytes = payload_bytes + timing_.header_bytes;
    const auto tx = static_cast<sim::Cycles>(
        std::ceil(bytes * timing_.cyclesPerByte()));

    ++stats_.messages;
    stats_.bytes += bytes;

    if (trace_) [[unlikely]]
        trace_->emit(departure, src, sim::TraceEngine::nic,
                     sim::TraceKind::msg_send, payload_bytes,
                     static_cast<std::uint16_t>(dst));

    if (src == dst) {
        // Loop-back through the local NI: transmission only.
        const sim::Tick done = departure + tx;
        stats_.latency_cycles += tx;
        if (trace_) [[unlikely]]
            trace_->emit(done, dst, sim::TraceEngine::nic,
                         sim::TraceKind::msg_deliver, payload_bytes,
                         static_cast<std::uint16_t>(src));
        return done;
    }

    route(src, dst, scratch_path_);

    // Wormhole: the head advances one hop per (switch + wire); each link
    // on the path is held for the whole transmission time starting when
    // the head reaches it. Blocking anywhere delays the head and extends
    // every upstream hold - approximated by serially reserving links in
    // path order and propagating the head's delayed arrival.
    sim::Tick head = departure;
    for (const auto &[node, port] : scratch_path_) {
        sim::Resource &l = link(node, port);
        const sim::Tick free = l.freeAt();
        if (free > head) {
            stats_.contention_cycles += free - head;
            head = free;
        }
        l.acquire(head, tx);
        head += timing_.switch_cycles + timing_.wire_cycles;
    }
    const sim::Tick delivered = head + tx;
    stats_.latency_cycles += delivered - departure;
    if (trace_) [[unlikely]]
        trace_->emit(delivered, dst, sim::TraceEngine::nic,
                     sim::TraceKind::msg_deliver, payload_bytes,
                     static_cast<std::uint16_t>(src));
    return delivered;
}

void
MeshNetwork::reset()
{
    for (auto &l : links_)
        l.reset();
    stats_ = {};
}

} // namespace net
