#include "net/mesh.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace net
{

MeshNetwork::MeshNetwork(unsigned num_nodes, NetTiming timing,
                         unsigned cluster_size, NetTiming inter_timing)
    : num_nodes_(num_nodes), timing_(timing), inter_timing_(inter_timing)
{
    ncp2_assert(num_nodes >= 1, "mesh needs at least one node");
    // A cluster of one node, or one spanning the whole machine, is just
    // the flat mesh; normalize here so every downstream branch has a
    // single notion of "hierarchical".
    cluster_size_ =
        (cluster_size <= 1 || cluster_size >= num_nodes) ? 0 : cluster_size;

    if (!hierarchical()) {
        width_ = 1;
        while (width_ * width_ < num_nodes)
            ++width_;
        // Allocate links for every grid position: dimension-order routes
        // may traverse router positions that have no attached node.
        const unsigned grid = width_ * width_;
        links_.reserve(static_cast<std::size_t>(grid) * num_ports);
        for (unsigned n = 0; n < grid; ++n) {
            for (unsigned p = 0; p < num_ports; ++p) {
                links_.emplace_back(
                    sim::detail::format("link.n%u.p%u", n, p));
            }
        }
        return;
    }

    clusters_ = (num_nodes_ + cluster_size_ - 1) / cluster_size_;
    width_ = 1;
    while (width_ * width_ < cluster_size_)
        ++width_;
    outer_width_ = 1;
    while (outer_width_ * outer_width_ < clusters_)
        ++outer_width_;

    const unsigned igrid = width_ * width_;
    const unsigned ogrid = outer_width_ * outer_width_;
    outer_base_ =
        static_cast<std::size_t>(clusters_) * igrid * num_ports;
    links_.reserve(outer_base_ +
                   static_cast<std::size_t>(ogrid) * num_ports);
    for (unsigned c = 0; c < clusters_; ++c) {
        for (unsigned n = 0; n < igrid; ++n) {
            for (unsigned p = 0; p < num_ports; ++p) {
                links_.emplace_back(
                    sim::detail::format("link.c%u.n%u.p%u", c, n, p));
            }
        }
    }
    for (unsigned n = 0; n < ogrid; ++n) {
        for (unsigned p = 0; p < num_ports; ++p) {
            links_.emplace_back(
                sim::detail::format("xlink.n%u.p%u", n, p));
        }
    }

    // Cache the cross-node latency bound. The minimum over all ordered
    // pairs is attained either by an adjacent intra-cluster pair (nodes
    // 0 and 1 of cluster 0: one hop, and cluster 0 is always full), or
    // by two adjacent gateways (no intra segments at all: gateway of
    // cluster 0 to gateway of cluster 1, one outer hop). Every other
    // pair has at least as many hops in at least as many segments.
    // tests/test_scale.cc brute-forces every pair against this.
    min_cross_ = std::min(
        uncontendedLatency(0, 1, 0),
        uncontendedLatency(0, static_cast<sim::NodeId>(cluster_size_), 0));
}

sim::Resource &
MeshNetwork::link(sim::NodeId node, Port port)
{
    return links_[static_cast<std::size_t>(node) * num_ports + port];
}

sim::Resource &
MeshNetwork::intraLink(unsigned c, unsigned pos, Port port)
{
    const std::size_t igrid =
        static_cast<std::size_t>(width_) * width_;
    return links_[(c * igrid + pos) * num_ports + port];
}

sim::Resource &
MeshNetwork::outerLink(unsigned pos, Port port)
{
    return links_[outer_base_ +
                  static_cast<std::size_t>(pos) * num_ports + port];
}

void
MeshNetwork::gridRoute(unsigned width, unsigned src, unsigned dst,
                       std::vector<std::pair<sim::NodeId, Port>> &path)
{
    path.clear();
    unsigned x = src % width;
    unsigned y = src / width;
    const unsigned dx = dst % width;
    const unsigned dy = dst / width;

    // Dimension order: X first, then Y.
    while (x != dx) {
        const sim::NodeId here = y * width + x;
        if (x < dx) {
            path.emplace_back(here, east);
            ++x;
        } else {
            path.emplace_back(here, west);
            --x;
        }
    }
    while (y != dy) {
        const sim::NodeId here = y * width + x;
        if (y < dy) {
            path.emplace_back(here, south);
            ++y;
        } else {
            path.emplace_back(here, north);
            --y;
        }
    }
    path.emplace_back(dst, eject);
}

unsigned
MeshNetwork::gridHops(unsigned width, unsigned src, unsigned dst)
{
    const unsigned x = src % width, y = src / width;
    const unsigned dx = dst % width, dy = dst / width;
    const unsigned hx = x > dx ? x - dx : dx - x;
    const unsigned hy = y > dy ? y - dy : dy - y;
    return hx + hy;
}

sim::Cycles
MeshNetwork::txCycles(const NetTiming &t, std::uint32_t bytes)
{
    return static_cast<sim::Cycles>(std::ceil(bytes * t.cyclesPerByte()));
}

unsigned
MeshNetwork::hops(sim::NodeId src, sim::NodeId dst) const
{
    if (hierarchical()) {
        const unsigned csrc = src / cluster_size_, cdst = dst / cluster_size_;
        const unsigned lsrc = src % cluster_size_, ldst = dst % cluster_size_;
        if (csrc == cdst)
            return gridHops(width_, lsrc, ldst);
        return gridHops(width_, lsrc, 0) +
               gridHops(outer_width_, csrc, cdst) +
               gridHops(width_, 0, ldst);
    }
    return gridHops(width_, src, dst);
}

sim::Cycles
MeshNetwork::uncontendedLatency(sim::NodeId src, sim::NodeId dst,
                                std::uint32_t payload_bytes) const
{
    if (hierarchical() && src != dst) {
        const unsigned csrc = src / cluster_size_, cdst = dst / cluster_size_;
        const unsigned lsrc = src % cluster_size_, ldst = dst % cluster_size_;
        const sim::Cycles hop_i =
            timing_.switch_cycles + timing_.wire_cycles;
        const sim::Cycles tx_i =
            txCycles(timing_, payload_bytes + timing_.header_bytes);
        if (csrc == cdst)
            return (gridHops(width_, lsrc, ldst) + 1) * hop_i + tx_i;
        // Three store-and-forward segments (intra ones skipped when the
        // endpoint is its cluster's gateway), each with its own
        // head-latency and transmission charge.
        sim::Cycles total = 0;
        if (lsrc != 0)
            total += (gridHops(width_, lsrc, 0) + 1) * hop_i + tx_i;
        total += (gridHops(outer_width_, csrc, cdst) + 1) *
                     (inter_timing_.switch_cycles +
                      inter_timing_.wire_cycles) +
                 txCycles(inter_timing_,
                          payload_bytes + inter_timing_.header_bytes);
        if (ldst != 0)
            total += (gridHops(width_, 0, ldst) + 1) * hop_i + tx_i;
        return total;
    }
    const std::uint32_t bytes = payload_bytes + timing_.header_bytes;
    const auto tx = static_cast<sim::Cycles>(
        std::ceil(bytes * timing_.cyclesPerByte()));
    const unsigned h = hops(src, dst) + 1;  // +1 for ejection
    return h * (timing_.switch_cycles + timing_.wire_cycles) + tx;
}

sim::Cycles
MeshNetwork::selfLatency(std::uint32_t payload_bytes) const
{
    const std::uint32_t bytes = payload_bytes + timing_.header_bytes;
    return static_cast<sim::Cycles>(
        std::ceil(bytes * timing_.cyclesPerByte()));
}

sim::Cycles
MeshNetwork::minCrossLatency() const
{
    if (num_nodes_ < 2)
        return sim::tick_never;
    if (hierarchical())
        return min_cross_;
    // Adjacent nodes (one hop) with an empty payload: every other
    // src != dst pair has at least as many hops and at least as many
    // payload bytes, and contention can only delay further.
    return uncontendedLatency(0, 1, 0);
}

sim::Tick
MeshNetwork::traverseScratch(sim::Tick head, const NetTiming &t,
                             sim::Cycles tx, bool outer, unsigned c)
{
    for (const auto &[node, port] : scratch_path_) {
        sim::Resource &l =
            outer ? outerLink(node, port) : intraLink(c, node, port);
        const sim::Tick free = l.freeAt();
        if (free > head) {
            stats_.contention_cycles += free - head;
            head = free;
        }
        l.acquire(head, tx);
        head += t.switch_cycles + t.wire_cycles;
    }
    return head + tx;
}

sim::Tick
MeshNetwork::sendHier(sim::Tick departure, sim::NodeId src,
                      sim::NodeId dst, std::uint32_t payload_bytes)
{
    const unsigned csrc = src / cluster_size_, cdst = dst / cluster_size_;
    const unsigned lsrc = src % cluster_size_, ldst = dst % cluster_size_;
    const sim::Cycles tx_intra =
        txCycles(timing_, payload_bytes + timing_.header_bytes);

    ++stats_.messages;
    if (trace_) [[unlikely]]
        trace_->emit(departure, src, sim::TraceEngine::nic,
                     sim::TraceKind::msg_send, payload_bytes,
                     static_cast<std::uint16_t>(dst));

    sim::Tick head = departure;
    if (csrc == cdst) {
        stats_.bytes += payload_bytes + timing_.header_bytes;
        gridRoute(width_, lsrc, ldst, scratch_path_);
        head = traverseScratch(head, timing_, tx_intra, false, csrc);
    } else {
        // Store-and-forward through the gateways: the tail must arrive
        // at a gateway's bridge buffer before the next fabric's segment
        // departs (the fabrics have different path widths, so the worm
        // cannot straddle the boundary).
        if (lsrc != 0) {
            stats_.bytes += payload_bytes + timing_.header_bytes;
            gridRoute(width_, lsrc, 0, scratch_path_);
            head = traverseScratch(head, timing_, tx_intra, false, csrc);
        }
        stats_.bytes += payload_bytes + inter_timing_.header_bytes;
        const sim::Cycles tx_inter = txCycles(
            inter_timing_, payload_bytes + inter_timing_.header_bytes);
        gridRoute(outer_width_, csrc, cdst, scratch_path_);
        head = traverseScratch(head, inter_timing_, tx_inter, true, 0);
        if (ldst != 0) {
            stats_.bytes += payload_bytes + timing_.header_bytes;
            gridRoute(width_, 0, ldst, scratch_path_);
            head = traverseScratch(head, timing_, tx_intra, false, cdst);
        }
    }
    stats_.latency_cycles += head - departure;
    if (trace_) [[unlikely]]
        trace_->emit(head, dst, sim::TraceEngine::nic,
                     sim::TraceKind::msg_deliver, payload_bytes,
                     static_cast<std::uint16_t>(src));
    return head;
}

sim::Tick
MeshNetwork::send(sim::Tick departure, sim::NodeId src, sim::NodeId dst,
                  std::uint32_t payload_bytes)
{
    ncp2_assert(src < num_nodes_ && dst < num_nodes_,
                "message endpoints out of range");

    if (hierarchical() && src != dst)
        return sendHier(departure, src, dst, payload_bytes);

    const std::uint32_t bytes = payload_bytes + timing_.header_bytes;
    const auto tx = static_cast<sim::Cycles>(
        std::ceil(bytes * timing_.cyclesPerByte()));

    ++stats_.messages;
    stats_.bytes += bytes;

    if (trace_) [[unlikely]]
        trace_->emit(departure, src, sim::TraceEngine::nic,
                     sim::TraceKind::msg_send, payload_bytes,
                     static_cast<std::uint16_t>(dst));

    if (src == dst) {
        // Loop-back through the local NI: transmission only.
        const sim::Tick done = departure + tx;
        stats_.latency_cycles += tx;
        if (trace_) [[unlikely]]
            trace_->emit(done, dst, sim::TraceEngine::nic,
                         sim::TraceKind::msg_deliver, payload_bytes,
                         static_cast<std::uint16_t>(src));
        return done;
    }

    gridRoute(width_, src, dst, scratch_path_);

    // Wormhole: the head advances one hop per (switch + wire); each link
    // on the path is held for the whole transmission time starting when
    // the head reaches it. Blocking anywhere delays the head and extends
    // every upstream hold - approximated by serially reserving links in
    // path order and propagating the head's delayed arrival.
    sim::Tick head = departure;
    for (const auto &[node, port] : scratch_path_) {
        sim::Resource &l = link(node, port);
        const sim::Tick free = l.freeAt();
        if (free > head) {
            stats_.contention_cycles += free - head;
            head = free;
        }
        l.acquire(head, tx);
        head += timing_.switch_cycles + timing_.wire_cycles;
    }
    const sim::Tick delivered = head + tx;
    stats_.latency_cycles += delivered - departure;
    if (trace_) [[unlikely]]
        trace_->emit(delivered, dst, sim::TraceEngine::nic,
                     sim::TraceKind::msg_deliver, payload_bytes,
                     static_cast<std::uint16_t>(src));
    return delivered;
}

void
MeshNetwork::reset()
{
    for (auto &l : links_)
        l.reset();
    stats_ = {};
}

} // namespace net
