/**
 * @file
 * Machine-readable experiment output.
 *
 * Every figure bench writes, next to its human-readable tables, a
 * results/<bench>.json document so perf trajectories can be tracked
 * across revisions without scraping stdout. Schema (version 1):
 *
 *   {
 *     "bench": "<name>", "schema_version": 1,
 *     "workers": <engine pool width>,
 *     "runs": [
 *       {
 *         "label": "...",
 *         "config": { protocol, mode, num_procs, page_bytes, seed, ... },
 *         "exec_ticks": N, "seconds": S, "wall_seconds": W,
 *         "breakdown": { busy, data, synch, ipc, others, diff_pct },
 *         "net": { messages, bytes, latency_cycles, contention_cycles },
 *         "extra": { "<protocol stat>": value, ... }
 *       }, ...
 *     ]
 *   }
 *
 * breakdown values are mean cycles per processor (the same aggregation
 * BreakdownRow uses); extra carries the protocol-specific stats
 * (TreadMarks prefetch/diff counters, AURC update counters).
 *
 * The output directory defaults to "results" and can be moved with
 * NCP2_RESULTS_DIR.
 */

#ifndef NCP2_HARNESS_JSON_OUT_HH
#define NCP2_HARNESS_JSON_OUT_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace harness
{

/** NCP2_RESULTS_DIR, or "results". */
std::string resultsDir();

/** Serialize one batch of finished jobs as the schema above. */
void emitResultsJson(std::ostream &os, const std::string &bench,
                     const std::vector<JobResult> &results,
                     unsigned workers);

/**
 * Write resultsDir()/<bench>.json (creating the directory if needed)
 * and return the path written. Fatal on I/O failure.
 */
std::string writeResultsJson(const std::string &bench,
                             const std::vector<JobResult> &results,
                             unsigned workers);

} // namespace harness

#endif // NCP2_HARNESS_JSON_OUT_HH
