/**
 * @file
 * Machine-readable experiment output.
 *
 * Every figure bench writes, next to its human-readable tables, a
 * results/<bench>.json document so perf trajectories can be tracked
 * across revisions without scraping stdout. Schema (version 2):
 *
 *   {
 *     "bench": "<name>", "schema_version": 2,
 *     "workers": <engine pool width>,
 *     "knobs": { "NCP2_SCALE": "standard", ... },   // active knob values
 *     "runs": [
 *       {
 *         "label": "...",
 *         "config": { protocol, mode, num_procs, page_bytes, seed, ... },
 *         "exec_ticks": N, "seconds": S, "wall_seconds": W,
 *         "breakdown": { busy, data, synch, ipc, others, idle, diff_pct },
 *         "net": { messages, bytes, latency_cycles, contention_cycles },
 *         "stats": {                       // StatGroup snapshots
 *           "<group>": {                   // protocol ("tmk"/"aurc") and,
 *                                          // when the workload exports
 *                                          // one, its own ("serve")
 *             "counters": { "<name>": N, ... },
 *             "accums": { "<name>": {sum, samples, mean}, ... },
 *             "histograms": { "<name>":
 *                 {total, mean, max, bounds: [...], counts: [...]}, ... },
 *             "sketches": { "<name>":
 *                 {count, sum, max, p50, p99, p999}, ... },
 *             "children": { "<group>": { ...same shape... } }
 *           }
 *         }
 *       }, ...
 *     ]
 *   }
 *
 * breakdown values are mean cycles per processor (the same aggregation
 * BreakdownRow uses). "stats" is the full sim::StatGroup tree the
 * protocol registered (schema v1 hand-copied a flat "extra" map instead;
 * the v1 "extra" keys survive as "<group>.<counter>" via
 * StatSnapshot::flat()). "knobs" records every NCP2_* knob's active
 * value at write time so a result is reproducible from its own file.
 *
 * The output directory defaults to "results" and can be moved with
 * NCP2_RESULTS_DIR.
 */

#ifndef NCP2_HARNESS_JSON_OUT_HH
#define NCP2_HARNESS_JSON_OUT_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace harness
{

/** NCP2_RESULTS_DIR, or "results". */
std::string resultsDir();

/** Serialize one batch of finished jobs as the schema above. */
void emitResultsJson(std::ostream &os, const std::string &bench,
                     const std::vector<JobResult> &results,
                     unsigned workers);

/**
 * Write resultsDir()/<bench>.json (creating the directory if needed)
 * and return the path written. Fatal on I/O failure.
 */
std::string writeResultsJson(const std::string &bench,
                             const std::vector<JobResult> &results,
                             unsigned workers);

} // namespace harness

#endif // NCP2_HARNESS_JSON_OUT_HH
