#include "harness/knobs.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/logging.hh"

namespace harness::knobs
{

namespace
{

const char *
raw(const char *name)
{
    return std::getenv(name);
}

/** Strict positive-integer parse; fatal with the knob's name on junk. */
long
parsePositive(const char *name, const char *s)
{
    char *end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0)
        ncp2_fatal("%s='%s' is not a positive integer", name, s);
    return v;
}

/**
 * Boolean knob parse: 0/false/off/no and 1/true/on/yes (any case) are
 * accepted; anything else is fatal with the knob's name. Historically
 * the bool knobs compared against "0" only, so NCP2_FAST_PATH=false
 * silently meant *on* — garbage must be loud, not inverted.
 */
bool
parseBool(const char *name, const char *s)
{
    std::string v(s);
    for (char &c : v)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (v == "0" || v == "false" || v == "off" || v == "no")
        return false;
    if (v == "1" || v == "true" || v == "on" || v == "yes")
        return true;
    ncp2_fatal("%s='%s' is not a boolean (use 0/1, true/false, on/off)",
               name, s);
}

} // namespace

const std::vector<KnobInfo> &
registry()
{
    static const std::vector<KnobInfo> knobs = {
        {"NCP2_SCALE", "enum", "standard",
         "workload size preset: tiny | small | standard"},
        {"NCP2_PROCS", "int", "16",
         "simulated processor count for the benches, in [1,1024] (fatal "
         "above; warns above 256 with the flat barrier)"},
        {"NCP2_JOBS", "int", "hardware concurrency",
         "experiment-engine worker threads (max 256); results are "
         "bit-identical at any width"},
        {"NCP2_RESULTS_DIR", "path", "results",
         "directory for results/<bench>.json and trace output"},
        {"NCP2_FAST_PATH", "bool", "1",
         "0 forces the access-descriptor fast path off (host-time A/B; "
         "simulated results must not change)"},
        {"NCP2_TRACE", "int", "0",
         "event-trace ring capacity in records; 0 = off, 1 = default "
         "capacity (1Mi records), N>1 = that capacity"},
        {"NCP2_CHECK", "bool", "0",
         "run the LRC conformance oracle (src/check) on every shared "
         "access; an illegal read aborts with a provenance report "
         "(simulated results are unchanged either way)"},
        {"NCP2_PDES", "int", "1",
         "in-run parallel executor workers per simulation; 1 = serial "
         "reference executor, >1 = conservative-window parallel "
         "execution (forced serial with a warning where unsupported)"},
        {"NCP2_SPARSE_VT", "bool", "1",
         "0 forces the dense vector-clock reference paths in the "
         "protocols (host-time A/B; simulated results must not change)"},
        {"NCP2_BARRIER_RADIX", "int", "0",
         "TreadMarks barrier topology: 0 = flat single-manager barrier, "
         "r >= 1 = r-ary combining tree rooted at node 0"},
        {"NCP2_MESH_CLUSTER", "int", "0",
         "hierarchical mesh cluster size: 0 = flat mesh, N >= 2 = "
         "clusters of N nodes bridged by gateway routers"},
        {"NCP2_SCALE_NODES", "list", "16,64,256,1024",
         "comma-separated node counts for the fig17_scaling bench, each "
         "in [1,1024]"},
        {"NCP2_SERVE_NODES", "list", "16,64,256",
         "comma-separated node counts for the fig18_serving bench, each "
         "in [1,1024]"},
    };
    return knobs;
}

unsigned
jobs()
{
    const char *s = raw("NCP2_JOBS");
    if (!s || !*s) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1u;
    }
    const long v = parsePositive("NCP2_JOBS", s);
    if (v > 256)
        return 256u;
    return static_cast<unsigned>(v);
}

unsigned
procs()
{
    const char *s = raw("NCP2_PROCS");
    if (!s || !*s)
        return 16u;
    const long v = parsePositive("NCP2_PROCS", s);
    if (v > 1024) {
        ncp2_fatal("NCP2_PROCS=%ld exceeds the supported maximum of 1024 "
                   "(nothing in the model is sized beyond that)", v);
    }
    if (v > 256 && barrierRadix() == 0) {
        ncp2_warn("NCP2_PROCS=%ld with the flat barrier: the single "
                  "manager serializes all arrivals at this scale; set "
                  "NCP2_BARRIER_RADIX (e.g. 8) for a combining tree", v);
    }
    return static_cast<unsigned>(v);
}

std::string
scale()
{
    const char *s = raw("NCP2_SCALE");
    if (!s || !*s)
        return "standard";
    if (std::strcmp(s, "tiny") && std::strcmp(s, "small") &&
        std::strcmp(s, "standard"))
        ncp2_fatal("NCP2_SCALE='%s' is not tiny | small | standard", s);
    return s;
}

bool
fastPath()
{
    const char *s = raw("NCP2_FAST_PATH");
    return !s || !*s || parseBool("NCP2_FAST_PATH", s);
}

bool
checkOracle()
{
    const char *s = raw("NCP2_CHECK");
    return s && *s && parseBool("NCP2_CHECK", s);
}

unsigned
pdesWorkers()
{
    const char *s = raw("NCP2_PDES");
    if (!s || !*s)
        return 1u;
    const long v = parsePositive("NCP2_PDES", s);
    if (v > 64) {
        ncp2_warn("NCP2_PDES=%ld exceeds the supported maximum; "
                  "clamping to 64", v);
        return 64u;
    }
    return static_cast<unsigned>(v);
}

bool
sparseClocks()
{
    const char *s = raw("NCP2_SPARSE_VT");
    return !s || !*s || parseBool("NCP2_SPARSE_VT", s);
}

unsigned
barrierRadix()
{
    const char *s = raw("NCP2_BARRIER_RADIX");
    if (!s || !*s || !std::strcmp(s, "0"))
        return 0u;
    return static_cast<unsigned>(parsePositive("NCP2_BARRIER_RADIX", s));
}

unsigned
meshCluster()
{
    const char *s = raw("NCP2_MESH_CLUSTER");
    if (!s || !*s || !std::strcmp(s, "0"))
        return 0u;
    const long v = parsePositive("NCP2_MESH_CLUSTER", s);
    if (v == 1) {
        ncp2_warn("NCP2_MESH_CLUSTER=1 (clusters of one node) is the "
                  "flat mesh; ignoring");
        return 0u;
    }
    return static_cast<unsigned>(v);
}

std::vector<unsigned>
scaleNodes()
{
    const char *s = raw("NCP2_SCALE_NODES");
    if (!s || !*s)
        return {16u, 64u, 256u, 1024u};
    std::vector<unsigned> out;
    std::string item;
    for (const char *p = s;; ++p) {
        if (*p && *p != ',') {
            item += *p;
            continue;
        }
        const long v = parsePositive("NCP2_SCALE_NODES", item.c_str());
        if (v > 1024)
            ncp2_fatal("NCP2_SCALE_NODES entry %ld exceeds the supported "
                       "maximum of 1024", v);
        out.push_back(static_cast<unsigned>(v));
        item.clear();
        if (!*p)
            break;
    }
    return out;
}

std::vector<unsigned>
serveNodes()
{
    const char *s = raw("NCP2_SERVE_NODES");
    if (!s || !*s)
        return {16u, 64u, 256u};
    std::vector<unsigned> out;
    std::string item;
    for (const char *p = s;; ++p) {
        if (*p && *p != ',') {
            item += *p;
            continue;
        }
        const long v = parsePositive("NCP2_SERVE_NODES", item.c_str());
        if (v > 1024)
            ncp2_fatal("NCP2_SERVE_NODES entry %ld exceeds the supported "
                       "maximum of 1024", v);
        out.push_back(static_cast<unsigned>(v));
        item.clear();
        if (!*p)
            break;
    }
    return out;
}

std::string
resultsDir()
{
    const char *s = raw("NCP2_RESULTS_DIR");
    return s && *s ? s : "results";
}

std::size_t
traceCapacity()
{
    const char *s = raw("NCP2_TRACE");
    if (!s || !*s || !std::strcmp(s, "0"))
        return 0;
    const long v = parsePositive("NCP2_TRACE", s);
    if (v == 1)
        return default_trace_capacity;
    return static_cast<std::size_t>(v);
}

void
printListing(std::ostream &os)
{
    os << "NCP2_* environment knobs:\n";
    const auto values = activeValues();
    const auto &reg = registry();
    for (std::size_t i = 0; i < reg.size(); ++i) {
        os << "  " << reg[i].name << " (" << reg[i].type
           << ", default: " << reg[i].def << ")\n      " << reg[i].doc
           << "\n      active: " << values[i].second << "\n";
    }
}

std::vector<std::pair<std::string, std::string>>
activeValues()
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(registry().size());
    out.emplace_back("NCP2_SCALE", scale());
    out.emplace_back("NCP2_PROCS", std::to_string(procs()));
    out.emplace_back("NCP2_JOBS", std::to_string(jobs()));
    out.emplace_back("NCP2_RESULTS_DIR", resultsDir());
    out.emplace_back("NCP2_FAST_PATH", fastPath() ? "1" : "0");
    out.emplace_back("NCP2_TRACE", std::to_string(traceCapacity()));
    out.emplace_back("NCP2_CHECK", checkOracle() ? "1" : "0");
    out.emplace_back("NCP2_PDES", std::to_string(pdesWorkers()));
    out.emplace_back("NCP2_SPARSE_VT", sparseClocks() ? "1" : "0");
    out.emplace_back("NCP2_BARRIER_RADIX", std::to_string(barrierRadix()));
    out.emplace_back("NCP2_MESH_CLUSTER", std::to_string(meshCluster()));
    {
        std::string nodes;
        for (unsigned n : scaleNodes()) {
            if (!nodes.empty())
                nodes += ',';
            nodes += std::to_string(n);
        }
        out.emplace_back("NCP2_SCALE_NODES", std::move(nodes));
    }
    {
        std::string nodes;
        for (unsigned n : serveNodes()) {
            if (!nodes.empty())
                nodes += ',';
            nodes += std::to_string(n);
        }
        out.emplace_back("NCP2_SERVE_NODES", std::move(nodes));
    }
    return out;
}

bool
handleCli(int argc, char **argv, std::ostream &os)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--knobs")) {
            printListing(os);
            return true;
        }
        ncp2_fatal("unknown argument '%s' (try --knobs)", argv[i]);
    }
    return false;
}

} // namespace harness::knobs
