/**
 * @file
 * The parallel experiment engine.
 *
 * Every figure in the paper is a batch of completely independent,
 * deterministic simulations (app x protocol x sweep point). The engine
 * runs such a batch on a pool of host worker threads: each job builds
 * its own Workload and System inside the worker (nothing simulated is
 * shared between jobs), runs to completion under a per-job sim::Context,
 * and deposits its result at the job's index. Results therefore come
 * back in submission order and are bit-identical to a serial loop over
 * the same jobs, whatever the worker count — only wall-clock changes.
 *
 * Worker count: NCP2_JOBS if set, else std::thread::hardware_concurrency.
 */

#ifndef NCP2_HARNESS_EXPERIMENT_HH
#define NCP2_HARNESS_EXPERIMENT_HH

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsm/config.hh"
#include "dsm/system.hh"
#include "dsm/workload.hh"

namespace harness
{

/** One independent simulation to run. */
struct Job
{
    /** Display/result label, e.g. "Em3d/I+D" or "TSP/p=16". */
    std::string label;
    /** Full system configuration for the run. */
    dsm::SysConfig cfg;
    /**
     * Builds the job's private Workload instance. Called inside the
     * worker thread, so the factory must not capture mutable state
     * shared with other jobs.
     */
    std::function<std::unique_ptr<dsm::Workload>()> workload;
    /** Suppress warn()/inform() during the run (benches want quiet). */
    bool quiet = true;
};

/** A finished job: its inputs plus the simulation result. */
struct JobResult
{
    std::string label;
    dsm::SysConfig cfg;
    dsm::RunResult run;
    /// Host wall-clock of the run (workload build + simulation), for
    /// tracking simulator performance across revisions. Machine- and
    /// load-dependent: recorded in results JSON, never in stdout tables.
    double wall_seconds = 0;
    /// Empty on success; runAllNoThrow() captures a failed job's
    /// exception message here instead of rethrowing (run is then
    /// default-constructed and must not be interpreted).
    std::string error;
};

/**
 * Fixed-width worker pool over a job list. An engine is stateless
 * between calls; construct once and reuse freely.
 *
 * When jobs request in-run parallel execution (SysConfig::pdes_workers
 * > 1) the effective pool width is clamped so that NCP2_JOBS x
 * NCP2_PDES does not oversubscribe the host cores (warns once per
 * process). Results are bit-identical at any width either way.
 */
class ExperimentEngine
{
  public:
    /** @param workers pool width; 0 or 1 runs inline on the caller. */
    explicit ExperimentEngine(unsigned workers = workersFromEnv());

    /**
     * Run every job and return results in submission order. The first
     * exception thrown by a job (in job order) is rethrown after all
     * workers have drained.
     */
    std::vector<JobResult> runAll(const std::vector<Job> &jobs) const;

    /**
     * Like runAll(), but a failing job never takes the batch down:
     * its exception message lands in JobResult::error and the other
     * jobs keep running. The fuzzing campaign (bench/fuzz_check) needs
     * every failing seed, not just the first.
     */
    std::vector<JobResult> runAllNoThrow(const std::vector<Job> &jobs) const;

    unsigned workers() const { return workers_; }

    /**
     * NCP2_JOBS, validated (fatal on garbage or non-positive, clamped
     * to 256); defaults to the hardware concurrency.
     */
    static unsigned workersFromEnv();

  private:
    std::vector<JobResult> runPool(const std::vector<Job> &jobs,
                                   std::vector<std::exception_ptr> &errors)
        const;

    unsigned workers_;
};

/** Serial reference implementation, for equivalence testing. */
std::vector<JobResult> runSerial(const std::vector<Job> &jobs);

} // namespace harness

#endif // NCP2_HARNESS_EXPERIMENT_HH
