/**
 * @file
 * The NCP2_* environment-knob registry.
 *
 * Every runtime tunable the harness and benches honour is declared here
 * once, with its type, default and documentation, and read through a
 * typed accessor that validates the raw environment string (fatal on
 * garbage, clamping where a hard limit exists). Nothing outside this
 * module calls std::getenv("NCP2_..."): call sites that used to parse
 * ad-hoc — NCP2_JOBS in the experiment engine, NCP2_RESULTS_DIR in the
 * JSON writer, NCP2_SCALE / NCP2_PROCS / NCP2_FAST_PATH in
 * figure_common — now delegate to these accessors, so the parsing,
 * limits and error messages are in one place.
 *
 * Accessors re-read the environment on every call (no memoization):
 * they are off the simulation hot path, and tests legitimately flip
 * knobs between runs within one process.
 *
 * `--knobs` on any figure bench prints printListing(); activeValues()
 * records the effective settings into the results JSON (schema v2) so
 * a results file is self-describing.
 */

#ifndef NCP2_HARNESS_KNOBS_HH
#define NCP2_HARNESS_KNOBS_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace harness::knobs
{

/** One registry row (static metadata; values come from the accessors). */
struct KnobInfo
{
    const char *name;      ///< environment variable
    const char *type;      ///< human-readable type ("int", "bool", ...)
    const char *def;       ///< rendered default
    const char *doc;       ///< one-line description
};

/** Every knob, in presentation order. */
const std::vector<KnobInfo> &registry();

/** NCP2_JOBS: engine worker threads. Default: hardware concurrency. */
unsigned jobs();

/**
 * NCP2_PROCS: simulated processor count for the benches, in [1,1024].
 * Fatal above 1024 (nothing in the model is sized for more); warns
 * above 256 when NCP2_BARRIER_RADIX leaves the flat barrier in place,
 * whose single manager serializes all arrivals at that scale.
 */
unsigned procs();

/** NCP2_SCALE: workload size preset: tiny | small | standard. */
std::string scale();

/** NCP2_FAST_PATH: 0/false/off disables the access-descriptor fast
 *  path (bool knobs accept 0/1, true/false, on/off; fatal on junk). */
bool fastPath();

/** NCP2_CHECK: enable the LRC conformance oracle (src/check). */
bool checkOracle();

/**
 * NCP2_PDES: in-run parallel executor worker threads per simulation.
 * 1 (default) = the serial reference executor; >1 enables the
 * conservative-window parallel executor where the protocol supports it
 * (System clamps and warns otherwise).
 */
unsigned pdesWorkers();

/** NCP2_RESULTS_DIR: where results JSON documents are written. */
std::string resultsDir();

/**
 * NCP2_TRACE: event-trace ring capacity in records. 0/unset = tracing
 * off; 1 = on with the default capacity; any other positive integer is
 * the capacity itself.
 */
std::size_t traceCapacity();

/** The default ring capacity NCP2_TRACE=1 selects. */
inline constexpr std::size_t default_trace_capacity = 1u << 20;

/** NCP2_SPARSE_VT: 0 forces the dense vector-clock reference paths
 *  (host-time A/B; simulated results must not change). Default on. */
bool sparseClocks();

/**
 * NCP2_BARRIER_RADIX: TreadMarks barrier topology. 0 (default) = the
 * flat single-manager barrier; r >= 1 = an r-ary combining tree rooted
 * at node 0 (r >= num_procs degenerates to the flat message pattern).
 */
unsigned barrierRadix();

/**
 * NCP2_MESH_CLUSTER: hierarchical mesh cluster size. 0 (default) = the
 * flat mesh; N >= 2 = clusters of N nodes bridged by gateway routers.
 */
unsigned meshCluster();

/**
 * NCP2_SCALE_NODES: comma-separated simulated node counts for the
 * fig17_scaling bench (each in [1,1024]). Default: 16,64,256,1024.
 */
std::vector<unsigned> scaleNodes();

/**
 * NCP2_SERVE_NODES: comma-separated simulated node counts for the
 * fig18_serving bench (each in [1,1024]). Default: 16,64,256.
 */
std::vector<unsigned> serveNodes();

/** Render the registry as the --knobs listing. */
void printListing(std::ostream &os);

/**
 * The effective value of every knob as a string, in registry order,
 * for embedding in results JSON. Reads (and therefore validates) each
 * knob.
 */
std::vector<std::pair<std::string, std::string>> activeValues();

/**
 * Handle a bench command line: if any argument is "--knobs", print the
 * listing to @p os and return true (caller exits 0). Unknown arguments
 * are fatal, so a typo cannot silently run the full bench.
 */
bool handleCli(int argc, char **argv, std::ostream &os);

} // namespace harness::knobs

#endif // NCP2_HARNESS_KNOBS_HH
