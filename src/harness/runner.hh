/**
 * @file
 * The experiment driver: build a System from a SysConfig, run a
 * workload under the configured protocol, and render the paper's
 * breakdown rows.
 */

#ifndef NCP2_HARNESS_RUNNER_HH
#define NCP2_HARNESS_RUNNER_HH

#include <memory>
#include <ostream>
#include <string>

#include "dsm/config.hh"
#include "dsm/protocol.hh"
#include "dsm/system.hh"
#include "dsm/workload.hh"

namespace harness
{

/** Instantiate the protocol selected by @p cfg. */
std::unique_ptr<dsm::Protocol> makeProtocol(const dsm::SysConfig &cfg);

/** Run @p w once under @p cfg; validates and returns the result. */
dsm::RunResult runOnce(const dsm::SysConfig &cfg, dsm::Workload &w);

/**
 * Aggregate of a run used by the figure benches: the execution time and
 * the five paper categories, averaged over processors.
 */
struct BreakdownRow
{
    std::string label;
    double exec_ticks = 0;
    double busy = 0, data = 0, synch = 0, ipc = 0, others = 0;
    double idle = 0;     ///< open-loop arrival waits (serving workloads)
    double diff_pct = 0; ///< CPU diff-op share of execution (fig 2 label)

    /** Build from a run result. */
    static BreakdownRow from(const std::string &label,
                             const dsm::RunResult &r);

    /** Normalize every column against @p base's execution time (in %). */
    BreakdownRow normalizedTo(const BreakdownRow &base) const;
};

/** Print rows as the paper's stacked-bar data (percent columns). */
void printBreakdownTable(std::ostream &os, const std::string &title,
                         const std::vector<BreakdownRow> &rows);

/** Print the Table-1 parameter block for reproducibility. */
void printConfig(std::ostream &os, const dsm::SysConfig &cfg);

} // namespace harness

#endif // NCP2_HARNESS_RUNNER_HH
