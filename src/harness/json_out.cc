#include "harness/json_out.hh"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "harness/knobs.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace harness
{

namespace
{

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // Round-trippable and integer-exact where possible.
    std::ostringstream ss;
    ss.precision(std::numeric_limits<double>::max_digits10);
    ss << v;
    os << ss.str();
}

const char *
protocolName(dsm::ProtocolKind k)
{
    switch (k) {
      case dsm::ProtocolKind::treadmarks: return "treadmarks";
      case dsm::ProtocolKind::aurc: return "aurc";
    }
    return "?";
}

const char *
strategyName(dsm::PrefetchStrategy s)
{
    switch (s) {
      case dsm::PrefetchStrategy::always: return "always";
      case dsm::PrefetchStrategy::adaptive: return "adaptive";
      case dsm::PrefetchStrategy::capped: return "capped";
    }
    return "?";
}

void
emitConfig(std::ostream &os, const dsm::SysConfig &cfg)
{
    os << "{\"protocol\":";
    jsonString(os, protocolName(cfg.protocol));
    os << ",\"mode\":";
    jsonString(os, cfg.mode.label());
    os << ",\"prefetch_strategy\":";
    jsonString(os, strategyName(cfg.mode.prefetch_strategy));
    os << ",\"lazy_hybrid\":" << (cfg.mode.lazy_hybrid ? "true" : "false")
       << ",\"num_procs\":" << cfg.num_procs
       << ",\"page_bytes\":" << cfg.page_bytes
       << ",\"heap_bytes\":" << cfg.heap_bytes
       << ",\"cache_bytes\":" << cfg.cache.size_bytes
       << ",\"cache_line_bytes\":" << cfg.cache.line_bytes
       << ",\"write_buffer_entries\":" << cfg.write_buffer_entries
       << ",\"tlb_entries\":" << cfg.tlb_entries
       << ",\"mem_setup_cycles\":" << cfg.memory.setup_cycles
       << ",\"mem_word_cycles\":" << cfg.memory.word_cycles
       << ",\"net_path_width_bits\":" << cfg.net.path_width_bits
       << ",\"net_switch_cycles\":" << cfg.net.switch_cycles
       << ",\"net_wire_cycles\":" << cfg.net.wire_cycles
       << ",\"net_msg_overhead\":" << cfg.net.msg_overhead
       << ",\"pci_setup_cycles\":" << cfg.pci.setup_cycles
       << ",\"pci_word_cycles\":" << cfg.pci.word_cycles
       << ",\"interrupt_cycles\":" << cfg.interrupt_cycles
       << ",\"update_overhead_cycles\":" << cfg.update_overhead_cycles
       << ",\"sparse_clocks\":" << (cfg.sparse_clocks ? "true" : "false")
       << ",\"barrier_radix\":" << cfg.barrier_radix
       << ",\"mesh_cluster\":" << cfg.mesh_cluster
       << ",\"seed\":" << cfg.seed << "}";
}

void
emitStats(std::ostream &os, const sim::StatSnapshot &s)
{
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < s.counters.size(); ++i) {
        if (i)
            os << ',';
        jsonString(os, s.counters[i].name);
        os << ':';
        jsonNumber(os, s.counters[i].value);
    }
    os << "},\"accums\":{";
    for (std::size_t i = 0; i < s.accums.size(); ++i) {
        if (i)
            os << ',';
        jsonString(os, s.accums[i].name);
        os << ":{\"sum\":";
        jsonNumber(os, s.accums[i].sum);
        os << ",\"samples\":" << s.accums[i].samples << ",\"mean\":";
        jsonNumber(os, s.accums[i].mean);
        os << '}';
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < s.hists.size(); ++i) {
        const auto &h = s.hists[i];
        if (i)
            os << ',';
        jsonString(os, h.name);
        os << ":{\"total\":" << h.total << ",\"mean\":";
        jsonNumber(os, h.mean);
        os << ",\"max\":";
        jsonNumber(os, h.max);
        os << ",\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b)
                os << ',';
            jsonNumber(os, h.bounds[b]);
        }
        os << "],\"counts\":[";
        for (std::size_t c = 0; c < h.counts.size(); ++c) {
            if (c)
                os << ',';
            os << h.counts[c];
        }
        os << "]}";
    }
    os << "},\"sketches\":{";
    for (std::size_t i = 0; i < s.sketches.size(); ++i) {
        const auto &q = s.sketches[i];
        if (i)
            os << ',';
        jsonString(os, q.name);
        os << ":{\"count\":" << q.count << ",\"sum\":" << q.sum
           << ",\"max\":" << q.max << ",\"p50\":" << q.p50
           << ",\"p99\":" << q.p99 << ",\"p999\":" << q.p999 << '}';
    }
    os << "},\"children\":{";
    for (std::size_t i = 0; i < s.children.size(); ++i) {
        if (i)
            os << ',';
        jsonString(os, s.children[i].name);
        os << ':';
        emitStats(os, s.children[i]);
    }
    os << "}}";
}

void
emitRun(std::ostream &os, const JobResult &jr)
{
    const BreakdownRow row = BreakdownRow::from(jr.label, jr.run);
    os << "{\"label\":";
    jsonString(os, jr.label);
    os << ",\"config\":";
    emitConfig(os, jr.cfg);
    os << ",\"exec_ticks\":" << jr.run.exec_ticks << ",\"seconds\":";
    jsonNumber(os, jr.run.seconds());
    os << ",\"wall_seconds\":";
    jsonNumber(os, jr.wall_seconds);
    os << ",\"breakdown\":{\"busy\":";
    jsonNumber(os, row.busy);
    os << ",\"data\":";
    jsonNumber(os, row.data);
    os << ",\"synch\":";
    jsonNumber(os, row.synch);
    os << ",\"ipc\":";
    jsonNumber(os, row.ipc);
    os << ",\"others\":";
    jsonNumber(os, row.others);
    os << ",\"idle\":";
    jsonNumber(os, row.idle);
    os << ",\"diff_pct\":";
    jsonNumber(os, row.diff_pct);
    os << "},\"net\":{\"messages\":" << jr.run.net.messages
       << ",\"bytes\":" << jr.run.net.bytes
       << ",\"latency_cycles\":" << jr.run.net.latency_cycles
       << ",\"contention_cycles\":" << jr.run.net.contention_cycles
       << "},\"stats\":{";
    // The root group is name-keyed like children, so flat "tmk.X" paths
    // read straight off the document. Empty when the protocol exports
    // no StatGroup.
    bool first = true;
    if (!jr.run.stats.name.empty()) {
        jsonString(os, jr.run.stats.name);
        os << ':';
        emitStats(os, jr.run.stats);
        first = false;
    }
    // The workload's own stat tree (e.g. "serve") sits beside the
    // protocol group, keyed the same way.
    if (!jr.run.app_stats.name.empty()) {
        if (!first)
            os << ',';
        jsonString(os, jr.run.app_stats.name);
        os << ':';
        emitStats(os, jr.run.app_stats);
    }
    os << "}}";
}

} // namespace

std::string
resultsDir()
{
    return knobs::resultsDir();
}

void
emitResultsJson(std::ostream &os, const std::string &bench,
                const std::vector<JobResult> &results, unsigned workers)
{
    os << "{\"bench\":";
    jsonString(os, bench);
    os << ",\"schema_version\":2,\"workers\":" << workers << ",\"knobs\":{";
    const auto knob_values = knobs::activeValues();
    for (std::size_t i = 0; i < knob_values.size(); ++i) {
        if (i)
            os << ',';
        jsonString(os, knob_values[i].first);
        os << ':';
        jsonString(os, knob_values[i].second);
    }
    os << "},\"runs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            os << ',';
        os << "\n  ";
        emitRun(os, results[i]);
    }
    os << "\n]}\n";
}

std::string
writeResultsJson(const std::string &bench,
                 const std::vector<JobResult> &results, unsigned workers)
{
    const std::filesystem::path dir(resultsDir());
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        ncp2_fatal("cannot create results dir '%s': %s",
                   dir.string().c_str(), ec.message().c_str());

    const std::filesystem::path path = dir / (bench + ".json");
    std::ofstream os(path);
    if (!os)
        ncp2_fatal("cannot open '%s' for writing", path.string().c_str());
    emitResultsJson(os, bench, results, workers);
    os.flush();
    if (!os)
        ncp2_fatal("write to '%s' failed", path.string().c_str());
    return path.string();
}

} // namespace harness
