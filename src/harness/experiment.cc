#include "harness/experiment.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include "harness/knobs.hh"
#include "harness/runner.hh"
#include "sim/context.hh"
#include "sim/logging.hh"

namespace harness
{

namespace
{

/** Run one job under its own sim::Context; the worker-side body. */
JobResult
runJob(const Job &job)
{
    sim::Context ctx;
    ctx.quiet = job.quiet;
    ctx.label = job.label;
    sim::Context::Scope scope(ctx);

    ncp2_assert(static_cast<bool>(job.workload),
                "job '%s' has no workload factory", job.label.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<dsm::Workload> w = job.workload();
    dsm::RunResult run = runOnce(job.cfg, *w);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return JobResult{job.label, job.cfg, std::move(run), wall, {}};
}

} // namespace

ExperimentEngine::ExperimentEngine(unsigned workers) : workers_(workers)
{
    if (workers_ == 0)
        workers_ = 1;
}

unsigned
ExperimentEngine::workersFromEnv()
{
    return knobs::jobs();
}

std::vector<JobResult>
ExperimentEngine::runAll(const std::vector<Job> &jobs) const
{
    std::vector<std::exception_ptr> errors(jobs.size());
    std::vector<JobResult> results = runPool(jobs, errors);
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

std::vector<JobResult>
ExperimentEngine::runAllNoThrow(const std::vector<Job> &jobs) const
{
    std::vector<std::exception_ptr> errors(jobs.size());
    std::vector<JobResult> results = runPool(jobs, errors);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!errors[i])
            continue;
        results[i].label = jobs[i].label;
        results[i].cfg = jobs[i].cfg;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            results[i].error = e.what();
        } catch (...) {
            results[i].error = "unknown exception";
        }
        if (results[i].error.empty())
            results[i].error = "(empty exception message)";
    }
    return results;
}

std::vector<JobResult>
ExperimentEngine::runPool(const std::vector<Job> &jobs,
                          std::vector<std::exception_ptr> &errors) const
{
    std::vector<JobResult> results(jobs.size());
    std::atomic<std::size_t> next{0};

    auto drain = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            try {
                results[i] = runJob(jobs[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    unsigned width = static_cast<unsigned>(
        std::min<std::size_t>(workers_, jobs.size()));

    // Two layers of parallelism multiply: engine workers (NCP2_JOBS)
    // each running a simulation that may itself spin up pdes_workers
    // threads (NCP2_PDES). Oversubscribing the host does not change any
    // simulated result, but it trades throughput for context-switch
    // overhead, so clamp the pool so width x max(pdes_workers) stays
    // within the hardware concurrency.
    unsigned max_pdes = 1;
    for (const Job &job : jobs)
        max_pdes = std::max(max_pdes, std::max(1u, job.cfg.pdes_workers));
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (max_pdes > 1 && width > 1 && width * max_pdes > hw) {
        const unsigned clamped = std::max(1u, hw / max_pdes);
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            ncp2_warn("NCP2_JOBS x NCP2_PDES (%u x %u) oversubscribes "
                      "%u host cores; clamping the engine pool to %u "
                      "workers",
                      width, max_pdes, hw, clamped);
        }
        width = clamped;
    }
    if (width <= 1) {
        drain();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(width);
        for (unsigned t = 0; t < width; ++t)
            pool.emplace_back(drain);
        for (auto &t : pool)
            t.join();
    }
    return results;
}

std::vector<JobResult>
runSerial(const std::vector<Job> &jobs)
{
    std::vector<JobResult> results;
    results.reserve(jobs.size());
    for (const Job &job : jobs)
        results.push_back(runJob(job));
    return results;
}

} // namespace harness
