#include "harness/runner.hh"

#include <iomanip>

#include "aurc/aurc.hh"
#include "sim/stats.hh"
#include "tmk/treadmarks.hh"

namespace harness
{

std::unique_ptr<dsm::Protocol>
makeProtocol(const dsm::SysConfig &cfg)
{
    switch (cfg.protocol) {
      case dsm::ProtocolKind::treadmarks:
        return tmk::makeTreadMarks(cfg.mode);
      case dsm::ProtocolKind::aurc:
        return aurc::makeAurc(cfg.mode.prefetch);
    }
    ncp2_panic("unknown protocol kind");
}

dsm::RunResult
runOnce(const dsm::SysConfig &cfg, dsm::Workload &w)
{
    dsm::System sys(cfg, makeProtocol(cfg));
    return sys.run(w);
}

BreakdownRow
BreakdownRow::from(const std::string &label, const dsm::RunResult &r)
{
    BreakdownRow row;
    row.label = label;
    row.exec_ticks = static_cast<double>(r.exec_ticks);
    const dsm::Breakdown t = r.total();
    const double n = static_cast<double>(r.bd.size());
    row.busy = static_cast<double>(t.get(dsm::Cat::busy)) / n;
    row.data = static_cast<double>(t.get(dsm::Cat::data)) / n;
    row.synch = static_cast<double>(t.get(dsm::Cat::synch)) / n;
    row.ipc = static_cast<double>(t.get(dsm::Cat::ipc)) / n;
    row.others = static_cast<double>(t.others()) / n;
    row.idle = static_cast<double>(t.get(dsm::Cat::idle)) / n;
    // Idle (open-loop arrival waits) is excluded from the paper's
    // five-way stacked bar; serving benches report it separately.
    const double total = row.busy + row.data + row.synch + row.ipc +
                         row.others;
    row.diff_pct = total > 0
        ? 100.0 * static_cast<double>(t.diff_op_cycles) / n / total
        : 0.0;
    return row;
}

BreakdownRow
BreakdownRow::normalizedTo(const BreakdownRow &base) const
{
    BreakdownRow r = *this;
    const double scale = 100.0 / base.exec_ticks;
    r.exec_ticks = exec_ticks * scale;
    r.busy = busy * scale;
    r.data = data * scale;
    r.synch = synch * scale;
    r.ipc = ipc * scale;
    r.others = others * scale;
    r.idle = idle * scale;
    return r;
}

void
printBreakdownTable(std::ostream &os, const std::string &title,
                    const std::vector<BreakdownRow> &rows)
{
    os << "== " << title << " ==\n";
    sim::Table t({"variant", "total%", "busy%", "data%", "synch%", "ipc%",
                  "others%", "diff-ops%"});
    for (const auto &r : rows) {
        t.addRow({r.label, sim::Table::fmt(r.exec_ticks, 1),
                  sim::Table::fmt(r.busy, 1), sim::Table::fmt(r.data, 1),
                  sim::Table::fmt(r.synch, 1), sim::Table::fmt(r.ipc, 1),
                  sim::Table::fmt(r.others, 1),
                  sim::Table::fmt(r.diff_pct, 1)});
    }
    t.print(os);
}

void
printConfig(std::ostream &os, const dsm::SysConfig &cfg)
{
    os << "-- system parameters (Table 1; 1 cycle = 10 ns) --\n"
       << "procs=" << cfg.num_procs << " page=" << cfg.page_bytes
       << "B cache=" << cfg.cache.size_bytes / 1024 << "KB/"
       << cfg.cache.line_bytes << "B wbuf=" << cfg.write_buffer_entries
       << " tlb=" << cfg.tlb_entries << "x" << cfg.tlb_fill_cycles
       << "cy int=" << cfg.interrupt_cycles << "cy\n"
       << "mem setup=" << cfg.memory.setup_cycles << "cy word="
       << cfg.memory.word_cycles << "cy (lat=" << cfg.memLatencyNs()
       << "ns bw=" << std::fixed << std::setprecision(0)
       << cfg.memBandwidthMBs() << "MB/s)"
       << " pci=" << cfg.pci.setup_cycles << "+" << cfg.pci.word_cycles
       << "cy/word\n"
       << "net width=" << cfg.net.path_width_bits << "b switch="
       << cfg.net.switch_cycles << " wire=" << cfg.net.wire_cycles
       << " overhead=" << cfg.net.msg_overhead << "cy (bw="
       << std::setprecision(0) << cfg.net.bandwidthMBs() << "MB/s)\n"
       << "twin=" << cfg.twin_cycles_per_word << "cy/w diff="
       << cfg.diff_cycles_per_word << "cy/w list=" << cfg.list_cycles
       << "cy/el dma-scan=" << cfg.dma_scan_empty << ".."
       << cfg.dma_scan_full << "cy\n";
    os.unsetf(std::ios::floatfield);
}

} // namespace harness
