/**
 * @file
 * System configuration: Table 1 of the paper plus protocol/run options.
 *
 * All times are in 10 ns processor cycles; the computation processor,
 * the protocol-controller core and its DMA engine run at the same clock
 * (paper section 4.1).
 */

#ifndef NCP2_DSM_CONFIG_HH
#define NCP2_DSM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "mem/cache.hh"
#include "mem/memory.hh"
#include "net/mesh.hh"
#include "pcib/pci_bus.hh"
#include "sim/types.hh"

namespace dsm
{

/** Which software-DSM protocol runs the coherence. */
enum class ProtocolKind
{
    treadmarks, ///< lazy release consistency with diffs
    aurc,       ///< automatic updates + optimized pairwise sharing
};

/**
 * Diff-prefetching strategy (the paper evaluates only `always`; its
 * companion report - Bianchini, Pinto & Amorim, "Page Fault Behavior
 * and Prefetching in Software DSMs", ES-401/96 - proposes adaptive
 * variants, which we implement as extensions for the ablation bench).
 */
enum class PrefetchStrategy
{
    always,   ///< the paper's heuristic: every invalidated cached-and-
              ///< referenced page is prefetched
    adaptive, ///< per-page usefulness history: a page whose prefetches
              ///< keep going unused stops being prefetched
    capped,   ///< at most K prefetches per synchronization event, so
              ///< requests cannot cluster into a traffic burst
};

/**
 * The paper's overlap techniques. Base TreadMarks is no flags; the six
 * evaluated variants are Base, I, I+D, P, I+P, I+P+D. AURC uses only
 * the prefetch flag.
 */
struct OverlapMode
{
    bool offload = false;  ///< "I": controller runs basic protocol tasks
    bool hw_diffs = false; ///< "D": snooped bit vectors + DMA diff engine
    bool prefetch = false; ///< "P": diff/page prefetching at acquires
    PrefetchStrategy prefetch_strategy = PrefetchStrategy::always;
    unsigned prefetch_cap = 4; ///< per-sync budget for `capped`
    /// Lazy Hybrid (Dwarkadas et al. '93, contrasted with prefetching in
    /// the paper's section 6): the releaser piggybacks its own diffs on
    /// the lock-grant message for pages the acquirer caches, so those
    /// pages need neither invalidation nor a later fault.
    bool lazy_hybrid = false;

    std::string
    label() const
    {
        if (!offload && !hw_diffs && !prefetch)
            return "Base";
        std::string s;
        auto add = [&s](const char *t) {
            if (!s.empty())
                s += "+";
            s += t;
        };
        if (offload)
            add("I");
        if (prefetch)
            add("P");
        if (hw_diffs)
            add("D");
        return s;
    }
};

/** Full system configuration (Table 1 defaults). */
struct SysConfig
{
    // --- machine geometry ---
    unsigned num_procs = 16;
    unsigned page_bytes = 4096;
    std::uint64_t heap_bytes = 64ull << 20; ///< global shared heap

    // --- per-node memory system ---
    mem::MemoryTiming memory;       ///< setup 10 + 3/word
    mem::CacheGeometry cache;       ///< 128 KB direct-mapped, 32 B lines
    unsigned write_buffer_entries = 4;
    unsigned tlb_entries = 128;
    sim::Cycles tlb_fill_cycles = 100;

    // --- interconnect and PCI ---
    net::NetTiming net;             ///< 8-bit mesh, switch 4, wire 2
    /// Hierarchical mesh: nodes per cluster. 0 (the default) keeps the
    /// paper's flat mesh, bit-identical to the historical model. N >= 2
    /// groups nodes into clusters of N, each an internal sub-mesh using
    /// `net` timing; clusters connect through their gateway node (local
    /// node 0) over an outer mesh using `inter_net` timing. This keeps
    /// the link count O(n) at 256-1024 nodes instead of a giant flat
    /// grid, and models the machine-room reality of fast intra-rack,
    /// slower inter-rack fabric.
    unsigned mesh_cluster = 0;
    /// Inter-cluster link timing (only read when mesh_cluster >= 2).
    /// Default: the same 8-bit/50 MB/s links as the intra-cluster mesh;
    /// benches widen it for backbone-style configurations.
    net::NetTiming inter_net;
    pcib::PciTiming pci;            ///< 10 + 3/word

    // --- protocol costs ---
    sim::Cycles interrupt_cycles = 400;   ///< all interrupts / traps
    sim::Cycles list_cycles = 6;          ///< per list element processed
    sim::Cycles twin_cycles_per_word = 5; ///< + memory accesses
    sim::Cycles diff_cycles_per_word = 7; ///< software create/apply, + memory
    sim::Cycles cmd_issue_cycles = 10;    ///< CPU cost to enqueue a
                                          ///< controller command

    // --- DMA diff engine (paper section 3.1) ---
    sim::Cycles dma_scan_empty = 200;  ///< bit-vector scan, 0 words written
    sim::Cycles dma_scan_full = 2100;  ///< bit-vector scan, all 1024 written

    // --- AURC ---
    unsigned write_cache_entries = 4;  ///< combining write cache at the NI
    /// Per-update messaging overhead. The paper's default results
    /// "optimistically assume that update messages have a messaging
    /// overhead of a single cycle"; figure 13's second experiment lifts
    /// this assumption.
    sim::Cycles update_overhead_cycles = 1;

    // --- protocol selection ---
    ProtocolKind protocol = ProtocolKind::treadmarks;
    OverlapMode mode;

    // --- run control ---
    std::uint64_t seed = 12345;
    sim::Tick max_ticks = 400ull * 1000 * 1000 * 1000; ///< watchdog
    /// Fibers flush accumulated busy time to the event queue at this
    /// granularity; smaller = more precise interleaving, slower host run.
    sim::Cycles time_quantum = 200;
    /// Consult the per-node access-descriptor cache before the virtual
    /// protocol path. Host-time optimization only: simulated results are
    /// bit-identical either way (tests/test_integration.cc enforces it).
    bool fast_path = true;
    /// Host stack bytes per simulated CPU fiber. 1 MB suits every
    /// in-tree workload (deepest recursion: Barnes tree walks, TSP
    /// branch-and-bound); raise it for workloads that recurse harder.
    std::size_t fiber_stack_bytes = 1u << 20;
    /// Event-trace ring capacity in records; 0 (the default) disables
    /// tracing entirely — the System then owns no sim::Trace and every
    /// emission site reduces to one never-taken branch. Simulated
    /// results are bit-identical with tracing on or off. The benches
    /// set this from the NCP2_TRACE knob.
    std::size_t trace_capacity = 0;
    /// Run the LRC conformance oracle (src/check) alongside the
    /// simulation: every shared read is validated against the recorded
    /// synchronization order, and an illegal value aborts the run with
    /// a provenance report. Host-side bookkeeping only — simulated
    /// results are bit-identical with the oracle on or off. The
    /// benches set this from the NCP2_CHECK knob.
    bool check = false;
    /// Where the oracle's violation trace dump lands (one Chrome-trace
    /// JSON per aborted run) when tracing is enabled as well.
    std::string check_dump_dir = "results/check";
    /// Host worker threads for the in-run parallel executor
    /// (sim/sched_group.hh): conservative-lookahead PDES over the
    /// per-node event queues. 1 (the default) keeps the serial merged
    /// scheduler, whose results are bit-identical to the historical
    /// single-queue implementation. More workers require a protocol
    /// that declares itself shard-safe (Protocol::pdesSafe) and force
    /// tracing off; lock-grant rendezvous makes parallel runs
    /// deterministic only up to same-window lock races (DESIGN.md
    /// "Parallel in-run simulation"). The benches set this from the
    /// NCP2_PDES knob.
    unsigned pdes_workers = 1;
    /// Walk sparse clock deltas instead of dense n-wide vector clocks in
    /// the protocols' notice-count / invalidation / merge hot paths.
    /// Host representation only: the simulated wire format (and thus
    /// every simulated result) is bit-identical either way, and debug
    /// builds cross-check the sparse paths against the dense ones behind
    /// ncp2_dassert. On by default; NCP2_SPARSE_VT=0 forces the dense
    /// reference implementation.
    bool sparse_clocks = true;
    /// Barrier topology for TreadMarks: 0 (the default) keeps the flat
    /// single-manager barrier, the reference implementation. r >= 2
    /// arranges the processors as an r-ary combining tree rooted at node
    /// 0 (parent(i) = (i-1)/r): arrivals combine write notices up the
    /// tree, releases broadcast down it, so no single node serializes
    /// all n arrival interrupts. r >= num_procs degenerates to a
    /// single-level tree whose message pattern and timing charges are
    /// exactly the flat barrier's (tests pin that bit-identity).
    unsigned barrier_radix = 0;

    unsigned pageWords() const { return page_bytes / 4; }

    /**
     * Memory bandwidth for cache-block transfers in MB/s at 100 MHz
     * (the paper quotes 103 MB/s for the defaults).
     */
    double
    memBandwidthMBs() const
    {
        const double cycles = static_cast<double>(memory.setup_cycles) +
            static_cast<double>(memory.word_cycles) * cache.line_bytes / 4;
        return (cache.line_bytes / cycles) * 100.0;
    }

    /** Memory (setup) latency in nanoseconds; default 100 ns. */
    double
    memLatencyNs() const
    {
        return static_cast<double>(memory.setup_cycles) * 10.0;
    }

    /** Configure memory setup time from a latency in nanoseconds. */
    void
    setMemLatencyNs(double ns)
    {
        memory.setup_cycles =
            static_cast<sim::Cycles>(ns / 10.0 + 0.5);
        if (memory.setup_cycles == 0)
            memory.setup_cycles = 1;
    }

    /** Approximate a target cache-block memory bandwidth in MB/s. */
    void
    setMemBandwidthMBs(double mbs)
    {
        // bytes / ((setup + words*w) * 10ns) = mbs MB/s
        const double words = cache.line_bytes / 4.0;
        double w = (cache.line_bytes * 100.0 / mbs -
                    static_cast<double>(memory.setup_cycles)) / words;
        if (w < 1.0)
            w = 1.0;
        memory.word_cycles = static_cast<sim::Cycles>(w + 0.5);
    }
};

} // namespace dsm

#endif // NCP2_DSM_CONFIG_HH
