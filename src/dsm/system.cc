#include "dsm/system.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "sim/logging.hh"

namespace dsm
{

Node::Node(sim::NodeId id, sim::EventQueue &eq, const SysConfig &cfg)
    : cpu(id, eq, cfg),
      memory(sim::detail::format("mem.n%u", id), cfg.memory),
      cache(cfg.cache),
      tlb(cfg.tlb_entries, cfg.tlb_fill_cycles),
      wbuf(cfg.write_buffer_entries, memory),
      pci(sim::detail::format("pci.n%u", id), cfg.pci),
      controller(id, eq, cfg, memory, pci),
      pages(cfg.page_bytes, cfg.heap_bytes, cfg.num_procs),
      rng(cfg.seed * 1000003u + id)
{
}

System::System(SysConfig cfg, std::unique_ptr<Protocol> protocol)
    : cfg_(cfg), sched_(cfg.num_procs >= 1 ? cfg.num_procs : 1),
      protocol_(std::move(protocol))
{
    ncp2_assert(cfg_.num_procs >= 1, "need at least one processor");
    heap_ = std::make_unique<GlobalHeap>(cfg_.heap_bytes, cfg_.page_bytes);
    net_ = std::make_unique<net::MeshNetwork>(cfg_.num_procs, cfg_.net,
                                              cfg_.mesh_cluster,
                                              cfg_.inter_net);
    router_ = std::make_unique<net::Router>(*net_, sched_);
    shards_.reserve(cfg_.num_procs);
    nodes_.reserve(cfg_.num_procs);
    for (unsigned i = 0; i < cfg_.num_procs; ++i) {
        shards_.push_back(std::make_unique<NodeShard>(i));
        nodes_.push_back(std::make_unique<Node>(i, sched_.queue(i), cfg_));
    }
    if (cfg_.trace_capacity) {
        trace_ = std::make_unique<sim::Trace>(cfg_.trace_capacity);
        barrier_epochs_.assign(cfg_.num_procs, 0);
        // The controller and the mesh emit on their own tracks; hand
        // them the tracer (null stays null when tracing is off).
        net_->setTrace(trace_.get());
        for (auto &n : nodes_)
            n->controller.setTrace(trace_.get());
    }
    if (cfg_.check) {
        check_ =
            std::make_unique<check::LrcOracle>(cfg_.num_procs,
                                               cfg_.page_bytes);
        check_->setViolationHandler([this](const std::string &report) {
            if (trace_) {
                // Land the event trace next to the report so a failing
                // fuzz seed can be replayed visually.
                std::error_code ec;
                std::filesystem::create_directories(cfg_.check_dump_dir,
                                                    ec);
                std::string name = ctx_.label.empty() ? "run" : ctx_.label;
                for (char &c : name)
                    if (c == '/' || c == ' ')
                        c = '_';
                const std::string path =
                    cfg_.check_dump_dir + "/violation_" + name + ".json";
                std::ofstream os(path);
                if (!ec && os) {
                    sim::writeChromeTrace(os, trace_->drain(),
                                          trace_->dropped(),
                                          cfg_.num_procs,
                                          {{"violation", "1"}});
                    ncp2_warn("LRC violation trace dumped to %s",
                              path.c_str());
                }
            }
            ncp2_fatal("%s", report.c_str());
        });
    }
}

System::~System() = default;

unsigned
System::effectiveWorkers() const
{
    unsigned workers = cfg_.pdes_workers ? cfg_.pdes_workers : 1;
    if (workers <= 1)
        return 1;
    const char *why = nullptr;
    if (!protocol_->pdesSafe())
        why = "protocol is not shard-safe";
    else if (trace_)
        why = "event tracing is enabled";
    else if (cfg_.num_procs < 2)
        why = "single-node system";
    else if (net_->minCrossLatency() == sim::tick_never ||
             net_->minCrossLatency() == 0)
        why = "mesh provides no lookahead";
    if (why) {
        ncp2_warn("pdes_workers=%u ignored (%s); running on the serial "
                  "scheduler",
                  workers, why);
        return 1;
    }
    return workers;
}

RunResult
System::run(Workload &workload)
{
    sim::Context::Scope scope(ctx_);
    if (ctx_.label.empty())
        ctx_.label = workload.name();

    unsigned workers = effectiveWorkers();
    if (workers > 1 && !workload.pdesSafe()) {
        ncp2_warn("pdes_workers=%u ignored (workload '%s' is not "
                  "reproducible under in-window lock-grant races); "
                  "running on the serial scheduler",
                  workers, workload.name().c_str());
        workers = 1;
    }
    pdes_active_ = workers > 1;
    router_->setParallel(pdes_active_);

    workload.plan(*heap_, cfg_);
    protocol_->attach(*this);

    for (unsigned i = 0; i < cfg_.num_procs; ++i) {
        Node &n = *nodes_[i];
        n.cpu.start([this, &workload, i]() {
            Proc p(*this, i);
            workload.run(p);
        });
    }

    const bool drained =
        pdes_active_
            ? sched_.runParallel(cfg_.max_ticks, workers,
                                 net_->minCrossLatency(), &ctx_,
                                 [this] { return router_->drain(); })
            : sched_.run(cfg_.max_ticks);
    pdes_active_ = false;
    router_->setParallel(false);
    if (!drained)
        ncp2_fatal("simulation exceeded max_ticks watchdog (%llu)",
                   static_cast<unsigned long long>(cfg_.max_ticks));
    for (unsigned i = 0; i < cfg_.num_procs; ++i) {
        if (!nodes_[i]->cpu.finished()) {
            ncp2_panic("deadlock: processor %u never finished "
                       "(event queue drained)", i);
        }
    }

    protocol_->finalize();
    workload.validate(*this);

    RunResult r;
    for (auto &n : nodes_) {
        if (n->cpu.finishTick() > r.exec_ticks)
            r.exec_ticks = n->cpu.finishTick();
        r.bd.push_back(n->cpu.bd);
    }
    r.net = net_->stats();
    if (const sim::StatGroup *g = protocol_->statGroup())
        r.stats = g->snapshot();
    if (const sim::StatGroup *g = workload.statGroup())
        r.app_stats = g->snapshot();
    if (trace_) {
        // Close the last barrier epoch with the exact end-of-run
        // breakdowns (the same values r.bd carries), so per-epoch
        // deltas reconstructed from the trace telescope to the
        // BreakdownRow aggregates exactly.
        for (unsigned i = 0; i < cfg_.num_procs; ++i)
            emitBdSnapshot(i, r.exec_ticks);
        r.trace = trace_->drain();
        r.trace_dropped = trace_->dropped();
    }
    return r;
}

void
System::emitBdSnapshot(sim::NodeId proc, sim::Tick t)
{
    const Breakdown &b = nodes_[proc]->cpu.bd;
    for (unsigned c = 0; c < num_cats; ++c) {
        trace_->emit(t, proc, sim::TraceEngine::cpu,
                     sim::TraceKind::bd_snapshot, b.cycles[c],
                     static_cast<std::uint16_t>(c));
    }
    trace_->emit(t, proc, sim::TraceEngine::cpu, sim::TraceKind::bd_snapshot,
                 b.diff_op_cycles, static_cast<std::uint16_t>(num_cats));
    trace_->emit(t, proc, sim::TraceEngine::cpu, sim::TraceKind::bd_snapshot,
                 b.diff_op_ctrl_cycles,
                 static_cast<std::uint16_t>(num_cats + 1));
}

void
System::access(sim::NodeId proc, sim::GAddr addr, unsigned bytes,
               bool is_write, void *data)
{
    ncp2_assert(bytes >= 1 && bytes <= 8, "access size out of range");
    ncp2_assert(addr % bytes == 0, "unaligned shared access @%llu",
                static_cast<unsigned long long>(addr));
    ncp2_assert(addr + bytes <= heap_->used(),
                "shared access beyond allocated heap");

    accessOne(*nodes_[proc], proc, addr, bytes, is_write, data);
}

void
System::accessRange(sim::NodeId proc, sim::GAddr addr, unsigned elem_bytes,
                    std::size_t count, bool is_write, void *data)
{
    if (count == 0)
        return;
    ncp2_assert(elem_bytes >= 1 && elem_bytes <= 8,
                "access size out of range");
    ncp2_assert(addr % elem_bytes == 0, "unaligned shared access @%llu",
                static_cast<unsigned long long>(addr));
    ncp2_assert(addr + static_cast<sim::GAddr>(elem_bytes) * count <=
                    heap_->used(),
                "shared range beyond allocated heap");

    Node &n = *nodes_[proc];
    auto *p = static_cast<std::uint8_t *>(data);
    if (!cfg_.fast_path) {
        for (std::size_t i = 0; i < count;
             ++i, addr += elem_bytes, p += elem_bytes)
            accessOne(n, proc, addr, elem_bytes, is_write, p);
        return;
    }
    // Page-sized chunks through the bulk fast loop. Timing is charged
    // per element exactly as the loop above would, so the two branches
    // are bit-identical (the integration suite holds them to that).
    while (count) {
        const std::size_t run = std::min<std::size_t>(
            count, (cfg_.page_bytes - pageOffset(addr)) / elem_bytes);
        ncp2_assert(run, "shared-range element straddles a page boundary");
        accessRunFast(n, proc, addr, elem_bytes, run, is_write, p);
        addr += static_cast<sim::GAddr>(elem_bytes) * run;
        p += static_cast<std::size_t>(elem_bytes) * run;
        count -= run;
    }
}

void
System::accessOne(Node &n, sim::NodeId proc, sim::GAddr addr,
                  unsigned bytes, bool is_write, void *data)
{
    const sim::PageId page = pageOf(addr);
    const unsigned off = pageOffset(addr);

    // Issue slot.
    n.cpu.advance(1, Cat::busy);

    // Address translation.
    const sim::Cycles tlb_penalty = n.tlb.access(page);
    if (tlb_penalty)
        n.cpu.advance(tlb_penalty, Cat::other_tlb);

    // VM protection / coherence. A valid descriptor proves the
    // protocol's own fast-path check would no-op, so the probe stands
    // in for the virtual ensureAccess call; everything else falls back
    // to the slow path below, unchanged.
    if (cfg_.fast_path) {
        if (AccessDesc *d = n.adesc.lookup(page, is_write)) {
            NodePage &pg = *d->pg;
            ncp2_dassert(pg.present() && pg.access != Access::none &&
                             (!is_write || pg.access == Access::readwrite) &&
                             d->data == pg.data.get(),
                         "stale access descriptor for page %llu on node %u",
                         static_cast<unsigned long long>(page), proc);
            // The slot may be flushed while a timing charge below
            // yields the fiber; the data/page pointers stay valid
            // (PageStore never frees), so copy them out first.
            std::uint8_t *pdata = d->data;
            if (!is_write) {
                if (!n.cache.accessRead(addr)) {
                    const sim::Tick arrive = n.cpu.localNow();
                    const sim::Tick done =
                        n.memory.access(arrive, n.cache.lineWords());
                    n.cpu.advance(done - arrive, Cat::other_cache);
                }
                std::memcpy(data, pdata + off, bytes);
                pg.referenced = true;
                pg.prefetched_unused = false;
                if (check_) [[unlikely]]
                    checkAccess(proc, page, off, bytes, pdata, false);
            } else {
                n.cache.accessWrite(addr);
                const sim::Cycles stall = n.wbuf.push(n.cpu.localNow());
                if (stall)
                    n.cpu.advance(stall, Cat::other_wb);
                // The stall can yield the fiber, and an event (e.g. a
                // diff-request service capturing this page) may have
                // write-protected it meanwhile. The store retires after
                // the stall, so it must re-fault: landing it anyway
                // would slip it behind the protocol's twin snapshot and
                // it would never be diffed.
                if (pg.access != Access::readwrite) [[unlikely]]
                    protocol_->ensureAccess(proc, page, true);
                std::memcpy(pdata + off, data, bytes);

                const unsigned word = off / 4;
                const unsigned words = (off % 4 + bytes + 3) / 4;
                for (unsigned w = word; w < word + words; ++w)
                    PageStore::snoopWrite(pg, w);
                pg.referenced = true;
                pg.prefetched_unused = false;
                if (check_) [[unlikely]]
                    checkAccess(proc, page, off, bytes, pdata, true);
                applyWriteHook(n, proc, page, word, words);
            }
            return;
        }
    }

    accessSlow(n, proc, page, addr, off, bytes, is_write, data);
}

void
System::accessSlow(Node &n, sim::NodeId proc, sim::PageId page,
                   sim::GAddr addr, unsigned off, unsigned bytes,
                   bool is_write, void *data)
{
    protocol_->ensureAccess(proc, page, is_write);

    NodePage &pg = n.pages.page(page);
    ncp2_assert(pg.present(), "protocol left page %llu absent on node %u",
                static_cast<unsigned long long>(page), proc);

    if (!is_write) {
        if (!n.cache.accessRead(addr)) {
            const sim::Tick arrive = n.cpu.localNow();
            const sim::Tick done =
                n.memory.access(arrive, n.cache.lineWords());
            n.cpu.advance(done - arrive, Cat::other_cache);
        }
        std::memcpy(data, pg.data.get() + off, bytes);
        pg.referenced = true;
        pg.prefetched_unused = false;
        if (check_) [[unlikely]]
            checkAccess(proc, page, off, bytes, pg.data.get(), false);
    } else {
        // Write-through: probe/update the cache, push through the
        // write buffer, land in local memory.
        n.cache.accessWrite(addr);
        const sim::Cycles stall = n.wbuf.push(n.cpu.localNow());
        if (stall)
            n.cpu.advance(stall, Cat::other_wb);
        // Same mid-stall revocation hazard as the fast path: re-fault
        // if an event write-protected the page during the yield.
        if (pg.access != Access::readwrite) [[unlikely]]
            protocol_->ensureAccess(proc, page, true);
        std::memcpy(pg.data.get() + off, data, bytes);

        const unsigned word = off / 4;
        const unsigned words = (off % 4 + bytes + 3) / 4;
        for (unsigned w = word; w < word + words; ++w)
            PageStore::snoopWrite(pg, w);
        pg.referenced = true;
        pg.prefetched_unused = false;
        if (check_) [[unlikely]]
            checkAccess(proc, page, off, bytes, pg.data.get(), true);
        protocol_->sharedWrite(proc, page, word, words);
    }

    if (cfg_.fast_path)
        installDesc(n, proc, page, pg);
}

namespace
{

/** Fixed-size cases so the common element widths compile to one move. */
inline void
copyElem(void *dst, const void *src, unsigned bytes)
{
    switch (bytes) {
      case 4: std::memcpy(dst, src, 4); break;
      case 8: std::memcpy(dst, src, 8); break;
      case 1: std::memcpy(dst, src, 1); break;
      case 2: std::memcpy(dst, src, 2); break;
      default: std::memcpy(dst, src, bytes); break;
    }
}

} // namespace

void
System::accessRunFast(Node &n, sim::NodeId proc, sim::GAddr addr,
                      unsigned elem_bytes, std::size_t count, bool is_write,
                      std::uint8_t *p)
{
    const sim::PageId page = pageOf(addr);
    unsigned off = pageOffset(addr);
    Cpu &cpu = n.cpu;
    AccessDesc &e = n.adesc.slot(page);

    // Descriptor state hoisted into locals. Anything protocol-owned can
    // change only while the fiber is yielded, so the locals are refreshed
    // exactly when cpu.yields() moves; between yields, skipping the
    // per-element slot probe that accessOne does is unobservable.
    std::uint64_t stamp = cpu.yields() - 1; // forces the first refresh
    bool valid = false;
    std::uint8_t *pdata = nullptr;
    NodePage *pg = nullptr;
    WriteHook hook = WriteHook::protocol;
    IntervalSeq *wi = nullptr;
    IntervalSeq seq = 0;

    for (std::size_t i = 0; i < count;
         ++i, addr += elem_bytes, off += elem_bytes, p += elem_bytes) {
        // Identical charge sequence to accessOne: issue slot, then
        // address translation.
        cpu.advance(1, Cat::busy);
        const sim::Cycles tlb_penalty = n.tlb.access(page);
        if (tlb_penalty)
            cpu.advance(tlb_penalty, Cat::other_tlb);

        // Protection sequence point.
        if (stamp != cpu.yields()) {
            stamp = cpu.yields();
            valid = e.page == page && (!is_write || e.writable);
            if (valid) {
                ncp2_dassert(e.pg->present() &&
                                 e.pg->access != Access::none &&
                                 (!is_write ||
                                  e.pg->access == Access::readwrite) &&
                                 e.data == e.pg->data.get(),
                             "stale access descriptor for page %llu on "
                             "node %u",
                             static_cast<unsigned long long>(page), proc);
                pdata = e.data;
                pg = e.pg;
                hook = e.hook;
                wi = e.word_interval;
                seq = e.open_seq;
            }
        }
        if (!valid) [[unlikely]] {
            accessSlow(n, proc, page, addr, off, elem_bytes, is_write, p);
            stamp = cpu.yields() - 1; // accessSlow may have installed
            continue;
        }

        if (!is_write) {
            if (!n.cache.accessRead(addr)) {
                const sim::Tick arrive = cpu.localNow();
                const sim::Tick done =
                    n.memory.access(arrive, n.cache.lineWords());
                cpu.advance(done - arrive, Cat::other_cache);
            }
            copyElem(p, pdata + off, elem_bytes);
            pg->referenced = true;
            pg->prefetched_unused = false;
            if (check_) [[unlikely]]
                checkAccess(proc, page, off, elem_bytes, pdata, false);
        } else {
            n.cache.accessWrite(addr);
            const sim::Cycles stall = n.wbuf.push(cpu.localNow());
            if (stall)
                cpu.advance(stall, Cat::other_wb);
            // Mid-stall revocation (see accessOne): if the stall
            // yielded and the page lost write access, the store must
            // re-fault before landing. The stamp check below already
            // routes the hook through its re-validating slow path.
            if (stamp != cpu.yields() &&
                pg->access != Access::readwrite) [[unlikely]] {
                protocol_->ensureAccess(proc, page, true);
            }
            copyElem(pdata + off, p, elem_bytes);
            const unsigned word = off / 4;
            const unsigned words = (off % 4 + elem_bytes + 3) / 4;
            for (unsigned w = word; w < word + words; ++w)
                PageStore::snoopWrite(*pg, w);
            pg->referenced = true;
            pg->prefetched_unused = false;
            if (check_) [[unlikely]]
                checkAccess(proc, page, off, elem_bytes, pdata, true);
            // sharedWrite sequence point: a charge above may have
            // yielded and flushed the hook; otherwise apply it inline.
            if (stamp != cpu.yields()) [[unlikely]] {
                applyWriteHook(n, proc, page, word, words);
                stamp = cpu.yields() - 1;
            } else {
                switch (hook) {
                  case WriteHook::none:
                    break;
                  case WriteHook::tmk_interval:
                    for (unsigned w = word; w < word + words; ++w)
                        wi[w] = seq;
                    break;
                  case WriteHook::protocol:
                    protocol_->sharedWrite(proc, page, word, words);
                    break;
                }
            }
        }
    }
}

void
System::applyWriteHook(Node &n, sim::NodeId proc, sim::PageId page,
                       unsigned word, unsigned words)
{
    // Re-validate at the sharedWrite sequence point: the cache and
    // write-buffer charges above can yield the fiber, and protocol
    // activity during a yield may have flushed the descriptor. When the
    // cached hook is gone, do what the slow path would do here.
    const AccessDesc &e = n.adesc.slot(page);
    if (e.page == page && e.writable) {
        switch (e.hook) {
          case WriteHook::none:
            return;
          case WriteHook::tmk_interval:
            for (unsigned w = word; w < word + words; ++w)
                e.word_interval[w] = e.open_seq;
            return;
          case WriteHook::protocol:
            break;
        }
    }
    protocol_->sharedWrite(proc, page, word, words);
}

void
System::installDesc(Node &n, sim::NodeId proc, sim::PageId page, NodePage &pg)
{
    // The slow path's timing charges may have yielded the fiber, and
    // the grant ensureAccess produced can be retracted during a yield;
    // cache only what holds *now* (no yields between here and the
    // checks — the event loop is single-threaded).
    if (!pg.present() || pg.access == Access::none)
        return;
    AccessDesc &e = n.adesc.slot(page);
    e.page = page;
    e.data = pg.data.get();
    e.pg = &pg;
    e.writable = pg.access == Access::readwrite;
    if (e.writable) {
        const WriteDescInfo wd = protocol_->writeDesc(proc, page);
        e.hook = wd.hook;
        e.word_interval = wd.word_interval;
        e.open_seq = wd.open_seq;
    } else {
        e.hook = WriteHook::protocol;
        e.word_interval = nullptr;
        e.open_seq = 0;
    }
}

void
System::readCoherentBytes(sim::GAddr addr, unsigned bytes, void *out)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (bytes) {
        const sim::PageId page = pageOf(addr);
        const unsigned off = pageOffset(addr);
        const unsigned chunk =
            std::min<unsigned>(bytes, cfg_.page_bytes - off);
        auto it = coherent_cache_.find(page);
        if (it == coherent_cache_.end()) {
            std::vector<std::uint8_t> buf(cfg_.page_bytes, 0);
            protocol_->readCoherent(page, buf.data());
            it = coherent_cache_.emplace(page, std::move(buf)).first;
        }
        std::memcpy(dst, it->second.data() + off, chunk);
        dst += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

void
System::checkAccess(sim::NodeId proc, sim::PageId page, unsigned off,
                    unsigned bytes, const std::uint8_t *pdata, bool is_write)
{
    const unsigned word = off / 4;
    const unsigned words = (off % 4 + bytes + 3) / 4;
    // The oracle is one global structure; parallel-executor workers
    // feed it under a mutex (accesses racing inside one lookahead
    // window are causally unrelated under LRC, so their hook order is
    // free — for conforming workloads the updates commute).
    std::unique_lock<std::mutex> guard(check_mu_, std::defer_lock);
    if (pdes_active_)
        guard.lock();
    if (is_write)
        check_->onWrite(proc, page, word, words, pdata);
    else
        check_->onRead(proc, page, word, words, pdata);
}

void
System::acquire(sim::NodeId proc, unsigned lock_id)
{
    protocol_->acquire(proc, lock_id);
    // The grant carries the releaser's knowledge; the protocol cannot
    // return from acquire() before the matching release hook ran.
    if (check_) [[unlikely]] {
        std::unique_lock<std::mutex> guard(check_mu_, std::defer_lock);
        if (pdes_active_)
            guard.lock();
        check_->onAcquire(proc, lock_id);
    }
}

void
System::release(sim::NodeId proc, unsigned lock_id)
{
    // Snapshot the release clock before the protocol can hand the lock
    // (and the knowledge) to a waiting acquirer.
    if (check_) [[unlikely]] {
        std::unique_lock<std::mutex> guard(check_mu_, std::defer_lock);
        if (pdes_active_)
            guard.lock();
        check_->onRelease(proc, lock_id);
    }
    protocol_->release(proc, lock_id);
}

void
System::barrier(sim::NodeId proc, unsigned barrier_id)
{
    // Every processor's arrival hook runs before any departure hook:
    // the protocol barrier cannot return until all have arrived.
    if (check_) [[unlikely]] {
        std::unique_lock<std::mutex> guard(check_mu_, std::defer_lock);
        if (pdes_active_)
            guard.lock();
        check_->onBarrierArrive(proc, barrier_id);
    }
    protocol_->barrier(proc, barrier_id);
    if (check_) [[unlikely]] {
        std::unique_lock<std::mutex> guard(check_mu_, std::defer_lock);
        if (pdes_active_)
            guard.lock();
        check_->onBarrierDepart(proc, barrier_id);
    }
    if (trace_) [[unlikely]] {
        // Epoch boundary: stamp the crossing and this processor's
        // cumulative breakdown, so tools/trace_summary.py can
        // difference consecutive snapshots into per-epoch breakdowns.
        // (Breakdown cycles are accumulated eagerly in Cpu::advance, so
        // they are exact here, not quantum-stale.)
        const sim::Tick t = nodes_[proc]->cpu.localNow();
        trace_->emit(t, proc, sim::TraceEngine::cpu,
                     sim::TraceKind::barrier_epoch, barrier_epochs_[proc]++,
                     static_cast<std::uint16_t>(barrier_id));
        emitBdSnapshot(proc, t);
    }
}

} // namespace dsm
