#include "dsm/system.hh"

#include <cstring>
#include <unordered_map>

#include "sim/logging.hh"

namespace dsm
{

Node::Node(sim::NodeId id, sim::EventQueue &eq, const SysConfig &cfg)
    : cpu(id, eq, cfg),
      memory(sim::detail::format("mem.n%u", id), cfg.memory),
      cache(cfg.cache),
      tlb(cfg.tlb_entries, cfg.tlb_fill_cycles),
      wbuf(cfg.write_buffer_entries, memory),
      pci(sim::detail::format("pci.n%u", id), cfg.pci),
      controller(id, eq, cfg, memory, pci),
      pages(cfg.page_bytes, cfg.heap_bytes, cfg.num_procs),
      rng(cfg.seed * 1000003u + id)
{
}

System::System(SysConfig cfg, std::unique_ptr<Protocol> protocol)
    : cfg_(cfg), protocol_(std::move(protocol))
{
    ncp2_assert(cfg_.num_procs >= 1, "need at least one processor");
    heap_ = std::make_unique<GlobalHeap>(cfg_.heap_bytes, cfg_.page_bytes);
    net_ = std::make_unique<net::MeshNetwork>(cfg_.num_procs, cfg_.net);
    nodes_.reserve(cfg_.num_procs);
    for (unsigned i = 0; i < cfg_.num_procs; ++i)
        nodes_.push_back(std::make_unique<Node>(i, eq_, cfg_));
}

System::~System() = default;

RunResult
System::run(Workload &workload)
{
    sim::Context::Scope scope(ctx_);
    if (ctx_.label.empty())
        ctx_.label = workload.name();

    workload.plan(*heap_, cfg_);
    protocol_->attach(*this);

    for (unsigned i = 0; i < cfg_.num_procs; ++i) {
        Node &n = *nodes_[i];
        n.cpu.start([this, &workload, i]() {
            Proc p(*this, i);
            workload.run(p);
        });
    }

    const bool drained = eq_.run(cfg_.max_ticks);
    if (!drained)
        ncp2_fatal("simulation exceeded max_ticks watchdog (%llu)",
                   static_cast<unsigned long long>(cfg_.max_ticks));
    for (unsigned i = 0; i < cfg_.num_procs; ++i) {
        if (!nodes_[i]->cpu.finished()) {
            ncp2_panic("deadlock: processor %u never finished "
                       "(event queue drained)", i);
        }
    }

    protocol_->finalize();
    workload.validate(*this);

    RunResult r;
    for (auto &n : nodes_) {
        if (n->cpu.finishTick() > r.exec_ticks)
            r.exec_ticks = n->cpu.finishTick();
        r.bd.push_back(n->cpu.bd);
    }
    r.net = net_->stats();
    r.extra = extra_stats;
    return r;
}

void
System::access(sim::NodeId proc, sim::GAddr addr, unsigned bytes,
               bool is_write, void *data)
{
    ncp2_assert(bytes >= 1 && bytes <= 8, "access size out of range");
    ncp2_assert(addr % bytes == 0, "unaligned shared access @%llu",
                static_cast<unsigned long long>(addr));
    ncp2_assert(addr + bytes <= heap_->used(),
                "shared access beyond allocated heap");

    Node &n = *nodes_[proc];
    const sim::PageId page = pageOf(addr);
    const unsigned off = pageOffset(addr);

    // Issue slot.
    n.cpu.advance(1, Cat::busy);

    // Address translation.
    const sim::Cycles tlb_penalty = n.tlb.access(page);
    if (tlb_penalty)
        n.cpu.advance(tlb_penalty, Cat::other_tlb);

    // VM protection / coherence.
    protocol_->ensureAccess(proc, page, is_write);

    NodePage &pg = n.pages.page(page);
    ncp2_assert(pg.present(), "protocol left page %llu absent on node %u",
                static_cast<unsigned long long>(page), proc);

    if (!is_write) {
        if (!n.cache.accessRead(addr)) {
            const sim::Tick arrive = n.cpu.localNow();
            const sim::Tick done =
                n.memory.access(arrive, n.cache.lineWords());
            n.cpu.advance(done - arrive, Cat::other_cache);
        }
        std::memcpy(data, pg.data.get() + off, bytes);
        pg.referenced = true;
        pg.prefetched_unused = false;
    } else {
        // Write-through: probe/update the cache, push through the
        // write buffer, land in local memory.
        n.cache.accessWrite(addr);
        const sim::Cycles stall = n.wbuf.push(n.cpu.localNow());
        if (stall)
            n.cpu.advance(stall, Cat::other_wb);
        std::memcpy(pg.data.get() + off, data, bytes);

        const unsigned word = off / 4;
        const unsigned words = (off % 4 + bytes + 3) / 4;
        for (unsigned w = word; w < word + words; ++w)
            PageStore::snoopWrite(pg, w);
        pg.referenced = true;
        pg.prefetched_unused = false;
        protocol_->sharedWrite(proc, page, word, words);
    }
}

void
System::readCoherentBytes(sim::GAddr addr, unsigned bytes, void *out)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (bytes) {
        const sim::PageId page = pageOf(addr);
        const unsigned off = pageOffset(addr);
        const unsigned chunk =
            std::min<unsigned>(bytes, cfg_.page_bytes - off);
        auto it = coherent_cache_.find(page);
        if (it == coherent_cache_.end()) {
            std::vector<std::uint8_t> buf(cfg_.page_bytes, 0);
            protocol_->readCoherent(page, buf.data());
            it = coherent_cache_.emplace(page, std::move(buf)).first;
        }
        std::memcpy(dst, it->second.data() + off, chunk);
        dst += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

void
System::acquire(sim::NodeId proc, unsigned lock_id)
{
    protocol_->acquire(proc, lock_id);
}

void
System::release(sim::NodeId proc, unsigned lock_id)
{
    protocol_->release(proc, lock_id);
}

void
System::barrier(sim::NodeId proc, unsigned barrier_id)
{
    protocol_->barrier(proc, barrier_id);
}

} // namespace dsm
