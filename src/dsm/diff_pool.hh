/**
 * @file
 * Per-simulation recycling pool for Diff buffers.
 *
 * Diff creation and application are the hottest allocation sites in the
 * TreadMarks-style protocols: every software or hardware diff used to
 * construct (and immediately destroy) two vectors. The pool keeps
 * released Diff objects - with their vector capacity - for reuse, so
 * after warm-up the diff path performs no heap allocation at all.
 *
 * The pool lives in the per-simulation sim::Context (Context::of<
 * DiffPool>()), which keeps it strictly thread-confined: concurrent
 * simulations on the experiment engine each get their own pool, and it
 * is destroyed with the Context. Code running without an installed
 * Context (unit tests, tools) falls back to a thread_local pool.
 */

#ifndef NCP2_DSM_DIFF_POOL_HH
#define NCP2_DSM_DIFF_POOL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "dsm/page.hh"
#include "sim/context.hh"

namespace dsm
{

/** A free list of Diff objects that preserves vector capacity. */
class DiffPool
{
  public:
    /** Take a cleared Diff, reusing a released one when available. */
    Diff
    acquire()
    {
        ++acquires_;
        if (free_.empty())
            return Diff{};
        ++reuses_;
        Diff d = std::move(free_.back());
        free_.pop_back();
        d.page = 0;
        d.idx.clear();
        d.val.clear();
        return d;
    }

    /** Return a Diff (and its capacity) for reuse. */
    void
    release(Diff &&d)
    {
        free_.push_back(std::move(d));
    }

    /** Diffs currently sitting in the pool. */
    std::size_t pooled() const { return free_.size(); }

    /** Total acquire() calls. */
    std::uint64_t acquires() const { return acquires_; }

    /** acquire() calls served from the free list. */
    std::uint64_t reuses() const { return reuses_; }

    /**
     * The calling simulation's pool: the installed sim::Context's slot,
     * or a thread_local fallback outside any Context.
     */
    static DiffPool &
    current()
    {
        if (sim::Context *ctx = sim::Context::current())
            return ctx->of<DiffPool>();
        thread_local DiffPool fallback;
        return fallback;
    }

  private:
    std::vector<Diff> free_;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
};

/**
 * RAII lease of a pooled Diff: acquires from the simulation's pool on
 * construction, releases on destruction. Use the dereference operators
 * to reach the Diff.
 */
class PooledDiff
{
  public:
    PooledDiff() : pool_(&DiffPool::current()), d_(pool_->acquire()) {}

    /**
     * Lease from an explicit pool — the per-node-shard pool
     * (dsm/shard.hh) on protocol paths, where the Context-wide
     * singleton would be shared across parallel-executor workers.
     */
    explicit PooledDiff(DiffPool &pool) : pool_(&pool), d_(pool.acquire()) {}
    ~PooledDiff() { pool_->release(std::move(d_)); }

    PooledDiff(const PooledDiff &) = delete;
    PooledDiff &operator=(const PooledDiff &) = delete;

    Diff &operator*() { return d_; }
    Diff *operator->() { return &d_; }
    const Diff &operator*() const { return d_; }
    const Diff *operator->() const { return &d_; }

  private:
    DiffPool *pool_;
    Diff d_;
};

} // namespace dsm

#endif // NCP2_DSM_DIFF_POOL_HH
