/**
 * @file
 * Per-node page copies, VM-style access protection, twins, snooped
 * write-bit vectors, and diff machinery.
 *
 * Unlike a pure timing model, this simulator moves the real bytes: each
 * node owns private copies of the pages it has touched, diffs are real
 * word-level encodings of modifications, and applying them is a real
 * scatter. The applications therefore compute correct results *only if*
 * the coherence protocol is correct, which is what the test suite leans
 * on.
 */

#ifndef NCP2_DSM_PAGE_HH
#define NCP2_DSM_PAGE_HH

#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "dsm/vclock.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm
{

/** VM protection of a node's copy of a page. */
enum class Access : std::uint8_t
{
    none,      ///< invalid: any access faults
    read,      ///< reads ok, writes fault (twin / bit-vector setup)
    readwrite, ///< all accesses ok
};

/**
 * A word-granularity encoding of the modifications made to a page:
 * parallel arrays of word indices and their new values. Used both for
 * software diffs (twin comparison) and hardware diffs (bit-vector
 * gather); the representations differ only in who builds them and how
 * long that takes.
 */
struct Diff
{
    sim::PageId page = 0;
    std::vector<std::uint16_t> idx; ///< word indices within the page
    std::vector<std::uint32_t> val; ///< new word values

    unsigned words() const { return static_cast<unsigned>(idx.size()); }

    /**
     * Wire size: run headers amortize to roughly a word of metadata per
     * 8 data words plus a fixed header; hardware diffs ship the 128-byte
     * bit vector instead. We use one conservative formula for both.
     */
    std::uint32_t
    wireBytes() const
    {
        return 32 + 4 * words() + words() / 2;
    }

    /** Scatter this diff's words onto @p data (a page-sized buffer). */
    void
    apply(std::uint8_t *data) const
    {
        auto *w = reinterpret_cast<std::uint32_t *>(data);
        for (std::size_t i = 0; i < idx.size(); ++i)
            w[idx[i]] = val[i];
    }
};

/** One node's copy of one page, with all protocol-side state. */
struct NodePage
{
    std::unique_ptr<std::uint8_t[]> data; ///< null until first mapped here
    std::unique_ptr<std::uint8_t[]> twin; ///< software-diff shadow copy
    std::vector<std::uint64_t> write_bits; ///< snooped word bit vector (D)
    Access access = Access::none;

    /// Highest interval of each writer whose modifications are reflected
    /// in this copy (the fetch-consistency watermark).
    std::vector<IntervalSeq> applied;

    /// Per-word happened-before keys of the last value applied from a
    /// diff (lazily allocated by the protocol). Diffs from concurrent
    /// intervals touch disjoint words, but a single writer's *cumulative*
    /// diff can carry words from several of its intervals; ordering must
    /// therefore be enforced per word at application time.
    std::unique_ptr<std::uint64_t[]> word_keys;

    /// Referenced since it last became valid (prefetch heuristic input).
    bool referenced = false;
    /// A prefetch for this page is in flight.
    bool prefetch_pending = false;
    /// Page became valid via prefetch and has not been referenced since.
    bool prefetched_unused = false;
    /// Writer-side: page written during the current interval.
    bool dirty_in_interval = false;

    bool present() const { return data != nullptr; }
};

/**
 * All pages of one node. Pages are created lazily; page_bytes is fixed
 * system-wide.
 */
class PageStore
{
  public:
    PageStore(unsigned page_bytes, std::uint64_t heap_bytes, unsigned nprocs)
        : page_bytes_(page_bytes), nprocs_(nprocs),
          pages_(static_cast<std::size_t>(heap_bytes / page_bytes))
    {
    }

    unsigned pageBytes() const { return page_bytes_; }
    unsigned pageWords() const { return page_bytes_ / 4; }
    std::size_t numPages() const { return pages_.size(); }

    NodePage &
    page(sim::PageId id)
    {
        ncp2_assert(id < pages_.size(), "page id out of range");
        return pages_[id];
    }

    const NodePage &
    page(sim::PageId id) const
    {
        ncp2_assert(id < pages_.size(), "page id out of range");
        return pages_[id];
    }

    /** Materialize a zero-filled copy (e.g., at the home node). */
    NodePage &
    materialize(sim::PageId id)
    {
        NodePage &p = page(id);
        if (!p.data) {
            // make_unique<uint8_t[]> would value-initialize (zero) the
            // buffer and the memset would zero it a second time; the
            // _for_overwrite variant leaves it to the single memset.
            p.data = std::make_unique_for_overwrite<std::uint8_t[]>(
                page_bytes_);
            std::memset(p.data.get(), 0, page_bytes_);
            p.applied.assign(nprocs_, 0);
        }
        return p;
    }

    /** Create/refresh the software twin from the current contents. */
    void
    makeTwin(NodePage &p)
    {
        ncp2_assert(p.present(), "twin of an absent page");
        if (!p.twin) {
            // Fully overwritten by the memcpy below: skip zero-init.
            p.twin = std::make_unique_for_overwrite<std::uint8_t[]>(
                page_bytes_);
        }
        std::memcpy(p.twin.get(), p.data.get(), page_bytes_);
    }

    void
    dropTwin(NodePage &p)
    {
        p.twin.reset();
    }

    /** Ensure the snoop bit vector exists (cleared). */
    void
    armWriteBits(NodePage &p)
    {
        const std::size_t words64 = pageWords() / 64;
        if (p.write_bits.size() != words64)
            p.write_bits.assign(words64, 0);
        else
            std::fill(p.write_bits.begin(), p.write_bits.end(), 0);
    }

    /** Snoop logic: record that word @p word_idx of @p p was written. */
    static void
    snoopWrite(NodePage &p, unsigned word_idx)
    {
        if (!p.write_bits.empty())
            p.write_bits[word_idx >> 6] |= 1ull << (word_idx & 63);
    }

    /** Count of set bits in the snoop vector. */
    static unsigned
    writtenWords(const NodePage &p)
    {
        unsigned n = 0;
        for (std::uint64_t w : p.write_bits)
            n += static_cast<unsigned>(__builtin_popcountll(w));
        return n;
    }

    /**
     * Software diff: compare the twin against the current contents into
     * @p d (cleared first; reuse a pooled Diff to avoid allocation).
     * Does not touch the twin (callers refresh it as protocol dictates).
     *
     * The comparison runs 64 bits at a time: a clean word pair - the
     * overwhelmingly common case - costs one load-xor-test and a single
     * well-predicted branch for two words, and a dirty pair's changed
     * halves are identified from the xor without reloading the twin.
     * (Wider skip blocks were measured and rejected: they win only on
     * nearly-empty diffs and lose badly on dirty runs, while the pair
     * loop never trails the scalar reference.)
     */
    void
    diffFromTwin(sim::PageId id, const NodePage &p, Diff &d) const
    {
        ncp2_assert(p.present() && p.twin, "diffFromTwin needs a twin");
        d.page = id;
        d.idx.clear();
        d.val.clear();
        const auto *cur = reinterpret_cast<const std::uint32_t *>(p.data.get());
        const auto *old = reinterpret_cast<const std::uint32_t *>(p.twin.get());
        const auto *cur64 =
            reinterpret_cast<const std::uint64_t *>(p.data.get());
        const auto *old64 =
            reinterpret_cast<const std::uint64_t *>(p.twin.get());
        const unsigned words = pageWords();
        const unsigned pairs = words / 2;
        for (unsigned i = 0; i < pairs; ++i)
            emitPair(d, cur, old, 2 * i, cur64[i] ^ old64[i]);
        if (words & 1) {
            const unsigned w = words - 1;
            if (cur[w] != old[w]) {
                d.idx.push_back(static_cast<std::uint16_t>(w));
                d.val.push_back(cur[w]);
            }
        }
    }

    /** Convenience wrapper returning a fresh Diff. */
    Diff
    diffFromTwin(sim::PageId id, const NodePage &p) const
    {
        Diff d;
        diffFromTwin(id, p, d);
        return d;
    }

    /**
     * Reference word-at-a-time twin comparison. Kept as the oracle for
     * the fast path (tests compare the two on random pages) and as the
     * "before" kernel in bench/perf_host.
     */
    void
    diffFromTwinReference(sim::PageId id, const NodePage &p, Diff &d) const
    {
        ncp2_assert(p.present() && p.twin, "diffFromTwin needs a twin");
        d.page = id;
        d.idx.clear();
        d.val.clear();
        const auto *cur = reinterpret_cast<const std::uint32_t *>(p.data.get());
        const auto *old = reinterpret_cast<const std::uint32_t *>(p.twin.get());
        const unsigned words = pageWords();
        for (unsigned i = 0; i < words; ++i) {
            if (cur[i] != old[i]) {
                d.idx.push_back(static_cast<std::uint16_t>(i));
                d.val.push_back(cur[i]);
            }
        }
    }

    /**
     * Hardware diff: gather the words whose snoop bits are set into
     * @p d (cleared first). The DMA engine does not compare values, so
     * unchanged-but-written words are included (a slightly larger diff,
     * as on the real hardware). Capacity is reserved from the bit
     * vector's popcount, so the gather itself never reallocates.
     */
    void
    diffFromBits(sim::PageId id, const NodePage &p, Diff &d) const
    {
        ncp2_assert(p.present(), "diffFromBits needs a mapped page");
        d.page = id;
        d.idx.clear();
        d.val.clear();
        const unsigned count = writtenWords(p);
        d.idx.reserve(count);
        d.val.reserve(count);
        const auto *cur = reinterpret_cast<const std::uint32_t *>(p.data.get());
        for (std::size_t blk = 0; blk < p.write_bits.size(); ++blk) {
            std::uint64_t bits = p.write_bits[blk];
            while (bits) {
                const unsigned bit =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                const unsigned w = static_cast<unsigned>(blk * 64 + bit);
                d.idx.push_back(static_cast<std::uint16_t>(w));
                d.val.push_back(cur[w]);
            }
        }
    }

    /** Convenience wrapper returning a fresh Diff. */
    Diff
    diffFromBits(sim::PageId id, const NodePage &p) const
    {
        Diff d;
        diffFromBits(id, p, d);
        return d;
    }

  private:
    /** Emit the changed halves of one 64-bit block (x = cur ^ old). */
    static void
    emitPair(Diff &d, const std::uint32_t *cur, const std::uint32_t *old,
             unsigned w, std::uint64_t x)
    {
        if (!x)
            return;
        if constexpr (std::endian::native == std::endian::little) {
            // The xor already tells us which half changed; no reloads.
            if (static_cast<std::uint32_t>(x)) {
                d.idx.push_back(static_cast<std::uint16_t>(w));
                d.val.push_back(cur[w]);
            }
            if (x >> 32) {
                d.idx.push_back(static_cast<std::uint16_t>(w + 1));
                d.val.push_back(cur[w + 1]);
            }
        } else {
            // Big-endian: compare the halves directly so the emission
            // order still matches the scalar reference.
            if (cur[w] != old[w]) {
                d.idx.push_back(static_cast<std::uint16_t>(w));
                d.val.push_back(cur[w]);
            }
            if (cur[w + 1] != old[w + 1]) {
                d.idx.push_back(static_cast<std::uint16_t>(w + 1));
                d.val.push_back(cur[w + 1]);
            }
        }
    }

    unsigned page_bytes_;
    unsigned nprocs_;
    std::vector<NodePage> pages_;
};

} // namespace dsm

#endif // NCP2_DSM_PAGE_HH
