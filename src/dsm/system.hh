/**
 * @file
 * The simulated 16-node network of workstations.
 *
 * A System owns the event queue, the global heap, one Node per
 * processor (CPU + caches + write buffer + TLB + main memory + PCI bus +
 * protocol controller + page copies), the mesh interconnect and the
 * coherence protocol. It implements the common shared-access path
 * (TLB -> protection fault -> cache -> write buffer) and delegates
 * coherence decisions to the Protocol.
 */

#ifndef NCP2_DSM_SYSTEM_HH
#define NCP2_DSM_SYSTEM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <mutex>

#include "check/oracle.hh"
#include "ctrl/controller.hh"
#include "dsm/access_desc.hh"
#include "dsm/breakdown.hh"
#include "dsm/config.hh"
#include "dsm/cpu.hh"
#include "dsm/heap.hh"
#include "dsm/page.hh"
#include "dsm/proc.hh"
#include "dsm/protocol.hh"
#include "dsm/shard.hh"
#include "dsm/workload.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "mem/tlb.hh"
#include "mem/write_buffer.hh"
#include "net/mesh.hh"
#include "net/router.hh"
#include "pcib/pci_bus.hh"
#include "sim/context.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/sched_group.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace dsm
{

/** Everything that lives on one workstation (Figure 3). */
struct Node
{
    Node(sim::NodeId id, sim::EventQueue &eq, const SysConfig &cfg);

    Cpu cpu;
    mem::MainMemory memory;
    mem::Cache cache;
    mem::Tlb tlb;
    mem::WriteBuffer wbuf;
    pcib::PciBus pci;
    ctrl::Controller controller;
    PageStore pages;
    DescCache adesc; ///< fast-path access descriptors (access_desc.hh)
    sim::Rng rng;
};

/** Result of one simulated run. */
struct RunResult
{
    sim::Tick exec_ticks = 0;           ///< max processor finish tick
    std::vector<Breakdown> bd;          ///< per-processor breakdown
    net::NetStats net;                  ///< fabric traffic
    /// Snapshot of the protocol's stat tree (sim::StatGroup), taken at
    /// end of run so it survives the System. Counter lookups go through
    /// stats.value("tmk.lock_acquires")-style dotted paths.
    sim::StatSnapshot stats;
    /// Snapshot of the workload's own stat tree (Workload::statGroup()),
    /// taken right after validate(); empty for workloads without one.
    sim::StatSnapshot app_stats;
    /// Event trace (oldest surviving record first); empty unless
    /// SysConfig::trace_capacity was non-zero.
    std::vector<sim::TraceRecord> trace;
    std::uint64_t trace_dropped = 0;    ///< records lost to ring overflow

    Breakdown
    total() const
    {
        Breakdown t;
        for (const auto &b : bd)
            t += b;
        return t;
    }

    /** Wall time at the 100 MHz clock. */
    double seconds() const { return static_cast<double>(exec_ticks) * 1e-8; }
};

/** The simulated machine. */
class System
{
  public:
    System(SysConfig cfg, std::unique_ptr<Protocol> protocol);
    ~System();

    /** Run @p workload to completion and validate it. */
    RunResult run(Workload &workload);

    // ----- topology -----
    const SysConfig &cfg() const { return cfg_; }
    unsigned nprocs() const { return cfg_.num_procs; }
    Node &node(sim::NodeId id) { return *nodes_[id]; }
    sim::Context &ctx() { return ctx_; }

    /**
     * The event queue of the node whose event is executing on the
     * calling thread (every simulated node owns one queue of the
     * scheduler group); host-side callers get node 0's queue. Protocol
     * code uses this for *node-local* scheduling only — anything
     * crossing nodes goes through router().
     */
    sim::EventQueue &
    eq()
    {
        const std::int32_t n = sim::current_exec_node;
        return sched_.queue(n < 0 ? 0u : static_cast<unsigned>(n));
    }

    /** The partitioned scheduler (one queue per node). */
    sim::SchedulerGroup &sched() { return sched_; }

    net::MeshNetwork &net() { return *net_; }

    /** The one cross-node message edge (see net/router.hh). */
    net::Router &router() { return *router_; }

    GlobalHeap &heap() { return *heap_; }
    Protocol &protocol() { return *protocol_; }

    /**
     * Node @p id's shard (diff pool, heap directory slice). Owner-
     * asserted: only @p id's own event stream — or host-side code
     * outside the run loop — may call this (see dsm/shard.hh).
     */
    NodeShard &
    shard(sim::NodeId id)
    {
        ncp2_dassert(sim::current_exec_node < 0 ||
                         sim::current_exec_node ==
                             static_cast<std::int32_t>(id),
                     "node %d dereferenced node %u's shard without a "
                     "message edge",
                     static_cast<int>(sim::current_exec_node),
                     static_cast<unsigned>(id));
        return *shards_[id];
    }

    /**
     * Unchecked shard access for serial-only callers: a protocol that
     * is not pdesSafe() always runs on the serial scheduler, where a
     * cross-node directory update in place is safe (if inelegant).
     * Refuses to run while the parallel executor is active.
     */
    NodeShard &
    shardAt(sim::NodeId id)
    {
        ncp2_dassert(!pdes_active_,
                     "shardAt() used while the parallel executor is "
                     "active; use shard() behind a message edge");
        return *shards_[id];
    }

    /** True while run() is executing on multiple PDES workers. */
    bool pdesActive() const { return pdes_active_; }

    /**
     * The event tracer, or nullptr when tracing is off
     * (cfg().trace_capacity == 0). Emission sites guard on this
     * pointer — the single predictable branch tracing costs when
     * disabled.
     */
    sim::Trace *trace() { return trace_.get(); }

    /**
     * The LRC conformance oracle, or nullptr when checking is off
     * (cfg().check == false). Like the tracer, every hook site guards
     * on this pointer, so a disabled oracle costs one predictable
     * branch per access.
     */
    check::LrcOracle *oracle() { return check_.get(); }

    // ----- shared-access path (called by Proc) -----
    void access(sim::NodeId proc, sim::GAddr addr, unsigned bytes,
                bool is_write, void *data);

    /**
     * @p count consecutive @p elem_bytes-sized accesses starting at
     * @p addr, read into / written from the host buffer @p data. Each
     * element is charged exactly like a standalone access() (identical
     * advance sequence, TLB/cache/write-buffer probes and protocol
     * callbacks), so results are bit-identical to the equivalent loop;
     * the batching only removes per-call host overhead.
     */
    void accessRange(sim::NodeId proc, sim::GAddr addr, unsigned elem_bytes,
                     std::size_t count, bool is_write, void *data);

    sim::PageId pageOf(sim::GAddr addr) const { return addr / cfg_.page_bytes; }
    unsigned pageOffset(sim::GAddr addr) const
    {
        return static_cast<unsigned>(addr % cfg_.page_bytes);
    }

    /**
     * Read the coherent (protocol-reconstructed) value of shared memory
     * host-side, for validation after the run.
     */
    template <typename T>
    T
    readGlobal(sim::GAddr addr)
    {
        T v{};
        readCoherentBytes(addr, sizeof(T), &v);
        return v;
    }

    void readCoherentBytes(sim::GAddr addr, unsigned bytes, void *out);

    /** Invalidate a page's lines in a node's cache and TLB (snoop). */
    void
    snoopInvalidatePage(sim::NodeId n, sim::PageId page)
    {
        node(n).cache.invalidateRange(
            static_cast<sim::GAddr>(page) * cfg_.page_bytes, cfg_.page_bytes);
    }

    // ----- synchronization pass-throughs -----
    void acquire(sim::NodeId proc, unsigned lock_id);
    void release(sim::NodeId proc, unsigned lock_id);
    void barrier(sim::NodeId proc, unsigned barrier_id);

  private:
    /// Emit one bd_snapshot record per breakdown category (plus the two
    /// diff-op accounts) for @p proc at tick @p t; tracing must be on.
    void emitBdSnapshot(sim::NodeId proc, sim::Tick t);

    /// One element of the shared-access path: issue + TLB charges, then
    /// descriptor fast path or virtual slow path (+ descriptor install).
    void accessOne(Node &n, sim::NodeId proc, sim::GAddr addr,
                   unsigned bytes, bool is_write, void *data);
    /// The protection-check-onward tail of accessOne when no descriptor
    /// hit: virtual ensureAccess, cache/write-buffer/memory charges,
    /// virtual sharedWrite, then descriptor install.
    void accessSlow(Node &n, sim::NodeId proc, sim::PageId page,
                    sim::GAddr addr, unsigned off, unsigned bytes,
                    bool is_write, void *data);
    /// Bulk fast path: @p count elements inside one page, charged
    /// per element exactly like accessOne but with descriptor state
    /// hoisted out of the loop (revalidated across fiber yields only).
    void accessRunFast(Node &n, sim::NodeId proc, sim::GAddr addr,
                       unsigned elem_bytes, std::size_t count, bool is_write,
                       std::uint8_t *p);
    /// Slow-path write tail: virtual sharedWrite — or the descriptor's
    /// inlined/skipped hook if one is still valid at this sequence point.
    void applyWriteHook(Node &n, sim::NodeId proc, sim::PageId page,
                        unsigned word, unsigned words);
    /// Cache the grant the slow path just obtained (no-op when the page
    /// lost access again while the timing charges yielded the fiber).
    void installDesc(Node &n, sim::NodeId proc, sim::PageId page,
                     NodePage &pg);
    /// Feed one access to the conformance oracle (word-granularity);
    /// @p pdata is the node's page copy at the access sequence point.
    /// Callers guard on check_ being non-null.
    void checkAccess(sim::NodeId proc, sim::PageId page, unsigned off,
                     unsigned bytes, const std::uint8_t *pdata,
                     bool is_write);

    /// Workers run() will actually use: cfg_.pdes_workers clamped by
    /// protocol shard-safety, tracing and topology (warns when forced
    /// down).
    unsigned effectiveWorkers() const;

    SysConfig cfg_;
    /// Per-simulation runtime state; installed on the running thread
    /// for the duration of run(), keeping concurrent Systems confined.
    sim::Context ctx_;
    std::unordered_map<sim::PageId, std::vector<std::uint8_t>>
        coherent_cache_; ///< validation-time page reconstructions
    sim::SchedulerGroup sched_; ///< one event queue per node
    std::unique_ptr<GlobalHeap> heap_;
    std::unique_ptr<net::MeshNetwork> net_;
    std::unique_ptr<net::Router> router_;
    std::vector<std::unique_ptr<NodeShard>> shards_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<Protocol> protocol_;
    std::unique_ptr<sim::Trace> trace_; ///< non-null iff tracing is on
    std::unique_ptr<check::LrcOracle> check_; ///< non-null iff checking
    /// Serializes the (process-global-state) oracle under the parallel
    /// executor; uncontended no-op in serial runs.
    std::mutex check_mu_;
    std::vector<unsigned> barrier_epochs_; ///< per-proc crossings (trace)
    bool pdes_active_ = false; ///< true while run() uses > 1 worker
};

} // namespace dsm

#endif // NCP2_DSM_SYSTEM_HH
