/**
 * @file
 * The global shared address space and its allocator.
 *
 * Workloads plan their shared data layout once (host-side, before the
 * simulation starts) with a simple bump allocator. Page granularity
 * matters: allocations can be page-aligned to control (or deliberately
 * provoke, as Radix does) page-level false sharing.
 */

#ifndef NCP2_DSM_HEAP_HH
#define NCP2_DSM_HEAP_HH

#include <cstdint>
#include <type_traits>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm
{

/** Bump allocator over the DSM global address space. */
class GlobalHeap
{
  public:
    GlobalHeap(std::uint64_t bytes, unsigned page_bytes)
        : bytes_(bytes), page_bytes_(page_bytes)
    {
    }

    /** Allocate @p bytes with @p align alignment (power of two). */
    sim::GAddr
    alloc(std::uint64_t bytes, std::uint64_t align = 8)
    {
        ncp2_assert(align && (align & (align - 1)) == 0,
                    "alignment must be a power of two");
        next_ = (next_ + align - 1) & ~(align - 1);
        const sim::GAddr addr = next_;
        next_ += bytes;
        ncp2_assert(next_ <= bytes_,
                    "global heap exhausted (%llu of %llu bytes)",
                    static_cast<unsigned long long>(next_),
                    static_cast<unsigned long long>(bytes_));
        return addr;
    }

    /** Allocate page-aligned (each object starts on a fresh page). */
    sim::GAddr
    allocPages(std::uint64_t bytes)
    {
        return alloc(bytes, page_bytes_);
    }

    /**
     * Allocate @p count elements of T with T's natural alignment (or
     * page alignment when @p page_aligned). The shared-access path
     * rejects element accesses whose address is not a multiple of the
     * element size, so a T array placed after an odd-sized prior
     * allocation must be re-aligned here — asserted, never silent.
     * This is the allocation entry point the g:: containers use.
     */
    template <typename T>
    sim::GAddr
    allocArray(std::uint64_t count, bool page_aligned = false)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "shared elements must be trivially copyable");
        static_assert(sizeof(T) <= 8 &&
                          (sizeof(T) & (sizeof(T) - 1)) == 0,
                      "shared elements must be 1/2/4/8 bytes (the "
                      "access path's natural-alignment contract)");
        const sim::GAddr a = page_aligned
            ? allocPages(count * sizeof(T))
            : alloc(count * sizeof(T), sizeof(T));
        ncp2_assert(a % sizeof(T) == 0,
                    "allocArray produced a misaligned base (%llu %% %zu)",
                    static_cast<unsigned long long>(a), sizeof(T));
        return a;
    }

    /**
     * Forget every allocation and start again from address zero. Only
     * meaningful host-side between runs (a Workload re-planning against
     * a fresh System); the heap hands out addresses, not storage, so
     * there is nothing else to release.
     */
    void reset() { next_ = 0; }

    std::uint64_t used() const { return next_; }
    std::uint64_t capacity() const { return bytes_; }
    unsigned pageBytes() const { return page_bytes_; }

  private:
    std::uint64_t bytes_;
    unsigned page_bytes_;
    sim::GAddr next_ = 0;
};

} // namespace dsm

#endif // NCP2_DSM_HEAP_HH
