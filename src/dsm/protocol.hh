/**
 * @file
 * The coherence-protocol interface.
 *
 * A Protocol implements the DSM semantics on top of the machine model:
 * it decides what happens on page faults (ensureAccess), on every shared
 * store (sharedWrite - automatic updates, snoop bit vectors), and at
 * synchronization operations. Implementations: tmk::TreadMarks (with the
 * paper's overlap modes) and aurc::Aurc (+ prefetch).
 *
 * Protocol methods that run on behalf of an application execute *on that
 * processor's fiber* and may block it (Cpu::block); asynchronous
 * machinery (remote service, controller commands) runs on events.
 */

#ifndef NCP2_DSM_PROTOCOL_HH
#define NCP2_DSM_PROTOCOL_HH

#include <string>

#include "dsm/access_desc.hh"
#include "sim/types.hh"

namespace sim
{
class StatGroup;
}

namespace dsm
{

class System;

/**
 * What System::access may do in place of calling sharedWrite while a
 * write descriptor for the page stays valid (see access_desc.hh).
 */
struct WriteDescInfo
{
    WriteHook hook = WriteHook::protocol;
    IntervalSeq *word_interval = nullptr; ///< tmk_interval stamp target
    IntervalSeq open_seq = 0;             ///< tmk_interval stamp value
};

/** Abstract software-DSM coherence protocol. */
class Protocol
{
  public:
    virtual ~Protocol() = default;

    /** Wire the protocol to its system; called once before the run. */
    virtual void attach(System &sys) = 0;

    /**
     * Guarantee that processor @p proc may read (or write, if
     * @p for_write) the page containing @p addr. Runs on the fiber;
     * blocks through the fault/fetch path when needed.
     */
    virtual void ensureAccess(sim::NodeId proc, sim::PageId page,
                              bool for_write) = 0;

    /**
     * Hook invoked after processor @p proc stored to shared memory
     * (word-aligned span [word, word + words) of @p page). The store
     * has already been applied to the local copy and charged through
     * the cache/write-buffer path.
     */
    virtual void sharedWrite(sim::NodeId proc, sim::PageId page,
                             unsigned word, unsigned words) = 0;

    /** Lock acquire (blocks the fiber until ownership arrives). */
    virtual void acquire(sim::NodeId proc, unsigned lock_id) = 0;

    /** Lock release. */
    virtual void release(sim::NodeId proc, unsigned lock_id) = 0;

    /** Global barrier (blocks until all processors arrive). */
    virtual void barrier(sim::NodeId proc, unsigned barrier_id) = 0;

    /**
     * Describe the write hook a freshly installed write descriptor for
     * (@p proc, @p page) may use. Called only right after a slow-path
     * write completed (so sharedWrite has run at least once for the
     * page). The default keeps the virtual callback, which is always
     * correct; protocols override to skip or inline proven no-ops.
     */
    virtual WriteDescInfo
    writeDesc(sim::NodeId proc, sim::PageId page)
    {
        (void)proc;
        (void)page;
        return {};
    }

    /** Protocol display name ("TreadMarks/I+D", "AURC+P", ...). */
    virtual std::string name() const = 0;

    /**
     * True when the protocol's cross-node state accesses are confined
     * to message edges, append-only logs and documented rendezvous
     * points, so the conservative parallel executor may run it on
     * several workers (SysConfig::pdes_workers > 1). The default is
     * conservative: protocols that still read remote shards in place
     * (AURC's live install-time copies and cross-node directory
     * updates, TreadMarks lazy hybrid's remote page-presence probe)
     * are forced onto the serial scheduler with a warning.
     */
    virtual bool pdesSafe() const { return false; }

    /**
     * The protocol's statistics tree (counters, accums, histograms),
     * or nullptr if it keeps none. System::run() snapshots it into the
     * RunResult at end of run; the group and the stats it points at
     * must stay alive until then.
     */
    virtual const sim::StatGroup *statGroup() const { return nullptr; }

    /**
     * Host-side (zero-time) reconstruction of the coherent contents of
     * @p page into @p out (page_bytes long), used for validation after
     * the run: the home copy brought fully up to date.
     */
    virtual void readCoherent(sim::PageId page, std::uint8_t *out) = 0;

    /** End-of-run hook (flush stats). */
    virtual void finalize() {}
};

} // namespace dsm

#endif // NCP2_DSM_PROTOCOL_HH
