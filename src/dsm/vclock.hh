/**
 * @file
 * Vector timestamps, intervals and write notices - the bookkeeping of
 * lazy release consistency (Keleher et al.).
 *
 * Execution on each processor is divided into *intervals* delimited by
 * synchronization operations. Each interval carries the set of pages its
 * processor wrote (its write notices). A vector timestamp vt on
 * processor p means: p has seen (invalidated for) every interval i of
 * every processor q with i <= vt[q].
 */

#ifndef NCP2_DSM_VCLOCK_HH
#define NCP2_DSM_VCLOCK_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm
{

/** Per-processor interval sequence number (intervals are 1-based). */
using IntervalSeq = std::uint32_t;

/** A vector timestamp: vt[q] = newest interval of q covered. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(unsigned nprocs) : v_(nprocs, 0) {}

    [[nodiscard]] IntervalSeq operator[](unsigned p) const { return v_[p]; }
    [[nodiscard]] IntervalSeq &operator[](unsigned p) { return v_[p]; }
    [[nodiscard]] unsigned
    size() const
    {
        return static_cast<unsigned>(v_.size());
    }

    /**
     * Component-wise maximum (join). All clocks in one simulation are
     * created with the same width, so the size check is debug-only:
     * merge() runs on every lock grant and barrier departure.
     */
    void
    merge(const VectorClock &o)
    {
        ncp2_dassert(v_.size() == o.v_.size(), "vector clock size mismatch");
        for (std::size_t i = 0; i < v_.size(); ++i)
            if (o.v_[i] > v_[i])
                v_[i] = o.v_[i];
    }

    /** True if every component of *this <= o (happens-before or equal). */
    [[nodiscard]] bool
    dominatedBy(const VectorClock &o) const
    {
        ncp2_dassert(v_.size() == o.v_.size(), "vector clock size mismatch");
        for (std::size_t i = 0; i < v_.size(); ++i)
            if (v_[i] > o.v_[i])
                return false;
        return true;
    }

    [[nodiscard]] bool
    operator==(const VectorClock &o) const
    {
        return v_ == o.v_;
    }

  private:
    std::vector<IntervalSeq> v_;
};

/**
 * A sparse clock delta: the components on which a target clock exceeds a
 * base clock, as (proc, from, to] ranges in ascending processor order.
 *
 * This is the scaling workhorse: at 256-1024 nodes the protocols stop
 * iterating dense n-wide clocks per receiver (O(n^2) per barrier
 * episode) and instead walk the handful of components that actually
 * advanced since the receiver's last known clock (the piggybacked
 * watermark). Iteration order — ascending processor, then ascending
 * interval inside each (from, to] range — matches the dense loops
 * exactly, so every derived effect (write-notice counts, invalidation
 * sequences, merges) is bit-identical to the dense implementation; the
 * dense path stays available as the debug oracle behind ncp2_dassert.
 *
 * The *simulated* wire format is untouched: message byte formulas keep
 * their 4*nprocs dense-clock terms because that is the 1996 protocol
 * being measured. ClockDelta is host representation only.
 */
struct ClockDelta
{
    struct Entry
    {
        sim::NodeId proc = sim::invalid_node;
        IntervalSeq from = 0; ///< exclusive
        IntervalSeq to = 0;   ///< inclusive
    };

    std::vector<Entry> entries; ///< ascending by proc

    void clear() { entries.clear(); }
    [[nodiscard]] bool empty() const { return entries.empty(); }
    [[nodiscard]] std::size_t size() const { return entries.size(); }
};

/**
 * Collect the components where @p target exceeds @p base into @p out
 * (cleared first). Components where base >= target produce no entry, so
 * the delta of two concurrent clocks only describes target's lead.
 */
inline void
clockDelta(const VectorClock &base, const VectorClock &target,
           ClockDelta &out)
{
    ncp2_dassert(base.size() == target.size(),
                 "vector clock size mismatch");
    out.clear();
    for (unsigned q = 0; q < base.size(); ++q) {
        if (target[q] > base[q])
            out.entries.push_back({static_cast<sim::NodeId>(q), base[q],
                                   target[q]});
    }
}

/**
 * Narrow a delta to one receiver: for every entry of @p base_delta where
 * the receiver's clock is still below the target, emit (recv[q], to].
 * Correct whenever @p recv dominates the base clock @p base_delta was
 * computed against (then recv == target on every component outside the
 * base delta) — exactly the barrier-release situation, where the
 * manager's known clock is a floor under every participant. O(|delta|)
 * instead of the O(n) full-clock scan.
 */
inline void
narrowDelta(const ClockDelta &base_delta, const VectorClock &recv,
            ClockDelta &out)
{
    out.clear();
    for (const ClockDelta::Entry &e : base_delta.entries) {
        const IntervalSeq have = recv[e.proc];
        if (have < e.to)
            out.entries.push_back({e.proc, have, e.to});
    }
}

/**
 * Merge a delta into a clock: v[q] = max(v[q], to) per entry. When the
 * delta was narrowed against this very clock, this equals the dense
 * merge with the delta's source clock (callers dassert that).
 */
inline void
applyDelta(VectorClock &v, const ClockDelta &d)
{
    for (const ClockDelta::Entry &e : d.entries) {
        if (e.to > v[e.proc])
            v[e.proc] = e.to;
    }
}

/** Identifies one interval of one processor. */
struct IntervalId
{
    sim::NodeId proc = sim::invalid_node;
    IntervalSeq seq = 0;

    bool
    operator==(const IntervalId &o) const
    {
        return proc == o.proc && seq == o.seq;
    }
};

/**
 * A write notice: "page was modified during interval id". Transmitted at
 * synchronization points; receipt obliges the receiver to invalidate the
 * page before its next use.
 */
struct WriteNotice
{
    sim::PageId page = 0;
    IntervalId interval;
};

/**
 * An interval record kept by its creating processor (and lazily learned
 * by others): the pages written plus the creator's vector time at the
 * interval's close, used to order diff application.
 */
struct IntervalRecord
{
    IntervalId id;
    VectorClock vt;                  ///< creator's clock when interval closed
    std::vector<sim::PageId> pages;  ///< pages written during the interval
};

} // namespace dsm

#endif // NCP2_DSM_VCLOCK_HH
