/**
 * @file
 * Vector timestamps, intervals and write notices - the bookkeeping of
 * lazy release consistency (Keleher et al.).
 *
 * Execution on each processor is divided into *intervals* delimited by
 * synchronization operations. Each interval carries the set of pages its
 * processor wrote (its write notices). A vector timestamp vt on
 * processor p means: p has seen (invalidated for) every interval i of
 * every processor q with i <= vt[q].
 */

#ifndef NCP2_DSM_VCLOCK_HH
#define NCP2_DSM_VCLOCK_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm
{

/** Per-processor interval sequence number (intervals are 1-based). */
using IntervalSeq = std::uint32_t;

/** A vector timestamp: vt[q] = newest interval of q covered. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(unsigned nprocs) : v_(nprocs, 0) {}

    [[nodiscard]] IntervalSeq operator[](unsigned p) const { return v_[p]; }
    [[nodiscard]] IntervalSeq &operator[](unsigned p) { return v_[p]; }
    [[nodiscard]] unsigned
    size() const
    {
        return static_cast<unsigned>(v_.size());
    }

    /**
     * Component-wise maximum (join). All clocks in one simulation are
     * created with the same width, so the size check is debug-only:
     * merge() runs on every lock grant and barrier departure.
     */
    void
    merge(const VectorClock &o)
    {
        ncp2_dassert(v_.size() == o.v_.size(), "vector clock size mismatch");
        for (std::size_t i = 0; i < v_.size(); ++i)
            if (o.v_[i] > v_[i])
                v_[i] = o.v_[i];
    }

    /** True if every component of *this <= o (happens-before or equal). */
    [[nodiscard]] bool
    dominatedBy(const VectorClock &o) const
    {
        ncp2_dassert(v_.size() == o.v_.size(), "vector clock size mismatch");
        for (std::size_t i = 0; i < v_.size(); ++i)
            if (v_[i] > o.v_[i])
                return false;
        return true;
    }

    [[nodiscard]] bool
    operator==(const VectorClock &o) const
    {
        return v_ == o.v_;
    }

  private:
    std::vector<IntervalSeq> v_;
};

/** Identifies one interval of one processor. */
struct IntervalId
{
    sim::NodeId proc = sim::invalid_node;
    IntervalSeq seq = 0;

    bool
    operator==(const IntervalId &o) const
    {
        return proc == o.proc && seq == o.seq;
    }
};

/**
 * A write notice: "page was modified during interval id". Transmitted at
 * synchronization points; receipt obliges the receiver to invalidate the
 * page before its next use.
 */
struct WriteNotice
{
    sim::PageId page = 0;
    IntervalId interval;
};

/**
 * An interval record kept by its creating processor (and lazily learned
 * by others): the pages written plus the creator's vector time at the
 * interval's close, used to order diff application.
 */
struct IntervalRecord
{
    IntervalId id;
    VectorClock vt;                  ///< creator's clock when interval closed
    std::vector<sim::PageId> pages;  ///< pages written during the interval
};

} // namespace dsm

#endif // NCP2_DSM_VCLOCK_HH
