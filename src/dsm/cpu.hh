/**
 * @file
 * The computation-processor model: a fiber plus a timing account.
 *
 * The fiber executes application code natively. Simulated time advances
 * in two ways:
 *  - advance(): cheap accumulation of cycles (busy work, cache hits,
 *    local-memory misses). Accumulated lag is flushed to the event queue
 *    every `time_quantum` cycles so that nodes interleave finely;
 *  - blocking: page faults, lock/barrier waits and explicit sleeps
 *    yield the fiber and resume it from a protocol event, attributing
 *    the waited cycles to the right breakdown category.
 *
 * Remote-request service (IPC) is modelled with an interrupt timeline:
 * each interrupt occupies the CPU for its service time starting at
 * max(arrival, previous-interrupt-end). While the application is
 * *running*, that time is injected into the fiber's clock at the next
 * flush (visible IPC); while the application is *blocked*, the service
 * overlaps the stall and only delays the wake-up if it is still in
 * progress then - exactly the paper's observation that "IPC overheads
 * are often hidden by data fetch and synchronization latencies" except
 * under prefetching.
 */

#ifndef NCP2_DSM_CPU_HH
#define NCP2_DSM_CPU_HH

#include <functional>
#include <memory>

#include "dsm/breakdown.hh"
#include "dsm/config.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/types.hh"

namespace dsm
{

/** One computation processor. */
class Cpu
{
  public:
    Cpu(sim::NodeId id, sim::EventQueue &eq, const SysConfig &cfg);

    /** Create the fiber and schedule its first activation at tick 0. */
    void start(std::function<void()> body);

    bool finished() const { return finished_; }
    sim::Tick finishTick() const { return finish_tick_; }
    sim::NodeId id() const { return id_; }

    /** The processor's local clock: queue time plus unflushed lag. */
    sim::Tick localNow() const { return eq_.now() + lag_; }

    // ----- called from inside the fiber -----

    /** Accumulate @p n cycles of category @p c; flushes at the quantum. */
    void
    advance(sim::Cycles n, Cat c)
    {
        bd.add(c, n);
        lag_ += n;
        if (lag_ >= cfg_.time_quantum) [[unlikely]]
            flush();
    }

    /** Synchronize the local clock with the event queue (may yield). */
    void flush();

    /**
     * Flush, then sleep until absolute tick @p t, attributing the wait
     * to @p c. No-op if @p t is in the past.
     */
    void stallUntil(sim::Tick t, Cat c);

    /**
     * Flush, then block until wake() is called; the waited cycles are
     * attributed to @p c. Returns the resume tick.
     */
    sim::Tick block(Cat c);

    // ----- called from protocol events -----

    /** Unblock a fiber blocked in block(); resumes at the current tick. */
    void wake();

    /**
     * Steal the CPU for @p service cycles (servicing a remote request).
     * @return the tick at which the service completes.
     */
    sim::Tick interrupt(sim::Cycles service);

    /** True if the fiber is currently blocked in block(). */
    bool blocked() const { return blocked_; }

    /**
     * Counts every time this fiber has yielded to the event loop.
     * Protocol state observable from the fiber can only change across a
     * yield (the simulator is single-threaded), so an unchanged count
     * between two points proves cached protocol-derived state is still
     * exact; the bulk access path uses this to hoist descriptor
     * validation out of its inner loop.
     */
    std::uint64_t yields() const { return yields_; }

    /** Earliest tick the CPU is free of interrupt handlers. */
    sim::Tick interruptBusyUntil() const { return intr_busy_until_; }

    Breakdown bd;

    // visible-vs-hidden IPC bookkeeping
    std::uint64_t ipcHiddenCycles() const { return ipc_hidden_; }
    std::uint64_t interrupts() const { return interrupts_; }

  private:
    void sleepTo(sim::Tick t);
    void absorbInterrupts();

    sim::NodeId id_;
    sim::EventQueue &eq_;
    const SysConfig &cfg_;
    std::unique_ptr<sim::Fiber> fiber_;

    sim::Cycles lag_ = 0;              ///< unflushed busy cycles
    bool blocked_ = false;             ///< in block(), awaiting wake()
    bool wake_pending_ = false;        ///< wake() arrived before yield
    bool finished_ = false;
    sim::Tick finish_tick_ = 0;

    sim::Tick intr_busy_until_ = 0;    ///< interrupt-handler timeline
    sim::Cycles pending_intr_ = 0;     ///< service to inject at next flush
    std::uint64_t yields_ = 0;         ///< yields to the event loop
    std::uint64_t ipc_hidden_ = 0;
    std::uint64_t interrupts_ = 0;
};

} // namespace dsm

#endif // NCP2_DSM_CPU_HH
