/**
 * @file
 * The workload (application) interface.
 *
 * Workloads are SPMD programs written against the Proc API. Lifecycle:
 *   1. plan()     - host-side: lay out shared data on the global heap;
 *   2. run()      - executed once per simulated processor, on its fiber;
 *   3. validate() - host-side after the run: check the computed result
 *                   (throws via ncp2_fatal on failure), which is how the
 *                   test suite proves protocol correctness end to end.
 */

#ifndef NCP2_DSM_WORKLOAD_HH
#define NCP2_DSM_WORKLOAD_HH

#include <string>

#include "dsm/config.hh"
#include "dsm/heap.hh"
#include "dsm/proc.hh"
#include "sim/stats.hh"

namespace dsm
{

class System;

/** An SPMD application running on the DSM. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name ("TSP", "Ocean", ...). */
    virtual std::string name() const = 0;

    /** Allocate shared data; runs on the host before simulation. */
    virtual void plan(GlobalHeap &heap, const SysConfig &cfg) = 0;

    /** SPMD body; runs on every simulated processor. */
    virtual void run(Proc &p) = 0;

    /**
     * Verify the result after the run; must call ncp2_fatal on failure.
     * @param sys the system, for reading final shared-memory contents.
     */
    virtual void validate(System &sys) = 0;

    /**
     * Optional application-level stat tree (request latencies, ...).
     * Snapshotted into RunResult::app_stats right after validate(), so
     * a workload may fold per-node stats into globals in validate().
     */
    virtual const sim::StatGroup *statGroup() const { return nullptr; }

    /**
     * Whether this workload's host-visible results are reproducible
     * under the conservative-window parallel executor. Default yes.
     *
     * A workload whose observable output (logs, per-request metrics,
     * data values) depends on the order contended locks are granted
     * must decline: in-window lock-grant rendezvous are the one
     * documented host race under pdes_workers > 1 (see DESIGN.md), so
     * such a workload would not replay bit-identically. Declining
     * forces the serial scheduler with a warning, exactly as a
     * protocol declining Protocol::pdesSafe() does.
     */
    virtual bool pdesSafe() const { return true; }
};

} // namespace dsm

#endif // NCP2_DSM_WORKLOAD_HH
