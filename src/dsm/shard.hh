/**
 * @file
 * Per-node shards of what used to be system-global DSM state.
 *
 * The ownership rule the parallel executor depends on: every piece of
 * simulated state lives in exactly one node's shard, and only events
 * executing on that node's queue may touch it. Cross-node reads and
 * updates travel as net::Router messages. The rule is enforced (in
 * debug builds) by the owner assert in System::shard()/shardAt():
 * the accessor checks the calling host thread's sim::current_exec_node
 * against the shard's owner, with -1 (host-side planning/validation
 * code) always admitted.
 *
 * The shard currently carries:
 *  - the node's diff-buffer pool: diff capture/apply recycle buffers
 *    per node, never across nodes, so workers do not contend on (or
 *    corrupt) a shared free list;
 *  - the node's slice of the global heap directory: which shared pages
 *    are homed here, registered by the protocol at attach() time. The
 *    GlobalHeap keeps assigning *addresses* (a host-side, pre-run bump
 *    pointer — addresses must stay globally unique and identical to
 *    the serial allocator's), but the per-page home/ownership record is
 *    shard state.
 */

#ifndef NCP2_DSM_SHARD_HH
#define NCP2_DSM_SHARD_HH

#include <vector>

#include "dsm/diff_pool.hh"
#include "sim/types.hh"

namespace dsm
{

/** The node-local slice of the heap directory: pages homed here. */
class HeapShard
{
  public:
    /** Record that @p page is homed on this shard's node. */
    void registerHomePage(sim::PageId page) { home_pages_.push_back(page); }

    /** Pages homed on this node, in registration order. */
    const std::vector<sim::PageId> &homePages() const { return home_pages_; }

    void reset() { home_pages_.clear(); }

  private:
    std::vector<sim::PageId> home_pages_;
};

/** Everything node-owned that used to hang off shared System state. */
struct NodeShard
{
    explicit NodeShard(sim::NodeId id) : id(id) {}

    NodeShard(const NodeShard &) = delete;
    NodeShard &operator=(const NodeShard &) = delete;

    const sim::NodeId id;
    DiffPool diffs;
    HeapShard heap;
};

} // namespace dsm

#endif // NCP2_DSM_SHARD_HH
