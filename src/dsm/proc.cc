#include "dsm/proc.hh"

#include "dsm/system.hh"

namespace dsm
{

unsigned
Proc::nprocs() const
{
    return sys_->nprocs();
}

void
Proc::compute(std::uint64_t cycles)
{
    sys_->node(id_).cpu.advance(cycles, Cat::busy);
}

sim::Tick
Proc::now()
{
    return sys_->node(id_).cpu.localNow();
}

void
Proc::idleUntil(sim::Tick t)
{
    sys_->node(id_).cpu.stallUntil(t, Cat::idle);
}

void
Proc::access(sim::GAddr addr, unsigned bytes, bool is_write, void *data)
{
    sys_->access(id_, addr, bytes, is_write, data);
}

void
Proc::accessRange(sim::GAddr addr, unsigned elem_bytes, std::size_t count,
                  bool is_write, void *data)
{
    sys_->accessRange(id_, addr, elem_bytes, count, is_write, data);
}

void
Proc::lock(unsigned lock_id)
{
    sys_->acquire(id_, lock_id);
}

void
Proc::unlock(unsigned lock_id)
{
    sys_->release(id_, lock_id);
}

void
Proc::barrier(unsigned barrier_id)
{
    sys_->barrier(id_, barrier_id);
}

sim::Rng &
Proc::rng()
{
    return sys_->node(id_).rng;
}

} // namespace dsm
