/**
 * @file
 * The application-facing DSM programming interface.
 *
 * A Proc is a handle to one simulated computation processor. Workloads
 * are SPMD: the same run() body executes on every Proc. Shared memory is
 * accessed through typed get/put calls over global addresses (GAddr);
 * private data is ordinary host memory whose computation cost the
 * workload charges with compute().
 */

#ifndef NCP2_DSM_PROC_HH
#define NCP2_DSM_PROC_HH

#include <cstring>
#include <type_traits>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace dsm
{

class System;

/** Handle to one simulated processor, passed to Workload::run(). */
class Proc
{
  public:
    Proc(System &sys, sim::NodeId id) : sys_(&sys), id_(id) {}

    sim::NodeId id() const { return id_; }
    unsigned nprocs() const;

    /** Charge @p cycles of useful (busy) computation. */
    void compute(std::uint64_t cycles);

    /** This processor's current local simulated time. */
    sim::Tick now();

    /**
     * Sleep until absolute local tick @p t, charging the wait to the
     * idle category. No-op if @p t is already in the past. This is the
     * open-loop serving primitive: a server parks here until the next
     * request's arrival tick.
     */
    void idleUntil(sim::Tick t);

    /** Read a trivially copyable value (size <= 8) from shared memory. */
    template <typename T>
    T
    get(sim::GAddr addr)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        T v;
        access(addr, sizeof(T), false, &v);
        return v;
    }

    /** Write a value to shared memory. */
    template <typename T>
    void
    put(sim::GAddr addr, T v)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        access(addr, sizeof(T), true, &v);
    }

    /**
     * Read @p count consecutive values starting at @p addr into @p out.
     * Timing-identical to the equivalent get() loop (every element is
     * charged individually); batching removes per-call host overhead.
     *
     * getBlock/putBlock are the canonical bulk range entry points:
     * every other range spelling (GArray::getRange/putRange, the g::
     * containers' read/write) forwards here.
     */
    template <typename T>
    void
    getBlock(sim::GAddr addr, T *out, std::size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        accessRange(addr, sizeof(T), count, false, out);
    }

    /** Write @p count consecutive values from @p src starting at @p addr. */
    template <typename T>
    void
    putBlock(sim::GAddr addr, const T *src, std::size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        // Writes only read from the buffer; const_cast crosses the
        // shared void* plumbing of System::accessRange.
        accessRange(addr, sizeof(T), count, true,
                    const_cast<T *>(src));
    }

    /** Acquire a global lock (blocks). */
    void lock(unsigned lock_id);

    /** Release a global lock. */
    void unlock(unsigned lock_id);

    /** Global barrier across all processors. */
    void barrier(unsigned barrier_id);

    /** Per-processor deterministic RNG. */
    sim::Rng &rng();

    System &system() { return *sys_; }

  private:
    void access(sim::GAddr addr, unsigned bytes, bool is_write, void *data);
    void accessRange(sim::GAddr addr, unsigned elem_bytes, std::size_t count,
                     bool is_write, void *data);

    System *sys_;
    sim::NodeId id_;
};

/**
 * Typed view of a shared array at a fixed base address; sugar over
 * Proc::get/put so workload code stays readable.
 */
template <typename T>
struct GArray
{
    sim::GAddr base = 0;

    sim::GAddr at(std::uint64_t i) const { return base + i * sizeof(T); }
    T get(Proc &p, std::uint64_t i) const { return p.get<T>(at(i)); }
    void put(Proc &p, std::uint64_t i, T v) const { p.put<T>(at(i), v); }

    /**
     * Read elements [i, i + count) into @p out.
     * @deprecated Duplicate spelling of the canonical range entry
     * point; call Proc::getBlock(at(i), ...) directly (or move the
     * array to g::vector, whose read/write forward there too).
     */
    [[deprecated("use Proc::getBlock (canonical range entry point)")]]
    void
    getRange(Proc &p, std::uint64_t i, T *out, std::size_t count) const
    {
        p.getBlock(at(i), out, count);
    }

    /**
     * Write elements [i, i + count) from @p src.
     * @deprecated See getRange; call Proc::putBlock(at(i), ...) instead.
     */
    [[deprecated("use Proc::putBlock (canonical range entry point)")]]
    void
    putRange(Proc &p, std::uint64_t i, const T *src, std::size_t count) const
    {
        p.putBlock(at(i), src, count);
    }
};

} // namespace dsm

#endif // NCP2_DSM_PROC_HH
