/**
 * @file
 * Per-node access descriptors: the fast path of the shared-access engine.
 *
 * A descriptor caches the outcome of the protocol's per-access check
 * ("page mapped with sufficient permission, nothing to do") so the
 * overwhelmingly common access completes inline in System::access with
 * no virtual dispatch: one array probe replaces Protocol::ensureAccess,
 * and the write-side protocol callback is either skipped (proven no-op)
 * or inlined (TreadMarks interval stamping).
 *
 * Correctness contract: a descriptor may exist for (node, page) only
 * while the node's page-table entry satisfies the protocol's own
 * fast-path condition (present, access >= requested). Every protection
 * transition in the protocols therefore flushes the descriptor
 * (DescCache::invalidate on access -> none, DescCache::downgradeWrite on
 * readwrite -> read); a debug-only cross-check in System::access asserts
 * the invariant on every hit. Because write hooks are applied after
 * timing advances that may yield the fiber, the hook site re-validates
 * the slot and falls back to the virtual callback if it was flushed
 * mid-access.
 */

#ifndef NCP2_DSM_ACCESS_DESC_HH
#define NCP2_DSM_ACCESS_DESC_HH

#include <array>
#include <cstdint>

#include "dsm/page.hh"
#include "dsm/vclock.hh"
#include "sim/types.hh"

namespace dsm
{

/** What a descriptor-hit write must do in place of Protocol::sharedWrite. */
enum class WriteHook : std::uint8_t
{
    protocol,     ///< call the virtual Protocol::sharedWrite (always safe)
    none,         ///< proven no-op for this (node, page) while valid
    tmk_interval, ///< inline TreadMarks: stamp word_interval[w] = open_seq
};

/** One cached grant: everything a hit needs, nothing it must look up. */
struct AccessDesc
{
    static constexpr sim::PageId invalid_page = ~sim::PageId{0};

    sim::PageId page = invalid_page; ///< tag; invalid_page = empty slot
    std::uint8_t *data = nullptr;    ///< pg->data.get() (stable: PageStore
                                     ///< never frees a materialized page)
    NodePage *pg = nullptr;          ///< page-table entry (stable address)
    bool writable = false;           ///< granted mode is readwrite
    WriteHook hook = WriteHook::protocol;
    IntervalSeq *word_interval = nullptr; ///< tmk_interval: stamp target
    IntervalSeq open_seq = 0;             ///< tmk_interval: stamp value
};

/**
 * Small direct-mapped descriptor cache, one per node. Sized so the hot
 * working set of a page-striped app maps without pathological aliasing;
 * an aliased install simply evicts (the slow path remains correct).
 */
class DescCache
{
  public:
    static constexpr unsigned entries = 64;

    /** The slot @p page maps to (its tag may be another page). */
    [[nodiscard]] AccessDesc &
    slot(sim::PageId page)
    {
        return slots_[page & (entries - 1)];
    }

    /**
     * Probe for a usable grant.
     * @return the descriptor, or nullptr when the slot holds another
     *         page or the granted mode is below what @p want_write needs.
     */
    [[nodiscard]] AccessDesc *
    lookup(sim::PageId page, bool want_write)
    {
        AccessDesc &e = slot(page);
        if (e.page != page || (want_write && !e.writable))
            return nullptr;
        return &e;
    }

    /** Flush on access -> none (invalidation, unmap, eviction). */
    void
    invalidate(sim::PageId page)
    {
        AccessDesc &e = slot(page);
        if (e.page == page)
            e = AccessDesc{};
    }

    /**
     * Flush write permission on readwrite -> read (interval close, diff
     * capture). The read grant survives; the write hook does not.
     */
    void
    downgradeWrite(sim::PageId page)
    {
        AccessDesc &e = slot(page);
        if (e.page == page) {
            e.writable = false;
            e.hook = WriteHook::protocol;
            e.word_interval = nullptr;
            e.open_seq = 0;
        }
    }

    void
    clear()
    {
        for (AccessDesc &e : slots_)
            e = AccessDesc{};
    }

  private:
    std::array<AccessDesc, entries> slots_{};
};

} // namespace dsm

#endif // NCP2_DSM_ACCESS_DESC_HH
