#include "dsm/cpu.hh"

#include "sim/logging.hh"

namespace dsm
{

Cpu::Cpu(sim::NodeId id, sim::EventQueue &eq, const SysConfig &cfg)
    : id_(id), eq_(eq), cfg_(cfg)
{
}

void
Cpu::start(std::function<void()> body)
{
    // Floor below which even shallow workloads risk smashing the fiber
    // stack (signal frames, library locals).
    ncp2_assert(cfg_.fiber_stack_bytes >= (64u << 10),
                "fiber_stack_bytes below the 64 KiB floor");
    fiber_ = std::make_unique<sim::Fiber>(
        [this, body = std::move(body)]() {
            body();
            flush();
            finished_ = true;
            finish_tick_ = eq_.now();
        },
        cfg_.fiber_stack_bytes);
    eq_.schedule(0, [this]() { fiber_->resume(); });
}

void
Cpu::sleepTo(sim::Tick t)
{
    ncp2_assert(sim::Fiber::current(), "sleepTo outside the cpu fiber");
    // When nothing is due at or before t the wake-up event would be the
    // very next thing the queue runs; skip the schedule/yield/resume
    // round-trip and advance time in place. Interleaving with other
    // processors is untouched: their pending resume events make
    // advanceIfIdle refuse.
    if (eq_.advanceIfIdle(t))
        return;
    eq_.schedule(t, [this]() { fiber_->resume(); });
    ++yields_;
    sim::Fiber::yield();
}

void
Cpu::absorbInterrupts()
{
    // Interrupt handlers that fired while the application was running
    // push its instructions back by their service time.
    while (pending_intr_) {
        const sim::Cycles s = pending_intr_;
        pending_intr_ = 0;
        bd.add(Cat::ipc, s);
        sleepTo(eq_.now() + s);
    }
}

void
Cpu::flush()
{
    while (lag_ || pending_intr_) {
        const sim::Cycles n = lag_;
        lag_ = 0;
        if (n)
            sleepTo(eq_.now() + n);
        absorbInterrupts();
    }
}

void
Cpu::stallUntil(sim::Tick t, Cat c)
{
    flush();
    if (t > eq_.now()) {
        bd.add(c, t - eq_.now());
        sleepTo(t);
    }
    absorbInterrupts();
}

sim::Tick
Cpu::block(Cat c)
{
    flush();
    const sim::Tick start = eq_.now();
    if (!wake_pending_) {
        blocked_ = true;
        ++yields_;
        sim::Fiber::yield();
        blocked_ = false;
    }
    wake_pending_ = false;

    sim::Tick now = eq_.now();
    // If an interrupt handler is still running when the data arrives,
    // the application resumes only after it completes; the overlapped
    // portion was hidden.
    if (intr_busy_until_ > now) {
        bd.add(c, now - start);
        bd.add(Cat::ipc, intr_busy_until_ - now);
        sleepTo(intr_busy_until_);
        now = eq_.now();
    } else {
        bd.add(c, now - start);
    }
    absorbInterrupts();
    return now;
}

void
Cpu::wake()
{
    if (blocked_) {
        eq_.schedule(eq_.now(), [this]() { fiber_->resume(); });
        blocked_ = false;
        wake_pending_ = true;   // consumed by block() upon resume
    } else {
        wake_pending_ = true;
    }
}

sim::Tick
Cpu::interrupt(sim::Cycles service)
{
    ++interrupts_;
    const sim::Tick now = eq_.now();
    const sim::Tick start = intr_busy_until_ > now ? intr_busy_until_ : now;
    intr_busy_until_ = start + service;
    if (blocked_) {
        // Overlapped with an application stall: hidden unless it is
        // still running at wake-up (handled in block()).
        ipc_hidden_ += service;
    } else {
        // The application is running; inject the stolen time at the
        // next flush.
        pending_intr_ += service;
    }
    return intr_busy_until_;
}

} // namespace dsm
