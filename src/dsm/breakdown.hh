/**
 * @file
 * Execution-time breakdown accounting, matching figure 2 of the paper.
 *
 * Every cycle of a computation processor's execution is attributed to one
 * category: busy (useful work), data (page/diff fetch stalls), synch
 * (lock/barrier waits including interval and write-notice processing),
 * ipc (servicing requests from remote processors), and "others" (TLB
 * fills, cache misses to local memory, write-buffer stalls, interrupt
 * entry/exit). The paper additionally labels each bar with the share of
 * time spent in diff-related operations (twinning + diff creation +
 * application), which we track separately.
 */

#ifndef NCP2_DSM_BREAKDOWN_HH
#define NCP2_DSM_BREAKDOWN_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace dsm
{

/** Where a processor cycle went. */
enum class Cat : unsigned
{
    busy = 0,     ///< application computation + cache-hit accesses
    data,         ///< stalled fetching pages/diffs (coherence misses)
    synch,        ///< lock/barrier latency incl. notice processing
    ipc,          ///< stolen to service remote requests
    other_cache,  ///< local-memory cache-miss latency
    other_tlb,    ///< TLB fill latency
    other_wb,     ///< write-buffer-full stalls
    other_int,    ///< interrupt entry/exit not attributable elsewhere
    idle,         ///< open-loop server waiting for the next arrival
    num_cats
};

constexpr unsigned num_cats = static_cast<unsigned>(Cat::num_cats);

inline const char *
catName(Cat c)
{
    switch (c) {
      case Cat::busy: return "busy";
      case Cat::data: return "data";
      case Cat::synch: return "synch";
      case Cat::ipc: return "ipc";
      case Cat::other_cache: return "other.cache";
      case Cat::other_tlb: return "other.tlb";
      case Cat::other_wb: return "other.wb";
      case Cat::other_int: return "other.int";
      case Cat::idle: return "idle";
      default: return "?";
    }
}

/** Per-processor cycle attribution plus diff-operation bookkeeping. */
struct Breakdown
{
    std::array<std::uint64_t, num_cats> cycles{};

    /// Cycles the *computation processor* spent on twin creation and
    /// diff creation/application (the paper's per-bar percentage label).
    std::uint64_t diff_op_cycles = 0;
    /// Diff-op cycles executed by the protocol controller instead
    /// (overlapped; not on the CPU's critical path unless waited on).
    std::uint64_t diff_op_ctrl_cycles = 0;

    void
    add(Cat c, sim::Cycles n)
    {
        cycles[static_cast<unsigned>(c)] += n;
    }

    std::uint64_t get(Cat c) const { return cycles[static_cast<unsigned>(c)]; }

    std::uint64_t
    others() const
    {
        return get(Cat::other_cache) + get(Cat::other_tlb) +
               get(Cat::other_wb) + get(Cat::other_int);
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto v : cycles)
            t += v;
        return t;
    }

    Breakdown &
    operator+=(const Breakdown &o)
    {
        for (unsigned i = 0; i < num_cats; ++i)
            cycles[i] += o.cycles[i];
        diff_op_cycles += o.diff_op_cycles;
        diff_op_ctrl_cycles += o.diff_op_ctrl_cycles;
        return *this;
    }
};

} // namespace dsm

#endif // NCP2_DSM_BREAKDOWN_HH
