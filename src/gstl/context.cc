#include "gstl/context.hh"

namespace g
{

namespace detail
{

void
Space::begin(dsm::GlobalHeap &h, const dsm::SysConfig &c)
{
    heap = &h;
    cfg = &c;
    planning = true;
    ++plan_epoch;
    lock_names.clear();
    barrier_names.clear();
    next_lock_id = 0;
    next_barrier_id = 0;
}

} // namespace detail

void
mutex::lock(context &ctx)
{
    ctx.proc().lock(id());
}

void
mutex::unlock(context &ctx)
{
    ctx.proc().unlock(id());
}

void
barrier::wait(context &ctx)
{
    ctx.proc().barrier(id());
}

dsm::GlobalHeap &
context::plan_heap()
{
    ncp2_assert(planning() && space_->planning,
                "shared allocation outside plan(): layouts are decided "
                "once, at plan time");
    return *space_->heap;
}

mutex
context::make_mutex(const std::string &name)
{
    plan_heap(); // same phase rules as allocation
    const unsigned id = space_->next_lock_id;
    if (!space_->lock_names.emplace(name, id).second)
        ncp2_fatal("g::mutex name collision at plan time: '%s'",
                   name.c_str());
    ++space_->next_lock_id;
    return mutex(id);
}

std::vector<mutex>
context::make_mutexes(const std::string &name, unsigned n)
{
    ncp2_assert(n, "make_mutexes of zero locks");
    plan_heap();
    const unsigned base = space_->next_lock_id;
    if (!space_->lock_names.emplace(name, base).second)
        ncp2_fatal("g::mutex name collision at plan time: '%s'",
                   name.c_str());
    space_->next_lock_id += n;
    std::vector<mutex> v;
    v.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        v.push_back(mutex(base + i));
    return v;
}

barrier
context::make_barrier(const std::string &name)
{
    plan_heap();
    const unsigned id = space_->next_barrier_id;
    if (!space_->barrier_names.emplace(name, id).second)
        ncp2_fatal("g::barrier name collision at plan time: '%s'",
                   name.c_str());
    ++space_->next_barrier_id;
    return barrier(id);
}

void
App::plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg)
{
    space_.begin(heap, cfg);
    context ctx(space_, nullptr);
    plan(ctx);
    space_.planning = false;
}

void
App::run(dsm::Proc &p)
{
    context ctx(space_, &p);
    run(ctx);
}

} // namespace g
