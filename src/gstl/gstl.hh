/**
 * @file
 * The distributed-STL layer: the one app-facing API of this DSM.
 *
 * Write an app by subclassing g::App and changing only the types of
 * your shared data:
 *
 *   class Sum : public g::App {
 *       g::vector<double> xs_;
 *       g::atomic<std::uint64_t> total_;
 *       g::barrier done_;
 *     public:
 *       std::string name() const override { return "sum"; }
 *       void plan(g::context &ctx) override {
 *           xs_.allocate(ctx, 1 << 16);
 *           total_.allocate(ctx, "total");
 *           done_ = ctx.make_barrier("done");
 *       }
 *       void run(g::context &ctx) override {
 *           // SPMD body: ctx.id(), ctx.nprocs(), ctx.compute(...),
 *           // xs_.get/set/read/write, total_.fetch_add, done_.wait.
 *       }
 *       void validate(dsm::System &sys) override {
 *           // host-side: g::peek(sys, xs_, i) reads final memory.
 *       }
 *   };
 *
 * See gstl/context.hh (lifecycle and sync handles) and
 * gstl/containers.hh (vector, hash_map, atomic, spsc_queue).
 */

#ifndef NCP2_GSTL_GSTL_HH
#define NCP2_GSTL_GSTL_HH

#include "gstl/containers.hh"
#include "gstl/context.hh"

#endif // NCP2_GSTL_GSTL_HH
