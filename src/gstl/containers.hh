/**
 * @file
 * Shared containers over the DSM: take correct concurrent C++ and
 * change only the types.
 *
 *  - g::vector<T>      a fixed-size shared array; element get/set plus
 *                      bulk read/write that batch whole page runs
 *                      through the fast-path range engine, and
 *                      page-run chunk iteration for staging through a
 *                      bounded host buffer;
 *  - g::hash_map<K,V>  open addressing over g::vector storage, striped:
 *                      each stripe is an independently locked probe
 *                      region, so concurrent mixed insert/find traffic
 *                      serializes only per stripe;
 *  - g::atomic<T>      lock-backed read-modify-write on one shared slot
 *                      (packs with neighbours: natural alignment, no
 *                      page rounding);
 *  - g::spsc_queue<T>  a bounded single-producer/single-consumer
 *                      mailbox (ring + cursors behind one lock; full/
 *                      empty block by spinning with a backoff charge,
 *                      which lazy release consistency requires - an
 *                      unsynchronized poll could read a stale cursor
 *                      forever).
 *
 * All element types must be trivially copyable and 1/2/4/8 bytes (the
 * shared-access path's contract). Storage is claimed at plan() time
 * through the context; handles are cheap POD-like values that can be
 * copied freely into run() bodies.
 */

#ifndef NCP2_GSTL_CONTAINERS_HH
#define NCP2_GSTL_CONTAINERS_HH

#include <cstring>
#include <optional>
#include <string>

#include "dsm/system.hh"
#include "gstl/context.hh"

namespace g
{

/** Fixed-size shared array of T living on the global heap. */
template <typename T>
class vector
{
  public:
    vector() = default;

    /**
     * Plan phase: claim storage for @p count elements. Page-aligned by
     * default (fresh pages = layout control over false sharing);
     * @p page_aligned=false packs at natural alignment.
     */
    void
    allocate(context &ctx, std::uint64_t count, bool page_aligned = true)
    {
        ncp2_assert(!valid_ || epoch_ != ctx.plan_epoch(),
                    "g::vector allocated twice in one plan");
        base_ = ctx.alloc_array<T>(count, page_aligned);
        size_ = count;
        epoch_ = ctx.plan_epoch();
        valid_ = true;
    }

    bool valid() const { return valid_; }
    std::uint64_t size() const { return size_; }

    /** Global address of element @p i (i == size() is the end). */
    sim::GAddr
    addr(std::uint64_t i = 0) const
    {
        ncp2_assert(valid_ && i <= size_, "g::vector index out of range");
        return base_ + i * sizeof(T);
    }

    T
    get(context &ctx, std::uint64_t i) const
    {
        ncp2_assert(i < size_, "g::vector get out of range");
        return ctx.proc().template get<T>(addr(i));
    }

    void
    set(context &ctx, std::uint64_t i, T v) const
    {
        ncp2_assert(i < size_, "g::vector set out of range");
        ctx.proc().put(addr(i), v);
    }

    /** Bulk-read elements [i, i+count) into @p out (page-run batched). */
    void
    read(context &ctx, std::uint64_t i, T *out, std::size_t count) const
    {
        ncp2_assert(i + count <= size_, "g::vector read out of range");
        ctx.proc().getBlock(addr(i), out, count);
    }

    /** Bulk-write elements [i, i+count) from @p src. */
    void
    write(context &ctx, std::uint64_t i, const T *src,
          std::size_t count) const
    {
        ncp2_assert(i + count <= size_, "g::vector write out of range");
        ctx.proc().putBlock(addr(i), src, count);
    }

    /**
     * Iterate [lo, hi) as page-run chunks: fn(index, count) is invoked
     * per maximal run of elements sharing one page, in order. The
     * natural shape for staging bulk transfers through a bounded host
     * buffer of one page.
     */
    template <typename Fn>
    void
    for_each_chunk(const context &ctx, std::uint64_t lo, std::uint64_t hi,
                   Fn &&fn) const
    {
        ncp2_assert(lo <= hi && hi <= size_,
                    "g::vector chunk range out of range");
        const std::uint64_t page = ctx.page_bytes();
        while (lo < hi) {
            const sim::GAddr a = base_ + lo * sizeof(T);
            const std::uint64_t left_in_page =
                (page - a % page) / sizeof(T);
            const std::uint64_t n =
                left_in_page < hi - lo ? left_in_page : hi - lo;
            fn(lo, static_cast<std::size_t>(n));
            lo += n;
        }
    }

  private:
    sim::GAddr base_ = 0;
    std::uint64_t size_ = 0;
    std::uint64_t epoch_ = 0;
    bool valid_ = false;
};

/** Read one element host-side after the run (validation helper). */
template <typename T>
T
peek(dsm::System &sys, const vector<T> &v, std::uint64_t i)
{
    return sys.readGlobal<T>(v.addr(i));
}

/**
 * Lock-backed atomic view of one shared T slot. allocate() claims a
 * packed (naturally aligned) slot plus a named mutex; the view
 * constructor instead aliases an existing g::vector element with a
 * caller-supplied mutex, so arrays of counters can keep a deliberate
 * one-hot-page layout while each element still gets atomic RMW ops.
 */
template <typename T>
class atomic
{
  public:
    atomic() = default;

    /** View form: element @p i of @p v guarded by @p mu. */
    atomic(const vector<T> &v, std::uint64_t i, mutex mu)
        : addr_(v.addr(i)), mu_(mu), valid_(true)
    {
    }

    /** Plan phase: claim a packed slot and the mutex named @p name. */
    void
    allocate(context &ctx, const std::string &name)
    {
        ncp2_assert(!valid_ || epoch_ != ctx.plan_epoch(),
                    "g::atomic allocated twice in one plan");
        addr_ = ctx.alloc_array<T>(1, false);
        mu_ = ctx.make_mutex(name);
        epoch_ = ctx.plan_epoch();
        valid_ = true;
    }

    sim::GAddr
    addr() const
    {
        ncp2_assert(valid_, "g::atomic used before allocate()");
        return addr_;
    }

    /** Coherent read (takes the lock, so remote updates are visible). */
    T
    load(context &ctx)
    {
        lock_guard lk(ctx, mu_);
        return ctx.proc().template get<T>(addr());
    }

    /**
     * Unsynchronized read: whatever value this node's copy holds right
     * now. Legal under LRC (the oracle accepts concurrent values) but
     * possibly stale - never gate progress on it.
     */
    T
    load_relaxed(context &ctx)
    {
        return ctx.proc().template get<T>(addr());
    }

    void
    store(context &ctx, T v)
    {
        lock_guard lk(ctx, mu_);
        ctx.proc().put(addr(), v);
    }

    /** Atomic += via the lock; returns the previous value. */
    T
    fetch_add(context &ctx, T delta)
    {
        lock_guard lk(ctx, mu_);
        const T old = ctx.proc().template get<T>(addr());
        ctx.compute(rmw_cycles);
        ctx.proc().put(addr(), static_cast<T>(old + delta));
        return old;
    }

    /** Atomic swap via the lock; returns the previous value. */
    T
    exchange(context &ctx, T v)
    {
        lock_guard lk(ctx, mu_);
        const T old = ctx.proc().template get<T>(addr());
        ctx.compute(rmw_cycles);
        ctx.proc().put(addr(), v);
        return old;
    }

    /// Busy cycles charged for the RMW ALU work between the two halves
    /// of every read-modify-write (matches a hand-written locked RMW).
    static constexpr std::uint64_t rmw_cycles = 20;

  private:
    sim::GAddr addr_ = 0;
    mutex mu_;
    std::uint64_t epoch_ = 0;
    bool valid_ = false;
};

/**
 * Striped open-addressed shared hash map. Capacity is split into
 * `stripes` equally sized probe regions; a key hashes to one stripe
 * and probes linearly inside it under that stripe's mutex only. No
 * erase (no tombstones): a stripe that fills is fatal, so plan
 * capacity with headroom. Keys and values must satisfy the element
 * contract (trivially copyable, 1/2/4/8 bytes); the all-ones key
 * encoding is reserved as unusable.
 */
template <typename K, typename V>
class hash_map
{
  public:
    hash_map() = default;

    /**
     * Plan phase: claim storage for @p capacity slots in @p stripes
     * stripes (capacity rounds up to a multiple of stripes) plus the
     * per-stripe mutexes named "<name>/stripe".
     */
    void
    allocate(context &ctx, const std::string &name, std::uint64_t capacity,
             unsigned stripes)
    {
        ncp2_assert(stripes && capacity >= stripes,
                    "g::hash_map needs at least one slot per stripe");
        nstripes_ = stripes;
        stripe_cap_ = (capacity + stripes - 1) / stripes;
        keys_.allocate(ctx, stripe_cap_ * stripes);
        vals_.allocate(ctx, stripe_cap_ * stripes);
        counts_.allocate(ctx, stripes);
        mus_ = ctx.make_mutexes(name + "/stripe", stripes);
    }

    std::uint64_t capacity() const { return stripe_cap_ * nstripes_; }
    unsigned stripes() const { return nstripes_; }

    /**
     * Insert or assign. Returns true when the key was newly inserted,
     * false when an existing value was overwritten.
     */
    bool
    insert(context &ctx, K key, V val)
    {
        return update(ctx, key, val, false);
    }

    /** Insert-or-accumulate: map[key] += delta (insert as delta). */
    bool
    add(context &ctx, K key, V delta)
    {
        return update(ctx, key, delta, true);
    }

    /** Coherent lookup under the stripe lock. */
    std::optional<V>
    find(context &ctx, K key)
    {
        const std::uint64_t tag = tagOf(key);
        const unsigned s = stripeOf(tag);
        lock_guard lk(ctx, mus_[s]);
        const std::uint64_t slot = probe(ctx, s, tag);
        if (slot == npos ||
            keys_.get(ctx, s * stripe_cap_ + slot) != tag)
            return std::nullopt;
        return vals_.get(ctx, s * stripe_cap_ + slot);
    }

    /** Total entries; sums the per-stripe counts under their locks. */
    std::uint64_t
    size(context &ctx)
    {
        std::uint64_t n = 0;
        for (unsigned s = 0; s < nstripes_; ++s) {
            lock_guard lk(ctx, mus_[s]);
            n += counts_.get(ctx, s);
        }
        return n;
    }

    /** Host-side post-run lookup (validation helper). */
    std::optional<V>
    peek_find(dsm::System &sys, K key) const
    {
        const std::uint64_t tag = tagOf(key);
        const unsigned s = stripeOf(tag);
        for (std::uint64_t j = 0; j < stripe_cap_; ++j) {
            const std::uint64_t i =
                s * stripe_cap_ + (startOf(tag) + j) % stripe_cap_;
            const std::uint64_t got = peek(sys, keys_, i);
            if (got == 0)
                return std::nullopt;
            if (got == tag)
                return peek(sys, vals_, i);
        }
        return std::nullopt;
    }

  private:
    static constexpr std::uint64_t npos = ~0ull;

    static std::uint64_t
    tagOf(K key)
    {
        std::uint64_t u = 0;
        std::memcpy(&u, &key, sizeof(K));
        ncp2_assert(u + 1 != 0, "the all-ones key encoding is reserved");
        return u + 1; // 0 marks an empty slot (pages start zeroed)
    }

    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return x;
    }

    unsigned
    stripeOf(std::uint64_t tag) const
    {
        return static_cast<unsigned>(mix(tag) % nstripes_);
    }

    std::uint64_t
    startOf(std::uint64_t tag) const
    {
        return (mix(tag) / nstripes_) % stripe_cap_;
    }

    /**
     * Under the stripe lock: first slot (stripe-relative) holding @p tag
     * or empty along the probe path, npos when the stripe is full.
     */
    std::uint64_t
    probe(context &ctx, unsigned s, std::uint64_t tag)
    {
        const std::uint64_t start = startOf(tag);
        for (std::uint64_t j = 0; j < stripe_cap_; ++j) {
            const std::uint64_t slot = (start + j) % stripe_cap_;
            const std::uint64_t got =
                keys_.get(ctx, s * stripe_cap_ + slot);
            if (got == tag || got == 0)
                return slot;
        }
        return npos;
    }

    bool
    update(context &ctx, K key, V val, bool accumulate)
    {
        const std::uint64_t tag = tagOf(key);
        const unsigned s = stripeOf(tag);
        lock_guard lk(ctx, mus_[s]);
        const std::uint64_t slot = probe(ctx, s, tag);
        if (slot == npos)
            ncp2_fatal("g::hash_map stripe %u full (%llu slots); plan "
                       "more capacity",
                       s, static_cast<unsigned long long>(stripe_cap_));
        const std::uint64_t i = s * stripe_cap_ + slot;
        const bool fresh = keys_.get(ctx, i) == 0;
        if (fresh) {
            keys_.set(ctx, i, tag);
            vals_.set(ctx, i, val);
            counts_.set(ctx, s, counts_.get(ctx, s) + 1);
        } else if (accumulate) {
            vals_.set(ctx, i, static_cast<V>(vals_.get(ctx, i) + val));
        } else {
            vals_.set(ctx, i, val);
        }
        return fresh;
    }

    vector<std::uint64_t> keys_; ///< tagOf(key), 0 = empty
    vector<V> vals_;
    vector<std::uint32_t> counts_; ///< entries per stripe
    std::vector<mutex> mus_;
    std::uint64_t stripe_cap_ = 0;
    unsigned nstripes_ = 0;
};

/**
 * Bounded single-producer/single-consumer mailbox. One lock guards the
 * ring cursors; a full push / empty pop spins, re-acquiring after a
 * backoff charge so the peer's cursor update becomes visible (LRC needs
 * the acquire - there is no doorbell to poll without one).
 */
template <typename T>
class spsc_queue
{
  public:
    spsc_queue() = default;

    void
    allocate(context &ctx, const std::string &name, std::uint64_t capacity)
    {
        ncp2_assert(capacity, "g::spsc_queue of zero capacity");
        cap_ = capacity;
        cursors_.allocate(ctx, 2); ///< [0]=popped count, [1]=pushed count
        ring_.allocate(ctx, capacity);
        mu_ = ctx.make_mutex(name + "/mu");
    }

    std::uint64_t capacity() const { return cap_; }

    bool
    try_push(context &ctx, T v)
    {
        lock_guard lk(ctx, mu_);
        const std::uint64_t head = cursors_.get(ctx, 0);
        const std::uint64_t tail = cursors_.get(ctx, 1);
        if (tail - head >= cap_)
            return false;
        ring_.set(ctx, tail % cap_, v);
        cursors_.set(ctx, 1, tail + 1);
        return true;
    }

    /** Blocking push: spins with a backoff charge while full. */
    void
    push(context &ctx, T v)
    {
        while (!try_push(ctx, v))
            ctx.compute(backoff_cycles);
    }

    std::optional<T>
    try_pop(context &ctx)
    {
        lock_guard lk(ctx, mu_);
        const std::uint64_t head = cursors_.get(ctx, 0);
        if (head == cursors_.get(ctx, 1))
            return std::nullopt;
        const T v = ring_.get(ctx, head % cap_);
        cursors_.set(ctx, 0, head + 1);
        return v;
    }

    /** Blocking pop: spins with a backoff charge while empty. */
    T
    pop(context &ctx)
    {
        for (;;) {
            if (auto v = try_pop(ctx))
                return *v;
            ctx.compute(backoff_cycles);
        }
    }

    std::uint64_t
    size(context &ctx)
    {
        lock_guard lk(ctx, mu_);
        return cursors_.get(ctx, 1) - cursors_.get(ctx, 0);
    }

    /// Busy cycles charged between retries of a blocked push/pop.
    static constexpr std::uint64_t backoff_cycles = 200;

  private:
    vector<std::uint64_t> cursors_;
    vector<T> ring_;
    mutex mu_;
    std::uint64_t cap_ = 0;
};

} // namespace g

#endif // NCP2_GSTL_CONTAINERS_HH
