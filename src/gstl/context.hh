/**
 * @file
 * The distributed-STL application context: the one object an app talks
 * to in both lifecycle phases.
 *
 * A g::App subclass implements plan(g::context&) and run(g::context&).
 * In the *plan* phase the context is bound to the global heap and the
 * system configuration: shared containers allocate their storage and
 * sync primitives claim named lock/barrier ids (collisions are fatal at
 * plan time, and allocation outside plan() is fatal too, so layouts are
 * decided once, deterministically, before the first simulated cycle —
 * which is what keeps them PDES/shard-safe). In the *run* phase each
 * simulated processor's fiber gets its own context wrapping its
 * dsm::Proc; containers and primitives then issue their shared accesses
 * and sync ops through it.
 */

#ifndef NCP2_GSTL_CONTEXT_HH
#define NCP2_GSTL_CONTEXT_HH

#include <map>
#include <string>
#include <vector>

#include "dsm/config.hh"
#include "dsm/heap.hh"
#include "dsm/proc.hh"
#include "dsm/workload.hh"
#include "sim/logging.hh"

namespace g
{

class context;
class App;

/** A named DSM lock handle; created by context::make_mutex in plan(). */
class mutex
{
  public:
    mutex() = default;

    void lock(context &ctx);
    void unlock(context &ctx);

    /** The raw protocol lock id (its % nprocs picks the manager node). */
    unsigned id() const
    {
        ncp2_assert(valid_, "g::mutex used before make_mutex()");
        return id_;
    }
    bool valid() const { return valid_; }

  private:
    friend class context;
    explicit mutex(unsigned id) : id_(id), valid_(true) {}

    unsigned id_ = 0;
    bool valid_ = false;
};

/** RAII ownership of a g::mutex for one scope. */
class lock_guard
{
  public:
    lock_guard(context &ctx, mutex &mu) : ctx_(ctx), mu_(mu)
    {
        mu_.lock(ctx_);
    }
    ~lock_guard() { mu_.unlock(ctx_); }

    lock_guard(const lock_guard &) = delete;
    lock_guard &operator=(const lock_guard &) = delete;

  private:
    context &ctx_;
    mutex &mu_;
};

/**
 * A named global barrier handle. One handle may be waited on any number
 * of times (each episode completes and retires before the next starts),
 * so a single handle typically replaces a whole family of hand-numbered
 * per-phase barrier ids.
 */
class barrier
{
  public:
    barrier() = default;

    /** Block until every processor has arrived. */
    void wait(context &ctx);

    unsigned id() const
    {
        ncp2_assert(valid_, "g::barrier used before make_barrier()");
        return id_;
    }
    bool valid() const { return valid_; }

  private:
    friend class context;
    explicit barrier(unsigned id) : id_(id), valid_(true) {}

    unsigned id_ = 0;
    bool valid_ = false;
};

namespace detail
{

/**
 * Shared plan-time state behind every context of one App lifecycle:
 * the heap/config bindings and the name -> id registries for sync
 * primitives. Owned by g::App; reset at every plan().
 */
struct Space
{
    dsm::GlobalHeap *heap = nullptr;
    const dsm::SysConfig *cfg = nullptr;
    bool planning = false;
    /// Bumped at every plan(): containers stamp their allocation with
    /// it, so re-planning the same App object (a fresh System run)
    /// re-allocates cleanly while double allocation inside one plan
    /// still asserts.
    std::uint64_t plan_epoch = 0;

    std::map<std::string, unsigned> lock_names;
    std::map<std::string, unsigned> barrier_names;
    unsigned next_lock_id = 0;
    unsigned next_barrier_id = 0;

    void begin(dsm::GlobalHeap &h, const dsm::SysConfig &c);
};

} // namespace detail

/** The app-facing handle for one lifecycle phase (see file comment). */
class context
{
  public:
    // ----- both phases -----
    const dsm::SysConfig &cfg() const { return *space_->cfg; }
    unsigned nprocs() const { return space_->cfg->num_procs; }
    unsigned page_bytes() const { return space_->cfg->page_bytes; }
    bool planning() const { return proc_ == nullptr; }

    // ----- plan phase -----
    /**
     * Allocate @p count elements of T on the global heap, naturally
     * aligned (page-aligned when @p page_aligned). Containers call
     * this; apps normally go through them instead.
     */
    template <typename T>
    sim::GAddr
    alloc_array(std::uint64_t count, bool page_aligned = true)
    {
        return plan_heap().allocArray<T>(count, page_aligned);
    }

    /**
     * Claim a named lock id. Fatal on a name collision or outside
     * plan(): the registry is what turns magic integer lock ids into
     * plan-checked handles.
     */
    mutex make_mutex(const std::string &name);

    /** Claim @p n consecutive lock ids under one name ("name[i]"). */
    std::vector<mutex> make_mutexes(const std::string &name, unsigned n);

    /** Claim a named barrier id (same collision rules as make_mutex). */
    barrier make_barrier(const std::string &name);

    /** The raw plan-phase heap (escape hatch for non-g:: layouts). */
    dsm::GlobalHeap &plan_heap();

    /** This plan()'s epoch (container double-allocation detection). */
    std::uint64_t plan_epoch() const { return space_->plan_epoch; }

    // ----- run phase -----
    dsm::Proc &proc()
    {
        ncp2_assert(proc_, "run-phase context operation during plan()");
        return *proc_;
    }
    unsigned id() { return proc().id(); }
    void compute(std::uint64_t cycles) { proc().compute(cycles); }
    sim::Rng &rng() { return proc().rng(); }
    /** This processor's current local simulated tick. */
    sim::Tick now() { return proc().now(); }
    /** Park until absolute tick @p t (idle time; open-loop waiting). */
    void idle_until(sim::Tick t) { proc().idleUntil(t); }

  private:
    friend class App;
    context(detail::Space &space, dsm::Proc *proc)
        : space_(&space), proc_(proc)
    {
    }

    detail::Space *space_;
    dsm::Proc *proc_; ///< null during plan()
};

/**
 * The advertised application base class: a dsm::Workload whose plan()
 * and run() receive a g::context instead of raw heap + proc. validate()
 * stays the host-side dsm::Workload hook (it reads final memory through
 * dsm::System, e.g. via g::peek).
 */
class App : public dsm::Workload
{
  public:
    /** Lay out shared containers and claim sync handles. */
    virtual void plan(context &ctx) = 0;

    /** SPMD body; runs on every simulated processor. */
    virtual void run(context &ctx) = 0;

    // dsm::Workload adapters (the SPI the System drives).
    void plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg) final;
    void run(dsm::Proc &p) final;

  private:
    detail::Space space_;
};

} // namespace g

#endif // NCP2_GSTL_CONTEXT_HH
