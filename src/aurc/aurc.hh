/**
 * @file
 * AURC: automatic-update release consistency with optimized pairwise
 * sharing (Iftode et al., HPCA'96), as described in section 3.3 of the
 * paper, plus the paper's prefetching variant (AURC+P).
 *
 * Mechanism summary:
 *  - shared stores are write-through; a Shrimp-style network interface
 *    snoops them and propagates *automatic updates* through a small
 *    combining write cache, with (optimistically) one cycle of
 *    per-message overhead;
 *  - a page shared by exactly two processors is mapped bidirectionally:
 *    each sharer's writes update the other's memory directly, so page
 *    faults and fetches never occur between them. The third processor to
 *    access the page replaces the first in the pair; any further sharer
 *    reverts the page to write-through to a *home node*;
 *  - pages with a home store data and directory there; all writers
 *    forward updates to the home, where modifications merge;
 *  - consistency is release-based: lock/barrier transfer carries write
 *    notices; the acquirer invalidates out-of-date pages (never pairwise
 *    mappings or the home's own copy). A page fault fetches the whole
 *    page from the home after all in-flight updates to it have drained
 *    (the flush/lock-timestamp check);
 *  - AURC+P additionally prefetches whole pages from their homes for
 *    invalidated cached-and-referenced pages at acquire time. There is
 *    no protocol controller: prefetch servicing interrupts processors.
 *
 * Update application is ordered by per-word write stamps so that
 * network-reordered updates from synchronization-ordered writers cannot
 * regress a word (the role flush timestamps play in real AURC).
 */

#ifndef NCP2_AURC_AURC_HH
#define NCP2_AURC_AURC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dsm/config.hh"
#include "dsm/page.hh"
#include "dsm/protocol.hh"
#include "dsm/system.hh"
#include "dsm/vclock.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace aurc
{

/** AURC statistics (inputs to figures 11-16). */
struct AurcStats
{
    sim::Counter updates_sent;     ///< update messages on the wire
    sim::Counter update_words;
    sim::Counter wcache_hits;      ///< stores combined in the write cache
    sim::Counter wcache_evictions;
    sim::Counter page_fetches;
    sim::Counter write_faults;
    sim::Counter pairwise_pages;   ///< pages that ever became pairwise
    sim::Counter pair_replacements;
    sim::Counter reverts_to_home;
    sim::Counter invalidations;
    sim::Counter lock_acquires;
    sim::Counter barriers;
    sim::Counter prefetches_issued;
    sim::Counter prefetches_useless;
    sim::Counter prefetch_demand_waits;
    sim::Counter update_drain_waits; ///< fetches delayed by in-flight updates
    sim::Counter updates_dropped_absent; ///< update hit an unmapped copy
    sim::Counter updates_stamp_rejected; ///< word older than the copy
    /// Update size distribution: words per automatic-update message.
    sim::Histogram update_size{{1, 2, 4, 8}};
};

/** The AURC protocol (optionally with page prefetching). */
class Aurc : public dsm::Protocol
{
  public:
    explicit Aurc(bool prefetch);

    void attach(dsm::System &sys) override;
    void ensureAccess(sim::NodeId proc, sim::PageId page,
                      bool for_write) override;
    void sharedWrite(sim::NodeId proc, sim::PageId page, unsigned word,
                     unsigned words) override;
    dsm::WriteDescInfo writeDesc(sim::NodeId proc,
                                 sim::PageId page) override;
    void acquire(sim::NodeId proc, unsigned lock_id) override;
    void release(sim::NodeId proc, unsigned lock_id) override;
    void barrier(sim::NodeId proc, unsigned barrier_id) override;
    std::string name() const override;
    void readCoherent(sim::PageId page, std::uint8_t *out) override;
    void finalize() override;
    const sim::StatGroup *statGroup() const override { return &group_; }

    const AurcStats &stats() const { return stats_; }

  private:
    /** Sharing mode of one page. */
    enum class Mode : std::uint8_t
    {
        unshared,   ///< zero or one toucher
        pairwise,   ///< two sharers, bidirectional mapping
        home_based, ///< three or more: write-through to home
    };

    /** Global sharing state of one page. */
    struct PageShare
    {
        Mode mode = Mode::unshared;
        sim::NodeId pair[2] = {sim::invalid_node, sim::invalid_node};
        sim::NodeId home = sim::invalid_node;
        bool replaced_once = false; ///< the 3rd-toucher swap happened
        /// Drain horizon: all updates to this page sent so far have been
        /// applied at their destination by this tick.
        sim::Tick updates_done_at = 0;
        /// A demand fetch (and its sharing transition) is in flight;
        /// later faulters queue so transitions stay serialized.
        bool fetch_in_flight = false;
        std::vector<sim::NodeId> fetch_waiters;
    };

    /** One write-cache entry (a combining store buffer line). */
    struct WcEntry
    {
        bool valid = false;
        sim::PageId page = 0;
        std::uint32_t line = 0;           ///< line index within the page
        std::uint32_t mask = 0;           ///< dirty words within the line
        std::uint32_t vals[8] = {};
        std::uint32_t stamps[8] = {};
    };

    /** Per-processor protocol state. */
    struct ProcState
    {
        dsm::VectorClock vt;
        std::vector<std::vector<sim::PageId>> interval_pages;
        std::vector<sim::PageId> open_dirty;
        std::vector<sim::PageId> invalidated; ///< prefetch candidates
        /// Sparse-clock scratch (owner-context only; pre-sized at attach).
        dsm::ClockDelta delta_scratch;
        std::vector<WcEntry> wcache;
        unsigned wc_next = 0; ///< FIFO cursor
    };

    struct LockState
    {
        bool held = false;
        bool has_owner = false;
        bool granting = false;
        bool has_pending = false;
        sim::NodeId pending = 0;
        sim::NodeId owner = 0;
        dsm::VectorClock release_vt;
        std::deque<sim::NodeId> waiters;
    };

    struct BarrierState
    {
        unsigned arrived = 0;
        sim::Tick ready_at = 0;
        dsm::VectorClock merged_vt;
    };

    struct PagePrefetch
    {
        bool demand_wait = false;
        /// New write notices for this page arrived while the prefetch
        /// was in flight; the fetched copy must not be revalidated.
        bool invalidated_again = false;
    };

    // helpers
    unsigned nprocs() const { return sys_->nprocs(); }
    dsm::Node &node(sim::NodeId n) { return sys_->node(n); }
    const dsm::SysConfig &cfg() const { return sys_->cfg(); }

    /** The node holding the authoritative (merge) copy of @p page. */
    sim::NodeId mergeNodeOf(const PageShare &sh) const;

    /** True if @p proc's copy is kept current by automatic updates. */
    bool autoUpdated(const PageShare &sh, sim::NodeId proc) const;

    void closeInterval(sim::NodeId proc);
    std::uint64_t noticeCount(const dsm::VectorClock &from,
                              const dsm::VectorClock &to) const;
    void applyInvalidations(sim::NodeId proc, const dsm::VectorClock &from,
                            const dsm::VectorClock &to);
    /** Write-notice count covered by a sparse clock delta. */
    std::uint64_t noticeCountDelta(const dsm::ClockDelta &d) const;
    /**
     * noticeCount(from, to) via the sparse representation (scratch
     * receives the delta); falls back to the dense scan when sparse
     * clocks are disabled, and dasserts the two agree otherwise.
     */
    std::uint64_t noticesBetween(const dsm::VectorClock &from,
                                 const dsm::VectorClock &to,
                                 dsm::ClockDelta &scratch) const;
    /** Invalidate the pages written during interval @p s of proc @p q. */
    void invalidateInterval(sim::NodeId proc, unsigned q,
                            dsm::IntervalSeq s);
    /** applyInvalidations over a sparse delta (same iteration order). */
    void applyInvalidationsDelta(sim::NodeId proc,
                                 const dsm::ClockDelta &d);
    /**
     * Apply invalidations and merge @p to into proc's clock — via the
     * sparse delta @p d when sparse clocks are on, densely otherwise.
     */
    void advanceClock(sim::NodeId proc, const dsm::VectorClock &to,
                      const dsm::ClockDelta &d);

    /** Push one word into the write cache, evicting as needed. */
    void writeCachePush(sim::NodeId proc, sim::PageId page, unsigned word);

    /** Emit one write-cache entry as an automatic update message. */
    void sendUpdate(sim::NodeId proc, const WcEntry &e);

    /** Flush the whole write cache (at releases/barriers). */
    void flushWriteCache(sim::NodeId proc);

    /** Flush one node's pending entries for one page (unmap teardown). */
    void flushPageEntries(sim::NodeId proc, sim::PageId page);

    /** Demand fault: sharing transition + page fetch. Blocks. */
    void faultIn(sim::NodeId proc, sim::PageId page);

    /**
     * Fetch the page bytes from @p src into @p proc's copy, honouring
     * the update-drain horizon; calls @p on_done at install time.
     */
    void fetchPage(sim::NodeId proc, sim::NodeId src, sim::PageId page,
                   bool is_prefetch, std::function<void()> on_done);

    void issuePrefetches(sim::NodeId proc);

    void grantLock(unsigned lock_id, sim::NodeId from, sim::NodeId to,
                   bool from_fiber);
    void pumpLock(unsigned lock_id, sim::NodeId manager);
    void deliverGrant(unsigned lock_id, sim::NodeId to,
                      dsm::VectorClock grant_vt);

    /** CPU-charged message send from the fiber. */
    void fiberSend(sim::NodeId proc, sim::NodeId dst, std::uint32_t bytes,
                   dsm::Cat cat, std::function<void(sim::Tick)> fn);

    /** CPU-interrupt message send from event context. */
    void eventSend(sim::NodeId src, sim::NodeId dst, std::uint32_t bytes,
                   std::function<void(sim::Tick)> fn);

    std::uint32_t lockReqBytes() const { return 16 + 4 * nprocs(); }
    std::uint32_t grantBytes(std::uint64_t notices) const
    {
        return 24 + 4 * nprocs() +
               static_cast<std::uint32_t>(8 * notices);
    }
    std::uint32_t pageReqBytes() const { return 16; }
    std::uint32_t pageReplyBytes() const { return cfg().page_bytes + 32; }
    std::uint32_t
    updateBytes(unsigned words) const
    {
        return 8 + 4 * words;
    }

    bool prefetch_enabled_;
    dsm::System *sys_ = nullptr;
    std::vector<ProcState> procs_;
    std::vector<PageShare> pages_;
    std::unordered_map<unsigned, LockState> locks_;
    std::unordered_map<unsigned, BarrierState> barriers_;
    dsm::VectorClock mgr_known_vt_;
    std::vector<std::unordered_map<sim::PageId, PagePrefetch>> prefetch_;
    /// Per-node horizon: every automatic update destined to this node
    /// that has been sent so far will have been applied by this tick.
    /// Synchronization deliveries (lock grants, barrier releases) wait
    /// for it - the flush/lock-timestamp check for copies that never
    /// fault (pairwise members, homes).
    std::vector<sim::Tick> incoming_done_;
    /// Per-node NI send pipeline: each automatic update occupies it for
    /// the per-update overhead, so expensive updates throttle senders
    /// (figure 13's second experiment).
    std::vector<sim::Resource> ni_;
    /// Per-copy word stamps (node -> page -> stamps), allocated lazily
    /// for copies that merge writes from multiple processors.
    std::vector<std::unordered_map<sim::PageId,
        std::unique_ptr<std::uint32_t[]>>> copy_stamps_;
    std::uint32_t write_stamp_ = 0;
    AurcStats stats_;
    sim::StatGroup group_{"aurc"};
};

/** Factory helper used by benches and tests. */
std::unique_ptr<dsm::Protocol> makeAurc(bool prefetch);

} // namespace aurc

#endif // NCP2_AURC_AURC_HH
