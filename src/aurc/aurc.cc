#include "aurc/aurc.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace aurc
{

using dsm::Cat;
using sim::NodeId;
using sim::PageId;
using sim::Tick;

std::unique_ptr<dsm::Protocol>
makeAurc(bool prefetch)
{
    return std::make_unique<Aurc>(prefetch);
}

Aurc::Aurc(bool prefetch) : prefetch_enabled_(prefetch)
{
    // Names keep the flat keys the results JSON has always used
    // ("aurc.prefetches", ...).
    group_.addCounter("updates_sent", &stats_.updates_sent,
                      "automatic-update messages on the wire");
    group_.addCounter("update_words", &stats_.update_words,
                      "words carried by automatic updates");
    group_.addCounter("wcache_hits", &stats_.wcache_hits,
                      "stores combined in the write cache");
    group_.addCounter("wcache_evictions", &stats_.wcache_evictions,
                      "write-cache entries evicted by capacity");
    group_.addCounter("page_fetches", &stats_.page_fetches,
                      "full-page demand fetches");
    group_.addCounter("write_faults", &stats_.write_faults,
                      "write access faults taken");
    group_.addCounter("pairwise_pages", &stats_.pairwise_pages,
                      "pages that ever became pairwise");
    group_.addCounter("pair_replacements", &stats_.pair_replacements,
                      "third-toucher pair replacements");
    group_.addCounter("reverts_to_home", &stats_.reverts_to_home,
                      "pages reverted to home-based write-through");
    group_.addCounter("invalidations", &stats_.invalidations,
                      "page invalidations from write notices");
    group_.addCounter("lock_acquires", &stats_.lock_acquires,
                      "lock acquire operations");
    group_.addCounter("barriers", &stats_.barriers,
                      "barrier episodes completed");
    group_.addCounter("prefetches", &stats_.prefetches_issued,
                      "page prefetches started");
    group_.addCounter("prefetches_useless", &stats_.prefetches_useless,
                      "prefetched pages invalidated or never used");
    group_.addCounter("prefetch_demand_waits", &stats_.prefetch_demand_waits,
                      "demand faults that waited on a pending prefetch");
    group_.addCounter("update_drain_waits", &stats_.update_drain_waits,
                      "deliveries delayed by in-flight updates");
    group_.addCounter("updates_dropped_absent",
                      &stats_.updates_dropped_absent,
                      "updates that hit an unmapped copy");
    group_.addCounter("updates_stamp_rejected",
                      &stats_.updates_stamp_rejected,
                      "update words older than the copy's stamp");
    group_.addHistogram("update_size", &stats_.update_size,
                        "words per automatic-update message");
}

std::string
Aurc::name() const
{
    return prefetch_enabled_ ? "AURC+P" : "AURC";
}

void
Aurc::attach(dsm::System &sys)
{
    sys_ = &sys;
    const unsigned n = nprocs();
    procs_.assign(n, ProcState{});
    for (auto &ps : procs_) {
        ps.vt = dsm::VectorClock(n);
        ps.wcache.assign(cfg().write_cache_entries, WcEntry{});
        // Pre-size from machine geometry so interval bookkeeping never
        // reallocates on the hot path at 256-1024 nodes.
        ps.delta_scratch.entries.reserve(n);
        ps.interval_pages.reserve(64);
        ps.open_dirty.reserve(32);
        ps.invalidated.reserve(32);
    }
    const PageId used_pages =
        (sys.heap().used() + cfg().page_bytes - 1) / cfg().page_bytes;
    pages_.clear();
    pages_.resize(used_pages);
    prefetch_.assign(n, {});
    copy_stamps_.clear();
    copy_stamps_.resize(n);
    incoming_done_.assign(n, 0);
    ni_.clear();
    for (unsigned i = 0; i < n; ++i)
        ni_.emplace_back(sim::detail::format("aurc.ni.n%u", i));
}

NodeId
Aurc::mergeNodeOf(const PageShare &sh) const
{
    if (sh.mode == Mode::home_based)
        return sh.home;
    return sh.pair[0];
}

bool
Aurc::autoUpdated(const PageShare &sh, NodeId proc) const
{
    switch (sh.mode) {
      case Mode::unshared:
        return proc == sh.pair[0];
      case Mode::pairwise:
        return proc == sh.pair[0] || proc == sh.pair[1];
      case Mode::home_based:
        return proc == sh.home;
    }
    return false;
}

// ---------------------------------------------------------------------
// intervals / invalidation
// ---------------------------------------------------------------------

void
Aurc::closeInterval(NodeId proc)
{
    ProcState &ps = procs_[proc];
    if (ps.open_dirty.empty())
        return;
    ++ps.vt[proc];
    for (PageId page : ps.open_dirty) {
        dsm::NodePage &pg = node(proc).pages.page(page);
        pg.dirty_in_interval = false;
        if (pg.access == dsm::Access::readwrite)
            pg.access = dsm::Access::read;
        // The next write must trap again to re-register the page.
        node(proc).adesc.downgradeWrite(page);
    }
    ps.interval_pages.push_back(std::move(ps.open_dirty));
    ps.open_dirty.clear();
    node(proc).cpu.advance(
        cfg().list_cycles * ps.interval_pages.back().size(), Cat::synch);
}

std::uint64_t
Aurc::noticeCount(const dsm::VectorClock &from,
                  const dsm::VectorClock &to) const
{
    std::uint64_t count = 0;
    for (unsigned q = 0; q < from.size(); ++q) {
        const ProcState &ps = procs_[q];
        for (dsm::IntervalSeq s = from[q] + 1; s <= to[q]; ++s)
            count += ps.interval_pages[s - 1].size();
    }
    return count;
}

std::uint64_t
Aurc::noticeCountDelta(const dsm::ClockDelta &d) const
{
    std::uint64_t count = 0;
    for (const dsm::ClockDelta::Entry &e : d.entries) {
        const ProcState &ps = procs_[e.proc];
        for (dsm::IntervalSeq s = e.from + 1; s <= e.to; ++s)
            count += ps.interval_pages[s - 1].size();
    }
    return count;
}

std::uint64_t
Aurc::noticesBetween(const dsm::VectorClock &from,
                     const dsm::VectorClock &to,
                     dsm::ClockDelta &scratch) const
{
    if (!cfg().sparse_clocks)
        return noticeCount(from, to);
    dsm::clockDelta(from, to, scratch);
    const std::uint64_t n = noticeCountDelta(scratch);
    ncp2_dassert(n == noticeCount(from, to),
                 "sparse notice count diverged from the dense oracle");
    return n;
}

void
Aurc::invalidateInterval(NodeId proc, unsigned q, dsm::IntervalSeq s)
{
    ProcState &me = procs_[proc];
    dsm::PageStore &store = node(proc).pages;
    const ProcState &ps = procs_[q];
    for (PageId page : ps.interval_pages[s - 1]) {
        const PageShare &sh = pages_[page];
        // Pairwise mappings and the home's own copy are kept
        // current by the automatic updates: never invalidated.
        if (autoUpdated(sh, proc))
            continue;
        dsm::NodePage &pg = store.page(page);
        if (!pg.present())
            continue;
        if (pg.prefetch_pending) {
            auto it = prefetch_[proc].find(page);
            if (it != prefetch_[proc].end())
                it->second.invalidated_again = true;
            continue;
        }
        if (pg.access == dsm::Access::none)
            continue;
        pg.access = dsm::Access::none;
        node(proc).tlb.invalidate(page);
        node(proc).adesc.invalidate(page);
        ++stats_.invalidations;
        if (pg.prefetched_unused) {
            ++stats_.prefetches_useless;
            if (sim::Trace *tr = sys_->trace()) [[unlikely]]
                tr->emit(sys_->eq().now(), proc,
                         sim::TraceEngine::cpu,
                         sim::TraceKind::prefetch_useless, page);
            pg.prefetched_unused = false;
        }
        if (pg.referenced)
            me.invalidated.push_back(page);
    }
}

void
Aurc::applyInvalidations(NodeId proc, const dsm::VectorClock &from,
                         const dsm::VectorClock &to)
{
    for (unsigned q = 0; q < from.size(); ++q) {
        if (q == proc)
            continue;
        for (dsm::IntervalSeq s = from[q] + 1; s <= to[q]; ++s)
            invalidateInterval(proc, q, s);
    }
}

void
Aurc::applyInvalidationsDelta(NodeId proc, const dsm::ClockDelta &d)
{
    // Entries are ascending by proc and cover exactly the components
    // where the target clock leads, so this visits the same intervals
    // in the same order as the dense scan.
    for (const dsm::ClockDelta::Entry &e : d.entries) {
        if (e.proc == proc)
            continue;
        for (dsm::IntervalSeq s = e.from + 1; s <= e.to; ++s)
            invalidateInterval(proc, e.proc, s);
    }
}

void
Aurc::advanceClock(NodeId proc, const dsm::VectorClock &to,
                   const dsm::ClockDelta &d)
{
    ProcState &me = procs_[proc];
    if (cfg().sparse_clocks) {
        applyInvalidationsDelta(proc, d);
        dsm::applyDelta(me.vt, d);
        ncp2_dassert(to.dominatedBy(me.vt),
                     "sparse clock merge fell short of the target clock");
    } else {
        applyInvalidations(proc, me.vt, to);
        me.vt.merge(to);
    }
}

// ---------------------------------------------------------------------
// automatic updates
// ---------------------------------------------------------------------

void
Aurc::sharedWrite(NodeId proc, PageId page, unsigned word, unsigned words)
{
    PageShare &sh = pages_[page];

    // Record local write stamps at merge copies so that a delayed update
    // from an earlier (synchronization-ordered) writer cannot regress a
    // word this copy wrote later.
    if (autoUpdated(sh, proc) &&
        (sh.mode != Mode::unshared)) {
        auto &stamps = copy_stamps_[proc][page];
        if (!stamps) {
            stamps = std::make_unique_for_overwrite<std::uint32_t[]>(
                cfg().pageWords());
            std::memset(stamps.get(), 0, cfg().pageWords() * 4);
        }
        for (unsigned w = word; w < word + words; ++w)
            stamps[w] = ++write_stamp_;
        // A pair member must still forward its writes to its partner.
        if (sh.mode == Mode::home_based)
            return;
    }

    // Determine whether this write must propagate anywhere.
    NodeId dst = sim::invalid_node;
    if (sh.mode == Mode::pairwise) {
        if (proc == sh.pair[0])
            dst = sh.pair[1];
        else if (proc == sh.pair[1])
            dst = sh.pair[0];
    } else if (sh.mode == Mode::home_based && proc != sh.home) {
        dst = sh.home;
    }
    if (dst == sim::invalid_node)
        return;

    for (unsigned w = word; w < word + words; ++w)
        writeCachePush(proc, page, w);
}

dsm::WriteDescInfo
Aurc::writeDesc(NodeId proc, PageId page)
{
    // Uniprocessor pages stay unshared with no pair, so sharedWrite
    // finds no destination and returns without touching anything.
    if (nprocs() == 1)
        return {dsm::WriteHook::none, nullptr, 0};
    const PageShare &sh = pages_[page];
    // The sole copy of an unshared page: no stamps (mode is unshared),
    // no update routing — a proven no-op until the pairwise transition,
    // which invalidates the owner's descriptor.
    if (sh.mode == Mode::unshared && sh.pair[0] == proc)
        return {dsm::WriteHook::none, nullptr, 0};
    // Every other combination stamps merge copies and/or routes updates
    // through the write cache; keep the virtual call, which re-reads the
    // sharing state on every store.
    return {};
}

void
Aurc::writeCachePush(NodeId proc, PageId page, unsigned word)
{
    ProcState &ps = procs_[proc];
    const std::uint32_t line = word / 8;
    const unsigned off = word % 8;
    const auto *data = reinterpret_cast<const std::uint32_t *>(
        node(proc).pages.page(page).data.get());

    for (WcEntry &e : ps.wcache) {
        if (e.valid && e.page == page && e.line == line) {
            e.mask |= 1u << off;
            e.vals[off] = data[word];
            e.stamps[off] = ++write_stamp_;
            ++stats_.wcache_hits;
            return;
        }
    }
    // Miss: evict the FIFO victim and claim its slot.
    WcEntry &victim = ps.wcache[ps.wc_next];
    ps.wc_next = (ps.wc_next + 1) % ps.wcache.size();
    if (victim.valid) {
        sendUpdate(proc, victim);
        ++stats_.wcache_evictions;
    }
    victim.valid = true;
    victim.page = page;
    victim.line = line;
    victim.mask = 1u << off;
    victim.vals[off] = data[word];
    victim.stamps[off] = ++write_stamp_;
}

void
Aurc::sendUpdate(NodeId proc, const WcEntry &e)
{
    PageShare &sh = pages_[e.page];
    NodeId dst = sim::invalid_node;
    if (sh.mode == Mode::pairwise) {
        if (proc == sh.pair[0])
            dst = sh.pair[1];
        else if (proc == sh.pair[1])
            dst = sh.pair[0];
    } else if (sh.mode == Mode::home_based && proc != sh.home) {
        dst = sh.home;
    }
    if (dst == sim::invalid_node)
        return;

    const unsigned words =
        static_cast<unsigned>(__builtin_popcount(e.mask));
    ++stats_.updates_sent;
    stats_.update_words += words;
    stats_.update_size.sample(words);

    // The Shrimp NI snoops and sends without processor involvement,
    // but each update occupies the NI pipeline for the per-message
    // setup (an optimistic single cycle by default; figure 13's second
    // experiment raises it to the full messaging overhead).
    const Tick dep = ni_[proc].acquire(node(proc).cpu.localNow(),
                                       cfg().update_overhead_cycles);

    // Capture values now (write-cache contents are value snapshots);
    // the router delivers on the destination node's queue. AURC runs
    // serially only, so the returned delivery tick is always known.
    const WcEntry snap = e;
    const Tick del = sys_->router().send(
        dep, proc, dst, updateBytes(words),
        [this, dst, snap, words](Tick del) {
        dsm::Node &d = node(dst);
        const Tick p = d.pci.transfer(del, words);
        const Tick m = d.memory.access(p, words);
        sys_->eq().schedule(m, [this, dst, snap, m]() {
            dsm::NodePage &pg = node(dst).pages.page(snap.page);
            if (!pg.present()) {
                ++stats_.updates_dropped_absent;
                return;
            }
            auto &stamps = copy_stamps_[dst][snap.page];
            if (!stamps) {
                stamps = std::make_unique_for_overwrite<
                    std::uint32_t[]>(cfg().pageWords());
                std::memset(stamps.get(), 0, cfg().pageWords() * 4);
            }
            auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
            for (unsigned i = 0; i < 8; ++i) {
                if (!(snap.mask & (1u << i)))
                    continue;
                const unsigned word = snap.line * 8 + i;
                if (snap.stamps[i] > stamps[word]) {
                    stamps[word] = snap.stamps[i];
                    w[word] = snap.vals[i];
                } else {
                    ++stats_.updates_stamp_rejected;
                }
            }
            // The destination CPU snoops the NI's memory writes.
            node(dst).cache.invalidateRange(
                static_cast<sim::GAddr>(snap.page) * cfg().page_bytes +
                    snap.line * 32, 32);
            PageShare &s2 = pages_[snap.page];
            if (m > s2.updates_done_at)
                s2.updates_done_at = m;
        });
        if (m > incoming_done_[dst])
            incoming_done_[dst] = m;
    });
    if (del > sh.updates_done_at)
        sh.updates_done_at = del; // refined upward at apply time
    if (del > incoming_done_[dst])
        incoming_done_[dst] = del;
}

void
Aurc::flushPageEntries(NodeId proc, PageId page)
{
    ProcState &ps = procs_[proc];
    for (WcEntry &e : ps.wcache) {
        if (e.valid && e.page == page) {
            sendUpdate(proc, e);
            e.valid = false;
        }
    }
}

void
Aurc::flushWriteCache(NodeId proc)
{
    ProcState &ps = procs_[proc];
    unsigned flushed = 0;
    for (WcEntry &e : ps.wcache) {
        if (e.valid) {
            sendUpdate(proc, e);
            e.valid = false;
            ++flushed;
        }
    }
    if (flushed)
        node(proc).cpu.advance(10 * flushed, Cat::synch);
}

// ---------------------------------------------------------------------
// faults and page fetch
// ---------------------------------------------------------------------

void
Aurc::ensureAccess(NodeId proc, PageId page, bool for_write)
{
    dsm::Node &n = node(proc);
    dsm::NodePage &pg = n.pages.page(page);

    if (nprocs() == 1) {
        if (!pg.present())
            n.pages.materialize(page);
        pg.access = dsm::Access::readwrite;
        return;
    }

    for (;;) {
        if (pg.present() && pg.access != dsm::Access::none &&
            (!for_write || pg.access == dsm::Access::readwrite)) {
            return;
        }

        // A pending prefetch: wait for it rather than faulting.
        auto pit = prefetch_[proc].find(page);
        if (pit != prefetch_[proc].end()) {
            ++stats_.prefetch_demand_waits;
            pit->second.demand_wait = true;
            if (sim::Trace *tr = sys_->trace()) [[unlikely]]
                tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                         sim::TraceKind::prefetch_hit, page);
            n.cpu.block(Cat::data);
        }

        if (!pg.present() || pg.access == dsm::Access::none)
            faultIn(proc, page);

        if (for_write && pg.access != dsm::Access::readwrite) {
            // Write fault: cheap (no twins in AURC) - just the trap plus
            // interval registration.
            ++stats_.write_faults;
            if (sim::Trace *tr = sys_->trace()) [[unlikely]]
                tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                         sim::TraceKind::page_fault, page, 1);
            n.cpu.advance(cfg().interrupt_cycles, Cat::data);
            // The trap charge can yield the fiber, and a sharing-set
            // transition during the yield (a pair eviction) may have
            // revoked this copy. Granting write access anyway would let
            // stores land in a zombie copy whose updates route nowhere
            // - a silently lost write. Take the whole fault again.
            if (!pg.present() || pg.access == dsm::Access::none)
                [[unlikely]] {
                continue;
            }
            pg.access = dsm::Access::readwrite;
            if (!pg.dirty_in_interval) {
                pg.dirty_in_interval = true;
                procs_[proc].open_dirty.push_back(page);
            }
        }
        return;
    }
}

void
Aurc::faultIn(NodeId proc, PageId page)
{
    dsm::Node &n = node(proc);
    PageShare &sh = pages_[page];
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::page_fault, page, 0);
    n.cpu.advance(cfg().interrupt_cycles, Cat::data); // VM trap

    // Serialize transitions: wait while another fault is mid-fetch.
    while (sh.fetch_in_flight) {
        sh.fetch_waiters.push_back(proc);
        n.cpu.block(Cat::data);
        // Our copy may have become irrelevant to fetch again.
        dsm::NodePage &mine = n.pages.page(page);
        if (mine.present() && mine.access != dsm::Access::none)
            return;
    }

    // --- sharing-set transitions (section 3.3) ---
    NodeId src = sim::invalid_node;
    switch (sh.mode) {
      case Mode::unshared:
        if (sh.pair[0] == sim::invalid_node || sh.pair[0] == proc) {
            // First toucher: create the only copy, no traffic.
            sh.pair[0] = proc;
            dsm::NodePage &mine = n.pages.materialize(page);
            mine.access = dsm::Access::read;
            mine.referenced = false;
            return;
        }
        // Second toucher: establish the bidirectional pair.
        sh.pair[1] = proc;
        sh.mode = Mode::pairwise;
        // The owner's writes were proven no-ops while unshared; from now
        // on they must propagate, so its write descriptor must go.
        node(sh.pair[0]).adesc.invalidate(page);
        ++stats_.pairwise_pages;
        src = sh.pair[0];
        break;

      case Mode::pairwise:
        if (proc == sh.pair[0] || proc == sh.pair[1]) {
            // A pair member should never fault; refresh defensively.
            src = proc == sh.pair[0] ? sh.pair[1] : sh.pair[0];
        } else if (!sh.replaced_once) {
            // Third toucher replaces the first (init-effect avoidance).
            const NodeId evicted = sh.pair[0];
            // Tearing down the evicted node's mapping flushes its
            // pending deposits first (while the old routing is intact),
            // exactly as unmapping a Shrimp segment would.
            flushPageEntries(evicted, page);
            sh.pair[0] = sh.pair[1];
            sh.pair[1] = proc;
            sh.replaced_once = true;
            ++stats_.pair_replacements;
            dsm::NodePage &ev = node(evicted).pages.page(page);
            if (ev.present())
                ev.access = dsm::Access::none;
            node(evicted).adesc.invalidate(page);
            src = sh.pair[0];
        } else {
            // Further sharers: revert to write-through to a home node.
            sh.mode = Mode::home_based;
            sh.home = sh.pair[0];
            // Record the new home in its node's heap-directory shard
            // (AURC assigns homes dynamically, unlike TreadMarks; the
            // unchecked accessor is fine: AURC always runs serially).
            sys_->shardAt(sh.home).heap.registerHomePage(page);
            ++stats_.reverts_to_home;
            src = sh.home;
        }
        break;

      case Mode::home_based:
        src = sh.home;
        break;
    }

    ncp2_assert(src != sim::invalid_node && src != proc,
                "bad AURC fetch source");
    ++stats_.page_fetches;
    sh.fetch_in_flight = true;
    fetchPage(proc, src, page, false, [this, proc, page]() {
        PageShare &s2 = pages_[page];
        s2.fetch_in_flight = false;
        std::vector<NodeId> waiters;
        std::swap(waiters, s2.fetch_waiters);
        node(proc).cpu.wake();
        for (NodeId w : waiters)
            node(w).cpu.wake();
    });
    n.cpu.block(Cat::data);

    dsm::NodePage &pg = n.pages.page(page);
    pg.access = dsm::Access::read;
    pg.referenced = false;
    pg.prefetched_unused = false;
    sys_->snoopInvalidatePage(proc, page);
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::fault_done, page);
}

void
Aurc::fetchPage(NodeId proc, NodeId src, PageId page, bool is_prefetch,
                std::function<void()> on_done)
{
    // Our own combining-cache entries for this page must reach the
    // merge copy before it can serve us a fresh one, or the fetched
    // page silently rolls back our pre-invalidation stores (acquires
    // invalidate without flushing the write cache). This is the fetch
    // half of the flush-timestamp discipline: the updates_done_at wait
    // below then orders the reply after their application.
    flushPageEntries(proc, page);
    const Cat cat = is_prefetch ? Cat::synch : Cat::data;
    fiberSend(proc, src, pageReqBytes(), cat,
              [this, proc, src, page, is_prefetch,
               on_done = std::move(on_done)](Tick) {
        // At the source: processor intervention (AURC has no protocol
        // controller), then a reply that may wait for in-flight updates
        // to drain (the flush/lock-timestamp check).
        dsm::Node &s = node(src);
        const Tick now = sys_->eq().now();
        const Tick mem_done = s.memory.access(now, cfg().pageWords());
        const Tick svc_done = s.cpu.interrupt(
            cfg().interrupt_cycles + cfg().list_cycles * 4 +
            (mem_done - now));
        PageShare &sh = pages_[page];
        Tick ready = svc_done;
        if (sh.updates_done_at > ready) {
            ready = sh.updates_done_at;
            ++stats_.update_drain_waits;
        }
        sys_->eq().schedule(ready, [this, proc, src, page, is_prefetch,
                                    on_done]() {
            eventSend(src, proc, pageReplyBytes(),
                      [this, proc, src, page, is_prefetch,
                       on_done](Tick t) {
                dsm::Node &me = node(proc);
                const Tick p = me.pci.transfer(t, cfg().pageWords());
                const Tick m = me.memory.access(p, cfg().pageWords());
                // Prefetched pages additionally require the processor to
                // remap them on arrival (paper: prefetch servicing
                // requires processor intervention).
                Tick done = m;
                if (is_prefetch)
                    done = std::max(m, me.cpu.interrupt(200));
                sys_->eq().schedule(done, [this, proc, src, page,
                                           on_done]() {
                    // Copy from the live source at install time: updates
                    // that raced the fetch toward our (not yet mapped)
                    // copy are thereby included; later-arriving ones are
                    // stamp-merged on top.
                    dsm::NodePage &sp = node(src).pages.page(page);
                    ncp2_assert(sp.present(),
                                "AURC fetch from an absent copy");
                    dsm::NodePage &mp = node(proc).pages.materialize(page);
                    std::memcpy(mp.data.get(), sp.data.get(),
                                cfg().page_bytes);
                    // Inherit the source's word stamps so an in-flight
                    // older update cannot regress a snapshot value.
                    auto sit = copy_stamps_[src].find(page);
                    if (sit != copy_stamps_[src].end()) {
                        auto &mine = copy_stamps_[proc][page];
                        if (!mine) {
                            // Fully overwritten by the memcpy below.
                            mine = std::make_unique_for_overwrite<
                                std::uint32_t[]>(cfg().pageWords());
                        }
                        std::memcpy(mine.get(), sit->second.get(),
                                    cfg().pageWords() * 4);
                    }
                    on_done();
                });
            });
        });
    });
}

// ---------------------------------------------------------------------
// prefetching (AURC+P)
// ---------------------------------------------------------------------

void
Aurc::issuePrefetches(NodeId proc)
{
    ProcState &ps = procs_[proc];
    if (!prefetch_enabled_) {
        ps.invalidated.clear();
        return;
    }
    std::vector<PageId> cands;
    std::swap(cands, ps.invalidated);
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

    dsm::Node &n = node(proc);
    for (PageId page : cands) {
        dsm::NodePage &pg = n.pages.page(page);
        if (!pg.present() || pg.access != dsm::Access::none ||
            pg.prefetch_pending || !pg.referenced) {
            continue;
        }
        const PageShare &sh = pages_[page];
        const NodeId src = mergeNodeOf(sh);
        if (src == sim::invalid_node || src == proc || sh.fetch_in_flight)
            continue;

        pg.prefetch_pending = true;
        prefetch_[proc][page] = PagePrefetch{};
        ++stats_.prefetches_issued;
        if (sim::Trace *tr = sys_->trace()) [[unlikely]]
            tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                     sim::TraceKind::prefetch_issue, page);

        fetchPage(proc, src, page, true, [this, proc, page]() {
            auto it = prefetch_[proc].find(page);
            if (it == prefetch_[proc].end())
                return;
            const bool demand_wait = it->second.demand_wait;
            const bool stale = it->second.invalidated_again;
            prefetch_[proc].erase(it);

            dsm::Node &nd = node(proc);
            dsm::NodePage &pg2 = nd.pages.page(page);
            pg2.prefetch_pending = false;
            if (!stale) {
                pg2.access = dsm::Access::read;
                pg2.referenced = false;
                pg2.prefetched_unused = !demand_wait;
                sys_->snoopInvalidatePage(proc, page);
            }
            if (demand_wait)
                nd.cpu.wake();
        });
    }
}

// ---------------------------------------------------------------------
// message helpers (everything runs on the computation processors)
// ---------------------------------------------------------------------

void
Aurc::fiberSend(NodeId proc, NodeId dst, std::uint32_t bytes, Cat cat,
                std::function<void(Tick)> fn)
{
    dsm::Node &n = node(proc);
    n.cpu.flush();
    n.cpu.advance(cfg().net.msg_overhead, cat);
    n.cpu.flush();
    sys_->router().send(sys_->eq().now(), proc, dst, bytes,
                        std::move(fn));
}

void
Aurc::eventSend(NodeId src, NodeId dst, std::uint32_t bytes,
                std::function<void(Tick)> fn)
{
    const Tick done = node(src).cpu.interrupt(cfg().net.msg_overhead);
    sys_->router().send(done, src, dst, bytes, std::move(fn));
}

// ---------------------------------------------------------------------
// locks and barriers (notice exchange without diffs)
// ---------------------------------------------------------------------

void
Aurc::acquire(NodeId proc, unsigned lock_id)
{
    dsm::Node &n = node(proc);
    ++stats_.lock_acquires;
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(n.cpu.localNow(), proc, sim::TraceEngine::cpu,
                 sim::TraceKind::lock_acquire, lock_id);

    if (nprocs() == 1) {
        n.cpu.advance(20, Cat::synch);
        return;
    }

    LockState &lk = locks_[lock_id];
    if (lk.has_owner && lk.owner == proc && !lk.held && !lk.granting &&
        lk.waiters.empty()) {
        // Claim before the charge (cf. TreadMarks::acquire): advance()
        // parks this fiber while the global clock runs on, so claiming
        // after it opens a window where the manager pump sees the lock
        // free and forwards our cached ownership to the next waiter --
        // two owners, and the release assert fires much later.
        lk.held = true;
        n.cpu.advance(40, Cat::synch);
        return;
    }

    const NodeId manager = static_cast<NodeId>(lock_id % nprocs());
    fiberSend(proc, manager, lockReqBytes(), Cat::synch,
              [this, proc, lock_id, manager](Tick) {
                  node(manager).cpu.interrupt(cfg().interrupt_cycles +
                                              cfg().list_cycles * 2);
                  locks_[lock_id].waiters.push_back(proc);
                  pumpLock(lock_id, manager);
              });
    n.cpu.block(Cat::synch);

    n.cpu.advance(cfg().list_cycles *
                      (procs_[proc].invalidated.size() + 1),
                  Cat::synch);
    issuePrefetches(proc);
}

void
Aurc::pumpLock(unsigned lock_id, NodeId manager)
{
    LockState &l = locks_[lock_id];
    if (l.held || l.granting || l.waiters.empty())
        return;
    l.granting = true;
    const NodeId next = l.waiters.front();
    l.waiters.pop_front();

    if (!l.has_owner) {
        l.has_owner = true;
        grantLock(lock_id, manager, next, false);
        return;
    }
    const NodeId o = l.owner;
    eventSend(manager, o, lockReqBytes(), [this, lock_id, o, next](Tick) {
        LockState &l2 = locks_[lock_id];
        if (l2.held) {
            l2.has_pending = true;
            l2.pending = next;
        } else {
            grantLock(lock_id, o, next, false);
        }
    });
}

void
Aurc::grantLock(unsigned lock_id, NodeId from, NodeId to, bool from_fiber)
{
    LockState &lk = locks_[lock_id];
    dsm::VectorClock grant_vt = lk.release_vt.size()
        ? lk.release_vt
        : dsm::VectorClock(nprocs());
    if (from == to)
        grant_vt = procs_[from].vt;

    const std::uint64_t notices =
        noticesBetween(procs_[to].vt, grant_vt, procs_[from].delta_scratch);

    lk.held = true;
    lk.owner = to;
    lk.granting = false;

    if (from == to) {
        deliverGrant(lock_id, to, grant_vt);
        return;
    }

    if (from_fiber) {
        node(from).cpu.advance(cfg().list_cycles * notices, Cat::synch);
        fiberSend(from, to, grantBytes(notices), Cat::synch,
                  [this, lock_id, to, grant_vt](Tick) {
                      deliverGrant(lock_id, to, grant_vt);
                  });
    } else {
        const Tick done = node(from).cpu.interrupt(
            cfg().interrupt_cycles + cfg().list_cycles * notices);
        sys_->eq().schedule(done, [this, lock_id, from, to, grant_vt,
                                   notices]() {
            eventSend(from, to, grantBytes(notices),
                      [this, lock_id, to, grant_vt](Tick) {
                          deliverGrant(lock_id, to, grant_vt);
                      });
        });
    }
}

void
Aurc::deliverGrant(unsigned lock_id, NodeId to, dsm::VectorClock grant_vt)
{
    // Honour the flush timestamps: the acquirer may not proceed until
    // every update already headed for its memory has been deposited.
    const Tick now = sys_->eq().now();
    if (incoming_done_[to] > now) {
        ++stats_.update_drain_waits;
        sys_->eq().schedule(incoming_done_[to],
                            [this, lock_id, to, grant_vt]() {
                                deliverGrant(lock_id, to, grant_vt);
                            });
        return;
    }
    if (sim::Trace *tr = sys_->trace()) [[unlikely]]
        tr->emit(now, to, sim::TraceEngine::cpu,
                 sim::TraceKind::lock_grant, lock_id);
    ProcState &ps = procs_[to];
    if (cfg().sparse_clocks)
        dsm::clockDelta(ps.vt, grant_vt, ps.delta_scratch);
    advanceClock(to, grant_vt, ps.delta_scratch);
    node(to).cpu.wake();
}

void
Aurc::release(NodeId proc, unsigned lock_id)
{
    dsm::Node &n = node(proc);
    if (nprocs() == 1) {
        n.cpu.advance(10, Cat::synch);
        return;
    }

    closeInterval(proc);
    // Flush the write cache and propagate flush timestamps before the
    // lock can move on.
    flushWriteCache(proc);

    LockState &lk = locks_[lock_id];
    ncp2_assert(lk.held && lk.owner == proc,
                "release of lock %u not held by %u", lock_id, proc);
    lk.held = false;
    lk.release_vt = procs_[proc].vt;

    if (lk.has_pending) {
        lk.has_pending = false;
        grantLock(lock_id, proc, lk.pending, true);
    } else if (!lk.waiters.empty() && !lk.granting) {
        lk.granting = true;
        const NodeId next = lk.waiters.front();
        lk.waiters.pop_front();
        grantLock(lock_id, proc, next, true);
    } else {
        n.cpu.advance(10, Cat::synch);
    }
}

void
Aurc::barrier(NodeId proc, unsigned barrier_id)
{
    dsm::Node &n = node(proc);
    if (nprocs() == 1) {
        n.cpu.advance(10, Cat::synch);
        return;
    }

    closeInterval(proc);
    flushWriteCache(proc);

    if (mgr_known_vt_.size() == 0)
        mgr_known_vt_ = dsm::VectorClock(nprocs());
    auto &bar = barriers_[barrier_id];
    if (bar.merged_vt.size() == 0)
        bar.merged_vt = mgr_known_vt_;

    ProcState &ps = procs_[proc];
    const std::uint64_t up_notices =
        noticesBetween(mgr_known_vt_, ps.vt, ps.delta_scratch);

    fiberSend(proc, 0, grantBytes(up_notices), Cat::synch,
              [this, proc, barrier_id, up_notices](Tick) {
        auto &b = barriers_[barrier_id];
        dsm::Node &mgr = node(0);
        const Tick done = mgr.cpu.interrupt(
            cfg().interrupt_cycles + cfg().list_cycles * up_notices);
        b.merged_vt.merge(procs_[proc].vt);
        if (done > b.ready_at)
            b.ready_at = done;
        if (++b.arrived < nprocs())
            return;

        ++stats_.barriers;
        // One shared copy of the final clock plus a small per-receiver
        // delta replaces the old n dense clock copies captured by the
        // release lambdas (quadratic in machine size).
        auto final_vt =
            std::make_shared<const dsm::VectorClock>(b.merged_vt);
        std::shared_ptr<dsm::ClockDelta> base;
        if (cfg().sparse_clocks) {
            // Every participant merged the previous barrier's final
            // clock, so each vt dominates the pre-merge watermark and
            // narrowDelta() is exact (see vclock.hh).
            base = std::make_shared<dsm::ClockDelta>();
            dsm::clockDelta(mgr_known_vt_, *final_vt, *base);
        }
        mgr_known_vt_.merge(*final_vt);
        sys_->eq().schedule(b.ready_at, [this, barrier_id, final_vt,
                                         base]() {
            for (unsigned q = 0; q < nprocs(); ++q) {
                dsm::ClockDelta dq;
                std::uint64_t down;
                if (base) {
                    dsm::narrowDelta(*base, procs_[q].vt, dq);
                    down = noticeCountDelta(dq);
                    ncp2_dassert(down == noticeCount(procs_[q].vt,
                                                     *final_vt),
                                 "narrowed barrier delta diverged from "
                                 "the dense oracle");
                } else {
                    down = noticeCount(procs_[q].vt, *final_vt);
                }
                eventSend(0, q, grantBytes(down),
                          [this, q, final_vt,
                           dq = std::move(dq)](Tick t) {
                              // Barrier releases obey the same
                              // flush-timestamp rule as lock grants.
                              const Tick ready =
                                  std::max(t, incoming_done_[q]);
                              if (ready > t)
                                  ++stats_.update_drain_waits;
                              sys_->eq().schedule(ready, [this, q,
                                                          final_vt,
                                                          dq]() {
                                  advanceClock(q, *final_vt, dq);
                                  node(q).cpu.wake();
                              });
                          });
            }
            barriers_.erase(barrier_id);
        });
    });
    n.cpu.block(Cat::synch);

    n.cpu.advance(cfg().list_cycles *
                      (procs_[proc].invalidated.size() + 1),
                  Cat::synch);
    issuePrefetches(proc);
}

// ---------------------------------------------------------------------
// validation-time reconstruction
// ---------------------------------------------------------------------

void
Aurc::readCoherent(PageId page, std::uint8_t *out)
{
    if (page >= pages_.size()) {
        std::memset(out, 0, cfg().page_bytes);
        return;
    }
    if (nprocs() == 1) {
        const dsm::NodePage &p0 = node(0).pages.page(page);
        if (p0.present())
            std::memcpy(out, p0.data.get(), cfg().page_bytes);
        else
            std::memset(out, 0, cfg().page_bytes);
        return;
    }
    PageShare &sh = pages_[page];
    const NodeId merge = mergeNodeOf(sh);
    if (merge == sim::invalid_node) {
        std::memset(out, 0, cfg().page_bytes);
        return;
    }
    const dsm::NodePage &mp = node(merge).pages.page(page);
    if (!mp.present()) {
        std::memset(out, 0, cfg().page_bytes);
        return;
    }
    std::memcpy(out, mp.data.get(), cfg().page_bytes);

    // Fold in any write-cache entries not yet flushed (writes after the
    // final release), honouring the per-word stamps.
    auto *words = reinterpret_cast<std::uint32_t *>(out);
    std::vector<std::uint32_t> stamp(cfg().pageWords(), 0);
    auto it = copy_stamps_[merge].find(page);
    if (it != copy_stamps_[merge].end())
        std::memcpy(stamp.data(), it->second.get(), cfg().pageWords() * 4);
    for (unsigned q = 0; q < nprocs(); ++q) {
        if (q == merge)
            continue;
        for (const WcEntry &e : procs_[q].wcache) {
            if (!e.valid || e.page != page)
                continue;
            for (unsigned i = 0; i < 8; ++i) {
                if (!(e.mask & (1u << i)))
                    continue;
                const unsigned w = e.line * 8 + i;
                if (e.stamps[i] > stamp[w]) {
                    stamp[w] = e.stamps[i];
                    words[w] = e.vals[i];
                }
            }
        }
    }
}

void
Aurc::finalize()
{
    for (unsigned p = 0; p < nprocs(); ++p) {
        dsm::PageStore &store = node(p).pages;
        for (PageId pg = 0; pg < pages_.size(); ++pg) {
            if (store.page(pg).prefetched_unused)
                ++stats_.prefetches_useless;
        }
    }
    // Counters are exported through statGroup(): System::run snapshots
    // the group, so no hand-copy into an ad-hoc map is needed.
}

} // namespace aurc
