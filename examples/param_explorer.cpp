/**
 * @file
 * Architectural parameter exploration (the section 5.3 methodology on
 * any workload): sweep one machine parameter and watch the two DSM
 * designs trade places. Defaults to the network-bandwidth sweep on a
 * small Em3d.
 *
 *   $ ./examples/param_explorer [net_bw|net_lat|mem_lat|mem_bw]
 */

#include <iostream>

#include "apps/apps.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    const std::string knob = argc > 1 ? argv[1] : "net_bw";

    struct Point
    {
        double value;
        dsm::SysConfig tm, au;
    };
    std::vector<Point> points;
    for (double v : knob == "net_bw"  ? std::vector<double>{20, 50, 100, 200}
                  : knob == "net_lat" ? std::vector<double>{100, 200, 400}
                  : knob == "mem_lat" ? std::vector<double>{40, 100, 200}
                                      : std::vector<double>{60, 103, 200}) {
        Point pt;
        pt.value = v;
        pt.tm.num_procs = pt.au.num_procs = 16;
        pt.tm.heap_bytes = pt.au.heap_bytes = 64ull << 20;
        pt.tm.mode.offload = pt.tm.mode.hw_diffs = true;
        pt.au.protocol = dsm::ProtocolKind::aurc;
        for (dsm::SysConfig *c : {&pt.tm, &pt.au}) {
            if (knob == "net_bw")
                c->net.setBandwidthMBs(v);
            else if (knob == "net_lat")
                c->net.msg_overhead = static_cast<sim::Cycles>(v);
            else if (knob == "mem_lat")
                c->setMemLatencyNs(v);
            else
                c->setMemBandwidthMBs(v);
        }
        points.push_back(pt);
    }

    sim::Table t({knob, "TM-I+D (Mcycles)", "AURC (Mcycles)"});
    for (auto &pt : points) {
        auto w1 = apps::make("Em3d", apps::Scale::small);
        auto w2 = apps::make("Em3d", apps::Scale::small);
        const double tm = static_cast<double>(
            harness::runOnce(pt.tm, *w1).exec_ticks);
        const double au = static_cast<double>(
            harness::runOnce(pt.au, *w2).exec_ticks);
        t.addRow({sim::Table::fmt(pt.value, 0), sim::Table::fmt(tm / 1e6, 2),
                  sim::Table::fmt(au / 1e6, 2)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    t.print(std::cout);
    return 0;
}
