/**
 * @file
 * Compare all eight protocol variants (six TreadMarks overlap modes +
 * AURC with and without prefetching) on one workload and print the
 * normalized results - a miniature of the paper's whole evaluation.
 *
 *   $ ./examples/protocol_compare [app]      (default: Ocean)
 */

#include <iostream>

#include "apps/apps.hh"
#include "harness/runner.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Ocean";

    std::vector<harness::BreakdownRow> rows;
    harness::BreakdownRow base;
    for (const char *proto :
         {"Base", "I", "I+D", "P", "I+P", "I+P+D", "AURC", "AURC+P"}) {
        dsm::SysConfig cfg;
        cfg.num_procs = 16;
        cfg.heap_bytes = 64ull << 20;
        const std::string p(proto);
        if (p.rfind("AURC", 0) == 0) {
            cfg.protocol = dsm::ProtocolKind::aurc;
            cfg.mode.prefetch = p == "AURC+P";
        } else {
            cfg.mode.offload = p.find('I') != std::string::npos;
            cfg.mode.hw_diffs = p.find('D') != std::string::npos;
            cfg.mode.prefetch = p.find('P') != std::string::npos;
        }
        auto w = apps::make(app, apps::Scale::small);
        const dsm::RunResult r = harness::runOnce(cfg, *w);
        harness::BreakdownRow row = harness::BreakdownRow::from(proto, r);
        if (rows.empty())
            base = row;
        rows.push_back(row.normalizedTo(base));
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    harness::printBreakdownTable(
        std::cout, app + " under every protocol (percent of Base)", rows);
    return 0;
}
