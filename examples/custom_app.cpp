/**
 * @file
 * Writing your own DSM application: implement dsm::Workload against the
 * Proc API (shared get/put, lock/unlock, barrier, compute) and run it
 * under any protocol. This one builds a shared histogram of a data set
 * with per-bucket-block locks, then validates it against a host-side
 * count.
 *
 *   $ ./examples/custom_app
 */

#include <iostream>
#include <vector>

#include "dsm/system.hh"
#include "dsm/workload.hh"
#include "harness/runner.hh"
#include "sim/rng.hh"

namespace
{

/** Parallel histogram: classic lock-protected shared accumulation. */
class Histogram : public dsm::Workload
{
  public:
    Histogram(unsigned items, unsigned buckets)
        : items_(items), buckets_(buckets) {}

    std::string name() const override { return "histogram"; }

    void
    plan(dsm::GlobalHeap &heap, const dsm::SysConfig &) override
    {
        // Deterministic input data, known to every node (read-only
        // topology-style data can stay host-side; the *histogram* is
        // the shared object under test).
        sim::Rng rng(2024);
        data_.resize(items_);
        for (auto &d : data_)
            d = static_cast<std::uint32_t>(rng.below(buckets_));
        hist_.base = heap.allocPages(buckets_ * 8ull);
    }

    void
    run(dsm::Proc &p) override
    {
        const unsigned np = p.nprocs();
        const unsigned lo = items_ * p.id() / np;
        const unsigned hi = items_ * (p.id() + 1) / np;

        if (p.id() == 0) {
            for (unsigned b = 0; b < buckets_; ++b)
                hist_.put(p, b, 0);
        }
        p.barrier(0);

        // Count locally, then merge under coarse bucket-block locks
        // (one lock per 64 buckets).
        std::vector<std::int64_t> local(buckets_, 0);
        for (unsigned i = lo; i < hi; ++i) {
            ++local[data_[i]];
            p.compute(6);
        }
        for (unsigned blk = 0; blk < buckets_; blk += 64) {
            p.lock(blk / 64);
            for (unsigned b = blk; b < blk + 64 && b < buckets_; ++b) {
                if (local[b])
                    hist_.put(p, b, hist_.get(p, b) + local[b]);
            }
            p.unlock(blk / 64);
        }
        p.barrier(1);
    }

    void
    validate(dsm::System &sys) override
    {
        std::vector<std::int64_t> want(buckets_, 0);
        for (auto d : data_)
            ++want[d];
        for (unsigned b = 0; b < buckets_; ++b) {
            const auto got = sys.readGlobal<std::int64_t>(hist_.at(b));
            if (got != want[b]) {
                ncp2_fatal("histogram bucket %u: got %lld want %lld", b,
                           static_cast<long long>(got),
                           static_cast<long long>(want[b]));
            }
        }
    }

  private:
    unsigned items_;
    unsigned buckets_;
    std::vector<std::uint32_t> data_;
    dsm::GArray<std::int64_t> hist_;
};

} // namespace

int
main()
{
    Histogram app(200000, 512);

    for (const char *proto : {"Base", "I+D", "AURC"}) {
        dsm::SysConfig cfg;
        cfg.num_procs = 16;
        cfg.heap_bytes = 8ull << 20;
        if (std::string(proto) == "AURC") {
            cfg.protocol = dsm::ProtocolKind::aurc;
        } else if (std::string(proto) == "I+D") {
            cfg.mode.offload = true;
            cfg.mode.hw_diffs = true;
        }
        const dsm::RunResult r = harness::runOnce(cfg, app);
        std::cout << proto << ": " << r.exec_ticks
                  << " cycles, validated OK (" << r.net.messages
                  << " messages)\n";
    }
    return 0;
}
