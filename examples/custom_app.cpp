/**
 * @file
 * A larger g::App: build a shared histogram with g::hash_map's
 * insert-or-accumulate (stripe locks replace hand-numbered bucket-block
 * locks), track the processed-item total in a g::atomic, and validate
 * both against a host-side count. Runs under three protocols to show
 * the same app is protocol-agnostic.
 *
 *   $ ./examples/custom_app
 */

#include <iostream>
#include <vector>

#include "gstl/gstl.hh"
#include "harness/runner.hh"
#include "sim/rng.hh"

namespace
{

/** Parallel histogram: classic lock-protected shared accumulation. */
class Histogram : public g::App
{
  public:
    Histogram(unsigned items, unsigned buckets)
        : items_(items), buckets_(buckets) {}

    std::string name() const override { return "histogram"; }

    void
    plan(g::context &ctx) override
    {
        // Deterministic input data, known to every node (read-only
        // data can stay host-side; the *histogram* is the shared
        // object under test).
        sim::Rng rng(2024);
        data_.resize(items_);
        for (auto &d : data_)
            d = static_cast<std::uint32_t>(rng.below(buckets_));
        hist_.allocate(ctx, "hist", 2ull * buckets_, 8);
        total_.allocate(ctx, "total");
    }

    void
    run(g::context &ctx) override
    {
        const unsigned np = ctx.nprocs();
        const unsigned lo = items_ * ctx.id() / np;
        const unsigned hi = items_ * (ctx.id() + 1) / np;

        // Count locally, then merge: each add() serializes only on its
        // bucket's stripe lock.
        std::vector<std::int64_t> local(buckets_, 0);
        for (unsigned i = lo; i < hi; ++i) {
            ++local[data_[i]];
            ctx.compute(6);
        }
        for (unsigned b = 0; b < buckets_; ++b)
            if (local[b])
                hist_.add(ctx, b, local[b]);
        total_.fetch_add(ctx, hi - lo);
    }

    void
    validate(dsm::System &sys) override
    {
        std::vector<std::int64_t> want(buckets_, 0);
        for (auto d : data_)
            ++want[d];
        for (unsigned b = 0; b < buckets_; ++b) {
            const auto got = hist_.peek_find(sys, b);
            const std::int64_t v = got ? *got : 0;
            if (v != want[b]) {
                ncp2_fatal("histogram bucket %u: got %lld want %lld", b,
                           static_cast<long long>(v),
                           static_cast<long long>(want[b]));
            }
        }
        if (sys.readGlobal<std::uint64_t>(total_.addr()) != items_)
            ncp2_fatal("histogram item total mismatch");
    }

  private:
    unsigned items_;
    unsigned buckets_;
    std::vector<std::uint32_t> data_;
    g::hash_map<std::uint32_t, std::int64_t> hist_;
    g::atomic<std::uint64_t> total_;
};

} // namespace

int
main()
{
    Histogram app(200000, 512);

    for (const char *proto : {"Base", "I+D", "AURC"}) {
        dsm::SysConfig cfg;
        cfg.num_procs = 16;
        cfg.heap_bytes = 8ull << 20;
        if (std::string(proto) == "AURC") {
            cfg.protocol = dsm::ProtocolKind::aurc;
        } else if (std::string(proto) == "I+D") {
            cfg.mode.offload = true;
            cfg.mode.hw_diffs = true;
        }
        const dsm::RunResult r = harness::runOnce(cfg, app);
        std::cout << proto << ": " << r.exec_ticks
                  << " cycles, validated OK (" << r.net.messages
                  << " messages)\n";
    }
    return 0;
}
