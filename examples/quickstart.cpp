/**
 * @file
 * Quickstart: the advertised way to write a DSM application. Subclass
 * g::App, declare your shared data as g:: containers, and change only
 * the types - the plan()/run()/validate() lifecycle and the containers
 * do the rest. The same binary then simulates it on a 16-node network
 * of workstations under the paper's protocol (TreadMarks, mode I+D)
 * and prints the execution-time breakdown.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "gstl/gstl.hh"
#include "harness/runner.hh"

namespace
{

/**
 * Parallel dot product: each processor owns a block of two shared
 * vectors, accumulates its partial sum into a shared atomic, and one
 * barrier separates filling from reading.
 */
class Dot : public g::App
{
  public:
    explicit Dot(unsigned n) : n_(n) {}

    std::string name() const override { return "dot"; }

    void
    plan(g::context &ctx) override
    {
        xs_.allocate(ctx, n_);
        ys_.allocate(ctx, n_);
        sum_.allocate(ctx, "sum");
        filled_ = ctx.make_barrier("filled");
    }

    void
    run(g::context &ctx) override
    {
        const unsigned lo = n_ * ctx.id() / ctx.nprocs();
        const unsigned hi = n_ * (ctx.id() + 1) / ctx.nprocs();

        // Owners fill their blocks (values derived from the index so
        // validate() can recompute them host-side).
        for (unsigned i = lo; i < hi; ++i) {
            xs_.set(ctx, i, 2 * i + 1);
            ys_.set(ctx, i, i % 7);
        }
        filled_.wait(ctx);

        std::uint64_t acc = 0;
        for (unsigned i = lo; i < hi; ++i) {
            acc += std::uint64_t{xs_.get(ctx, i)} * ys_.get(ctx, i);
            ctx.compute(8);
        }
        sum_.fetch_add(ctx, acc);
    }

    void
    validate(dsm::System &sys) override
    {
        std::uint64_t want = 0;
        for (unsigned i = 0; i < n_; ++i)
            want += std::uint64_t{2 * i + 1} * (i % 7);
        if (sys.readGlobal<std::uint64_t>(sum_.addr()) != want)
            ncp2_fatal("dot product mismatch");
    }

  private:
    unsigned n_;
    g::vector<std::uint32_t> xs_, ys_;
    g::atomic<std::uint64_t> sum_;
    g::barrier filled_;
};

} // namespace

int
main()
{
    // 1. Describe the machine (Table 1 defaults) and pick a protocol:
    //    TreadMarks with controller offloading (I) + hardware diffs (D).
    dsm::SysConfig cfg;
    cfg.num_procs = 16;
    cfg.heap_bytes = 8ull << 20;
    cfg.mode.offload = true;
    cfg.mode.hw_diffs = true;

    harness::printConfig(std::cout, cfg);

    // 2. Run. The workload self-validates: if the coherence protocol
    //    were wrong, this would throw.
    Dot app(1 << 16);
    const dsm::RunResult r = harness::runOnce(cfg, app);

    // 3. Report.
    std::cout << "\ndot(x, y) on TreadMarks/I+D, 16 processors\n"
              << "  simulated time : " << r.exec_ticks << " cycles ("
              << r.seconds() * 1e3 << " ms at 100 MHz)\n"
              << "  network        : " << r.net.messages << " messages, "
              << r.net.bytes / 1024 << " KiB\n";

    harness::BreakdownRow row = harness::BreakdownRow::from("I+D", r);
    harness::printBreakdownTable(std::cout, "breakdown",
                                 {row.normalizedTo(row)});
    return 0;
}
