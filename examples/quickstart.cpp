/**
 * @file
 * Quickstart: simulate a 16-node network of workstations running a
 * TreadMarks DSM with the paper's protocol controller (mode I+D), run
 * the Ocean workload on it, and print the execution-time breakdown.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "apps/apps.hh"
#include "harness/runner.hh"

int
main()
{
    // 1. Describe the machine (Table 1 defaults) and pick a protocol:
    //    TreadMarks with controller offloading (I) + hardware diffs (D).
    dsm::SysConfig cfg;
    cfg.num_procs = 16;
    cfg.heap_bytes = 64ull << 20;
    cfg.mode.offload = true;
    cfg.mode.hw_diffs = true;

    harness::printConfig(std::cout, cfg);

    // 2. Pick a workload (a small Ocean so this runs in a second).
    auto ocean = apps::make("Ocean", apps::Scale::small);

    // 3. Run. The workload self-validates: if the coherence protocol
    //    were wrong, this would throw.
    const dsm::RunResult r = harness::runOnce(cfg, *ocean);

    // 4. Report.
    std::cout << "\nOcean on TreadMarks/I+D, 16 processors\n"
              << "  simulated time : " << r.exec_ticks << " cycles ("
              << r.seconds() * 1e3 << " ms at 100 MHz)\n"
              << "  network        : " << r.net.messages << " messages, "
              << r.net.bytes / 1024 << " KiB\n";

    harness::BreakdownRow row = harness::BreakdownRow::from("I+D", r);
    harness::printBreakdownTable(std::cout, "breakdown",
                                 {row.normalizedTo(row)});

    std::cout << "\nProtocol statistics:\n";
    for (const auto &[k, v] : r.stats.flat())
        std::cout << "  " << k << " = " << v << '\n';
    return 0;
}
