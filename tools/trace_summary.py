#!/usr/bin/env python3
"""Validate and summarize NCP2 Chrome trace files (sim::writeChromeTrace).

A trace file is Chrome trace_event JSON: one "process" per simulated
node, one named "thread" per engine (cpu/ctrl/nic), instant events for
protocol activity, a counter track for controller queue occupancy, and
cumulative `bd_snapshot` instants at every barrier epoch (plus one final
batch at end of run). Because the snapshots are cumulative and exact
(the simulator accumulates breakdown cycles eagerly), per-epoch deltas
telescope to the run's aggregate BreakdownRow - which is what the
--results cross-check verifies against the schema-v2 results JSON the
bench wrote alongside the trace.

Usage:
  trace_summary.py --validate trace.json...
      Structural validation only (exit 1 on any violation).
  trace_summary.py --summary trace.json
      Validation + a per-barrier-epoch breakdown table reconstructed
      from the bd_snapshot records (cycles, averaged over processors).
  trace_summary.py --results results/<bench>.json [--label LABEL] trace.json
      Validation + cross-check: the final cumulative snapshots must
      reproduce the run's "breakdown" aggregates exactly. The run is
      selected by LABEL, defaulting to the trace's otherData.label.
  trace_summary.py --requests results/<bench>.json [--label LABEL] trace.json
      Validation + request reconstruction: rebuild every per-request
      latency from req_enqueue/req_start/req_done records, replay them
      through an integer-exact mirror of sim::QuantileSketch, and
      demand exact equality with the run's stats.serve sketches
      (global and per-node children).

Exit status: 0 ok, 1 validation/cross-check failure, 2 usage error.
Stdlib only.
"""

import argparse
import json
import sys

# bd_snapshot aux slots, in emission order (dsm::Cat then the two
# diff-op accounts); see System::emitBdSnapshot.
CATS = ["busy", "data", "synch", "ipc", "other.cache", "other.tlb",
        "other.wb", "other.int", "idle", "diff_op", "diff_op_ctrl"]

KNOWN_EVENTS = {
    "page_fault", "fault_done", "diff_create", "diff_apply", "ctrl_queue",
    "lock_acquire", "lock_grant", "barrier_epoch", "msg_send",
    "msg_deliver", "prefetch_issue", "prefetch_hit", "prefetch_useless",
    "bd_snapshot", "req_enqueue", "req_start", "req_done",
}
ENGINES = {0: "cpu", 1: "ctrl", 2: "nic"}


class TraceError(Exception):
    pass


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"{path}: cannot load: {exc}") from exc


def validate(path, doc):
    """Structural checks; returns the list of non-metadata events."""

    def fail(msg):
        raise TraceError(f"{path}: {msg}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("missing or empty traceEvents")
    other = doc.get("otherData")
    if not isinstance(other, dict) or "dropped" not in other:
        fail("otherData.dropped missing")

    named_procs, named_threads, data_events = set(), set(), []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph, pid, tid = ev.get("ph"), ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            fail(f"event {i}: pid/tid missing")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_procs.add(pid)
            elif ev.get("name") == "thread_name":
                named_threads.add((pid, tid))
                want = ENGINES.get(tid)
                got = ev.get("args", {}).get("name")
                if want and got != want:
                    fail(f"event {i}: thread {tid} named {got!r}, "
                         f"expected {want!r}")
            continue
        name = ev.get("name")
        if name not in KNOWN_EVENTS:
            fail(f"event {i}: unknown event name {name!r}")
        if ph == "C":
            if name != "ctrl_queue":
                fail(f"event {i}: only ctrl_queue may be a counter")
            if "depth" not in ev.get("args", {}):
                fail(f"event {i}: ctrl_queue without args.depth")
        elif ph == "i":
            if ev.get("s") != "t":
                fail(f"event {i}: instant without thread scope")
        else:
            fail(f"event {i}: unexpected phase {ph!r}")
        if "ts" not in ev:
            fail(f"event {i}: no timestamp")
        data_events.append(ev)

    for ev in data_events:
        if ev["pid"] not in named_procs:
            raise TraceError(f"{path}: pid {ev['pid']} has no "
                             "process_name metadata")
        if (ev["pid"], ev["tid"]) not in named_threads:
            raise TraceError(f"{path}: pid {ev['pid']} tid {ev['tid']} "
                             "has no thread_name metadata")

    # Cumulative snapshots must never decrease per (proc, category).
    last = {}
    for ev in data_events:
        if ev["name"] != "bd_snapshot":
            continue
        aux = ev["args"]["aux"]
        if not 0 <= aux < len(CATS):
            raise TraceError(f"{path}: bd_snapshot aux {aux} out of range")
        key = (ev["pid"], aux)
        if ev["args"]["arg"] < last.get(key, 0):
            raise TraceError(f"{path}: cumulative snapshot decreased for "
                             f"proc {ev['pid']} {CATS[aux]}")
        last[key] = ev["args"]["arg"]
    return data_events


def snapshot_batches(data_events):
    """Per proc: the list of complete {cat: cumulative} snapshot batches.

    emitBdSnapshot writes all len(CATS) records back-to-back, so batches
    are just consecutive runs of bd_snapshot records per pid, in file
    (= emission) order.
    """
    batches, open_batch, last_aux = {}, {}, {}

    def close(pid):
        cur = open_batch.pop(pid, {})
        # A partial batch can only be the oldest surviving one after a
        # ring overflow truncated its head; drop it rather than merging
        # it with its neighbour.
        if len(cur) == len(CATS):
            batches.setdefault(pid, []).append(
                {CATS[a]: v for a, v in cur.items()})

    for ev in data_events:
        if ev["name"] != "bd_snapshot":
            continue
        pid, aux = ev["pid"], ev["args"]["aux"]
        if aux <= last_aux.get(pid, -1):  # aux runs 0..len(CATS)-1 per batch
            close(pid)
        open_batch.setdefault(pid, {})[aux] = ev["args"]["arg"]
        last_aux[pid] = aux
    for pid in list(open_batch):
        cur = open_batch[pid]
        if len(cur) != len(CATS):
            raise TraceError(f"proc {pid}: trailing incomplete snapshot "
                             f"batch ({len(cur)}/{len(CATS)} slots)")
        close(pid)
    return batches


def epoch_table(batches):
    """Per-epoch deltas, averaged across processors, as rows of floats."""
    if not batches:
        return []
    epochs = min(len(b) for b in batches.values())
    nprocs = len(batches)
    rows = []
    for e in range(epochs):
        row = {}
        for cat in CATS:
            total = 0.0
            for per_proc in batches.values():
                prev = per_proc[e - 1][cat] if e else 0
                total += per_proc[e][cat] - prev
            row[cat] = total / nprocs
        rows.append(row)
    return rows


def print_summary(path, doc, data_events):
    other = doc["otherData"]
    batches = snapshot_batches(data_events)
    kinds = {}
    for ev in data_events:
        kinds[ev["name"]] = kinds.get(ev["name"], 0) + 1
    print(f"{path}: {len(data_events)} events, "
          f"{len(batches)} procs, dropped={other['dropped']}")
    for name in sorted(kinds):
        print(f"  {name:16s} {kinds[name]}")
    rows = epoch_table(batches)
    if not rows:
        return
    print(f"  per-epoch breakdown (mean cycles over {len(batches)} procs):")
    head = ["epoch"] + CATS
    print("  " + "  ".join(f"{h:>12s}" for h in head))
    for e, row in enumerate(rows):
        cells = [f"{e:>12d}"] + [f"{row[c]:>12.1f}" for c in CATS]
        print("  " + "  ".join(cells))


def cross_check(path, doc, data_events, results_path, label):
    """Final cumulative snapshots must equal the run's breakdown row."""
    results = load(results_path)
    if results.get("schema_version") != 2:
        raise TraceError(f"{results_path}: expected schema_version 2, "
                         f"got {results.get('schema_version')}")
    label = label or doc["otherData"].get("label")
    if not label:
        raise TraceError(f"{path}: no --label and no otherData.label")
    run = next((r for r in results.get("runs", [])
                if r.get("label") == label), None)
    if run is None:
        raise TraceError(f"{results_path}: no run labelled {label!r}")

    if int(doc["otherData"]["dropped"]):
        print(f"{path}: note: ring overflowed; epochs are incomplete but "
              "final snapshots survive, cross-check proceeds",
              file=sys.stderr)

    batches = snapshot_batches(data_events)
    nprocs = run["config"]["num_procs"]
    if len(batches) != nprocs:
        raise TraceError(f"{path}: snapshots for {len(batches)} procs, "
                         f"run has {nprocs}")
    finals = {pid: per_proc[-1] for pid, per_proc in batches.items()}

    def mean(cat):
        return sum(f[cat] for f in finals.values()) / nprocs

    got = {
        "busy": mean("busy"),
        "data": mean("data"),
        "synch": mean("synch"),
        "ipc": mean("ipc"),
        "others": sum(mean(c) for c in
                      ("other.cache", "other.tlb", "other.wb", "other.int")),
        "idle": mean("idle"),
    }
    want = run["breakdown"]
    failures = []
    for cat, value in got.items():
        ref = want[cat]
        tol = 1e-9 * max(1.0, abs(ref))
        if abs(value - ref) > tol:
            failures.append(f"{cat}: trace {value} != results {ref}")
    # Idle (open-loop arrival waits) is excluded from the five-way
    # stacked-bar total, matching BreakdownRow::from.
    total = sum(v for c, v in got.items() if c != "idle")
    if total > 0:
        diff_pct = 100.0 * mean("diff_op") / total
        tol = 1e-6 * max(1.0, abs(want["diff_pct"]))
        if abs(diff_pct - want["diff_pct"]) > tol:
            failures.append(f"diff_pct: trace {diff_pct} != results "
                            f"{want['diff_pct']}")
    if failures:
        raise TraceError(f"{path}: breakdown mismatch vs {results_path} "
                         f"[{label}]:\n  " + "\n  ".join(failures))
    print(f"{path}: breakdown cross-check OK vs {results_path} [{label}] "
          f"({len(finals)} procs, {len(data_events)} events)")


SUB_BITS = 6          # sim::QuantileSketch::sub_bits
LINEAR_MAX = 1 << SUB_BITS
SUB_BUCKETS = 1 << (SUB_BITS - 1)


def bucket_of(v):
    if v < LINEAR_MAX:
        return v
    m = v.bit_length() - 1
    return LINEAR_MAX + (m - SUB_BITS) * SUB_BUCKETS + \
        (v >> (m - (SUB_BITS - 1))) - SUB_BUCKETS


def bucket_lower_bound(b):
    if b < LINEAR_MAX:
        return b
    level, sub = divmod(b - LINEAR_MAX, SUB_BUCKETS)
    return (SUB_BUCKETS + sub) << (level + 1)


class Sketch:
    """Integer-exact mirror of sim::QuantileSketch (see quantile.hh):
    HDR-style log-linear buckets, quantile() returns the lower bound of
    the bucket holding rank ceil(num/den * count). Any divergence from
    the C++ sketch is a bug in one of the two."""

    def __init__(self):
        self.counts = {}
        self.count = self.sum = self.max = 0

    def sample(self, v):
        b = bucket_of(v)
        self.counts[b] = self.counts.get(b, 0) + 1
        self.count += 1
        self.sum += v
        self.max = max(self.max, v)

    def quantile(self, num, den):
        if not self.count:
            return 0
        target = max(1, (num * self.count + den - 1) // den)
        cum = 0
        for b in sorted(self.counts):
            cum += self.counts[b]
            if cum >= target:
                return bucket_lower_bound(b)
        return self.max


def sketch_fields(sk):
    return {"count": sk.count, "sum": sk.sum, "max": sk.max,
            "p50": sk.quantile(50, 100), "p99": sk.quantile(99, 100),
            "p999": sk.quantile(999, 1000)}


def reconstruct_requests(path, data_events):
    """Per-request records from req_enqueue/req_start/req_done triples,
    keyed by (pid, request id). Returns {pid: [(arrival, start, done)]}.
    """
    ticks = {}
    for ev in data_events:
        name = ev["name"]
        if name not in ("req_enqueue", "req_start", "req_done"):
            continue
        key = (ev["pid"], ev["args"]["arg"])
        slot = {"req_enqueue": 0, "req_start": 1, "req_done": 2}[name]
        entry = ticks.setdefault(key, [None, None, None])
        if entry[slot] is not None:
            raise TraceError(f"{path}: duplicate {name} for request "
                             f"{key[1]} on proc {key[0]}")
        entry[slot] = ev["args"]["tick"]
    per_node = {}
    for (pid, rid), (arr, start, done) in sorted(ticks.items()):
        if arr is None or start is None or done is None:
            raise TraceError(f"{path}: request {rid} on proc {pid} is "
                             "missing one of enqueue/start/done")
        if not arr <= start <= done:
            raise TraceError(f"{path}: request {rid} on proc {pid} has "
                             "out-of-order timestamps")
        per_node.setdefault(pid, []).append((arr, start, done))
    return per_node


def check_requests(path, doc, data_events, results_path, label):
    """The request trace must reproduce every latency sketch exactly:
    per-node and global count/sum/max/p50/p99/p999 recomputed from
    req_* records must equal the run's stats.serve values."""
    results = load(results_path)
    label = label or doc["otherData"].get("label")
    run = next((r for r in results.get("runs", [])
                if r.get("label") == label), None)
    if run is None:
        raise TraceError(f"{results_path}: no run labelled {label!r}")
    if int(doc["otherData"]["dropped"]):
        raise TraceError(f"{path}: ring overflowed (dropped events); "
                         "cannot reconstruct the request log - raise "
                         "NCP2_TRACE")
    serve = run.get("stats", {}).get("serve")
    if serve is None:
        raise TraceError(f"{results_path}: run {label!r} has no "
                         "stats.serve group")

    per_node = reconstruct_requests(path, data_events)
    if not per_node:
        raise TraceError(f"{path}: no req_* records in trace")

    failures = []

    def compare(where, sk, want):
        got = sketch_fields(sk)
        for field, value in got.items():
            ref = want.get(field)
            if value != ref:
                failures.append(f"{where}.{field}: trace {value} != "
                                f"results {ref}")

    glob = Sketch()
    queue = Sketch()
    service = Sketch()
    for pid, reqs in sorted(per_node.items()):
        node_sk = Sketch()
        for arr, start, done in reqs:
            node_sk.sample(done - arr)
            glob.sample(done - arr)
            queue.sample(start - arr)
            service.sample(done - start)
        child = serve.get("children", {}).get(f"n{pid}")
        if child is None:
            failures.append(f"n{pid}: no per-node child group in results")
            continue
        compare(f"n{pid}.latency", node_sk,
                child["sketches"]["latency"])
    compare("latency", glob, serve["sketches"]["latency"])
    compare("queue_delay", queue, serve["sketches"]["queue_delay"])
    compare("service", service, serve["sketches"]["service"])
    nreq = sum(len(v) for v in per_node.values())
    if nreq != serve["counters"]["requests"]:
        failures.append(f"requests: trace {nreq} != results "
                        f"{serve['counters']['requests']}")
    if failures:
        raise TraceError(f"{path}: request reconstruction mismatch vs "
                         f"{results_path} [{label}]:\n  " +
                         "\n  ".join(failures))
    print(f"{path}: request-percentile reconstruction OK vs "
          f"{results_path} [{label}] ({len(per_node)} nodes, "
          f"{nreq} requests)")


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("traces", nargs="+", metavar="trace.json")
    ap.add_argument("--validate", action="store_true",
                    help="structural validation only")
    ap.add_argument("--summary", action="store_true",
                    help="print per-epoch breakdown reconstruction")
    ap.add_argument("--results", metavar="FILE",
                    help="schema-v2 results JSON to cross-check against")
    ap.add_argument("--requests", metavar="FILE",
                    help="reconstruct per-request latency percentiles "
                         "from req_* records and demand exact equality "
                         "with FILE's stats.serve sketches")
    ap.add_argument("--label", metavar="LABEL",
                    help="run label (default: the trace's otherData.label)")
    args = ap.parse_args(argv[1:])

    status = 0
    for path in args.traces:
        try:
            doc = load(path)
            data_events = validate(path, doc)
            if args.validate and not (args.summary or args.results or
                                      args.requests):
                print(f"{path}: OK ({len(data_events)} events, dropped="
                      f"{doc['otherData']['dropped']})")
            if args.summary:
                print_summary(path, doc, data_events)
            if args.results:
                cross_check(path, doc, data_events, args.results, args.label)
            if args.requests:
                check_requests(path, doc, data_events, args.requests,
                               args.label)
        except TraceError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
