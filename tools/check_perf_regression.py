#!/usr/bin/env python3
"""Gate host-performance regressions from results/bench_host.json.

The file is JSON Lines: each perf_host run appends one record (see
bench/perf_host.cc for the schema). The first line is the committed
baseline; the last line is the run under test. For every kernel present
in both, the *speedup ratio* (legacy implementation vs current one,
measured on the same machine in the same process) must not degrade by
more than THRESHOLD relative to the baseline ratio. Ratios, unlike
absolute nanoseconds, transfer across machines, so the committed
baseline remains meaningful on any CI runner.

Kernels only in the current run are reported as "new" (informational):
a freshly added kernel has no committed ratio to compare against and
must not fail the gate on machines whose baseline predates it. Kernels
only in the baseline still fail - losing a kernel silently would mask a
regression. A newly added kernel can be gated absolutely instead with
--require (below) until its baseline lands.

Usage: check_perf_regression.py [path] [--require NAME:MINSPEEDUP ...]

--require NAME:MINSPEEDUP demands that kernel NAME exists in the current
run with speedup >= MINSPEEDUP; use it to pin an absolute floor under a
kernel whose win is the point of a change (e.g. --require
access_putrange:2.0 keeps the bulk access path at >= 2x the slow loop).

Exit status: 0 ok, 1 regression, 2 usage/format error.
"""

import json
import sys

THRESHOLD = 0.25  # fail if a kernel loses >25% of its baseline speedup


def load_runs(path):
    runs = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                runs.append(json.loads(line))
            except json.JSONDecodeError as exc:
                sys.exit(f"{path}:{lineno}: bad JSON: {exc}")
    return runs


def kernel_map(run):
    return {k["name"]: k for k in run.get("kernels", [])}


def parse_args(argv):
    path = "results/bench_host.json"
    requires = {}
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--require":
            if not args:
                sys.exit("--require needs a NAME:MINSPEEDUP argument")
            arg = args.pop(0)
            name, sep, floor = arg.partition(":")
            if not sep or not name:
                sys.exit(f"bad --require '{arg}': expected NAME:MINSPEEDUP")
            try:
                requires[name] = float(floor)
            except ValueError:
                sys.exit(f"bad --require '{arg}': '{floor}' is not a number")
        elif arg.startswith("-"):
            sys.exit(f"unknown option '{arg}'")
        else:
            path = arg
    return path, requires


def main(argv):
    path, requires = parse_args(argv)
    runs = load_runs(path)
    if len(runs) < 2:
        sys.exit(f"{path}: need a baseline line and a current line "
                 f"(found {len(runs)} run(s); run bench/perf_host first)")

    base, cur = kernel_map(runs[0]), kernel_map(runs[-1])
    failed = False
    print(f"{'kernel':<16} {'baseline':>9} {'current':>9} {'ratio':>7}")
    for name in sorted(set(base) | set(cur), key=lambda n:
                       (n not in base, n)):
        b, c = base.get(name), cur.get(name)
        if c is None:
            print(f"{name:<16} {b['speedup']:>8.2f}x {'-':>9} MISSING")
            failed = True
            continue
        if b is None:
            print(f"{name:<16} {'-':>9} {c['speedup']:>8.2f}x "
                  f"{'':>6} new")
            continue
        rel = c["speedup"] / b["speedup"] if b["speedup"] else 0.0
        verdict = "ok" if rel >= 1.0 - THRESHOLD else "REGRESSED"
        print(f"{name:<16} {b['speedup']:>8.2f}x {c['speedup']:>8.2f}x "
              f"{rel:>6.2f} {verdict}")
        if verdict != "ok":
            failed = True

    for name, floor in sorted(requires.items()):
        c = cur.get(name)
        if c is None:
            print(f"required kernel '{name}' missing from the current run")
            failed = True
        elif c["speedup"] < floor:
            print(f"required kernel '{name}': speedup {c['speedup']:.2f}x "
                  f"below the {floor:.2f}x floor")
            failed = True

    if failed:
        print(f"\nFAIL: a kernel's legacy-vs-current speedup dropped more "
              f"than {THRESHOLD:.0%} below the committed baseline, "
              f"disappeared, or missed a --require floor")
        return 1
    print("\nOK: no kernel degraded beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
