#!/usr/bin/env python3
"""Gate host-performance regressions from results/bench_host.json.

The file is JSON Lines: each perf_host run appends one record (see
bench/perf_host.cc for the schema). The first line is the committed
baseline; the last line is the run under test. For every kernel present
in both, the *speedup ratio* (legacy implementation vs current one,
measured on the same machine in the same process) must not degrade by
more than THRESHOLD relative to the baseline ratio. Ratios, unlike
absolute nanoseconds, transfer across machines, so the committed
baseline remains meaningful on any CI runner.

Usage: check_perf_regression.py [path-to-bench_host.json]
Exit status: 0 ok, 1 regression, 2 usage/format error.
"""

import json
import sys

THRESHOLD = 0.25  # fail if a kernel loses >25% of its baseline speedup


def load_runs(path):
    runs = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                runs.append(json.loads(line))
            except json.JSONDecodeError as exc:
                sys.exit(f"{path}:{lineno}: bad JSON: {exc}")
    return runs


def kernel_map(run):
    return {k["name"]: k for k in run.get("kernels", [])}


def main(argv):
    path = argv[1] if len(argv) > 1 else "results/bench_host.json"
    runs = load_runs(path)
    if len(runs) < 2:
        sys.exit(f"{path}: need a baseline line and a current line "
                 f"(found {len(runs)} run(s); run bench/perf_host first)")

    base, cur = kernel_map(runs[0]), kernel_map(runs[-1])
    failed = False
    print(f"{'kernel':<16} {'baseline':>9} {'current':>9} {'ratio':>7}")
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            print(f"{name:<16} {'-':>9} {'-':>9} MISSING")
            failed = True
            continue
        rel = c["speedup"] / b["speedup"] if b["speedup"] else 0.0
        verdict = "ok" if rel >= 1.0 - THRESHOLD else "REGRESSED"
        print(f"{name:<16} {b['speedup']:>8.2f}x {c['speedup']:>8.2f}x "
              f"{rel:>6.2f} {verdict}")
        if verdict != "ok":
            failed = True

    if failed:
        print(f"\nFAIL: a kernel's legacy-vs-current speedup dropped more "
              f"than {THRESHOLD:.0%} below the committed baseline")
        return 1
    print("\nOK: no kernel degraded beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
