/**
 * @file
 * google-benchmark micro-benchmarks for the simulator substrates: event
 * queue throughput, fiber context switches, mesh routing, cache model
 * accesses, diff creation/application, and a full small simulation.
 * These measure *host* performance of the simulator itself (useful when
 * optimizing it), not simulated time.
 */

#include <benchmark/benchmark.h>

#include "dsm/diff_pool.hh"
#include "dsm/page.hh"
#include "dsm/system.hh"
#include "mem/cache.hh"
#include "net/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"
#include "tests/workload_helpers.hh"
#include "tmk/treadmarks.hh"

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.scheduleIn(static_cast<sim::Cycles>(i % 97), [&]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

/// The pre-calendar-queue implementation, kept as the "before" side of
/// the host-time comparison (perf_host reports the ratio).
void
BM_EventQueueScheduleRunLegacy(benchmark::State &state)
{
    sim::LegacyEventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.scheduleIn(static_cast<sim::Cycles>(i % 97), [&]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRunLegacy);

void
BM_FiberSwitch(benchmark::State &state)
{
    std::uint64_t count = 0;
    sim::Fiber fiber([&]() {
        for (;;) {
            ++count;
            sim::Fiber::yield();
        }
    });
    for (auto _ : state)
        fiber.resume();
    benchmark::DoNotOptimize(count);
    state.SetItemsProcessed(state.iterations() * 2); // two switches
}
BENCHMARK(BM_FiberSwitch);

void
BM_MeshSend(benchmark::State &state)
{
    net::MeshNetwork mesh(16, net::NetTiming{});
    sim::Rng rng(1);
    sim::Tick t = 0;
    for (auto _ : state) {
        const auto src = static_cast<sim::NodeId>(rng.below(16));
        const auto dst = static_cast<sim::NodeId>(rng.below(16));
        benchmark::DoNotOptimize(mesh.send(t, src, dst, 256));
        t += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshSend);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache;
    sim::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.accessRead(rng.below(1u << 22) & ~3ull));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DiffFromTwin(benchmark::State &state)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    store.makeTwin(pg);
    // Dirty a configurable fraction of words.
    auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
    const auto dirty = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < dirty; ++i)
        w[i * (1024 / (dirty ? dirty : 1))] = i + 1;
    for (auto _ : state) {
        dsm::Diff d = store.diffFromTwin(0, pg);
        benchmark::DoNotOptimize(d.words());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffFromTwin)->Arg(8)->Arg(128)->Arg(1024);

/// Scalar word-at-a-time comparison into a pooled buffer: isolates the
/// 64-bit fast path's gain from the allocation-removal gain.
void
BM_DiffFromTwinReference(benchmark::State &state)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    store.makeTwin(pg);
    auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
    const auto dirty = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < dirty; ++i)
        w[i * (1024 / (dirty ? dirty : 1))] = i + 1;
    dsm::Diff d;
    for (auto _ : state) {
        store.diffFromTwinReference(0, pg, d);
        benchmark::DoNotOptimize(d.words());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffFromTwinReference)->Arg(8)->Arg(128)->Arg(1024);

/// The protocol-side shape: 64-bit comparison into a pooled Diff, no
/// per-call allocation after warm-up.
void
BM_DiffFromTwinPooled(benchmark::State &state)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    store.makeTwin(pg);
    auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
    const auto dirty = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < dirty; ++i)
        w[i * (1024 / (dirty ? dirty : 1))] = i + 1;
    for (auto _ : state) {
        dsm::PooledDiff d;
        store.diffFromTwin(0, pg, *d);
        benchmark::DoNotOptimize(d->words());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffFromTwinPooled)->Arg(8)->Arg(128)->Arg(1024);

void
BM_DiffFromBits(benchmark::State &state)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    store.armWriteBits(pg);
    const auto dirty = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < dirty; ++i)
        dsm::PageStore::snoopWrite(pg, i * (1024 / (dirty ? dirty : 1)));
    for (auto _ : state) {
        dsm::Diff d = store.diffFromBits(0, pg);
        benchmark::DoNotOptimize(d.words());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffFromBits)->Arg(8)->Arg(128)->Arg(1024);

/// Bit-vector gather into a pooled Diff (the aurc hot path).
void
BM_DiffFromBitsPooled(benchmark::State &state)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    store.armWriteBits(pg);
    const auto dirty = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < dirty; ++i)
        dsm::PageStore::snoopWrite(pg, i * (1024 / (dirty ? dirty : 1)));
    for (auto _ : state) {
        dsm::PooledDiff d;
        store.diffFromBits(0, pg, *d);
        benchmark::DoNotOptimize(d->words());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffFromBitsPooled)->Arg(8)->Arg(128)->Arg(1024);

void
BM_FullSmallSimulation(benchmark::State &state)
{
    sim::setQuiet(true);
    for (auto _ : state) {
        testutil::StencilWorkload w(1024, 3);
        dsm::SysConfig cfg;
        cfg.num_procs = 8;
        cfg.heap_bytes = 4u << 20;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        const dsm::RunResult r = sys.run(w);
        benchmark::DoNotOptimize(r.exec_ticks);
    }
}
BENCHMARK(BM_FullSmallSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
