/**
 * @file
 * Figure 2: execution-time breakdown under Base TreadMarks on 16
 * processors - normalized stacked bars (busy / data / synch / ipc /
 * others) plus the per-application diff-operation percentage labels
 * (paper: TSP 1.5, Water 7.6, Radix 20.6, Barnes 10.4, Em3d 26.7,
 * Ocean 20.9).
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 2: TreadMarks (Base) breakdown on 16 processors"))
        return 0;

    const unsigned procs = fig::procsFromEnv();
    std::vector<harness::Job> jobs;
    for (const auto &app : apps::names())
        jobs.push_back(fig::job(app, app, "Base", procs));
    const auto results = fig::runAll("fig02_breakdown", jobs);

    std::vector<harness::BreakdownRow> rows;
    for (const auto &jr : results) {
        harness::BreakdownRow row =
            harness::BreakdownRow::from(jr.label, jr.run);
        rows.push_back(row.normalizedTo(row));
    }
    harness::printBreakdownTable(std::cout,
                                 "normalized execution time (percent)",
                                 rows);
    std::cout << "\n(the diff-ops% column reproduces the number printed"
                 " above each bar in the paper)\n";
    return 0;
}
