/**
 * @file
 * The conformance-fuzzing campaign driver.
 *
 * Sweeps the Torture workload (seed-deterministic random sharing, see
 * src/apps/torture.hh) across {protocol variant x node count x seed}
 * with the LRC oracle enabled on every run, through the parallel
 * ExperimentEngine. A failing combination never takes the batch down:
 * it is reported as a one-line repro command and recorded in
 * <results>/fuzz_failures.txt (the CI artifact), and the driver exits
 * non-zero.
 *
 * Usage:
 *   fuzz_check                       # run the committed seed corpus
 *   fuzz_check --corpus FILE         # a different corpus file
 *   fuzz_check --seeds N [--start S] # sequential seeds instead
 *   fuzz_check --smoke               # small subset (ctest -L fuzz)
 *   fuzz_check --repro SEED PROTO P  # replay one failing combination
 *
 * Knobs: NCP2_JOBS (worker pool), NCP2_RESULTS_DIR. NCP2_CHECK is
 * implied - a fuzz run without the oracle would only test the apps'
 * own validate(), which the tier-1 suite already does.
 *
 * Adding a failing seed to the corpus: append the seed number to
 * bench/fuzz_corpus.txt with a comment naming the bug it caught.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/gstl_torture.hh"
#include "apps/serve/serve.hh"
#include "apps/torture.hh"
#include "bench/figure_common.hh"

namespace
{

const std::vector<std::string> &
allVariants()
{
    static const std::vector<std::string> v = {"Base", "I",    "I+D",
                                               "I+P+D", "AURC", "AURC+P"};
    return v;
}

/** Fuzz-vary the workload shape from the seed (the op program itself
 *  is further randomized per (seed, proc, round) inside Torture). */
apps::Torture::Params
tortureParams(std::uint64_t seed)
{
    sim::Rng g(seed * 0x9e3779b97f4a7c15ULL + 1);
    apps::Torture::Params p;
    p.seed = seed;
    p.rounds = 6 + static_cast<unsigned>(g.below(8));
    p.data_pages = 2 + static_cast<unsigned>(g.below(5));
    p.counters = 4 + static_cast<unsigned>(g.below(12));
    p.pc_slots = 4 + static_cast<unsigned>(g.below(12));
    p.block_pct = static_cast<unsigned>(g.below(101));
    p.singles_per_chunk = 2 + static_cast<unsigned>(g.below(10));
    p.cadds_per_round = static_cast<unsigned>(g.below(4));
    p.racy_per_round = static_cast<unsigned>(g.below(6));
    p.max_compute = 50 + static_cast<unsigned>(g.below(400));
    return p;
}

harness::Job
makeJob(std::uint64_t seed, const std::string &proto, unsigned procs)
{
    harness::Job j;
    j.label = "torture/s" + std::to_string(seed) + "/" + proto + "/p" +
              std::to_string(procs);
    j.cfg = fig::configFor(proto, procs);
    j.cfg.check = true;
    j.cfg.seed = seed;
    const apps::Torture::Params prm = tortureParams(seed);
    j.workload = [prm]() { return std::make_unique<apps::Torture>(prm); };
    return j;
}

/** Fuzz-vary the gstl-torture shape from the seed (see
 *  src/apps/gstl_torture.hh: containers, not raw accesses). */
apps::GstlTorture::Params
gstlTortureParams(std::uint64_t seed)
{
    sim::Rng g(seed * 0x9e3779b97f4a7c15ULL + 2);
    apps::GstlTorture::Params p;
    p.seed = seed;
    p.rounds = 3 + static_cast<unsigned>(g.below(5));
    p.keys_per_round = 3 + static_cast<unsigned>(g.below(8));
    p.q_items = 3 + static_cast<unsigned>(g.below(8));
    p.counters = 2 + static_cast<unsigned>(g.below(8));
    p.adds_per_round = 1 + static_cast<unsigned>(g.below(5));
    p.stripes = 2 + static_cast<unsigned>(g.below(5));
    return p;
}

harness::Job
makeGstlJob(std::uint64_t seed, const std::string &proto, unsigned procs)
{
    harness::Job j;
    j.label = "gstl/s" + std::to_string(seed) + "/" + proto + "/p" +
              std::to_string(procs);
    j.cfg = fig::configFor(proto, procs);
    j.cfg.check = true;
    j.cfg.seed = seed;
    const apps::GstlTorture::Params prm = gstlTortureParams(seed);
    j.workload = [prm]() {
        return std::make_unique<apps::GstlTorture>(prm);
    };
    return j;
}

/** Fuzz-vary the serving-store shape from the seed: load mix, arrival
 *  process, streams, and both store modes (shared and partitioned). */
apps::ServeApp::Params
serveParams(std::uint64_t seed)
{
    sim::Rng g(seed * 0x9e3779b97f4a7c15ULL + 3);
    apps::ServeApp::Params p;
    p.load.seed = seed;
    p.load.keys_log2 = 3 + static_cast<unsigned>(g.below(5));
    p.load.requests_per_node = 12 + static_cast<unsigned>(g.below(36));
    p.load.read_pct = static_cast<unsigned>(g.below(101));
    p.load.zipf_theta = 0.1 * static_cast<double>(g.below(10));
    p.load.arrival = static_cast<apps::serve::Arrival>(g.below(3));
    p.load.mean_gap_cycles = 200 + g.below(1200);
    p.load.burst_len = 2 + static_cast<unsigned>(g.below(8));
    p.shared = g.below(2) == 0;
    p.streams = 1 + static_cast<unsigned>(g.below(3));
    p.stripes = 2 + static_cast<unsigned>(g.below(6));
    p.doc_words = 2 + static_cast<unsigned>(g.below(7));
    p.service_cycles = 20 + static_cast<unsigned>(g.below(150));
    p.think_cycles = 100 + g.below(700);
    return p;
}

harness::Job
makeServeJob(std::uint64_t seed, const std::string &proto, unsigned procs)
{
    const apps::ServeApp::Params prm = serveParams(seed);
    harness::Job j;
    j.label = "serve/s" + std::to_string(seed) + "/" + proto + "/p" +
              std::to_string(procs) + (prm.shared ? "" : "/part");
    j.cfg = fig::configFor(proto, procs);
    j.cfg.check = true;
    j.cfg.seed = seed;
    j.workload = [prm]() { return std::make_unique<apps::ServeApp>(prm); };
    return j;
}

std::string
reproCommand(std::uint64_t seed, const std::string &proto, unsigned procs,
             const std::string &flavor = "")
{
    return std::string("./build/bench/fuzz_check --repro") + flavor + " " +
           std::to_string(seed) + " '" + proto + "' " +
           std::to_string(procs);
}

std::vector<std::uint64_t>
readCorpus(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        ncp2_fatal("cannot open corpus '%s'", path.c_str());
    std::vector<std::uint64_t> seeds;
    std::string line;
    while (std::getline(is, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::uint64_t s;
        if (ls >> s)
            seeds.push_back(s);
    }
    if (seeds.empty())
        ncp2_fatal("corpus '%s' contains no seeds", path.c_str());
    return seeds;
}

void
usage()
{
    std::cout
        << "fuzz_check: LRC-oracle fuzzing campaign over the Torture "
           "workload\n"
           "  (no args)               run the committed corpus "
           "(bench/fuzz_corpus.txt)\n"
           "  --corpus FILE           use FILE as the seed corpus\n"
           "  --seeds N [--start S]   fuzz N sequential seeds from S "
           "(default 1)\n"
           "  --smoke                 reduced sweep for ctest -L fuzz\n"
           "  --repro SEED PROTO P    replay one combination verbosely\n"
           "  --repro-gstl SEED PROTO P  same for the gstl-torture "
           "workload\n"
           "  --repro-serve SEED PROTO P  same for the serving-store "
           "workload\n"
           "  --nocheck               with --repro: oracle off (does the\n"
           "                          workload's own validate() fire?)\n"
           "  --knobs                 list the NCP2_* environment "
           "knobs\n";
}

int
repro(std::uint64_t seed, const std::string &proto, unsigned procs,
      bool check, const std::string &flavor)
{
    harness::Job j = flavor == "-gstl" ? makeGstlJob(seed, proto, procs)
                     : flavor == "-serve"
                         ? makeServeJob(seed, proto, procs)
                         : makeJob(seed, proto, procs);
    j.cfg.check = check;
    j.quiet = false;
    std::cout << "replaying " << j.label << "\n";
    const auto results =
        harness::ExperimentEngine(1).runAllNoThrow({j});
    if (results[0].error.empty()) {
        std::cout << "PASS " << j.label << " (exec_ticks="
                  << results[0].run.exec_ticks << ")\n";
        return 0;
    }
    std::cout << "FAIL " << j.label << "\n" << results[0].error << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string corpus_path = "bench/fuzz_corpus.txt";
    std::uint64_t gen_seeds = 0;
    std::uint64_t gen_start = 1;
    bool smoke = false;
    bool check = true;
    std::uint64_t repro_seed = 0;
    std::string repro_proto;
    unsigned repro_procs = 0;
    std::string repro_flavor;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                ncp2_fatal("%s expects an argument", what);
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        }
        if (a == "--knobs") {
            harness::knobs::printListing(std::cout);
            return 0;
        }
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--corpus") {
            corpus_path = next("--corpus");
        } else if (a == "--seeds") {
            gen_seeds = std::strtoull(next("--seeds").c_str(), nullptr, 10);
            if (!gen_seeds)
                ncp2_fatal("--seeds expects a positive count");
        } else if (a == "--start") {
            gen_start = std::strtoull(next("--start").c_str(), nullptr, 10);
        } else if (a == "--repro" || a == "--repro-gstl" ||
                   a == "--repro-serve") {
            repro_flavor = a.substr(std::string("--repro").size());
            repro_seed = std::strtoull(next("--repro").c_str(), nullptr, 10);
            repro_proto = next("--repro PROTO");
            repro_procs = static_cast<unsigned>(
                std::strtoul(next("--repro PROCS").c_str(), nullptr, 10));
            if (!repro_procs)
                ncp2_fatal("--repro expects SEED PROTO PROCS");
        } else if (a == "--nocheck") {
            // Replay without the oracle: shows whether the workload's
            // own end-of-run validation also catches the bug.
            check = false;
        } else {
            usage();
            ncp2_fatal("unknown argument '%s'", a.c_str());
        }
    }

    if (repro_procs)
        return repro(repro_seed, repro_proto, repro_procs, check,
                     repro_flavor);

    std::vector<std::uint64_t> seeds;
    if (gen_seeds) {
        for (std::uint64_t s = 0; s < gen_seeds; ++s)
            seeds.push_back(gen_start + s);
    } else {
        seeds = readCorpus(corpus_path);
    }

    std::vector<std::string> variants = allVariants();
    std::vector<unsigned> procs = {4, 8, 16};
    if (smoke) {
        // Enough to smoke every moving part (both protocols, the
        // oracle, the engine's no-throw path) inside a ctest budget.
        if (seeds.size() > 4)
            seeds.resize(4);
        variants = {"Base", "I+P+D", "AURC"};
        procs = {4, 8};
    }

    std::vector<harness::Job> jobs;
    for (const std::uint64_t s : seeds)
        for (const auto &v : variants)
            for (const unsigned p : procs)
                jobs.push_back(makeJob(s, v, p));

    // The 64-proc torture smoke of the scaling machinery: radix-8
    // combining-tree barrier (TreadMarks; AURC keeps its flat barrier
    // but shares the sparse clock paths) + 16-node clustered mesh, all
    // under the oracle. Appended after the main sweep so the
    // seed x variant x procs result indexing above stays positional.
    std::vector<std::string> scaled_variants;
    if (smoke)
        scaled_variants = {"Base", "AURC"};
    for (const auto &v : scaled_variants) {
        harness::Job j = makeJob(seeds[0], v, 64);
        j.label += "/scaled";
        j.cfg.barrier_radix = 8;
        j.cfg.mesh_cluster = 16;
        jobs.push_back(std::move(j));
    }

    // The gstl-torture smoke: the distributed-STL containers (striped
    // hash map, mailbox rings, lock-backed atomics) pass the oracle
    // through the same no-throw engine path. Appended after the scaled
    // jobs so the indexing stays positional.
    std::vector<std::string> gstl_variants;
    if (smoke)
        gstl_variants = {"Base", "I+P+D", "AURC"};
    for (const auto &v : gstl_variants)
        jobs.push_back(makeGstlJob(seeds[0], v, 8));

    // The serving-store phase: the request/response store under the
    // oracle, randomizing the mix, the arrival process and both store
    // modes (shared and partitioned; see serveParams). Smoke keeps one
    // seed; the full campaign fuzzes every corpus seed. Appended after
    // the gstl jobs so the indexing stays positional.
    const std::vector<std::string> serve_variants =
        smoke ? std::vector<std::string>{"Base", "I+P+D", "AURC"}
              : allVariants();
    const std::vector<std::uint64_t> serve_seeds =
        smoke ? std::vector<std::uint64_t>{seeds[0]} : seeds;
    for (const std::uint64_t s : serve_seeds)
        for (const auto &v : serve_variants)
            jobs.push_back(makeServeJob(s, v, 8));

    const harness::ExperimentEngine engine;
    std::cerr << "[fuzz_check: " << seeds.size() << " seeds x "
              << variants.size() << " variants x " << procs.size()
              << " node counts = " << jobs.size() << " runs on "
              << engine.workers() << " workers]\n";
    const auto results = engine.runAllNoThrow(jobs);

    std::vector<std::string> failures;
    std::size_t ji = 0;
    for (const std::uint64_t s : seeds) {
        for (const auto &v : variants) {
            for (const unsigned p : procs) {
                const harness::JobResult &r = results[ji++];
                if (r.error.empty())
                    continue;
                const std::string first_line =
                    r.error.substr(0, r.error.find('\n'));
                std::cout << "FAIL " << r.label << ": " << first_line
                          << "\n  repro: " << reproCommand(s, v, p) << "\n";
                failures.push_back(reproCommand(s, v, p) + "  # " +
                                   first_line);
            }
        }
    }
    for (const auto &v : scaled_variants) {
        const harness::JobResult &r = results[ji++];
        if (r.error.empty())
            continue;
        const std::string first_line = r.error.substr(0, r.error.find('\n'));
        const std::string repro = "NCP2_BARRIER_RADIX=8 NCP2_MESH_CLUSTER=16 " +
                                  reproCommand(seeds[0], v, 64);
        std::cout << "FAIL " << r.label << ": " << first_line
                  << "\n  repro: " << repro << "\n";
        failures.push_back(repro + "  # " + first_line);
    }
    for (const auto &v : gstl_variants) {
        const harness::JobResult &r = results[ji++];
        if (r.error.empty())
            continue;
        const std::string first_line = r.error.substr(0, r.error.find('\n'));
        const std::string repro = reproCommand(seeds[0], v, 8, "-gstl");
        std::cout << "FAIL " << r.label << ": " << first_line
                  << "\n  repro: " << repro << "\n";
        failures.push_back(repro + "  # " + first_line);
    }
    for (const std::uint64_t s : serve_seeds) {
        for (const auto &v : serve_variants) {
            const harness::JobResult &r = results[ji++];
            if (r.error.empty())
                continue;
            const std::string first_line =
                r.error.substr(0, r.error.find('\n'));
            const std::string repro = reproCommand(s, v, 8, "-serve");
            std::cout << "FAIL " << r.label << ": " << first_line
                      << "\n  repro: " << repro << "\n";
            failures.push_back(repro + "  # " + first_line);
        }
    }

    if (!failures.empty()) {
        const std::string dir = harness::resultsDir();
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        const std::string path = dir + "/fuzz_failures.txt";
        std::ofstream os(path);
        for (const auto &f : failures)
            os << f << "\n";
        std::cout << failures.size() << "/" << jobs.size()
                  << " runs FAILED; repro commands in " << path << "\n";
        return 1;
    }
    std::cout << "all " << jobs.size()
              << " runs passed the LRC oracle and self-validation\n";
    return 0;
}
