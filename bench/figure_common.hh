/**
 * @file
 * Shared plumbing for the figure-regeneration benches: configuration
 * construction per protocol label, scale/processor-count overrides via
 * environment variables, and run helpers.
 *
 * Environment knobs:
 *   NCP2_SCALE = tiny | small | standard   (default: standard)
 *   NCP2_PROCS = <n>                       (default: 16)
 */

#ifndef NCP2_BENCH_FIGURE_COMMON_HH
#define NCP2_BENCH_FIGURE_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/apps.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"

namespace fig
{

inline apps::Scale
scaleFromEnv()
{
    const char *s = std::getenv("NCP2_SCALE");
    if (!s)
        return apps::Scale::standard;
    if (!std::strcmp(s, "tiny"))
        return apps::Scale::tiny;
    if (!std::strcmp(s, "small"))
        return apps::Scale::small;
    return apps::Scale::standard;
}

inline unsigned
procsFromEnv()
{
    const char *s = std::getenv("NCP2_PROCS");
    return s ? static_cast<unsigned>(std::atoi(s)) : 16u;
}

/** Build a SysConfig for a protocol label: Base, I, I+D, P, I+P,
 *  I+P+D, AURC, AURC+P. */
inline dsm::SysConfig
configFor(const std::string &proto, unsigned procs)
{
    dsm::SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 64ull << 20;
    if (proto.rfind("AURC", 0) == 0) {
        cfg.protocol = dsm::ProtocolKind::aurc;
        cfg.mode.prefetch = proto == "AURC+P";
    } else {
        cfg.mode.offload = proto.find('I') != std::string::npos;
        cfg.mode.hw_diffs = proto.find('D') != std::string::npos;
        cfg.mode.prefetch = proto.find('P') != std::string::npos;
    }
    return cfg;
}

/**
 * Run one (app, protocol, procs) cell and return the result. When
 * @p cfg_override is given it must have been built with configFor() for
 * the same protocol label - the label is only used to construct the
 * default configuration.
 */
inline dsm::RunResult
run(const std::string &app, const std::string &proto, unsigned procs,
    dsm::SysConfig *cfg_override = nullptr)
{
    sim::setQuiet(true);
    auto w = apps::make(app, scaleFromEnv());
    dsm::SysConfig cfg =
        cfg_override ? *cfg_override : configFor(proto, procs);
    ncp2_assert(!cfg_override ||
                    cfg.protocol == configFor(proto, procs).protocol,
                "cfg_override protocol does not match label '%s'",
                proto.c_str());
    return harness::runOnce(cfg, *w);
}

inline void
header(const char *what)
{
    std::cout << "=====================================================\n"
              << what << "\n"
              << "=====================================================\n";
    dsm::SysConfig def = configFor("Base", procsFromEnv());
    harness::printConfig(std::cout, def);
    std::cout << '\n';
}

} // namespace fig

#endif // NCP2_BENCH_FIGURE_COMMON_HH
