/**
 * @file
 * Shared plumbing for the figure-regeneration benches: configuration
 * construction per protocol label, scale/processor-count overrides via
 * environment variables, and the jobs-based run helpers.
 *
 * Every bench builds a list of harness::Jobs, runs them through the
 * parallel ExperimentEngine (results come back in submission order and
 * are identical to a serial run, whatever the worker count), prints the
 * same tables as ever, and records the batch to results/<bench>.json.
 *
 * Environment knobs are owned by harness::knobs (run any bench with
 * --knobs for the registry listing): NCP2_SCALE, NCP2_PROCS, NCP2_JOBS,
 * NCP2_RESULTS_DIR, NCP2_FAST_PATH, NCP2_TRACE, NCP2_CHECK, NCP2_PDES,
 * NCP2_SPARSE_VT, NCP2_BARRIER_RADIX, NCP2_MESH_CLUSTER.
 */

#ifndef NCP2_BENCH_FIGURE_COMMON_HH
#define NCP2_BENCH_FIGURE_COMMON_HH

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/apps.hh"
#include "harness/experiment.hh"
#include "harness/json_out.hh"
#include "harness/knobs.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace fig
{

inline apps::Scale
scaleFromEnv()
{
    const std::string s = harness::knobs::scale();
    if (s == "tiny")
        return apps::Scale::tiny;
    if (s == "small")
        return apps::Scale::small;
    return apps::Scale::standard;
}

inline unsigned
procsFromEnv()
{
    return harness::knobs::procs();
}

/** Build a SysConfig for a protocol label: Base, I, I+D, P, I+P,
 *  I+P+D, AURC, AURC+P. */
inline dsm::SysConfig
configFor(const std::string &proto, unsigned procs)
{
    dsm::SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 64ull << 20;
    // Escape hatch for A/B-ing the access-descriptor fast path: any
    // figure bench re-run with NCP2_FAST_PATH=0 must print identical
    // tables (the simulated results are bit-identical by contract).
    cfg.fast_path = harness::knobs::fastPath();
    // Tracing likewise must not perturb results, only record them.
    cfg.trace_capacity = harness::knobs::traceCapacity();
    // The conformance oracle validates without perturbing either.
    cfg.check = harness::knobs::checkOracle();
    // In-run parallel execution (conservative-window PDES); 1 = serial.
    cfg.pdes_workers = harness::knobs::pdesWorkers();
    // Scaling machinery (sparse clocks, tree barrier, clustered mesh):
    // the defaults keep the reference flat barrier and flat mesh;
    // sparse clocks are on by default and bit-identical by contract.
    cfg.sparse_clocks = harness::knobs::sparseClocks();
    cfg.barrier_radix = harness::knobs::barrierRadix();
    cfg.mesh_cluster = harness::knobs::meshCluster();
    if (proto.rfind("AURC", 0) == 0) {
        cfg.protocol = dsm::ProtocolKind::aurc;
        cfg.mode.prefetch = proto == "AURC+P";
    } else {
        cfg.mode.offload = proto.find('I') != std::string::npos;
        cfg.mode.hw_diffs = proto.find('D') != std::string::npos;
        cfg.mode.prefetch = proto.find('P') != std::string::npos;
    }
    return cfg;
}

/**
 * Build one (app, protocol, procs) job. When @p cfg_override is given
 * it must have been built with configFor() for the same protocol label
 * - the label is only used to construct the default configuration.
 */
inline harness::Job
job(const std::string &label, const std::string &app,
    const std::string &proto, unsigned procs,
    const dsm::SysConfig *cfg_override = nullptr)
{
    harness::Job j;
    j.label = label;
    j.cfg = cfg_override ? *cfg_override : configFor(proto, procs);
    ncp2_assert(!cfg_override ||
                    j.cfg.protocol == configFor(proto, procs).protocol,
                "cfg_override protocol does not match label '%s'",
                proto.c_str());
    const apps::Scale scale = scaleFromEnv();
    j.workload = [app, scale]() { return apps::make(app, scale); };
    return j;
}

/** Shorthand when the label is just the protocol label. */
inline harness::Job
job(const std::string &app, const std::string &proto, unsigned procs,
    const dsm::SysConfig *cfg_override = nullptr)
{
    return job(app + "/" + proto, app, proto, procs, cfg_override);
}

/**
 * Run a bench's whole batch on the engine and record it to
 * results/<bench>.json. Results are in submission order.
 */
inline std::vector<harness::JobResult>
runAll(const char *bench, const std::vector<harness::Job> &jobs)
{
    const harness::ExperimentEngine engine;
    std::vector<harness::JobResult> results = engine.runAll(jobs);
    const std::string path =
        harness::writeResultsJson(bench, results, engine.workers());
    std::cerr << "[" << bench << ": " << jobs.size() << " simulations on "
              << engine.workers() << " workers -> " << path << "]\n";
    if (harness::knobs::traceCapacity()) {
        const std::string dir = harness::resultsDir() + "/trace";
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec)
            ncp2_fatal("cannot create trace dir '%s': %s", dir.c_str(),
                       ec.message().c_str());
        for (std::size_t i = 0; i < results.size(); ++i) {
            const harness::JobResult &jr = results[i];
            const std::string tpath = dir + "/" + bench + "_" +
                                      std::to_string(i) + ".json";
            std::ofstream os(tpath);
            if (!os)
                ncp2_fatal("cannot open '%s' for writing", tpath.c_str());
            sim::writeChromeTrace(os, jr.run.trace, jr.run.trace_dropped,
                                  jr.cfg.num_procs,
                                  {{"bench", bench}, {"label", jr.label}});
            if (!os.flush())
                ncp2_fatal("write to '%s' failed", tpath.c_str());
        }
        std::cerr << "[" << bench << ": " << results.size()
                  << " traces -> " << dir << "]\n";
    }
    return results;
}

inline void
header(const char *what)
{
    std::cout << "=====================================================\n"
              << what << "\n"
              << "=====================================================\n";
    dsm::SysConfig def = configFor("Base", procsFromEnv());
    harness::printConfig(std::cout, def);
    std::cout << '\n';
}

/**
 * CLI-aware header: handles --knobs (print the knob registry and exit)
 * before printing the banner. Benches call this from main(argc, argv);
 * the default stdout with no arguments is unchanged.
 * @return true if the bench should exit immediately (flag handled).
 */
inline bool
header(int argc, char **argv, const char *what)
{
    if (harness::knobs::handleCli(argc, argv, std::cout))
        return true;
    header(what);
    return false;
}

} // namespace fig

#endif // NCP2_BENCH_FIGURE_COMMON_HH
