/**
 * @file
 * Shared plumbing for the figure-regeneration benches: configuration
 * construction per protocol label, scale/processor-count overrides via
 * environment variables, and the jobs-based run helpers.
 *
 * Every bench builds a list of harness::Jobs, runs them through the
 * parallel ExperimentEngine (results come back in submission order and
 * are identical to a serial run, whatever the worker count), prints the
 * same tables as ever, and records the batch to results/<bench>.json.
 *
 * Environment knobs:
 *   NCP2_SCALE = tiny | small | standard   (default: standard)
 *   NCP2_PROCS = <n in [1,64]>             (default: 16)
 *   NCP2_JOBS  = <worker threads>          (default: hardware concurrency)
 *   NCP2_RESULTS_DIR = <dir>               (default: results)
 *   NCP2_FAST_PATH = 0                     (force the descriptor fast
 *                                           path off; results must not
 *                                           change, only host time)
 */

#ifndef NCP2_BENCH_FIGURE_COMMON_HH
#define NCP2_BENCH_FIGURE_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/apps.hh"
#include "harness/experiment.hh"
#include "harness/json_out.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"

namespace fig
{

inline apps::Scale
scaleFromEnv()
{
    const char *s = std::getenv("NCP2_SCALE");
    if (!s)
        return apps::Scale::standard;
    if (!std::strcmp(s, "tiny"))
        return apps::Scale::tiny;
    if (!std::strcmp(s, "small"))
        return apps::Scale::small;
    return apps::Scale::standard;
}

inline unsigned
procsFromEnv()
{
    const char *s = std::getenv("NCP2_PROCS");
    if (!s || !*s)
        return 16u;
    char *end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0)
        ncp2_fatal("NCP2_PROCS='%s' is not a positive processor count", s);
    if (v > 64) {
        ncp2_warn("NCP2_PROCS=%ld exceeds the supported maximum; "
                  "clamping to 64", v);
        return 64u;
    }
    return static_cast<unsigned>(v);
}

/** Build a SysConfig for a protocol label: Base, I, I+D, P, I+P,
 *  I+P+D, AURC, AURC+P. */
inline dsm::SysConfig
configFor(const std::string &proto, unsigned procs)
{
    dsm::SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 64ull << 20;
    // Escape hatch for A/B-ing the access-descriptor fast path: any
    // figure bench re-run with NCP2_FAST_PATH=0 must print identical
    // tables (the simulated results are bit-identical by contract).
    if (const char *fp = std::getenv("NCP2_FAST_PATH"))
        cfg.fast_path = std::strcmp(fp, "0") != 0;
    if (proto.rfind("AURC", 0) == 0) {
        cfg.protocol = dsm::ProtocolKind::aurc;
        cfg.mode.prefetch = proto == "AURC+P";
    } else {
        cfg.mode.offload = proto.find('I') != std::string::npos;
        cfg.mode.hw_diffs = proto.find('D') != std::string::npos;
        cfg.mode.prefetch = proto.find('P') != std::string::npos;
    }
    return cfg;
}

/**
 * Build one (app, protocol, procs) job. When @p cfg_override is given
 * it must have been built with configFor() for the same protocol label
 * - the label is only used to construct the default configuration.
 */
inline harness::Job
job(const std::string &label, const std::string &app,
    const std::string &proto, unsigned procs,
    const dsm::SysConfig *cfg_override = nullptr)
{
    harness::Job j;
    j.label = label;
    j.cfg = cfg_override ? *cfg_override : configFor(proto, procs);
    ncp2_assert(!cfg_override ||
                    j.cfg.protocol == configFor(proto, procs).protocol,
                "cfg_override protocol does not match label '%s'",
                proto.c_str());
    const apps::Scale scale = scaleFromEnv();
    j.workload = [app, scale]() { return apps::make(app, scale); };
    return j;
}

/** Shorthand when the label is just the protocol label. */
inline harness::Job
job(const std::string &app, const std::string &proto, unsigned procs,
    const dsm::SysConfig *cfg_override = nullptr)
{
    return job(app + "/" + proto, app, proto, procs, cfg_override);
}

/**
 * Run a bench's whole batch on the engine and record it to
 * results/<bench>.json. Results are in submission order.
 */
inline std::vector<harness::JobResult>
runAll(const char *bench, const std::vector<harness::Job> &jobs)
{
    const harness::ExperimentEngine engine;
    std::vector<harness::JobResult> results = engine.runAll(jobs);
    const std::string path =
        harness::writeResultsJson(bench, results, engine.workers());
    std::cerr << "[" << bench << ": " << jobs.size() << " simulations on "
              << engine.workers() << " workers -> " << path << "]\n";
    return results;
}

inline void
header(const char *what)
{
    std::cout << "=====================================================\n"
              << what << "\n"
              << "=====================================================\n";
    dsm::SysConfig def = configFor("Base", procsFromEnv());
    harness::printConfig(std::cout, def);
    std::cout << '\n';
}

} // namespace fig

#endif // NCP2_BENCH_FIGURE_COMMON_HH
