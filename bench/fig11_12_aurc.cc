/**
 * @file
 * Figures 11-12: best overlapping TreadMarks (I+D) vs AURC vs AURC+P,
 * normalized to the overlapping TreadMarks. The paper's shape: TM-I+D
 * at least matches AURC for 5 of 6 applications (AURC wins Water by
 * ~13%), and prefetching *always* degrades AURC - catastrophically for
 * some applications (the off-scale bars).
 */

#include "bench/figure_common.hh"

int
main()
{
    fig::header("Figures 11-12: overlapping TreadMarks (I+D) vs AURC");

    const char *protos[] = {"I+D", "AURC", "AURC+P"};
    const unsigned procs = fig::procsFromEnv();

    for (const auto &app : apps::names()) {
        std::vector<harness::BreakdownRow> rows;
        harness::BreakdownRow base;
        for (const char *pr : protos) {
            const dsm::RunResult r = fig::run(app, pr, procs);
            harness::BreakdownRow row = harness::BreakdownRow::from(
                std::string(pr) == "I+D" ? "TM-I+D" : pr, r);
            if (rows.empty())
                base = row;
            rows.push_back(row.normalizedTo(base));
            std::cout.flush();
        }
        harness::printBreakdownTable(std::cout,
                                     app + " (percent of TM-I+D)", rows);
        std::cout << '\n';
    }
    std::cout << "(paper: AURC = 87..186% of TM-I+D across apps; AURC+P"
                 " always worse than AURC, often off-scale)\n";
    return 0;
}
