/**
 * @file
 * Figures 11-12: best overlapping TreadMarks (I+D) vs AURC vs AURC+P,
 * normalized to the overlapping TreadMarks. The paper's shape: TM-I+D
 * at least matches AURC for 5 of 6 applications (AURC wins Water by
 * ~13%), and prefetching *always* degrades AURC - catastrophically for
 * some applications (the off-scale bars).
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figures 11-12: overlapping TreadMarks (I+D) vs AURC"))
        return 0;

    const char *protos[] = {"I+D", "AURC", "AURC+P"};
    const std::size_t nprotos = std::size(protos);
    const unsigned procs = fig::procsFromEnv();

    std::vector<harness::Job> jobs;
    for (const auto &app : apps::names()) {
        for (const char *pr : protos)
            jobs.push_back(fig::job(app, pr, procs));
    }
    const auto results = fig::runAll("fig11_12_aurc", jobs);

    std::size_t i = 0;
    for (const auto &app : apps::names()) {
        std::vector<harness::BreakdownRow> rows;
        harness::BreakdownRow base;
        for (std::size_t pi = 0; pi < nprotos; ++pi, ++i) {
            const char *pr = protos[pi];
            harness::BreakdownRow row = harness::BreakdownRow::from(
                std::string(pr) == "I+D" ? "TM-I+D" : pr, results[i].run);
            if (rows.empty())
                base = row;
            rows.push_back(row.normalizedTo(base));
        }
        harness::printBreakdownTable(std::cout,
                                     app + " (percent of TM-I+D)", rows);
        std::cout << '\n';
    }
    std::cout << "(paper: AURC = 87..186% of TM-I+D across apps; AURC+P"
                 " always worse than AURC, often off-scale)\n";
    return 0;
}
