/**
 * @file
 * Ablation: diff-prefetching strategies beyond the paper.
 *
 * Section 5.1 closes with "a less aggressive or adaptive prefetching
 * strategy might reduce overheads, but it is not clear what this
 * strategy should be", deferring to the companion report (Bianchini,
 * Pinto & Amorim, ES-401/96). This bench runs that study on our
 * substrate: the paper's always-prefetch heuristic vs an adaptive
 * (per-page usefulness history) and a capped (bounded per-sync burst)
 * variant, under I+P and I+P+D, for the two applications prefetching
 * helps (Em3d, Ocean) and the one it destroys (Radix).
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Ablation: prefetching strategies (extension)"))
        return 0;

    struct Variant
    {
        const char *label;
        dsm::PrefetchStrategy strategy;
    };
    const Variant variants[] = {
        {"always (paper)", dsm::PrefetchStrategy::always},
        {"adaptive", dsm::PrefetchStrategy::adaptive},
        {"capped(4)", dsm::PrefetchStrategy::capped},
    };
    const unsigned procs = fig::procsFromEnv();
    const std::vector<std::string> app_list = {"Radix", "Water", "Em3d",
                                               "Ocean"};

    // Per app: the I+D (no-prefetch) baseline, the three prefetching
    // strategies under I+P+D, and the Lazy Hybrid alternative.
    std::vector<harness::Job> jobs;
    for (const std::string &app : app_list) {
        jobs.push_back(fig::job(app + "/I+D", app, "I+D", procs));
        for (const Variant &v : variants) {
            dsm::SysConfig cfg = fig::configFor("I+P+D", procs);
            cfg.mode.prefetch_strategy = v.strategy;
            jobs.push_back(fig::job(app + "/I+P+D/" + v.label, app,
                                    "I+P+D", procs, &cfg));
        }
        dsm::SysConfig lh = fig::configFor("I+D", procs);
        lh.mode.lazy_hybrid = true;
        jobs.push_back(fig::job(app + "/I+D/lazy-hybrid", app, "I+D",
                                procs, &lh));
    }
    const auto results = fig::runAll("ablation_prefetch", jobs);

    std::size_t i = 0;
    for (const std::string &app : app_list) {
        const double no_pf =
            static_cast<double>(results[i++].run.exec_ticks);

        sim::Table t({"strategy", "vs I+D", "prefetches",
                      "useless%"});
        for (const Variant &v : variants) {
            const dsm::RunResult &r = results[i++].run;
            const double issued = r.stats.value("tmk.prefetches");
            const double useless = r.stats.value("tmk.prefetches_useless");
            t.addRow({v.label,
                      sim::Table::fmt(
                          100.0 * static_cast<double>(r.exec_ticks) /
                              no_pf, 1) + "%",
                      sim::Table::fmt(issued, 0),
                      sim::Table::fmt(
                          issued > 0 ? 100.0 * useless / issued : 0.0,
                          0)});
        }
        // Section 6's alternative: Lazy Hybrid updates-on-grant
        // instead of prefetching (I+D plus piggybacked diffs).
        {
            const dsm::RunResult &r = results[i++].run;
            const double lh = r.stats.value("tmk.lh_updates");
            t.addRow({"lazy-hybrid",
                      sim::Table::fmt(
                          100.0 * static_cast<double>(r.exec_ticks) /
                              no_pf, 1) + "%",
                      sim::Table::fmt(lh, 0) + " grants", "-"});
        }
        std::cout << "== " << app << " ==\n";
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "(finding: per-page usefulness history (adaptive) is"
                 " nearly inert - useless prefetches are not"
                 " page-persistent, and the cached-and-referenced filter"
                 " already suppresses repeat offenders - while capping"
                 " the per-sync burst both recovers Radix toward the"
                 " no-prefetch baseline and improves Ocean: the"
                 " clustering of requests, not their targets, is what"
                 " hurts, consistent with the paper's own diagnosis of"
                 " prefetch-induced network congestion)\n";
    return 0;
}
