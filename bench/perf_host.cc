/**
 * @file
 * Host-time regression harness for the simulator's hot substrates.
 *
 * Unlike micro_substrates (google-benchmark, interactive tuning), this
 * binary exists to be run in CI and to leave a machine-comparable
 * record: each kernel is timed twice, once through the pre-optimization
 * implementation kept in-tree (LegacyEventQueue, diffFromTwinReference
 * with per-call allocation) and once through the production path
 * (calendar queue, 64-bit pooled diffs). The *ratio* of the two is
 * host-independent to first order, so a regression gate can compare
 * ratios across machines where absolute nanoseconds would be
 * meaningless.
 *
 * Output: one JSON object appended per run (JSON Lines) to
 * results/bench_host.json (directory overridable with
 * NCP2_RESULTS_DIR), schema version 1:
 *
 *   { "bench": "perf_host", "schema_version": 1, "quick": false,
 *     "kernels": [
 *       { "name": "event_queue", "before_ns": B, "after_ns": A,
 *         "speedup": B/A, "items": N }, ... ],
 *     "sim_small_ms": M }
 *
 * before_ns/after_ns are the best-of-trials wall time for one kernel
 * repetition; sim_small_ms is an absolute end-to-end figure recorded
 * for trajectory tracking only (no "before" implementation survives
 * for the full simulator, and absolute time is machine-dependent, so
 * it is not gated).
 *
 * Usage: perf_host [--quick] [--no-append]
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dsm/diff_pool.hh"
#include "dsm/page.hh"
#include "dsm/system.hh"
#include "harness/json_out.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/logging.hh"
#include "tests/workload_helpers.hh"
#include "tmk/treadmarks.hh"

namespace
{

using Clock = std::chrono::steady_clock;

struct KernelResult
{
    std::string name;
    double before_ns = 0;
    double after_ns = 0;
    std::uint64_t items = 0;

    double speedup() const { return after_ns > 0 ? before_ns / after_ns : 0; }
};

/**
 * Best-of-@p trials wall time of one @p fn() invocation, in ns. Each
 * trial runs @p inner back-to-back invocations and divides, which
 * amortizes clock resolution for sub-microsecond kernels; best-of (not
 * mean) rejects scheduler noise, which only ever adds time.
 */
template <typename Fn>
double
timeKernel(unsigned trials, unsigned inner, Fn &&fn)
{
    double best = 1e300;
    for (unsigned t = 0; t < trials; ++t) {
        const auto start = Clock::now();
        for (unsigned i = 0; i < inner; ++i)
            fn();
        const auto stop = Clock::now();
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                     start)
                    .count()) /
            inner;
        if (ns < best)
            best = ns;
    }
    return best;
}

/** Schedule-and-drain 1024 events, mixed near/far delays. */
template <typename Queue>
std::uint64_t
eventQueueKernel()
{
    Queue eq;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1024; ++i) {
        // Mostly near-future (ring tier), every 16th far enough out to
        // exercise the calendar queue's overflow heap.
        const auto delay = (i % 16 == 0) ? 8192 + i : i % 97;
        eq.scheduleIn(static_cast<sim::Cycles>(delay), [&sink]() { ++sink; });
    }
    eq.run();
    return sink;
}

KernelResult
benchEventQueue(unsigned trials, unsigned inner)
{
    KernelResult r;
    r.name = "event_queue";
    r.items = 1024;
    volatile std::uint64_t sink = 0;
    r.before_ns = timeKernel(trials, inner, [&]() {
        sink += eventQueueKernel<sim::LegacyEventQueue>();
    });
    r.after_ns = timeKernel(
        trials, inner, [&]() { sink += eventQueueKernel<sim::EventQueue>(); });
    return r;
}

/** A 4 KiB page with @p dirty words modified at a uniform stride. */
struct DiffFixture
{
    dsm::PageStore store{4096, 1 << 20, 4};
    dsm::NodePage *pg = nullptr;

    explicit DiffFixture(unsigned dirty, bool bits)
    {
        pg = &store.materialize(0);
        if (bits)
            store.armWriteBits(*pg);
        else
            store.makeTwin(*pg);
        auto *w = reinterpret_cast<std::uint32_t *>(pg->data.get());
        const unsigned stride = 1024 / (dirty ? dirty : 1);
        for (unsigned i = 0; i < dirty; ++i) {
            w[i * stride] = i + 1;
            if (bits)
                dsm::PageStore::snoopWrite(*pg, i * stride);
        }
    }
};

KernelResult
benchDiffTwin(unsigned trials, unsigned inner, unsigned dirty)
{
    KernelResult r;
    r.name = "diff_twin_" + std::to_string(dirty);
    r.items = dirty;
    DiffFixture fx(dirty, /*bits=*/false);
    volatile unsigned sink = 0;
    // Before: scalar comparison, fresh vectors every call (the original
    // protocol-side shape).
    r.before_ns = timeKernel(trials, inner, [&]() {
        dsm::Diff d;
        fx.store.diffFromTwinReference(0, *fx.pg, d);
        sink += d.words();
    });
    // After: 64-bit comparison into a pooled buffer.
    r.after_ns = timeKernel(trials, inner, [&]() {
        dsm::PooledDiff d;
        fx.store.diffFromTwin(0, *fx.pg, *d);
        sink += d->words();
    });
    return r;
}

KernelResult
benchDiffBits(unsigned trials, unsigned inner, unsigned dirty)
{
    KernelResult r;
    r.name = "diff_bits_" + std::to_string(dirty);
    r.items = dirty;
    DiffFixture fx(dirty, /*bits=*/true);
    volatile unsigned sink = 0;
    // Before: fresh vectors every call, grown by push_back.
    r.before_ns = timeKernel(trials, inner, [&]() {
        dsm::Diff d;
        d.page = 0;
        const auto *cur =
            reinterpret_cast<const std::uint32_t *>(fx.pg->data.get());
        for (std::size_t blk = 0; blk < fx.pg->write_bits.size(); ++blk) {
            std::uint64_t bits = fx.pg->write_bits[blk];
            while (bits) {
                const unsigned bit =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                const unsigned w = static_cast<unsigned>(blk * 64 + bit);
                d.idx.push_back(static_cast<std::uint16_t>(w));
                d.val.push_back(cur[w]);
            }
        }
        sink += d.words();
    });
    // After: popcount-reserved gather into a pooled buffer.
    r.after_ns = timeKernel(trials, inner, [&]() {
        dsm::PooledDiff d;
        fx.store.diffFromBits(0, *fx.pg, *d);
        sink += d->words();
    });
    return r;
}

/** Absolute end-to-end time of a small 8-proc stencil simulation. */
double
benchSimSmallMs(unsigned trials)
{
    sim::setQuiet(true);
    const double ns = timeKernel(trials, 1, []() {
        testutil::StencilWorkload w(1024, 3);
        dsm::SysConfig cfg;
        cfg.num_procs = 8;
        cfg.heap_bytes = 4u << 20;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        const dsm::RunResult r = sys.run(w);
        if (r.exec_ticks == 0)
            std::abort();
    });
    return ns / 1e6;
}

void
appendJson(const std::vector<KernelResult> &kernels, double sim_small_ms,
           bool quick)
{
    namespace fs = std::filesystem;
    const fs::path dir = harness::resultsDir();
    fs::create_directories(dir);
    const fs::path path = dir / "bench_host.json";
    std::ofstream os(path, std::ios::app);
    ncp2_assert(os.good(), "cannot open bench_host.json for append");
    os << "{\"bench\":\"perf_host\",\"schema_version\":1,\"quick\":"
       << (quick ? "true" : "false") << ",\"kernels\":[";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelResult &k = kernels[i];
        os << (i ? "," : "") << "{\"name\":\"" << k.name
           << "\",\"before_ns\":" << k.before_ns
           << ",\"after_ns\":" << k.after_ns << ",\"speedup\":" << k.speedup()
           << ",\"items\":" << k.items << "}";
    }
    os << "],\"sim_small_ms\":" << sim_small_ms << "}\n";
    std::cout << "appended " << path.string() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool append = true;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else if (!std::strcmp(argv[i], "--no-append"))
            append = false;
        else {
            std::cerr << "usage: perf_host [--quick] [--no-append]\n";
            return 2;
        }
    }

    // Quick mode shrinks the per-trial inner loop but keeps the full
    // best-of-15 trial count: the baseline is recorded with --quick and
    // compared against --quick CI runs, so both sides need the same
    // noise rejection (best-of-N is what filters scheduler jitter on
    // shared runners; inner only amortizes timer overhead).
    const unsigned trials = 15;
    const unsigned inner = quick ? 200 : 1000;
    const unsigned eq_inner = quick ? 20 : 100;

    std::vector<KernelResult> kernels;
    kernels.push_back(benchEventQueue(trials, eq_inner));
    kernels.push_back(benchDiffTwin(trials, inner, 16));
    kernels.push_back(benchDiffTwin(trials, inner, 128));
    kernels.push_back(benchDiffBits(trials, inner, 16));
    kernels.push_back(benchDiffBits(trials, inner, 128));
    const double sim_small_ms = benchSimSmallMs(quick ? 3 : 10);

    std::cout << "kernel            before_ns   after_ns  speedup\n";
    for (const KernelResult &k : kernels) {
        std::printf("%-16s %10.1f %10.1f %8.2fx\n", k.name.c_str(),
                    k.before_ns, k.after_ns, k.speedup());
    }
    std::printf("sim_small        %10.2f ms\n", sim_small_ms);

    if (append)
        appendJson(kernels, sim_small_ms, quick);
    return 0;
}
