/**
 * @file
 * Host-time regression harness for the simulator's hot substrates.
 *
 * Unlike micro_substrates (google-benchmark, interactive tuning), this
 * binary exists to be run in CI and to leave a machine-comparable
 * record: each kernel is timed twice, once through the pre-optimization
 * implementation kept in-tree (LegacyEventQueue, diffFromTwinReference
 * with per-call allocation, System::access with the descriptor fast
 * path forced off) and once through the production path (calendar
 * queue, 64-bit pooled diffs, descriptor-cache hits / putBlock). The
 * *ratio* of the two is host-independent to first order, so a
 * regression gate can compare ratios across machines where absolute
 * nanoseconds would be meaningless.
 *
 * Output: one JSON object appended per run (JSON Lines) to
 * results/bench_host.json (directory overridable with
 * NCP2_RESULTS_DIR), schema version 1:
 *
 *   { "bench": "perf_host", "schema_version": 1, "quick": false,
 *     "kernels": [
 *       { "name": "event_queue", "before_ns": B, "after_ns": A,
 *         "speedup": B/A, "items": N }, ... ],
 *     "sim_small_ms": M }
 *
 * before_ns/after_ns are the best-of-trials wall time for one kernel
 * repetition; sim_small_ms is an absolute end-to-end figure recorded
 * for trajectory tracking only (no "before" implementation survives
 * for the full simulator, and absolute time is machine-dependent, so
 * it is not gated).
 *
 * Usage: perf_host [--quick] [--no-append]
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/serve/serve.hh"
#include "dsm/diff_pool.hh"
#include "dsm/vclock.hh"
#include "dsm/page.hh"
#include "dsm/proc.hh"
#include "dsm/system.hh"
#include "dsm/workload.hh"
#include "harness/json_out.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/logging.hh"
#include "tests/workload_helpers.hh"
#include "tmk/treadmarks.hh"

namespace
{

using Clock = std::chrono::steady_clock;

struct KernelResult
{
    std::string name;
    double before_ns = 0;
    double after_ns = 0;
    std::uint64_t items = 0;

    double speedup() const { return after_ns > 0 ? before_ns / after_ns : 0; }
};

/**
 * Best-of-@p trials wall time of one @p fn() invocation, in ns. Each
 * trial runs @p inner back-to-back invocations and divides, which
 * amortizes clock resolution for sub-microsecond kernels; best-of (not
 * mean) rejects scheduler noise, which only ever adds time.
 */
template <typename Fn>
double
timeKernel(unsigned trials, unsigned inner, Fn &&fn)
{
    double best = 1e300;
    for (unsigned t = 0; t < trials; ++t) {
        const auto start = Clock::now();
        for (unsigned i = 0; i < inner; ++i)
            fn();
        const auto stop = Clock::now();
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                     start)
                    .count()) /
            inner;
        if (ns < best)
            best = ns;
    }
    return best;
}

/** Schedule-and-drain 1024 events, mixed near/far delays. */
template <typename Queue>
std::uint64_t
eventQueueKernel()
{
    Queue eq;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1024; ++i) {
        // Mostly near-future (ring tier), every 16th far enough out to
        // exercise the calendar queue's overflow heap.
        const auto delay = (i % 16 == 0) ? 8192 + i : i % 97;
        eq.scheduleIn(static_cast<sim::Cycles>(delay), [&sink]() { ++sink; });
    }
    eq.run();
    return sink;
}

KernelResult
benchEventQueue(unsigned trials, unsigned inner)
{
    KernelResult r;
    r.name = "event_queue";
    r.items = 1024;
    volatile std::uint64_t sink = 0;
    r.before_ns = timeKernel(trials, inner, [&]() {
        sink += eventQueueKernel<sim::LegacyEventQueue>();
    });
    r.after_ns = timeKernel(
        trials, inner, [&]() { sink += eventQueueKernel<sim::EventQueue>(); });
    return r;
}

/** A 4 KiB page with @p dirty words modified at a uniform stride. */
struct DiffFixture
{
    dsm::PageStore store{4096, 1 << 20, 4};
    dsm::NodePage *pg = nullptr;

    explicit DiffFixture(unsigned dirty, bool bits)
    {
        pg = &store.materialize(0);
        if (bits)
            store.armWriteBits(*pg);
        else
            store.makeTwin(*pg);
        auto *w = reinterpret_cast<std::uint32_t *>(pg->data.get());
        const unsigned stride = 1024 / (dirty ? dirty : 1);
        for (unsigned i = 0; i < dirty; ++i) {
            w[i * stride] = i + 1;
            if (bits)
                dsm::PageStore::snoopWrite(*pg, i * stride);
        }
    }
};

KernelResult
benchDiffTwin(unsigned trials, unsigned inner, unsigned dirty)
{
    KernelResult r;
    r.name = "diff_twin_" + std::to_string(dirty);
    r.items = dirty;
    DiffFixture fx(dirty, /*bits=*/false);
    volatile unsigned sink = 0;
    // Before: scalar comparison, fresh vectors every call (the original
    // protocol-side shape).
    r.before_ns = timeKernel(trials, inner, [&]() {
        dsm::Diff d;
        fx.store.diffFromTwinReference(0, *fx.pg, d);
        sink += d.words();
    });
    // After: 64-bit comparison into a pooled buffer.
    r.after_ns = timeKernel(trials, inner, [&]() {
        dsm::PooledDiff d;
        fx.store.diffFromTwin(0, *fx.pg, *d);
        sink += d->words();
    });
    return r;
}

KernelResult
benchDiffBits(unsigned trials, unsigned inner, unsigned dirty)
{
    KernelResult r;
    r.name = "diff_bits_" + std::to_string(dirty);
    r.items = dirty;
    DiffFixture fx(dirty, /*bits=*/true);
    volatile unsigned sink = 0;
    // Before: fresh vectors every call, grown by push_back.
    r.before_ns = timeKernel(trials, inner, [&]() {
        dsm::Diff d;
        d.page = 0;
        const auto *cur =
            reinterpret_cast<const std::uint32_t *>(fx.pg->data.get());
        for (std::size_t blk = 0; blk < fx.pg->write_bits.size(); ++blk) {
            std::uint64_t bits = fx.pg->write_bits[blk];
            while (bits) {
                const unsigned bit =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                const unsigned w = static_cast<unsigned>(blk * 64 + bit);
                d.idx.push_back(static_cast<std::uint16_t>(w));
                d.val.push_back(cur[w]);
            }
        }
        sink += d.words();
    });
    // After: popcount-reserved gather into a pooled buffer.
    r.after_ns = timeKernel(trials, inner, [&]() {
        dsm::PooledDiff d;
        fx.store.diffFromBits(0, *fx.pg, *d);
        sink += d->words();
    });
    return r;
}

/**
 * Times raw shared-access throughput from inside a fiber (System::access
 * asserts fiber context, so the clock has to run in the workload body).
 * Proc 0 warms a 4-page array (faulting it in and installing access
 * descriptors), then repeats timed passes over it; proc 1 idles so no
 * invalidation ever lands and every pass after the first exercises pure
 * hit paths. Best-of-passes lands in *best_ns (ns per full pass).
 */
class AccessKernelWorkload : public dsm::Workload
{
  public:
    enum class Kind { put_loop, get_loop, put_block };
    static constexpr unsigned elems = 4096; // uint32 -> 4 pages of 4 KiB

    AccessKernelWorkload(Kind kind, unsigned passes, double *best_ns)
        : kind_(kind), passes_(passes), best_ns_(best_ns)
    {
    }

    std::string name() const override { return "access_kernel"; }

    void validate(dsm::System &) override {}

    void plan(dsm::GlobalHeap &heap, const dsm::SysConfig &) override
    {
        base_ = heap.allocPages(elems * 4);
    }

    void run(dsm::Proc &p) override
    {
        if (p.id() != 0)
            return;
        std::vector<std::uint32_t> buf(elems);
        for (unsigned i = 0; i < elems; ++i)
            buf[i] = i;
        // Warm-up: fault the pages in and install write descriptors.
        p.putBlock(base_, buf.data(), elems);
        double best = 1e300;
        for (unsigned pass = 0; pass < passes_; ++pass) {
            const auto start = Clock::now();
            switch (kind_) {
              case Kind::put_loop:
                for (unsigned i = 0; i < elems; ++i)
                    p.put<std::uint32_t>(base_ + 4ull * i, buf[i]);
                break;
              case Kind::get_loop:
                for (unsigned i = 0; i < elems; ++i)
                    sink_ += p.get<std::uint32_t>(base_ + 4ull * i);
                break;
              case Kind::put_block:
                p.putBlock(base_, buf.data(), elems);
                break;
            }
            const auto stop = Clock::now();
            const double ns = static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                     start)
                    .count());
            if (ns < best)
                best = ns;
        }
        *best_ns_ = best;
    }

  private:
    Kind kind_;
    unsigned passes_;
    double *best_ns_;
    sim::GAddr base_ = 0;
    volatile std::uint64_t sink_ = 0;
};

/** One timed run: best pass time (ns) for @p kind with @p fast. */
double
runAccessKernel(AccessKernelWorkload::Kind kind, bool fast, unsigned passes)
{
    sim::setQuiet(true);
    double best = 0;
    AccessKernelWorkload w(kind, passes, &best);
    dsm::SysConfig cfg;
    cfg.num_procs = 2;
    cfg.heap_bytes = 1u << 20;
    cfg.fast_path = fast;
    dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
    sys.run(w);
    return best;
}

/**
 * The access-path kernels. access_put/access_get compare the same
 * element loop with the descriptor fast path forced off ("before") vs on
 * ("after"); access_putrange compares the pre-PR shape of a range write
 * (element loop, fast path off) against putBlock through the bulk fast
 * loop — the full before/after of the shared-access engine. Simulated
 * timing is bit-identical in every cell (the integration suite enforces
 * it), so the ratio is pure host-time.
 */
std::vector<KernelResult>
benchAccessPath(unsigned passes)
{
    using Kind = AccessKernelWorkload::Kind;
    std::vector<KernelResult> out;

    KernelResult put;
    put.name = "access_put";
    put.items = AccessKernelWorkload::elems;
    put.before_ns = runAccessKernel(Kind::put_loop, false, passes);
    put.after_ns = runAccessKernel(Kind::put_loop, true, passes);
    out.push_back(put);

    KernelResult get;
    get.name = "access_get";
    get.items = AccessKernelWorkload::elems;
    get.before_ns = runAccessKernel(Kind::get_loop, false, passes);
    get.after_ns = runAccessKernel(Kind::get_loop, true, passes);
    out.push_back(get);

    KernelResult rng;
    rng.name = "access_putrange";
    rng.items = AccessKernelWorkload::elems;
    rng.before_ns = put.before_ns;
    rng.after_ns = runAccessKernel(Kind::put_block, true, passes);
    out.push_back(rng);

    return out;
}

/**
 * The tracing-disabled overhead gate: the same small 8-proc stencil
 * simulation with the event-trace ring enabled ("before") and disabled
 * ("after"). With tracing off every emission site reduces to one
 * predictable never-taken branch, so disabled must never be slower than
 * enabled; CI pins a floor just under 1.0 to allow timer noise.
 */
KernelResult
benchTraceOverhead(unsigned trials)
{
    sim::setQuiet(true);
    auto simOnce = [](std::size_t trace_capacity) {
        testutil::StencilWorkload w(1024, 3);
        dsm::SysConfig cfg;
        cfg.num_procs = 8;
        cfg.heap_bytes = 4u << 20;
        cfg.trace_capacity = trace_capacity;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        if (sys.run(w).exec_ticks == 0)
            std::abort();
    };
    KernelResult r;
    r.name = "trace_off";
    r.items = 1;
    r.before_ns = timeKernel(trials, 1, [&]() { simOnce(1u << 18); });
    r.after_ns = timeKernel(trials, 1, [&]() { simOnce(0); });
    return r;
}

/**
 * Multi-core scaling of the in-run parallel executor: the same 16-node
 * stencil simulation on the serial reference scheduler ("before") and
 * on the conservative-window parallel scheduler with 4 workers
 * ("after"). Unlike every other kernel this one's speedup is *host
 * dependent by nature* - on a single-core machine the parallel run only
 * adds window-barrier overhead and the ratio sits below 1.0, while a
 * 4-core host should clear 1.5x. CI therefore picks the --require floor
 * from nproc (see ci.yml) instead of pinning one number.
 */
KernelResult
benchPdesScaling(unsigned trials)
{
    sim::setQuiet(true);
    auto simOnce = [](unsigned workers) {
        testutil::StencilWorkload w(4096, 6);
        dsm::SysConfig cfg;
        cfg.num_procs = 16;
        cfg.heap_bytes = 8u << 20;
        cfg.pdes_workers = workers;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        if (sys.run(w).exec_ticks == 0)
            std::abort();
    };
    KernelResult r;
    r.name = "pdes_scaling";
    r.items = 16;
    r.before_ns = timeKernel(trials, 1, [&]() { simOnce(1); });
    r.after_ns = timeKernel(trials, 1, [&]() { simOnce(4); });
    return r;
}

/**
 * The 256-node barrier-release clock fan-out: "before" is the pre-PR
 * dense shape (per receiver: O(n) write-notice scan, an O(n) clock copy
 * captured by the release lambda, and an O(n) merge), "after" is the
 * sparse-delta shape (one clockDelta against the manager watermark,
 * then a narrowDelta + applyDelta per receiver, O(active writers)).
 * Eight of 256 components moved since the watermark - the lock-grant /
 * steady-state sharing pattern the sparse representation targets. The
 * after-side restores the receiver clock through the same entries it
 * applied, so both sides do identical per-iteration work.
 */
KernelResult
benchVclockMerge256(unsigned trials, unsigned inner)
{
    constexpr unsigned n = 256;
    constexpr unsigned writers = 8;
    constexpr unsigned advance = 4;

    KernelResult r;
    r.name = "vclock_merge_256";
    r.items = n;

    dsm::VectorClock watermark(n);
    for (unsigned q = 0; q < n; ++q)
        watermark[q] = 100 + q % 13;
    dsm::VectorClock final_vt = watermark;
    std::vector<std::vector<std::uint32_t>> interval_sizes(n);
    for (unsigned q = 0; q < n; ++q)
        interval_sizes[q].assign(watermark[q] + advance + 1, 3);
    for (unsigned w = 0; w < writers; ++w)
        final_vt[w * (n / writers)] += advance;
    // Receivers dominate the watermark (they merged the previous final
    // clock) but trail the new final on the changed components.
    std::vector<dsm::VectorClock> receivers(n, watermark);
    for (unsigned q = 0; q < n; ++q)
        receivers[q][q] = final_vt[q];

    auto countDense = [&](const dsm::VectorClock &from,
                          const dsm::VectorClock &to) {
        std::uint64_t c = 0;
        for (unsigned q = 0; q < n; ++q)
            for (dsm::IntervalSeq s = from[q] + 1; s <= to[q]; ++s)
                c += interval_sizes[q][s - 1];
        return c;
    };

    volatile std::uint64_t sink = 0;
    r.before_ns = timeKernel(trials, inner, [&]() {
        std::uint64_t acc = 0;
        for (unsigned q = 0; q < n; ++q) {
            acc += countDense(receivers[q], final_vt);
            dsm::VectorClock captured = final_vt; // the old lambda capture
            dsm::VectorClock vt = receivers[q];
            vt.merge(captured);
            acc += vt[0];
        }
        sink += acc;
    });

    dsm::ClockDelta base, dq;
    base.entries.reserve(n);
    dq.entries.reserve(n);
    r.after_ns = timeKernel(trials, inner, [&]() {
        std::uint64_t acc = 0;
        dsm::clockDelta(watermark, final_vt, base);
        for (unsigned q = 0; q < n; ++q) {
            dsm::VectorClock &vt = receivers[q];
            dsm::narrowDelta(base, vt, dq);
            for (const dsm::ClockDelta::Entry &e : dq.entries)
                for (dsm::IntervalSeq s = e.from + 1; s <= e.to; ++s)
                    acc += interval_sizes[e.proc][s - 1];
            dsm::applyDelta(vt, dq);
            acc += vt[0];
            for (const dsm::ClockDelta::Entry &e : dq.entries)
                vt[e.proc] = e.from; // restore for the next iteration
        }
        sink += acc;
    });
    return r;
}

/**
 * The whole 256-node scaling package end-to-end: the same 256-proc
 * barrier-heavy stencil simulated on the pre-PR machine (dense clocks,
 * flat manager barrier) and on the scaled machine (sparse deltas,
 * radix-8 combining tree). Simulated results differ (the tree is a
 * different simulated machine), but both are oracle-clean; the ratio
 * tracks the host-time win of the scaling machinery at 256 nodes.
 */
KernelResult
benchBarrierTree256(unsigned trials)
{
    sim::setQuiet(true);
    auto simOnce = [](bool scaled) {
        testutil::StencilWorkload w(4096, 3);
        dsm::SysConfig cfg;
        cfg.num_procs = 256;
        cfg.heap_bytes = 8u << 20;
        cfg.sparse_clocks = scaled;
        cfg.barrier_radix = scaled ? 8 : 0;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        if (sys.run(w).exec_ticks == 0)
            std::abort();
    };
    KernelResult r;
    r.name = "barrier_tree_256";
    r.items = 256;
    r.before_ns = timeKernel(trials, 1, [&]() { simOnce(false); });
    r.after_ns = timeKernel(trials, 1, [&]() { simOnce(true); });
    return r;
}

/**
 * Serving-store host throughput: the same small 8-node ServeApp run
 * (open-loop Zipfian load, per-request sketches, shard locks) with the
 * descriptor fast path forced off ("before") and on ("after"). Serving
 * traffic is fine-grained - directory probes, header reads, small
 * document bursts - so this is the access-path ratio measured on a
 * real request mix rather than a synthetic loop; simulated results are
 * bit-identical in both cells.
 */
KernelResult
benchServeThroughput(unsigned trials)
{
    sim::setQuiet(true);
    auto simOnce = [](bool fast) {
        apps::ServeApp::Params prm;
        prm.load.keys_log2 = 7;
        prm.load.requests_per_node = 64;
        prm.load.read_pct = 90;
        prm.stripes = 8;
        prm.streams = 2;
        apps::ServeApp w(prm);
        dsm::SysConfig cfg;
        cfg.num_procs = 8;
        cfg.heap_bytes = 8u << 20;
        cfg.fast_path = fast;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        if (sys.run(w).exec_ticks == 0)
            std::abort();
    };
    KernelResult r;
    r.name = "serve_small";
    r.items = 8 * 64;
    r.before_ns = timeKernel(trials, 1, [&]() { simOnce(false); });
    r.after_ns = timeKernel(trials, 1, [&]() { simOnce(true); });
    return r;
}

/** Absolute end-to-end time of a small 8-proc stencil simulation. */
double
benchSimSmallMs(unsigned trials)
{
    sim::setQuiet(true);
    const double ns = timeKernel(trials, 1, []() {
        testutil::StencilWorkload w(1024, 3);
        dsm::SysConfig cfg;
        cfg.num_procs = 8;
        cfg.heap_bytes = 4u << 20;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        const dsm::RunResult r = sys.run(w);
        if (r.exec_ticks == 0)
            std::abort();
    });
    return ns / 1e6;
}

void
appendJson(const std::vector<KernelResult> &kernels, double sim_small_ms,
           bool quick)
{
    namespace fs = std::filesystem;
    const fs::path dir = harness::resultsDir();
    fs::create_directories(dir);
    const fs::path path = dir / "bench_host.json";
    std::ofstream os(path, std::ios::app);
    ncp2_assert(os.good(), "cannot open bench_host.json for append");
    os << "{\"bench\":\"perf_host\",\"schema_version\":1,\"quick\":"
       << (quick ? "true" : "false") << ",\"kernels\":[";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelResult &k = kernels[i];
        os << (i ? "," : "") << "{\"name\":\"" << k.name
           << "\",\"before_ns\":" << k.before_ns
           << ",\"after_ns\":" << k.after_ns << ",\"speedup\":" << k.speedup()
           << ",\"items\":" << k.items << "}";
    }
    os << "],\"sim_small_ms\":" << sim_small_ms << "}\n";
    std::cout << "appended " << path.string() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool append = true;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else if (!std::strcmp(argv[i], "--no-append"))
            append = false;
        else {
            std::cerr << "usage: perf_host [--quick] [--no-append]\n";
            return 2;
        }
    }

    // Quick mode shrinks the per-trial inner loop but keeps the full
    // best-of-15 trial count: the baseline is recorded with --quick and
    // compared against --quick CI runs, so both sides need the same
    // noise rejection (best-of-N is what filters scheduler jitter on
    // shared runners; inner only amortizes timer overhead).
    const unsigned trials = 15;
    const unsigned inner = quick ? 200 : 1000;
    const unsigned eq_inner = quick ? 20 : 100;

    std::vector<KernelResult> kernels;
    kernels.push_back(benchEventQueue(trials, eq_inner));
    kernels.push_back(benchDiffTwin(trials, inner, 16));
    kernels.push_back(benchDiffTwin(trials, inner, 128));
    kernels.push_back(benchDiffBits(trials, inner, 16));
    kernels.push_back(benchDiffBits(trials, inner, 128));
    for (KernelResult &k : benchAccessPath(quick ? 8u : 30u))
        kernels.push_back(std::move(k));
    kernels.push_back(benchTraceOverhead(quick ? 3 : 10));
    kernels.push_back(benchPdesScaling(quick ? 3 : 10));
    kernels.push_back(benchVclockMerge256(trials, quick ? 50 : 200));
    kernels.push_back(benchBarrierTree256(quick ? 3 : 5));
    kernels.push_back(benchServeThroughput(quick ? 3 : 10));
    const double sim_small_ms = benchSimSmallMs(quick ? 3 : 10);

    std::cout << "kernel            before_ns   after_ns  speedup\n";
    for (const KernelResult &k : kernels) {
        std::printf("%-16s %10.1f %10.1f %8.2fx\n", k.name.c_str(),
                    k.before_ns, k.after_ns, k.speedup());
    }
    std::printf("sim_small        %10.2f ms\n", sim_small_ms);

    if (append)
        appendJson(kernels, sim_small_ms, quick);
    return 0;
}
