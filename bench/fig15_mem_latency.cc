/**
 * @file
 * Figure 15: effect of memory latency on Em3d running times, TM-I+D vs
 * AURC, 40..200 ns, normalized to TM-I+D at the default 100 ns. The
 * paper's shape: AURC is nearly flat while the overlapping TreadMarks
 * (whose DMA diff engine lives on the memory/PCI path) suffers up to
 * ~1.35x at very high latency.
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 15: memory latency sweep (Em3d)"))
        return 0;

    const unsigned procs = fig::procsFromEnv();
    const double lat_ns[] = {40, 70, 100, 150, 200};

    std::vector<harness::Job> jobs;
    jobs.push_back(fig::job("Em3d/I+D/default", "Em3d", "I+D", procs));
    for (double ns : lat_ns) {
        const std::string at = "@" + sim::Table::fmt(ns, 0) + "ns";

        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.setMemLatencyNs(ns);
        jobs.push_back(fig::job("Em3d/I+D" + at, "Em3d", "I+D", procs, &tm));

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.setMemLatencyNs(ns);
        jobs.push_back(fig::job("Em3d/AURC" + at, "Em3d", "AURC", procs,
                                &au));
    }
    const auto results = fig::runAll("fig15_mem_latency", jobs);

    const double tm_base = static_cast<double>(results[0].run.exec_ticks);
    sim::Table t({"latency(ns)", "TM-I+D", "AURC"});
    std::size_t i = 1;
    for (double ns : lat_ns) {
        const double tmt = static_cast<double>(results[i++].run.exec_ticks);
        const double aut = static_cast<double>(results[i++].run.exec_ticks);
        t.addRow({sim::Table::fmt(ns, 0), sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2)});
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at 100 ns; paper: TreadMarks"
                 " rises with latency, AURC stays nearly flat)\n";
    return 0;
}
