/**
 * @file
 * Figure 15: effect of memory latency on Em3d running times, TM-I+D vs
 * AURC, 40..200 ns, normalized to TM-I+D at the default 100 ns. The
 * paper's shape: AURC is nearly flat while the overlapping TreadMarks
 * (whose DMA diff engine lives on the memory/PCI path) suffers up to
 * ~1.35x at very high latency.
 */

#include "bench/figure_common.hh"

int
main()
{
    fig::header("Figure 15: memory latency sweep (Em3d)");

    const unsigned procs = fig::procsFromEnv();
    const double lat_ns[] = {40, 70, 100, 150, 200};

    const double tm_base = static_cast<double>(
        fig::run("Em3d", "I+D", procs).exec_ticks);

    sim::Table t({"latency(ns)", "TM-I+D", "AURC"});
    for (double ns : lat_ns) {
        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.setMemLatencyNs(ns);
        const double tmt = static_cast<double>(
            fig::run("Em3d", "I+D", procs, &tm).exec_ticks);

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.setMemLatencyNs(ns);
        const double aut = static_cast<double>(
            fig::run("Em3d", "AURC", procs, &au).exec_ticks);

        t.addRow({sim::Table::fmt(ns, 0), sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2)});
        std::cout.flush();
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at 100 ns; paper: TreadMarks"
                 " rises with latency, AURC stays nearly flat)\n";
    return 0;
}
