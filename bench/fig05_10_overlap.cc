/**
 * @file
 * Figures 5-10: the isolated and combined gains of the overlapping
 * techniques. One table per application; bars Base / I / I+D / P /
 * I+P / I+P+D, normalized to Base, broken into the paper's categories.
 *
 * Also reproduces the section 5.1 side numbers: the reduction in
 * diff-related operation time under I+D (paper: 50/44/66/44/71/60 %
 * for TSP/Water/Radix/Barnes/Em3d/Ocean) and the useless-prefetch
 * rates (paper: >85 % for Water and Radix).
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figures 5-10: overlap techniques under TreadMarks"))
        return 0;

    const char *modes[] = {"Base", "I", "I+D", "P", "I+P", "I+P+D"};
    const std::size_t nmodes = std::size(modes);
    const unsigned procs = fig::procsFromEnv();

    std::vector<harness::Job> jobs;
    for (const auto &app : apps::names()) {
        for (const char *m : modes)
            jobs.push_back(fig::job(app, m, procs));
    }
    const auto results = fig::runAll("fig05_10_overlap", jobs);

    std::size_t i = 0;
    for (const auto &app : apps::names()) {
        std::vector<harness::BreakdownRow> rows;
        harness::BreakdownRow base;
        double base_diff_ops = 0, id_diff_ops = -1;
        double prefetch_useless = 0, prefetch_total = 0;

        for (std::size_t mi = 0; mi < nmodes; ++mi, ++i) {
            const char *m = modes[mi];
            const dsm::RunResult &r = results[i].run;
            harness::BreakdownRow row = harness::BreakdownRow::from(m, r);
            if (!std::strcmp(m, "Base")) {
                base = row;
                base_diff_ops =
                    static_cast<double>(r.total().diff_op_cycles);
            }
            if (!std::strcmp(m, "I+D")) {
                id_diff_ops =
                    static_cast<double>(r.total().diff_op_cycles +
                                        r.total().diff_op_ctrl_cycles);
            }
            if (!std::strcmp(m, "I+P") &&
                r.stats.has("tmk.prefetches")) {
                prefetch_total = r.stats.value("tmk.prefetches");
                prefetch_useless = r.stats.value("tmk.prefetches_useless");
            }
            rows.push_back(row.normalizedTo(base));
        }
        harness::printBreakdownTable(std::cout, app + " (percent of Base)",
                                     rows);
        if (base_diff_ops > 0 && id_diff_ops >= 0) {
            std::cout << "  diff-op time reduction under I+D: "
                      << sim::Table::fmt(
                             100.0 * (1.0 - id_diff_ops / base_diff_ops),
                             0)
                      << "%  (paper: 50/44/66/44/71/60 by app)\n";
        }
        if (prefetch_total > 0) {
            std::cout << "  useless prefetches (I+P): "
                      << sim::Table::fmt(
                             100.0 * prefetch_useless / prefetch_total, 0)
                      << "% of " << prefetch_total << " issued\n";
        }
        std::cout << '\n';
    }
    std::cout << "(paper shape: I+D wins everywhere except Em3d/Ocean,"
                 " where I+P+D is best; P alone helps only Em3d and"
                 " Ocean; best combined gain ~50% = 2x speedup)\n";
    return 0;
}
