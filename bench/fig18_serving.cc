/**
 * @file
 * Figure 18 (beyond the paper): the serving-workload family. A sharded
 * key-value/document store (apps::ServeApp) is driven by the
 * seed-deterministic open-loop load generator, and the paper's
 * throughput story is retold as per-request tail latency:
 *
 *   - protocol variants {Base, I+P+D, AURC+P},
 *   - node counts from NCP2_SERVE_NODES (default 16,64,256),
 *   - read ratios {95%, 50%},
 *   - a partitioned-store family (private per-node key spaces, no
 *     application locks, false-sharing coherence only) that is
 *     reproducible under the parallel executor, while the shared rows
 *     decline it (Workload::pdesSafe) and run serially,
 *   - plus a closed-loop cross-check row per protocol (issue-after-
 *     completion with think time instead of open-loop arrivals).
 *
 * Tables: per-request latency percentiles (p50/p99/p999/max from the
 * online QuantileSketches in RunResult::app_stats), the queueing-delay
 * vs service-time split, and throughput (requests per kilocycle).
 * Results land in results/fig18_serving.json (schema v2): the "serve"
 * stats group carries the same sketches per node and globally, and
 * tools/trace_summary.py --requests reconstructs the exact percentiles
 * from the request trace of an NCP2_TRACE'd run.
 */

#include "apps/serve/serve.hh"
#include "bench/figure_common.hh"
#include "sim/stats.hh"

namespace
{

/** Scale-dependent store/load shape shared by every sweep point. */
apps::ServeApp::Params
baseParams(apps::Scale scale)
{
    apps::ServeApp::Params p;
    if (scale == apps::Scale::tiny) {
        p.load.keys_log2 = 6;
        p.load.requests_per_node = 24;
    } else if (scale == apps::Scale::small) {
        p.load.keys_log2 = 8;
        p.load.requests_per_node = 96;
        p.stripes = 8;
    } else {
        p.load.keys_log2 = 10;
        p.load.requests_per_node = 256;
        p.stripes = 16;
        p.streams = 2;
    }
    return p;
}

harness::Job
serveJob(const std::string &label, const std::string &proto, unsigned procs,
         const apps::ServeApp::Params &prm)
{
    harness::Job j;
    j.label = label;
    j.cfg = fig::configFor(proto, procs);
    j.workload = [prm]() { return std::make_unique<apps::ServeApp>(prm); };
    return j;
}

const sim::StatSnapshot::SketchVal *
sketch(const sim::StatSnapshot &s, const std::string &name)
{
    for (const auto &q : s.sketches)
        if (q.name == name)
            return &q;
    return nullptr;
}

const sim::StatSnapshot::AccumVal *
accum(const sim::StatSnapshot &s, const std::string &name)
{
    for (const auto &a : s.accums)
        if (a.name == name)
            return &a;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 18: serving-store tail latency and throughput "
                    "(open-loop load, per-request percentiles)"))
        return 0;

    const apps::Scale scale = fig::scaleFromEnv();
    const std::vector<unsigned> counts = harness::knobs::serveNodes();
    const std::vector<std::string> protos = {"Base", "I+P+D", "AURC+P"};
    const std::vector<unsigned> read_pcts = {95, 50};

    std::vector<harness::Job> jobs;
    for (const auto &proto : protos) {
        for (unsigned p : counts) {
            for (unsigned r : read_pcts) {
                apps::ServeApp::Params prm = baseParams(scale);
                prm.load.read_pct = r;
                jobs.push_back(serveJob(proto + "/p=" + std::to_string(p) +
                                            "/r=" + std::to_string(r),
                                        proto, p, prm));
            }
        }
    }
    // Partitioned-store family at the smallest node count: private key
    // spaces, no application locks, false-sharing-only coherence. This
    // family is reproducible under the parallel executor (the shared
    // rows decline it and run serially; see Workload::pdesSafe).
    for (const auto &proto : protos) {
        for (unsigned r : read_pcts) {
            apps::ServeApp::Params prm = baseParams(scale);
            prm.shared = false;
            prm.load.read_pct = r;
            jobs.push_back(serveJob(proto + "/p=" +
                                        std::to_string(counts[0]) +
                                        "/part/r=" + std::to_string(r),
                                    proto, counts[0], prm));
        }
    }
    // Closed-loop cross-check at the smallest node count, 95% reads:
    // same store and key stream, arrivals replaced by completion+think.
    for (const auto &proto : protos) {
        apps::ServeApp::Params prm = baseParams(scale);
        prm.load.read_pct = 95;
        prm.load.arrival = apps::serve::Arrival::closed;
        jobs.push_back(serveJob(proto + "/p=" + std::to_string(counts[0]) +
                                    "/closed",
                                proto, counts[0], prm));
    }

    const auto results = fig::runAll("fig18_serving", jobs);

    sim::Table lat({"run", "reqs", "p50", "p99", "p999", "max",
                    "queue p99", "svc p99"});
    sim::Table thr({"run", "exec ticks", "reqs", "req/kcycle",
                    "mean queue", "mean svc"});
    for (const auto &jr : results) {
        const sim::StatSnapshot &s = jr.run.app_stats;
        const auto *l = sketch(s, "latency");
        const auto *q = sketch(s, "queue_delay");
        const auto *v = sketch(s, "service");
        const auto *qa = accum(s, "queue_delay_cycles");
        const auto *va = accum(s, "service_cycles");
        if (!l || !q || !v || !qa || !va)
            ncp2_fatal("run '%s' is missing the serve stats group",
                       jr.label.c_str());
        lat.addRow({jr.label, std::to_string(l->count),
                    std::to_string(l->p50), std::to_string(l->p99),
                    std::to_string(l->p999), std::to_string(l->max),
                    std::to_string(q->p99), std::to_string(v->p99)});
        const double ticks = static_cast<double>(jr.run.exec_ticks);
        thr.addRow({jr.label, std::to_string(jr.run.exec_ticks),
                    std::to_string(l->count),
                    sim::Table::fmt(1e3 * static_cast<double>(l->count) /
                                        ticks, 3),
                    sim::Table::fmt(qa->mean, 1),
                    sim::Table::fmt(va->mean, 1)});
    }
    std::cout << "== per-request latency percentiles (cycles) ==\n";
    lat.print(std::cout);
    std::cout << "\n== throughput and queueing/service split ==\n";
    thr.print(std::cout);
    std::cout << "\n(open-loop rows share one arrival schedule per node "
                 "count; latency differences across protocol\n variants "
                 "are pure coherence overhead. closed-loop rows are the "
                 "throughput cross-check.)\n";
    return 0;
}
