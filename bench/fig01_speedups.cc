/**
 * @file
 * Figure 1: application speedups under (non-overlapping) TreadMarks,
 * 1..16 processors. The paper's shape: TSP best (~9 at 16p), then
 * Water, Radix/Barnes mid-pack, Em3d poor, Ocean unacceptable (~1).
 */

#include "bench/figure_common.hh"
#include "sim/stats.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 1: speedups under TreadMarks (Base)"))
        return 0;

    const unsigned counts[] = {1, 2, 4, 8, 16};
    const std::size_t ncounts = std::size(counts);

    std::vector<harness::Job> jobs;
    for (const auto &app : apps::names()) {
        for (unsigned p : counts)
            jobs.push_back(fig::job(app + "/p=" + std::to_string(p), app,
                                    "Base", p));
    }
    const auto results = fig::runAll("fig01_speedups", jobs);

    sim::Table t({"app", "p=1", "p=2", "p=4", "p=8", "p=16",
                  "speedup@16"});
    std::size_t i = 0;
    for (const auto &app : apps::names()) {
        std::vector<std::string> row{app};
        double t1 = 0;
        double t16 = 0;
        for (std::size_t c = 0; c < ncounts; ++c, ++i) {
            const double ticks =
                static_cast<double>(results[i].run.exec_ticks);
            if (counts[c] == 1)
                t1 = ticks;
            if (counts[c] == 16)
                t16 = ticks;
            row.push_back(sim::Table::fmt(ticks / 1e6, 1) + "M");
        }
        row.push_back(sim::Table::fmt(t1 / t16, 2));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n(paper shape: TSP ~9, Water ~6, Radix/Barnes ~4,"
                 " Em3d ~3, Ocean ~1 at 16 processors)\n";
    return 0;
}
