/**
 * @file
 * Figure 14: effect of network bandwidth on Em3d running times,
 * TM-I+D vs AURC, 20..200 MB/s per link, normalized to TM-I+D at the
 * default 50 MB/s. The paper's shape: AURC needs ~200 MB/s to approach
 * the overlapping TreadMarks; at 20 MB/s it is ~2.6x slower.
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 14: network bandwidth sweep (Em3d)"))
        return 0;

    const unsigned procs = fig::procsFromEnv();
    const double bandwidths[] = {20, 50, 100, 150, 200};

    std::vector<harness::Job> jobs;
    jobs.push_back(fig::job("Em3d/I+D/default", "Em3d", "I+D", procs));
    for (double bw : bandwidths) {
        const std::string at = "@" + sim::Table::fmt(bw, 0) + "MBs";

        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.net.setBandwidthMBs(bw);
        jobs.push_back(fig::job("Em3d/I+D" + at, "Em3d", "I+D", procs, &tm));

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.net.setBandwidthMBs(bw);
        jobs.push_back(fig::job("Em3d/AURC" + at, "Em3d", "AURC", procs,
                                &au));
    }
    const auto results = fig::runAll("fig14_net_bandwidth", jobs);

    const double tm_base = static_cast<double>(results[0].run.exec_ticks);
    sim::Table t({"bandwidth(MB/s)", "TM-I+D", "AURC"});
    std::size_t i = 1;
    for (double bw : bandwidths) {
        const double tmt = static_cast<double>(results[i++].run.exec_ticks);
        const double aut = static_cast<double>(results[i++].run.exec_ticks);
        t.addRow({sim::Table::fmt(bw, 0), sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2)});
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at 50 MB/s; paper: AURC falls"
                 " from ~2.6x at 20 MB/s toward parity near 200 MB/s,"
                 " TreadMarks barely moves)\n";
    return 0;
}
