/**
 * @file
 * Figure 14: effect of network bandwidth on Em3d running times,
 * TM-I+D vs AURC, 20..200 MB/s per link, normalized to TM-I+D at the
 * default 50 MB/s. The paper's shape: AURC needs ~200 MB/s to approach
 * the overlapping TreadMarks; at 20 MB/s it is ~2.6x slower.
 */

#include "bench/figure_common.hh"

int
main()
{
    fig::header("Figure 14: network bandwidth sweep (Em3d)");

    const unsigned procs = fig::procsFromEnv();
    const double bandwidths[] = {20, 50, 100, 150, 200};

    const double tm_base = static_cast<double>(
        fig::run("Em3d", "I+D", procs).exec_ticks);

    sim::Table t({"bandwidth(MB/s)", "TM-I+D", "AURC"});
    for (double bw : bandwidths) {
        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.net.setBandwidthMBs(bw);
        const double tmt = static_cast<double>(
            fig::run("Em3d", "I+D", procs, &tm).exec_ticks);

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.net.setBandwidthMBs(bw);
        const double aut = static_cast<double>(
            fig::run("Em3d", "AURC", procs, &au).exec_ticks);

        t.addRow({sim::Table::fmt(bw, 0), sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2)});
        std::cout.flush();
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at 50 MB/s; paper: AURC falls"
                 " from ~2.6x at 20 MB/s toward parity near 200 MB/s,"
                 " TreadMarks barely moves)\n";
    return 0;
}
