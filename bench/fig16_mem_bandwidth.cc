/**
 * @file
 * Figure 16: effect of memory bandwidth on Em3d running times, TM-I+D
 * vs AURC, 60..200 MB/s (cache-block transfers), normalized to TM-I+D
 * at the default (~103 MB/s). The paper's shape: both degrade at low
 * bandwidth, TreadMarks slightly more severely (~1.5-1.6x vs ~1.2-1.3x).
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 16: memory bandwidth sweep (Em3d)"))
        return 0;

    const unsigned procs = fig::procsFromEnv();
    const double bw_mbs[] = {60, 80, 103, 150, 200};

    std::vector<harness::Job> jobs;
    jobs.push_back(fig::job("Em3d/I+D/default", "Em3d", "I+D", procs));
    for (double bw : bw_mbs) {
        const std::string at = "@" + sim::Table::fmt(bw, 0) + "MBs";

        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.setMemBandwidthMBs(bw);
        jobs.push_back(fig::job("Em3d/I+D" + at, "Em3d", "I+D", procs, &tm));

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.setMemBandwidthMBs(bw);
        jobs.push_back(fig::job("Em3d/AURC" + at, "Em3d", "AURC", procs,
                                &au));
    }
    const auto results = fig::runAll("fig16_mem_bandwidth", jobs);

    const double tm_base = static_cast<double>(results[0].run.exec_ticks);
    sim::Table t({"bandwidth(MB/s)", "TM-I+D", "AURC"});
    std::size_t i = 1;
    for (double bw : bw_mbs) {
        const double tmt = static_cast<double>(results[i++].run.exec_ticks);
        const double aut = static_cast<double>(results[i++].run.exec_ticks);
        t.addRow({sim::Table::fmt(bw, 0), sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2)});
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at ~103 MB/s; paper: both rise"
                 " at low bandwidth, TreadMarks slightly more)\n";
    return 0;
}
