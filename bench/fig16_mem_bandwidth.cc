/**
 * @file
 * Figure 16: effect of memory bandwidth on Em3d running times, TM-I+D
 * vs AURC, 60..200 MB/s (cache-block transfers), normalized to TM-I+D
 * at the default (~103 MB/s). The paper's shape: both degrade at low
 * bandwidth, TreadMarks slightly more severely (~1.5-1.6x vs ~1.2-1.3x).
 */

#include "bench/figure_common.hh"

int
main()
{
    fig::header("Figure 16: memory bandwidth sweep (Em3d)");

    const unsigned procs = fig::procsFromEnv();
    const double bw_mbs[] = {60, 80, 103, 150, 200};

    const double tm_base = static_cast<double>(
        fig::run("Em3d", "I+D", procs).exec_ticks);

    sim::Table t({"bandwidth(MB/s)", "TM-I+D", "AURC"});
    for (double bw : bw_mbs) {
        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.setMemBandwidthMBs(bw);
        const double tmt = static_cast<double>(
            fig::run("Em3d", "I+D", procs, &tm).exec_ticks);

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.setMemBandwidthMBs(bw);
        const double aut = static_cast<double>(
            fig::run("Em3d", "AURC", procs, &au).exec_ticks);

        t.addRow({sim::Table::fmt(bw, 0), sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2)});
        std::cout.flush();
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at ~103 MB/s; paper: both rise"
                 " at low bandwidth, TreadMarks slightly more)\n";
    return 0;
}
