/**
 * @file
 * Figure 17 (beyond the paper): node-count scaling of the simulated
 * machine, 16 -> 1024 processors, under Base TreadMarks.
 *
 * Two machine variants per application and node count:
 *   flat    - the paper's machine: flat manager barrier, flat mesh
 *   scaled  - the scaling machinery: radix-8 combining-tree barrier
 *             and a clustered hierarchical mesh (16-node clusters)
 *
 * The speedup table shows simulated speedup over the 1-processor run;
 * the breakdown table shows where the protocol overhead goes as the
 * machine grows (synchronization dominates at 1024 nodes on the flat
 * machine - the tree barrier pushes that wall out). Node counts come
 * from NCP2_SCALE_NODES (default 16,64,256,1024); results land in
 * results/fig17_scaling.json (schema v2) with per-run wall_seconds for
 * tracking host-side simulator cost.
 */

#include "bench/figure_common.hh"
#include "sim/stats.hh"

namespace
{

struct Variant
{
    const char *name;
    unsigned barrier_radix;
    unsigned mesh_cluster;
};

constexpr Variant variants[] = {
    {"flat", 0, 0},
    {"scaled", 8, 16},
};

} // namespace

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 17: node-count scaling, flat vs tree/cluster "
                    "machine (Base)"))
        return 0;

    const std::vector<unsigned> counts = harness::knobs::scaleNodes();
    // The three paper applications spanning the sharing spectrum:
    // coarse (Water), all-to-all exchange (Radix), nearest-neighbour
    // with wide read sets (Em3d).
    const std::vector<std::string> apps = {"Water", "Radix", "Em3d"};

    std::vector<harness::Job> jobs;
    for (const auto &app : apps)
        jobs.push_back(fig::job(app + "/p=1", app, "Base", 1));
    for (const auto &app : apps) {
        for (const Variant &v : variants) {
            for (unsigned p : counts) {
                dsm::SysConfig cfg = fig::configFor("Base", p);
                cfg.barrier_radix = v.barrier_radix;
                cfg.mesh_cluster = v.mesh_cluster;
                jobs.push_back(fig::job(app + "/" + v.name + "/p=" +
                                            std::to_string(p),
                                        app, "Base", p, &cfg));
            }
        }
    }
    const auto results = fig::runAll("fig17_scaling", jobs);

    // results[0..apps) are the 1-proc baselines, then
    // apps x variants x counts in nesting order.
    std::vector<std::string> head{"app", "machine"};
    for (unsigned p : counts)
        head.push_back("p=" + std::to_string(p));
    sim::Table t(head);
    std::size_t i = apps.size();
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const double t1 =
            static_cast<double>(results[a].run.exec_ticks);
        for (const Variant &v : variants) {
            std::vector<std::string> row{apps[a], v.name};
            for (std::size_t c = 0; c < counts.size(); ++c, ++i) {
                const double tn =
                    static_cast<double>(results[i].run.exec_ticks);
                row.push_back(sim::Table::fmt(t1 / tn, 2));
            }
            t.addRow(row);
        }
    }
    std::cout << "== simulated speedup over 1 processor ==\n";
    t.print(std::cout);

    std::vector<harness::BreakdownRow> rows;
    for (std::size_t r = apps.size(); r < results.size(); ++r) {
        harness::BreakdownRow row =
            harness::BreakdownRow::from(results[r].label, results[r].run);
        rows.push_back(row.normalizedTo(row));
    }
    std::cout << "\n";
    harness::printBreakdownTable(
        std::cout, "normalized execution time vs node count (percent)",
        rows);
    std::cout << "\n(flat machine: synch% explodes with node count as "
                 "every arrival serializes on the manager;\n the tree "
                 "barrier + clustered mesh keep it bounded)\n";
    return 0;
}
