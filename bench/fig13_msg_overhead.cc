/**
 * @file
 * Figure 13: effect of messaging overhead on Em3d running times
 * (network latency axis 1..4 microseconds of per-message NI setup),
 * TM-I+D vs AURC, normalized to TM-I+D at the default 2 us.
 *
 * The paper's main observation: with AURC's optimistic 1-cycle update
 * overhead, neither protocol is very sensitive; when updates pay the
 * same non-trivial overhead as other messages, AURC degrades sharply.
 * Both variants are printed.
 */

#include "bench/figure_common.hh"

int
main(int argc, char **argv)
{
    if (fig::header(argc, argv,
                    "Figure 13: messaging overhead sweep (Em3d)"))
        return 0;

    const unsigned procs = fig::procsFromEnv();
    // Per-message overheads in cycles (100 = 1us at 100 MHz).
    const sim::Cycles overheads[] = {100, 200, 300, 400};

    // Job 0 is the baseline at the default 200-cycle (2 us) overhead;
    // then three variants per sweep point.
    std::vector<harness::Job> jobs;
    jobs.push_back(fig::job("Em3d/I+D/default", "Em3d", "I+D", procs));
    for (sim::Cycles oh : overheads) {
        const std::string at = "@" + sim::Table::fmt(oh / 100.0, 1) + "us";

        dsm::SysConfig tm = fig::configFor("I+D", procs);
        tm.net.msg_overhead = oh;
        jobs.push_back(fig::job("Em3d/I+D" + at, "Em3d", "I+D", procs, &tm));

        dsm::SysConfig au = fig::configFor("AURC", procs);
        au.net.msg_overhead = oh;
        jobs.push_back(fig::job("Em3d/AURC" + at, "Em3d", "AURC", procs,
                                &au));

        dsm::SysConfig auf = au;
        auf.update_overhead_cycles = oh; // updates pay full overhead
        jobs.push_back(fig::job("Em3d/AURC-full" + at, "Em3d", "AURC",
                                procs, &auf));
    }
    const auto results = fig::runAll("fig13_msg_overhead", jobs);

    const double tm_base = static_cast<double>(results[0].run.exec_ticks);
    sim::Table t({"overhead(us)", "TM-I+D", "AURC(1cy-updates)",
                  "AURC(full-overhead-updates)"});
    std::size_t i = 1;
    for (sim::Cycles oh : overheads) {
        const double tmt = static_cast<double>(results[i++].run.exec_ticks);
        const double aut = static_cast<double>(results[i++].run.exec_ticks);
        const double auft = static_cast<double>(results[i++].run.exec_ticks);
        t.addRow({sim::Table::fmt(oh / 100.0, 1),
                  sim::Table::fmt(tmt / tm_base, 2),
                  sim::Table::fmt(aut / tm_base, 2),
                  sim::Table::fmt(auft / tm_base, 2)});
    }
    t.print(std::cout);
    std::cout << "\n(normalized to TM-I+D at 2us; paper: both flat with"
                 " 1-cycle updates, AURC degrades once updates pay the"
                 " full overhead)\n";
    return 0;
}
