/**
 * @file
 * End-to-end tests of the AURC protocol: coherence through automatic
 * updates, pairwise-sharing transitions, write-cache behaviour and the
 * prefetch variant.
 */

#include <gtest/gtest.h>

#include "aurc/aurc.hh"
#include "dsm/system.hh"
#include "tests/workload_helpers.hh"

using namespace dsm;
using namespace aurc;

namespace
{

SysConfig
smallConfig(unsigned procs)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    cfg.protocol = ProtocolKind::aurc;
    return cfg;
}

} // namespace

class AurcModes : public ::testing::TestWithParam<bool>
{
};

TEST_P(AurcModes, LockCounterIsCoherent)
{
    sim::setQuiet(true);
    testutil::CounterWorkload w(6);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(GetParam()));
    const RunResult r = sys.run(w);
    EXPECT_GT(r.exec_ticks, 0u);
}

TEST_P(AurcModes, BarrierStencilIsCoherent)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(1024, 4);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(GetParam()));
    const RunResult r = sys.run(w);
    EXPECT_GT(r.exec_ticks, 0u);
}

TEST_P(AurcModes, MigratoryTokenIsCoherent)
{
    sim::setQuiet(true);
    testutil::TokenWorkload w(5);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(GetParam()));
    const RunResult r = sys.run(w);
    EXPECT_GT(r.exec_ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(PrefetchOnOff, AurcModes, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "AURC_P" : "AURC";
                         });

TEST(Aurc, SingleProcessorRunsWithoutTraffic)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(512, 3);
    SysConfig cfg = smallConfig(1);
    System sys(cfg, makeAurc(false));
    const RunResult r = sys.run(w);
    EXPECT_EQ(r.net.messages, 0u);
}

TEST(Aurc, GeneratesAutomaticUpdateTraffic)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(2048, 4);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(false));
    auto *au = static_cast<Aurc *>(&sys.protocol());
    sys.run(w);
    EXPECT_GT(au->stats().updates_sent.value(), 0u);
    EXPECT_GT(au->stats().update_words.value(), 0u);
    EXPECT_GT(au->stats().page_fetches.value(), 0u);
}

TEST(Aurc, PairwiseSharingIsEstablishedAndReverts)
{
    sim::setQuiet(true);
    // Stencil neighbour pages are shared by 2 procs (pairwise) while the
    // init phase makes many pages touched by 3+ procs (reverted).
    testutil::StencilWorkload w(4096, 3);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(false));
    auto *au = static_cast<Aurc *>(&sys.protocol());
    sys.run(w);
    EXPECT_GT(au->stats().pairwise_pages.value(), 0u);
    EXPECT_GT(au->stats().reverts_to_home.value(), 0u);
}

TEST(Aurc, WriteCacheCombinesStores)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(2048, 4);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(false));
    auto *au = static_cast<Aurc *>(&sys.protocol());
    sys.run(w);
    // Sequential writes to the same line combine, so updates on the wire
    // must be (much) fewer than the words they carry.
    EXPECT_GT(au->stats().wcache_hits.value(), 0u);
    EXPECT_GT(au->stats().update_words.value(), au->stats().updates_sent.value());
}

TEST(Aurc, PrefetchVariantIssuesPrefetches)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(4096, 4);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeAurc(true));
    auto *au = static_cast<Aurc *>(&sys.protocol());
    sys.run(w);
    EXPECT_GT(au->stats().prefetches_issued.value(), 0u);
}
