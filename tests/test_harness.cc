/**
 * @file
 * Harness-level tests: simulation determinism across repeated runs,
 * bit-equivalence of the parallel ExperimentEngine against a serial
 * loop over the same jobs, worker-count plumbing, and the JSON results
 * emitter. The equivalence test is the one the ThreadSanitizer CI job
 * runs to catch cross-simulation data races mechanically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "harness/json_out.hh"
#include "harness/runner.hh"
#include "tests/workload_helpers.hh"

using namespace harness;

namespace
{

dsm::SysConfig
cfgFor(unsigned procs, bool offload, bool hw_diffs, bool prefetch,
       dsm::ProtocolKind kind = dsm::ProtocolKind::treadmarks)
{
    dsm::SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    cfg.protocol = kind;
    cfg.mode.offload = offload;
    cfg.mode.hw_diffs = hw_diffs;
    cfg.mode.prefetch = prefetch;
    return cfg;
}

/** A mixed job list spanning both protocols and all test workloads. */
std::vector<Job>
mixedJobs()
{
    std::vector<Job> jobs;
    jobs.push_back({"counter/Base", cfgFor(4, false, false, false),
                    []() { return std::make_unique<testutil::CounterWorkload>(6); },
                    true});
    jobs.push_back({"stencil/I+D", cfgFor(8, true, true, false),
                    []() { return std::make_unique<testutil::StencilWorkload>(1024, 3); },
                    true});
    jobs.push_back({"token/AURC",
                    cfgFor(4, false, false, false, dsm::ProtocolKind::aurc),
                    []() { return std::make_unique<testutil::TokenWorkload>(4); },
                    true});
    jobs.push_back({"counter/I+P", cfgFor(4, true, false, true),
                    []() { return std::make_unique<testutil::CounterWorkload>(5); },
                    true});
    jobs.push_back({"stencil/P", cfgFor(4, false, false, true),
                    []() { return std::make_unique<testutil::StencilWorkload>(512, 2); },
                    true});
    jobs.push_back({"token/Base", cfgFor(8, false, false, false),
                    []() { return std::make_unique<testutil::TokenWorkload>(3); },
                    true});
    return jobs;
}

void
expectIdenticalRuns(const dsm::RunResult &a, const dsm::RunResult &b)
{
    EXPECT_EQ(a.exec_ticks, b.exec_ticks);
    ASSERT_EQ(a.bd.size(), b.bd.size());
    for (std::size_t p = 0; p < a.bd.size(); ++p) {
        EXPECT_EQ(a.bd[p].cycles, b.bd[p].cycles) << "processor " << p;
        EXPECT_EQ(a.bd[p].diff_op_cycles, b.bd[p].diff_op_cycles);
        EXPECT_EQ(a.bd[p].diff_op_ctrl_cycles, b.bd[p].diff_op_ctrl_cycles);
    }
    EXPECT_EQ(a.net.messages, b.net.messages);
    EXPECT_EQ(a.net.bytes, b.net.bytes);
    EXPECT_EQ(a.net.latency_cycles, b.net.latency_cycles);
    EXPECT_EQ(a.net.contention_cycles, b.net.contention_cycles);
    EXPECT_EQ(a.stats.flat(), b.stats.flat());
    ASSERT_EQ(a.trace.size(), b.trace.size());
    EXPECT_EQ(a.trace_dropped, b.trace_dropped);
}

} // namespace

TEST(Harness, RepeatedRunsAreIdentical)
{
    sim::setQuiet(true);
    const dsm::SysConfig cfg = cfgFor(8, true, true, false);
    dsm::RunResult first;
    for (int i = 0; i < 2; ++i) {
        testutil::StencilWorkload w(1024, 3);
        const dsm::RunResult r = runOnce(cfg, w);
        if (i == 0) {
            first = r;
            continue;
        }
        expectIdenticalRuns(first, r);
        // The derived breakdown rows must match bit-for-bit too.
        const BreakdownRow ra = BreakdownRow::from("x", first);
        const BreakdownRow rb = BreakdownRow::from("x", r);
        EXPECT_EQ(ra.exec_ticks, rb.exec_ticks);
        EXPECT_EQ(ra.busy, rb.busy);
        EXPECT_EQ(ra.data, rb.data);
        EXPECT_EQ(ra.synch, rb.synch);
        EXPECT_EQ(ra.ipc, rb.ipc);
        EXPECT_EQ(ra.others, rb.others);
        EXPECT_EQ(ra.diff_pct, rb.diff_pct);
    }
}

TEST(Harness, EngineMatchesSerialLoop)
{
    sim::setQuiet(true);
    const std::vector<Job> jobs = mixedJobs();

    const std::vector<JobResult> serial = runSerial(jobs);
    const std::vector<JobResult> pooled = ExperimentEngine(4).runAll(jobs);

    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, pooled[i].label) << "job " << i;
        expectIdenticalRuns(serial[i].run, pooled[i].run);
    }
}

TEST(Harness, EngineKeepsSubmissionOrderWithMoreWorkersThanJobs)
{
    sim::setQuiet(true);
    std::vector<Job> jobs;
    for (unsigned n = 0; n < 3; ++n) {
        jobs.push_back({"counter/" + std::to_string(n),
                        cfgFor(2 + n, false, false, false),
                        [n]() {
                            return std::make_unique<testutil::CounterWorkload>(
                                3 + n);
                        },
                        true});
    }
    const auto results = ExperimentEngine(16).runAll(jobs);
    ASSERT_EQ(results.size(), 3u);
    for (unsigned n = 0; n < 3; ++n) {
        EXPECT_EQ(results[n].label, "counter/" + std::to_string(n));
        EXPECT_EQ(results[n].cfg.num_procs, 2 + n);
        EXPECT_GT(results[n].run.exec_ticks, 0u);
    }
}

TEST(Harness, EnginePropagatesJobExceptions)
{
    sim::setQuiet(true);
    std::vector<Job> jobs = mixedJobs();
    Job bad;
    bad.label = "bad/unknown-app";
    bad.cfg = cfgFor(2, false, false, false);
    bad.cfg.max_ticks = 1; // trip the watchdog immediately
    bad.workload = []() {
        return std::make_unique<testutil::CounterWorkload>(1000);
    };
    jobs.insert(jobs.begin() + 1, bad);
    EXPECT_THROW(ExperimentEngine(4).runAll(jobs), std::runtime_error);
}

TEST(Harness, WorkersFromEnvValidates)
{
    ::setenv("NCP2_JOBS", "8", 1);
    EXPECT_EQ(ExperimentEngine::workersFromEnv(), 8u);
    ::setenv("NCP2_JOBS", "99999", 1);
    EXPECT_EQ(ExperimentEngine::workersFromEnv(), 256u);
    ::setenv("NCP2_JOBS", "0", 1);
    EXPECT_THROW(ExperimentEngine::workersFromEnv(), std::runtime_error);
    ::setenv("NCP2_JOBS", "abc", 1);
    EXPECT_THROW(ExperimentEngine::workersFromEnv(), std::runtime_error);
    ::setenv("NCP2_JOBS", "-3", 1);
    EXPECT_THROW(ExperimentEngine::workersFromEnv(), std::runtime_error);
    ::unsetenv("NCP2_JOBS");
    EXPECT_GE(ExperimentEngine::workersFromEnv(), 1u);
}

TEST(Harness, JsonEmitterShapesDocument)
{
    sim::setQuiet(true);
    std::vector<Job> jobs;
    jobs.push_back({"counter/Base", cfgFor(2, false, false, false),
                    []() { return std::make_unique<testutil::CounterWorkload>(2); },
                    true});
    const auto results = runSerial(jobs);

    std::ostringstream ss;
    emitResultsJson(ss, "unit_bench", results, 4);
    const std::string doc = ss.str();

    EXPECT_NE(doc.find("\"bench\":\"unit_bench\""), std::string::npos);
    EXPECT_NE(doc.find("\"schema_version\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"workers\":4"), std::string::npos);
    EXPECT_NE(doc.find("\"knobs\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"NCP2_SCALE\":"), std::string::npos);
    EXPECT_NE(doc.find("\"stats\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"tmk\":{\"counters\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"label\":\"counter/Base\""), std::string::npos);
    EXPECT_NE(doc.find("\"protocol\":\"treadmarks\""), std::string::npos);
    EXPECT_NE(doc.find("\"mode\":\"Base\""), std::string::npos);
    EXPECT_NE(doc.find("\"num_procs\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"exec_ticks\":"), std::string::npos);
    EXPECT_NE(doc.find("\"breakdown\":{\"busy\":"), std::string::npos);
    EXPECT_NE(doc.find("\"net\":{\"messages\":"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check; no
    // strings in the document contain brackets).
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
}

TEST(Harness, WriteResultsJsonCreatesFile)
{
    sim::setQuiet(true);
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ncp2_results_test";
    std::filesystem::remove_all(dir);
    ::setenv("NCP2_RESULTS_DIR", dir.string().c_str(), 1);

    std::vector<Job> jobs;
    jobs.push_back({"token/Base", cfgFor(2, false, false, false),
                    []() { return std::make_unique<testutil::TokenWorkload>(2); },
                    true});
    const auto results = runSerial(jobs);
    const std::string path = writeResultsJson("unit_bench", results, 1);

    ::unsetenv("NCP2_RESULTS_DIR");
    EXPECT_TRUE(std::filesystem::exists(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"bench\":\"unit_bench\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Harness, ContextConfinesQuietPerSimulation)
{
    sim::setQuiet(false);
    sim::Context loud;
    loud.quiet = false;
    sim::Context quiet_ctx;
    quiet_ctx.quiet = true;
    {
        sim::Context::Scope scope(quiet_ctx);
        EXPECT_TRUE(sim::quiet());
        {
            sim::Context::Scope inner(loud);
            EXPECT_FALSE(sim::quiet());
        }
        EXPECT_TRUE(sim::quiet());
    }
    EXPECT_FALSE(sim::quiet());
    sim::setQuiet(true); // leave the suite quiet, as other tests expect
}
