/**
 * @file
 * The serving workload family (src/apps/serve) and its metrics plumbing:
 * QuantileSketch unit tests against a sorted-array oracle (error bounds,
 * merge associativity), chi-squared sanity for the Zipfian and Poisson
 * load generator, seed-deterministic replay across executors (engine
 * pool width, the parallel executor for the partitioned store, the
 * forced-serial demotion for the shared store), the LRC-oracle
 * end-to-end matrix across protocol variants x fast-path x store mode,
 * closed-loop accounting, reconstruction of the latency sketches from
 * the request trace, and a regression for the AURC fast-path
 * double-owner fix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "apps/serve/serve.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "sim/quantile.hh"
#include "sim/rng.hh"
#include "sim/trace.hh"

using dsm::ProtocolKind;
using dsm::RunResult;
using dsm::SysConfig;
using sim::QuantileSketch;

namespace
{

SysConfig
smallCfg(unsigned procs)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    return cfg;
}

struct ModeParam
{
    const char *tag;
    ProtocolKind kind;
    bool offload, hw_diffs, prefetch;
};

constexpr ModeParam kModes[] = {
    {"TmkBase", ProtocolKind::treadmarks, false, false, false},
    {"TmkIPD", ProtocolKind::treadmarks, true, true, true},
    {"Aurc", ProtocolKind::aurc, false, false, false},
    {"AurcP", ProtocolKind::aurc, false, false, true},
};

SysConfig
modeCfg(const ModeParam &m, unsigned procs)
{
    SysConfig cfg = smallCfg(procs);
    cfg.protocol = m.kind;
    cfg.mode.offload = m.offload;
    cfg.mode.hw_diffs = m.hw_diffs;
    cfg.mode.prefetch = m.prefetch;
    cfg.check = true;
    return cfg;
}

/** The observables that must never move between two equal runs. */
void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.exec_ticks, b.exec_ticks);
    EXPECT_EQ(a.net.messages, b.net.messages);
    EXPECT_EQ(a.net.bytes, b.net.bytes);
    EXPECT_EQ(a.stats.flat(), b.stats.flat());
    EXPECT_EQ(a.app_stats.flat(), b.app_stats.flat());
}

/** Tiny serving shape shared by the end-to-end tests below. */
apps::ServeApp::Params
tinyParams(bool shared)
{
    apps::ServeApp::Params prm;
    prm.load.seed = 5;
    prm.load.keys_log2 = 5;
    prm.load.requests_per_node = 16;
    prm.load.read_pct = 80;
    prm.shared = shared;
    prm.streams = 2;
    prm.stripes = 4;
    return prm;
}

void
expectSameLogs(const apps::ServeApp &a, const apps::ServeApp &b,
               unsigned procs)
{
    for (unsigned n = 0; n < procs; ++n) {
        SCOPED_TRACE("node " + std::to_string(n));
        EXPECT_EQ(a.log(n), b.log(n));
    }
}

void
expectSameSketch(const QuantileSketch &a, const QuantileSketch &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_EQ(a.counts(), b.counts());
}

const sim::StatSnapshot::Scalar *
counter(const sim::StatSnapshot &s, const std::string &name)
{
    for (const auto &c : s.counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

// ---------------------------------------------------------------------
// QuantileSketch vs a sorted-array oracle.

/**
 * Check every interesting quantile of @p sk against the exact sorted
 * sample set: the reported value must be the lower bound of the bucket
 * holding the true rank value, which implies the documented error
 * bound (exact below linear_max, relative error < 2^(1-sub_bits)
 * above it).
 */
void
expectSketchMatches(const QuantileSketch &sk,
                    std::vector<std::uint64_t> sorted)
{
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sk.count(), sorted.size());
    std::uint64_t sum = 0, mx = 0;
    for (std::uint64_t v : sorted) {
        sum += v;
        mx = std::max(mx, v);
    }
    EXPECT_EQ(sk.sum(), sum);
    EXPECT_EQ(sk.max(), mx);

    const std::pair<std::uint64_t, std::uint64_t> fracs[] = {
        {1, 100}, {25, 100}, {50, 100}, {90, 100},
        {99, 100}, {999, 1000}, {1, 1},
    };
    for (auto [num, den] : fracs) {
        std::uint64_t target =
            (num * sorted.size() + den - 1) / den;
        if (target < 1)
            target = 1;
        const std::uint64_t x = sorted[target - 1];
        const std::uint64_t q = sk.quantile(num, den);
        SCOPED_TRACE("q=" + std::to_string(num) + "/" +
                     std::to_string(den) + " true=" + std::to_string(x));
        // Exactly the lower bound of the true value's bucket...
        EXPECT_EQ(q, QuantileSketch::lowerBound(QuantileSketch::bucketOf(x)));
        // ...which implies the documented error bounds.
        EXPECT_LE(q, x);
        if (x < QuantileSketch::linear_max)
            EXPECT_EQ(q, x);
        else
            EXPECT_LT((x - q) * (1ull << (QuantileSketch::sub_bits - 1)),
                      x);
    }
}

TEST(QuantileSketch, AllEqualSamplesAreExactlyRepresented)
{
    for (const std::uint64_t v : {0ull, 37ull, 63ull, 64ull, 1000003ull}) {
        QuantileSketch sk;
        std::vector<std::uint64_t> ref(200, v);
        for (std::uint64_t s : ref)
            sk.sample(s);
        SCOPED_TRACE("v=" + std::to_string(v));
        expectSketchMatches(sk, ref);
        // All-equal input: every quantile is the same bucket bound.
        EXPECT_EQ(sk.quantile(1, 100), sk.quantile(999, 1000));
    }
}

TEST(QuantileSketch, MonotoneRampMatchesSortedArray)
{
    QuantileSketch sk;
    std::vector<std::uint64_t> ref;
    for (std::uint64_t i = 0; i < 2000; ++i)
        ref.push_back(i * 977 + 1);
    for (std::uint64_t v : ref)
        sk.sample(v);
    expectSketchMatches(sk, ref);
}

TEST(QuantileSketch, AdversarialSpikeKeepsTailAccurate)
{
    // 990 tiny samples and a 10-sample spike six orders of magnitude
    // out: p99 and p999 must land in the spike, p50 must stay exact.
    QuantileSketch sk;
    std::vector<std::uint64_t> ref;
    for (unsigned i = 0; i < 990; ++i)
        ref.push_back(10);
    for (unsigned i = 0; i < 10; ++i)
        ref.push_back(1000000000ull + i * 12345);
    for (std::uint64_t v : ref)
        sk.sample(v);
    expectSketchMatches(sk, ref);
    EXPECT_EQ(sk.quantile(50, 100), 10u);
    EXPECT_GT(sk.quantile(991, 1000), 900000000ull);
}

TEST(QuantileSketch, ExactBelowLinearMax)
{
    // Every value below 2^sub_bits has a private bucket: round-trip is
    // exact by construction.
    for (std::uint64_t v = 0; v < QuantileSketch::linear_max; ++v)
        EXPECT_EQ(QuantileSketch::lowerBound(QuantileSketch::bucketOf(v)),
                  v);
}

TEST(QuantileSketch, MergeIsAssociativeAndMatchesSingleFeed)
{
    sim::Rng rng(99);
    QuantileSketch a, b, c, all;
    std::vector<std::uint64_t> ref;
    auto feed = [&](QuantileSketch &sk, unsigned n, std::uint64_t scale) {
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t v = rng.below(scale) + rng.below(64);
            sk.sample(v);
            all.sample(v);
            ref.push_back(v);
        }
    };
    feed(a, 300, 1ull << 20);
    feed(b, 500, 1ull << 34);
    feed(c, 200, 50);

    QuantileSketch ab_c = a, bc = b, a_bc = a;
    ab_c.merge(b);
    ab_c.merge(c);
    bc.merge(c);
    a_bc.merge(bc);

    expectSameSketch(ab_c, a_bc);
    expectSameSketch(ab_c, all);
    expectSketchMatches(ab_c, ref);
}

// ---------------------------------------------------------------------
// Load generator distribution sanity (chi-squared) and determinism.

TEST(ServeLoadGen, ZipfDrawsMatchStatedProbabilities)
{
    // Gray's generator is an approximation; the bound is generous but
    // still far below any broken-generator failure mode.
    apps::serve::ZipfGen zipf(16, 0.9);
    double total = 0;
    for (std::uint64_t i = 0; i < zipf.n(); ++i)
        total += zipf.prob(i);
    EXPECT_NEAR(total, 1.0, 1e-9);

    sim::Rng rng(12345);
    const unsigned N = 20000;
    std::array<std::uint64_t, 16> obs{};
    for (unsigned i = 0; i < N; ++i)
        ++obs[zipf.next(rng)];
    double chi2 = 0;
    for (std::uint64_t i = 0; i < zipf.n(); ++i) {
        const double e = N * zipf.prob(i);
        const double d = static_cast<double>(obs[i]) - e;
        chi2 += d * d / e;
    }
    EXPECT_LT(chi2, 100.0) << "zipf chi-squared (df=15): " << chi2;
    // Popularity must be monotone in rank for the head of the
    // distribution (sampling noise allows tail inversions).
    EXPECT_GT(obs[0], obs[1]);
    EXPECT_GT(obs[1], obs[4]);
}

TEST(ServeLoadGen, ThetaZeroIsUniform)
{
    apps::serve::ZipfGen zipf(32, 0.0);
    sim::Rng rng(777);
    const unsigned N = 16000;
    std::array<std::uint64_t, 32> obs{};
    for (unsigned i = 0; i < N; ++i)
        ++obs[zipf.next(rng)];
    const double e = N / 32.0;
    double chi2 = 0;
    for (const std::uint64_t o : obs) {
        const double d = static_cast<double>(o) - e;
        chi2 += d * d / e;
    }
    EXPECT_LT(chi2, 80.0) << "uniform chi-squared (df=31): " << chi2;
}

TEST(ServeLoadGen, PoissonGapsAreExponential)
{
    apps::serve::LoadSpec spec;
    spec.seed = 11;
    spec.requests_per_node = 4000;
    spec.mean_gap_cycles = 800;
    apps::serve::ZipfGen zipf(1ull << spec.keys_log2, spec.zipf_theta);
    const auto sched = apps::serve::buildSchedule(spec, zipf, 0);
    ASSERT_EQ(sched.size(), spec.requests_per_node);

    // Gaps binned at the exponential distribution's octiles: expected
    // counts are uniform, so chi-squared (df=7) catches both a wrong
    // mean and a wrong shape.
    const double mean = static_cast<double>(spec.mean_gap_cycles);
    std::array<double, 7> bound;
    for (unsigned i = 1; i <= 7; ++i)
        bound[i - 1] = -mean * std::log(1.0 - i / 8.0);
    std::array<std::uint64_t, 8> obs{};
    std::uint64_t prev = 0, total = 0;
    for (const auto &rq : sched) {
        ASSERT_GE(rq.arrival, prev);
        const std::uint64_t gap = rq.arrival - prev;
        prev = rq.arrival;
        total += gap;
        unsigned b = 0;
        while (b < 7 && static_cast<double>(gap) > bound[b])
            ++b;
        ++obs[b];
    }
    const double e = sched.size() / 8.0;
    double chi2 = 0;
    for (const std::uint64_t o : obs) {
        const double d = static_cast<double>(o) - e;
        chi2 += d * d / e;
    }
    EXPECT_LT(chi2, 40.0) << "exponential-gap chi-squared (df=7): " << chi2;
    const double got_mean =
        static_cast<double>(total) / static_cast<double>(sched.size());
    EXPECT_NEAR(got_mean, mean, 0.1 * mean);
}

TEST(ServeLoadGen, SchedulesAreSeedDeterministicAndPerNode)
{
    apps::serve::LoadSpec spec;
    spec.seed = 21;
    spec.requests_per_node = 64;
    apps::serve::ZipfGen zipf(1ull << spec.keys_log2, spec.zipf_theta);
    const auto a = apps::serve::buildSchedule(spec, zipf, 3);
    const auto b = apps::serve::buildSchedule(spec, zipf, 3);
    const auto c = apps::serve::buildSchedule(spec, zipf, 4);
    ASSERT_EQ(a.size(), b.size());
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].rank, b[i].rank);
        EXPECT_EQ(a[i].is_write, b[i].is_write);
        differs |= a[i].rank != c[i].rank || a[i].arrival != c[i].arrival;
    }
    EXPECT_TRUE(differs) << "node 3 and node 4 drew identical schedules";
}

TEST(ServeLoadGen, PermuteKeyIsABijection)
{
    const unsigned bits = 10;
    std::vector<bool> seen(1u << bits, false);
    for (std::uint64_t x = 0; x < (1u << bits); ++x) {
        const std::uint64_t y = apps::serve::permuteKey(x, bits, 0xfeedULL);
        ASSERT_LT(y, 1u << bits);
        ASSERT_FALSE(seen[y]) << "collision at " << x;
        seen[y] = true;
    }
}

// ---------------------------------------------------------------------
// End-to-end: oracle matrix, fast-path invariance, deterministic replay.

TEST(ServeCheck, PassesOracleAcrossVariantsFastPathAndStoreMode)
{
    sim::setQuiet(true);
    for (const auto &m : kModes) {
        for (const bool shared : {true, false}) {
            apps::ServeApp w[2] = {apps::ServeApp(tinyParams(shared)),
                                   apps::ServeApp(tinyParams(shared))};
            RunResult r[2];
            for (int fast = 0; fast < 2; ++fast) {
                SysConfig cfg = modeCfg(m, 4);
                cfg.fast_path = fast != 0;
                // runOnce also runs the host-replay validate().
                r[fast] = harness::runOnce(cfg, w[fast]);
            }
            SCOPED_TRACE(std::string(m.tag) +
                         (shared ? "/shared" : "/partitioned"));
            // The fast path is a host-side optimization: the simulated
            // run - request logs included - must be bit-identical.
            expectIdenticalRuns(r[0], r[1]);
            expectSameLogs(w[0], w[1], 4);
            expectSameSketch(w[0].latencySketch(), w[1].latencySketch());
        }
    }
}

TEST(ServeCheck, ReplayIsBitIdenticalAcrossRuns)
{
    sim::setQuiet(true);
    apps::ServeApp w[2] = {apps::ServeApp(tinyParams(true)),
                           apps::ServeApp(tinyParams(true))};
    RunResult r[2];
    for (int i = 0; i < 2; ++i)
        r[i] = harness::runOnce(modeCfg(kModes[1], 4), w[i]);
    expectIdenticalRuns(r[0], r[1]);
    expectSameLogs(w[0], w[1], 4);
    expectSameSketch(w[0].latencySketch(), w[1].latencySketch());
}

TEST(ServeCheck, EnginePoolWidthDoesNotChangeResults)
{
    // The same three serving jobs through a 1-wide and a 3-wide
    // ExperimentEngine pool: results must be bit-identical (this is
    // what makes NCP2_JOBS a pure wall-clock knob for fig18).
    sim::setQuiet(true);
    auto makeJobs = []() {
        std::vector<harness::Job> jobs;
        for (const auto &m : {kModes[0], kModes[1], kModes[2]}) {
            harness::Job j;
            j.label = m.tag;
            j.cfg = modeCfg(m, 4);
            j.workload = []() {
                return std::make_unique<apps::ServeApp>(tinyParams(true));
            };
            jobs.push_back(std::move(j));
        }
        return jobs;
    };
    const auto serial = harness::ExperimentEngine(1).runAll(makeJobs());
    const auto pooled = harness::ExperimentEngine(3).runAll(makeJobs());
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].label);
        EXPECT_EQ(serial[i].label, pooled[i].label);
        expectIdenticalRuns(serial[i].run, pooled[i].run);
    }
}

// ---------------------------------------------------------------------
// The parallel executor: the partitioned store must replay bit-
// identically; the shared store must decline and run serial.

TEST(ServePdes, PartitionedStoreLogsAreBitIdentical)
{
    sim::setQuiet(true);
    for (const auto &m : {kModes[0], kModes[1]}) {
        apps::ServeApp w[2] = {apps::ServeApp(tinyParams(false)),
                               apps::ServeApp(tinyParams(false))};
        RunResult r[2];
        for (int par = 0; par < 2; ++par) {
            SysConfig cfg = modeCfg(m, 4);
            cfg.pdes_workers = par ? 2 : 1;
            r[par] = harness::runOnce(cfg, w[par]);
        }
        SCOPED_TRACE(m.tag);
        // Everything the workload observes is bit-identical: request
        // logs, every sketch, traffic, protocol counters. Only the
        // closing-barrier finish tick may drift by a contention tie
        // (see DESIGN.md), so exec_ticks gets a tolerance, not
        // equality.
        expectSameLogs(w[0], w[1], 4);
        expectSameSketch(w[0].latencySketch(), w[1].latencySketch());
        EXPECT_EQ(r[0].app_stats.flat(), r[1].app_stats.flat());
        EXPECT_EQ(r[0].net.messages, r[1].net.messages);
        EXPECT_EQ(r[0].net.bytes, r[1].net.bytes);
        for (const char *key :
             {"tmk.barriers", "tmk.intervals", "tmk.write_faults",
              "tmk.write_notices"}) {
            EXPECT_EQ(r[0].stats.value(key), r[1].stats.value(key)) << key;
        }
        const double s = static_cast<double>(r[0].exec_ticks);
        const double p = static_cast<double>(r[1].exec_ticks);
        EXPECT_LT(std::abs(s - p), 0.02 * s)
            << "serial " << r[0].exec_ticks << " vs parallel "
            << r[1].exec_ticks;
    }
}

TEST(ServePdes, SharedStoreDeclinesAndMatchesSerialExactly)
{
    // The shared store's output depends on contended-lock grant order,
    // the one documented PDES host race, so Workload::pdesSafe()
    // declines: a pdes_workers=2 run must be THE serial run, tick for
    // tick.
    sim::setQuiet(true);
    apps::ServeApp w[2] = {apps::ServeApp(tinyParams(true)),
                           apps::ServeApp(tinyParams(true))};
    RunResult r[2];
    for (int par = 0; par < 2; ++par) {
        SysConfig cfg = modeCfg(kModes[0], 4);
        cfg.pdes_workers = par ? 2 : 1;
        r[par] = harness::runOnce(cfg, w[par]);
    }
    expectIdenticalRuns(r[0], r[1]);
    expectSameLogs(w[0], w[1], 4);
}

// ---------------------------------------------------------------------
// Closed-loop accounting and trace reconstruction.

TEST(ServeCheck, ClosedLoopAccountsEveryRequest)
{
    sim::setQuiet(true);
    apps::ServeApp::Params prm = tinyParams(true);
    prm.load.arrival = apps::serve::Arrival::closed;
    apps::ServeApp w(prm);
    const RunResult r = harness::runOnce(modeCfg(kModes[0], 4), w);

    const std::uint64_t expect_reqs = 4ull * prm.load.requests_per_node;
    const auto *reqs = counter(r.app_stats, "requests");
    const auto *reads = counter(r.app_stats, "reads");
    const auto *writes = counter(r.app_stats, "writes");
    ASSERT_TRUE(reqs && reads && writes);
    EXPECT_EQ(reqs->value, static_cast<double>(expect_reqs));
    EXPECT_EQ(reads->value + writes->value,
              static_cast<double>(expect_reqs));
    EXPECT_EQ(w.latencySketch().count(), expect_reqs);
    std::uint64_t logged = 0;
    for (unsigned n = 0; n < 4; ++n) {
        logged += w.log(n).size();
        for (const auto &rq : w.log(n)) {
            // Closed loop still queues: with S streams per node, a
            // client's issue tick can land while the node's CPU is
            // serving another stream. Only ordering is guaranteed.
            EXPECT_LE(rq.arrival, rq.start);
            EXPECT_LE(rq.start, rq.done);
        }
    }
    EXPECT_EQ(logged, expect_reqs);
}

TEST(ServeTrace, RequestRecordsReconstructTheLatencySketches)
{
    // Rebuild every per-node latency sketch and the global one purely
    // from the req_* trace records; they must match the app's online
    // sketches bucket for bucket. (tools/trace_summary.py --requests
    // does the same reconstruction host-side against the JSON trace.)
    sim::setQuiet(true);
    apps::ServeApp w(tinyParams(true));
    SysConfig cfg = modeCfg(kModes[0], 4);
    cfg.trace_capacity = 1u << 16;
    const RunResult r = harness::runOnce(cfg, w);
    ASSERT_EQ(r.trace_dropped, 0u);

    struct Req
    {
        std::uint64_t enq = 0, start = 0, done = 0;
        unsigned seen = 0;
    };
    std::map<std::pair<std::uint32_t, std::uint64_t>, Req> reqs;
    for (const auto &rec : r.trace) {
        if (rec.kind == sim::TraceKind::req_enqueue) {
            reqs[{rec.node, rec.arg}].enq = rec.tick;
            reqs[{rec.node, rec.arg}].seen |= 1;
        } else if (rec.kind == sim::TraceKind::req_start) {
            reqs[{rec.node, rec.arg}].start = rec.tick;
            reqs[{rec.node, rec.arg}].seen |= 2;
        } else if (rec.kind == sim::TraceKind::req_done) {
            reqs[{rec.node, rec.arg}].done = rec.tick;
            reqs[{rec.node, rec.arg}].seen |= 4;
        }
    }

    QuantileSketch lat;
    std::array<std::uint64_t, 4> per_node{};
    for (const auto &[id, rq] : reqs) {
        ASSERT_EQ(rq.seen, 7u) << "incomplete req triple";
        ASSERT_LE(rq.enq, rq.start);
        ASSERT_LE(rq.start, rq.done);
        lat.sample(rq.done - rq.enq);
        ++per_node[id.first];
    }
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_EQ(per_node[n], w.log(n).size());
    expectSameSketch(lat, w.latencySketch());
    EXPECT_EQ(lat.quantile(50, 100), w.latencySketch().quantile(50, 100));
    EXPECT_EQ(lat.quantile(99, 100), w.latencySketch().quantile(99, 100));
    EXPECT_EQ(lat.quantile(999, 1000),
              w.latencySketch().quantile(999, 1000));
}

// ---------------------------------------------------------------------
// Regression: the AURC fast path once forwarded cached lock ownership
// while the requester was still paying its acquire latency, so two
// nodes could hold the same lock (ncp2 assert in aurc.cc). A read-
// heavy shared store under AURC+prefetch is exactly the traffic that
// tripped it.

TEST(ServeCheck, AurcFastPathLockOwnershipRegression)
{
    sim::setQuiet(true);
    apps::ServeApp::Params prm = tinyParams(true);
    prm.load.keys_log2 = 6;
    prm.load.requests_per_node = 24;
    prm.load.read_pct = 95;
    for (int fast = 0; fast < 2; ++fast) {
        apps::ServeApp w(prm);
        SysConfig cfg = modeCfg(kModes[3], 4); // AURC + prefetch
        cfg.fast_path = fast != 0;
        harness::runOnce(cfg, w); // oracle + validate must stay silent
    }
}

} // namespace
