/**
 * @file
 * Tests for the 256-1024-node scaling machinery: sparse interval-clock
 * deltas vs the dense VectorClock reference, the combining-tree barrier
 * vs the flat manager barrier, the hierarchical (clustered) mesh's
 * PDES lookahead bound, and the scale-related knob validation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/torture.hh"
#include "aurc/aurc.hh"
#include "dsm/system.hh"
#include "dsm/vclock.hh"
#include "harness/knobs.hh"
#include "net/mesh.hh"
#include "sim/rng.hh"
#include "tests/workload_helpers.hh"
#include "tmk/treadmarks.hh"

using namespace dsm;

namespace
{

VectorClock
randomClock(sim::Rng &rng, unsigned n, unsigned lo, unsigned span)
{
    VectorClock v(n);
    for (unsigned q = 0; q < n; ++q)
        v[q] = lo + static_cast<IntervalSeq>(rng.below(span));
    return v;
}

SysConfig
scaleCfg(unsigned procs, bool sparse, unsigned radix, unsigned cluster)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    cfg.sparse_clocks = sparse;
    cfg.barrier_radix = radix;
    cfg.mesh_cluster = cluster;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// sparse clock deltas vs the dense reference
// ---------------------------------------------------------------------

TEST(SparseClock, DeltaAppliedToBaseIsDenseMerge)
{
    sim::Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(63));
        // Arbitrary concurrent clocks: the delta only describes the
        // target's lead, so apply-to-base must equal the dense merge.
        const VectorClock base = randomClock(rng, n, 0, 20);
        const VectorClock target = randomClock(rng, n, 0, 20);
        VectorClock dense = base;
        dense.merge(target);

        ClockDelta d;
        clockDelta(base, target, d);
        VectorClock sparse = base;
        applyDelta(sparse, d);
        ASSERT_EQ(sparse, dense) << "trial " << trial;

        // Entries are ascending by proc and strictly (from, to].
        for (std::size_t i = 0; i < d.entries.size(); ++i) {
            ASSERT_LT(d.entries[i].from, d.entries[i].to);
            ASSERT_EQ(d.entries[i].from, base[d.entries[i].proc]);
            ASSERT_EQ(d.entries[i].to, target[d.entries[i].proc]);
            if (i)
                ASSERT_LT(d.entries[i - 1].proc, d.entries[i].proc);
        }
    }
}

TEST(SparseClock, DominanceAfterApplyMatchesDense)
{
    sim::Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(30));
        const VectorClock base = randomClock(rng, n, 0, 10);
        const VectorClock target = randomClock(rng, n, 0, 10);
        ClockDelta d;
        clockDelta(base, target, d);
        VectorClock merged = base;
        applyDelta(merged, d);
        EXPECT_TRUE(target.dominatedBy(merged));
        EXPECT_TRUE(base.dominatedBy(merged));
        // An empty delta means base already dominated target.
        if (d.empty())
            EXPECT_TRUE(target.dominatedBy(base));
    }
}

TEST(SparseClock, NarrowDeltaIsExactForDominatingReceivers)
{
    // The barrier-release situation: the manager computes one base
    // delta (watermark -> final) and narrows it per receiver. Exact
    // whenever the receiver dominates the watermark, which every
    // barrier participant does (each merged the previous final clock).
    sim::Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(63));
        const VectorClock watermark = randomClock(rng, n, 5, 10);
        VectorClock final_vt = watermark;
        for (unsigned q = 0; q < n; ++q)
            final_vt[q] += static_cast<IntervalSeq>(rng.below(6));
        // watermark <= recv <= final, componentwise.
        VectorClock recv(n);
        for (unsigned q = 0; q < n; ++q)
            recv[q] = watermark[q] +
                      static_cast<IntervalSeq>(
                          rng.below(final_vt[q] - watermark[q] + 1));

        ClockDelta base, narrow, direct;
        clockDelta(watermark, final_vt, base);
        narrowDelta(base, recv, narrow);
        clockDelta(recv, final_vt, direct);
        ASSERT_EQ(narrow.entries.size(), direct.entries.size());
        for (std::size_t i = 0; i < narrow.entries.size(); ++i) {
            EXPECT_EQ(narrow.entries[i].proc, direct.entries[i].proc);
            EXPECT_EQ(narrow.entries[i].from, direct.entries[i].from);
            EXPECT_EQ(narrow.entries[i].to, direct.entries[i].to);
        }

        VectorClock dense = recv;
        dense.merge(final_vt);
        VectorClock sparse = recv;
        applyDelta(sparse, narrow);
        EXPECT_EQ(sparse, dense);
    }
}

// ---------------------------------------------------------------------
// sparse clocks / tree barrier inside whole simulations
// ---------------------------------------------------------------------

TEST(ScaleSim, SparseClocksAreBitIdentical)
{
    // Host-representation change only: simulated results must not move
    // by a single tick, for either protocol.
    sim::setQuiet(true);
    for (const bool aurc_proto : {false, true}) {
        sim::Tick ticks[2];
        std::uint64_t msgs[2];
        for (const bool sparse : {false, true}) {
            testutil::StencilWorkload w(2048, 3);
            System sys(scaleCfg(8, sparse, 0, 0),
                       aurc_proto ? aurc::makeAurc(false)
                                  : tmk::makeTreadMarks({}));
            const RunResult r = sys.run(w);
            ticks[sparse] = r.exec_ticks;
            msgs[sparse] = r.net.messages;
        }
        EXPECT_EQ(ticks[0], ticks[1]) << "aurc=" << aurc_proto;
        EXPECT_EQ(msgs[0], msgs[1]) << "aurc=" << aurc_proto;
    }
}

TEST(ScaleSim, DegenerateTreeBarrierIsBitIdenticalToFlat)
{
    // radix >= nprocs collapses the tree to root-with-all-leaves: the
    // same message sizes, charges and ordering as the flat manager
    // barrier, so results must be bit-identical.
    sim::setQuiet(true);
    sim::Tick ticks[2];
    std::uint64_t msgs[2], bytes[2];
    const unsigned radixes[2] = {0, 64};
    for (int i = 0; i < 2; ++i) {
        testutil::StencilWorkload w(2048, 3);
        System sys(scaleCfg(8, true, radixes[i], 0),
                   tmk::makeTreadMarks({}));
        const RunResult r = sys.run(w);
        ticks[i] = r.exec_ticks;
        msgs[i] = r.net.messages;
        bytes[i] = r.net.bytes;
    }
    EXPECT_EQ(ticks[0], ticks[1]);
    EXPECT_EQ(msgs[0], msgs[1]);
    EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(ScaleSim, TreeBarrierEquivalentToFlatUnderRandomizedArrivals)
{
    // The Torture workload randomizes per-proc op programs (and so
    // barrier arrival orders) from the seed. Across seeds and radixes
    // the tree must complete the same number of barrier episodes as
    // the flat reference and pass both the workload's own validation
    // and the LRC conformance oracle; timing may legitimately differ
    // (the tree is a different simulated machine).
    sim::setQuiet(true);
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        apps::Torture::Params prm;
        prm.seed = seed;
        prm.rounds = 5;

        std::uint64_t flat_barriers = 0;
        for (const unsigned radix : {0u, 2u, 3u, 8u}) {
            apps::Torture w(prm);
            SysConfig cfg = scaleCfg(16, true, radix, 0);
            cfg.check = true; // LRC oracle validates every interval
            cfg.seed = seed;
            System sys(cfg, tmk::makeTreadMarks({}));
            const RunResult r = sys.run(w);
            ASSERT_GT(r.exec_ticks, 0u);
            const std::uint64_t episodes = r.stats.value("tmk.barriers");
            ASSERT_GT(episodes, 0u);
            if (radix == 0)
                flat_barriers = episodes;
            else
                EXPECT_EQ(episodes, flat_barriers)
                    << "seed " << seed << " radix " << radix;
        }
    }
}

TEST(ScaleSim, TreeBarrierWorksWhenProcsNotAPowerOfRadix)
{
    sim::setQuiet(true);
    for (const unsigned procs : {5u, 7u, 13u}) {
        for (const unsigned radix : {2u, 3u}) {
            testutil::StencilWorkload w(1024, 2);
            System sys(scaleCfg(procs, true, radix, 0),
                       tmk::makeTreadMarks({}));
            EXPECT_GT(sys.run(w).exec_ticks, 0u)
                << "procs " << procs << " radix " << radix;
        }
    }
}

// ---------------------------------------------------------------------
// hierarchical mesh
// ---------------------------------------------------------------------

TEST(HierMesh, FlatNormalizationIsExact)
{
    // cluster_size 0, 1 and >= num_nodes are all the flat mesh; every
    // pairwise uncontended latency must agree with the flat object.
    const unsigned n = 12;
    net::MeshNetwork flat(n, net::NetTiming{});
    for (const unsigned cs : {0u, 1u, 12u, 64u}) {
        net::MeshNetwork m(n, net::NetTiming{}, cs);
        EXPECT_EQ(m.clusterSize(), 0u) << "cs=" << cs;
        for (sim::NodeId s = 0; s < n; ++s)
            for (sim::NodeId d = 0; d < n; ++d)
                ASSERT_EQ(m.uncontendedLatency(s, d, 128),
                          flat.uncontendedLatency(s, d, 128))
                    << "cs=" << cs << " " << s << "->" << d;
        EXPECT_EQ(m.minCrossLatency(), flat.minCrossLatency());
    }
}

TEST(HierMesh, MinCrossLatencyBoundsEveryPairBruteForce)
{
    // The parallel executor's lookahead must lower-bound every ordered
    // cross pair at zero payload - verified by brute force over
    // cluster shapes, including non-square and ragged ones, and with a
    // slower backbone.
    net::NetTiming slow_backbone;
    slow_backbone.switch_cycles = 8;
    slow_backbone.wire_cycles = 6;
    for (const unsigned n : {6u, 8u, 16u, 33u, 64u}) {
        for (const unsigned cs : {2u, 4u, 5u, 16u}) {
            for (const bool slow : {false, true}) {
                net::MeshNetwork mesh(n, net::NetTiming{}, cs,
                                      slow ? slow_backbone
                                           : net::NetTiming{});
                const sim::Cycles bound = mesh.minCrossLatency();
                ASSERT_GT(bound, 0u);
                sim::Cycles best = sim::tick_never;
                for (sim::NodeId s = 0; s < n; ++s) {
                    for (sim::NodeId d = 0; d < n; ++d) {
                        if (s == d)
                            continue;
                        const sim::Cycles lat =
                            mesh.uncontendedLatency(s, d, 0);
                        ASSERT_LE(bound, lat)
                            << "n=" << n << " cs=" << cs << " slow="
                            << slow << " " << s << "->" << d;
                        if (lat < best)
                            best = lat;
                    }
                }
                // The cached bound is tight, not merely sound.
                EXPECT_EQ(bound, best)
                    << "n=" << n << " cs=" << cs << " slow=" << slow;
            }
        }
    }
}

TEST(HierMesh, DeliveryNeverBeatsTheBound)
{
    // With contention and payloads, send() must still never deliver
    // across nodes earlier than departure + minCrossLatency().
    net::MeshNetwork mesh(32, net::NetTiming{}, 8);
    const sim::Cycles bound = mesh.minCrossLatency();
    sim::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const auto s = static_cast<sim::NodeId>(rng.below(32));
        auto d = static_cast<sim::NodeId>(rng.below(32));
        if (s == d)
            d = static_cast<sim::NodeId>((d + 1) % 32);
        const sim::Tick dep = static_cast<sim::Tick>(i % 11);
        const sim::Tick del =
            mesh.send(dep, s, d, static_cast<std::uint32_t>(rng.below(4096)));
        ASSERT_GE(del, dep + bound);
    }
}

TEST(HierMesh, CrossClusterChargesEverySegment)
{
    // A cross-cluster message pays intra + outer + intra segments
    // store-and-forward, so it is strictly slower than either an
    // intra-cluster hop or a gateway-to-gateway hop.
    net::MeshNetwork mesh(16, net::NetTiming{}, 4);
    const sim::Cycles intra = mesh.uncontendedLatency(0, 1, 64);
    const sim::Cycles gateways = mesh.uncontendedLatency(0, 4, 64);
    const sim::Cycles cross = mesh.uncontendedLatency(1, 5, 64);
    EXPECT_GT(cross, intra);
    EXPECT_GT(cross, gateways);
}

TEST(HierMesh, ClusteredSimulationRunsAndIsDeterministic)
{
    sim::setQuiet(true);
    sim::Tick runs[2];
    for (int i = 0; i < 2; ++i) {
        testutil::StencilWorkload w(2048, 3);
        System sys(scaleCfg(16, true, 4, 4), tmk::makeTreadMarks({}));
        runs[i] = sys.run(w).exec_ticks;
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_GT(runs[0], 0u);
}

// ---------------------------------------------------------------------
// knob validation
// ---------------------------------------------------------------------

namespace
{

/** setenv/unsetenv guard restoring the prior value on destruction. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *v = ::getenv(name);
        had_ = v != nullptr;
        if (had_)
            old_ = v;
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    void set(const char *v) { ::setenv(name_, v, 1); }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

TEST(ScaleKnobs, ProcsBeyondSupportedMaximumIsFatal)
{
    EnvGuard procs("NCP2_PROCS");
    procs.set("1025");
    EXPECT_THROW(harness::knobs::procs(), std::runtime_error);
    procs.set("1024");
    EXPECT_EQ(harness::knobs::procs(), 1024u);
}

TEST(ScaleKnobs, RadixAndClusterParseAndDefault)
{
    EnvGuard radix("NCP2_BARRIER_RADIX");
    EnvGuard cluster("NCP2_MESH_CLUSTER");
    EnvGuard sparse("NCP2_SPARSE_VT");
    radix.set("");
    cluster.set("");
    sparse.set("");
    EXPECT_EQ(harness::knobs::barrierRadix(), 0u);
    EXPECT_EQ(harness::knobs::meshCluster(), 0u);
    EXPECT_TRUE(harness::knobs::sparseClocks());
    radix.set("8");
    cluster.set("16");
    sparse.set("0");
    EXPECT_EQ(harness::knobs::barrierRadix(), 8u);
    EXPECT_EQ(harness::knobs::meshCluster(), 16u);
    EXPECT_FALSE(harness::knobs::sparseClocks());
    cluster.set("1"); // clusters of one node are the flat mesh
    EXPECT_EQ(harness::knobs::meshCluster(), 0u);
    radix.set("nope");
    EXPECT_THROW(harness::knobs::barrierRadix(), std::runtime_error);
}

TEST(ScaleKnobs, ScaleNodesListParsesAndBounds)
{
    EnvGuard nodes("NCP2_SCALE_NODES");
    nodes.set("");
    const std::vector<unsigned> def = harness::knobs::scaleNodes();
    ASSERT_EQ(def.size(), 4u);
    EXPECT_EQ(def.back(), 1024u);
    nodes.set("16,256");
    const std::vector<unsigned> two = harness::knobs::scaleNodes();
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], 16u);
    EXPECT_EQ(two[1], 256u);
    nodes.set("2048");
    EXPECT_THROW(harness::knobs::scaleNodes(), std::runtime_error);
}
