/**
 * @file
 * Application end-to-end tests: every paper workload must compute a
 * validated result under every protocol/overlap-mode combination. These
 * are the strongest correctness tests in the suite - a coherence bug
 * anywhere in the stack makes an application's self-validation fail.
 */

#include <gtest/gtest.h>

#include "apps/apps.hh"
#include "harness/runner.hh"

using namespace dsm;

namespace
{

struct Combo
{
    const char *app;
    const char *proto; // "Base", "I", "I+D", "P", "I+P", "I+P+D",
                       // "AURC", "AURC+P"
};

SysConfig
configFor(const std::string &proto, unsigned procs)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 16u << 20;
    if (proto.rfind("AURC", 0) == 0) {
        cfg.protocol = ProtocolKind::aurc;
        cfg.mode.prefetch = proto == "AURC+P";
    } else {
        cfg.protocol = ProtocolKind::treadmarks;
        cfg.mode.offload = proto.find('I') != std::string::npos;
        cfg.mode.hw_diffs = proto.find('D') != std::string::npos;
        cfg.mode.prefetch = proto.find('P') != std::string::npos;
    }
    return cfg;
}

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string s = std::string(info.param.app) + "_" + info.param.proto;
    for (auto &c : s)
        if (c == '+')
            c = '_';
    return s;
}

} // namespace

class AppProtocol : public ::testing::TestWithParam<Combo>
{
};

TEST_P(AppProtocol, ComputesValidatedResult)
{
    sim::setQuiet(true);
    const Combo combo = GetParam();
    auto w = apps::make(combo.app, apps::Scale::tiny);
    const SysConfig cfg = configFor(combo.proto, 8);
    // runOnce() invokes the workload's self-validation; any coherence
    // bug throws.
    const RunResult r = harness::runOnce(cfg, *w);
    EXPECT_GT(r.exec_ticks, 0u);
    EXPECT_GT(r.total().get(Cat::busy), 0u);
}

static std::vector<Combo>
allCombos()
{
    std::vector<Combo> v;
    static const char *protos[] = {"Base", "I",    "I+D",   "P",
                                   "I+P",  "I+P+D", "AURC", "AURC+P"};
    for (const auto &app : apps::names())
        for (const char *p : protos)
            v.push_back({app.c_str(), p});
    return v;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppProtocol,
                         ::testing::ValuesIn(allCombos()), comboName);

TEST(Apps, FactoryRejectsUnknownNames)
{
    EXPECT_THROW(apps::make("nonesuch", apps::Scale::tiny),
                 std::runtime_error);
}

TEST(Apps, NamesListsThePaperSuite)
{
    EXPECT_EQ(apps::names().size(), 6u);
    EXPECT_EQ(apps::names().front(), "TSP");
    EXPECT_EQ(apps::names().back(), "Ocean");
}
