/**
 * @file
 * Miniature SPMD workloads used across the test suite to exercise the
 * protocols end to end: if coherence is wrong, these compute wrong
 * values.
 */

#ifndef NCP2_TESTS_WORKLOAD_HELPERS_HH
#define NCP2_TESTS_WORKLOAD_HELPERS_HH

#include <cstdint>

#include "dsm/system.hh"
#include "dsm/workload.hh"
#include "sim/logging.hh"

namespace testutil
{

/** Every processor increments a lock-protected counter `rounds` times. */
class CounterWorkload : public dsm::Workload
{
  public:
    explicit CounterWorkload(unsigned rounds) : rounds_(rounds) {}

    std::string name() const override { return "counter"; }

    void
    plan(dsm::GlobalHeap &heap, const dsm::SysConfig &) override
    {
        counter_ = heap.allocPages(8);
    }

    void
    run(dsm::Proc &p) override
    {
        for (unsigned r = 0; r < rounds_; ++r) {
            p.lock(0);
            const auto v = p.get<std::uint64_t>(counter_);
            p.compute(20);
            p.put<std::uint64_t>(counter_, v + 1);
            p.unlock(0);
            p.compute(100);
        }
        p.barrier(0);
    }

    void
    validate(dsm::System &sys) override
    {
        const auto v = sys.readGlobal<std::uint64_t>(counter_);
        const std::uint64_t want =
            static_cast<std::uint64_t>(rounds_) * sys.nprocs();
        if (v != want) {
            ncp2_fatal("counter mismatch: got %llu want %llu",
                       static_cast<unsigned long long>(v),
                       static_cast<unsigned long long>(want));
        }
    }

    sim::GAddr counterAddr() const { return counter_; }

  private:
    unsigned rounds_;
    sim::GAddr counter_ = 0;
};

/**
 * Barrier-synchronized neighbour exchange: iteratively each processor
 * updates its slice of an array from the previous iteration's neighbour
 * values (a 1-D stencil). Exercises multi-writer pages, diffs across
 * barriers, and cold page fetches.
 */
class StencilWorkload : public dsm::Workload
{
  public:
    StencilWorkload(unsigned cells, unsigned iters)
        : cells_(cells), iters_(iters) {}

    std::string name() const override { return "stencil"; }

    void
    plan(dsm::GlobalHeap &heap, const dsm::SysConfig &) override
    {
        a_.base = heap.allocPages(cells_ * 8);
        b_.base = heap.allocPages(cells_ * 8);
    }

    void
    run(dsm::Proc &p) override
    {
        const unsigned n = p.nprocs();
        const unsigned lo = cells_ * p.id() / n;
        const unsigned hi = cells_ * (p.id() + 1) / n;

        if (p.id() == 0) {
            for (unsigned i = 0; i < cells_; ++i)
                a_.put(p, i, static_cast<std::int64_t>(i % 7));
        }
        p.barrier(0);

        const dsm::GArray<std::int64_t> *src = &a_, *dst = &b_;
        for (unsigned it = 0; it < iters_; ++it) {
            for (unsigned i = lo; i < hi; ++i) {
                const std::int64_t left = i ? src->get(p, i - 1) : 0;
                const std::int64_t right =
                    i + 1 < cells_ ? src->get(p, i + 1) : 0;
                const std::int64_t self = src->get(p, i);
                dst->put(p, i, left + right + self);
                p.compute(4);
            }
            p.barrier(1 + it);
            std::swap(src, dst);
        }
        final_is_a_ = (src == &a_);
    }

    void
    validate(dsm::System &sys) override
    {
        // Host-side reference computation.
        std::vector<std::int64_t> ref(cells_), tmp(cells_);
        for (unsigned i = 0; i < cells_; ++i)
            ref[i] = static_cast<std::int64_t>(i % 7);
        for (unsigned it = 0; it < iters_; ++it) {
            for (unsigned i = 0; i < cells_; ++i) {
                const std::int64_t left = i ? ref[i - 1] : 0;
                const std::int64_t right = i + 1 < cells_ ? ref[i + 1] : 0;
                tmp[i] = left + right + ref[i];
            }
            ref.swap(tmp);
        }
        const dsm::GArray<std::int64_t> &fin = final_is_a_ ? a_ : b_;
        for (unsigned i = 0; i < cells_; ++i) {
            const auto v = sys.readGlobal<std::int64_t>(fin.at(i));
            if (v != ref[i]) {
                ncp2_fatal("stencil mismatch at %u: got %lld want %lld",
                           i, static_cast<long long>(v),
                           static_cast<long long>(ref[i]));
            }
        }
    }

  private:
    unsigned cells_;
    unsigned iters_;
    dsm::GArray<std::int64_t> a_, b_;
    bool final_is_a_ = false;
};

/**
 * Producer/consumer token passing through locks: checks that lock
 * transfer carries coherence (migratory sharing).
 */
class TokenWorkload : public dsm::Workload
{
  public:
    explicit TokenWorkload(unsigned rounds) : rounds_(rounds) {}

    std::string name() const override { return "token"; }

    void
    plan(dsm::GlobalHeap &heap, const dsm::SysConfig &) override
    {
        slots_.base = heap.allocPages(64 * 8);
    }

    void
    run(dsm::Proc &p) override
    {
        const unsigned n = p.nprocs();
        // Each round, every processor adds its id into every slot of a
        // shared page under a lock; total is checkable.
        for (unsigned r = 0; r < rounds_; ++r) {
            p.lock(7);
            for (unsigned s = 0; s < 8; ++s) {
                const auto v = slots_.get(p, s);
                slots_.put(p, s, v + static_cast<std::int64_t>(p.id() + 1));
            }
            p.unlock(7);
            p.compute(50 + 13 * p.id());
        }
        p.barrier(99);
        (void)n;
    }

    void
    validate(dsm::System &sys) override
    {
        std::int64_t per_slot = 0;
        for (unsigned q = 0; q < sys.nprocs(); ++q)
            per_slot += static_cast<std::int64_t>(q + 1) *
                        static_cast<std::int64_t>(rounds_);
        for (unsigned s = 0; s < 8; ++s) {
            const auto v = sys.readGlobal<std::int64_t>(slots_.at(s));
            if (v != per_slot) {
                ncp2_fatal("token slot %u mismatch: got %lld want %lld", s,
                           static_cast<long long>(v),
                           static_cast<long long>(per_slot));
            }
        }
    }

  private:
    unsigned rounds_;
    dsm::GArray<std::int64_t> slots_;
};

} // namespace testutil

#endif // NCP2_TESTS_WORKLOAD_HELPERS_HH
