/**
 * @file
 * Cross-module integration tests: determinism of whole simulations,
 * breakdown-accounting invariants, watchdogs, config sweep plumbing,
 * and protocol-level comparative properties the paper's conclusions
 * rest on (hardware diffs cheaper than software, write-through traffic
 * visible to the snoop, prefetch priority behaviour).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "apps/apps.hh"
#include "aurc/aurc.hh"
#include "dsm/system.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "sim/trace.hh"
#include "tests/workload_helpers.hh"
#include "tmk/treadmarks.hh"

using namespace dsm;

namespace
{

SysConfig
cfg8()
{
    SysConfig cfg;
    cfg.num_procs = 8;
    cfg.heap_bytes = 8u << 20;
    return cfg;
}

} // namespace

TEST(Integration, SimulationsAreBitDeterministic)
{
    sim::setQuiet(true);
    std::vector<sim::Tick> runs;
    for (int i = 0; i < 3; ++i) {
        testutil::StencilWorkload w(2048, 3);
        System sys(cfg8(), tmk::makeTreadMarks({}));
        runs.push_back(sys.run(w).exec_ticks);
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[1], runs[2]);
}

TEST(Integration, AurcIsDeterministicToo)
{
    sim::setQuiet(true);
    std::vector<sim::Tick> runs;
    for (int i = 0; i < 2; ++i) {
        testutil::TokenWorkload w(5);
        System sys(cfg8(), aurc::makeAurc(false));
        runs.push_back(sys.run(w).exec_ticks);
    }
    EXPECT_EQ(runs[0], runs[1]);
}

TEST(Integration, WatchdogCatchesRunaways)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(2048, 3);
    SysConfig cfg = cfg8();
    cfg.max_ticks = 1000; // absurdly small
    System sys(cfg, tmk::makeTreadMarks({}));
    EXPECT_THROW(sys.run(w), std::runtime_error);
}

TEST(Integration, PerProcessorBreakdownsCoverExecTime)
{
    sim::setQuiet(true);
    testutil::CounterWorkload w(8);
    System sys(cfg8(), tmk::makeTreadMarks({}));
    const RunResult r = sys.run(w);
    for (const auto &bd : r.bd) {
        // No category may exceed the run, and the sum must roughly
        // account for each processor's finish time.
        EXPECT_LE(bd.get(Cat::busy), r.exec_ticks);
        EXPECT_LE(bd.total(), r.exec_ticks + r.exec_ticks / 50);
    }
}

TEST(Integration, MoreProcessorsMoveMoreMessages)
{
    sim::setQuiet(true);
    std::uint64_t prev = 0;
    for (unsigned procs : {2u, 4u, 8u}) {
        testutil::StencilWorkload w(2048, 3);
        SysConfig cfg = cfg8();
        cfg.num_procs = procs;
        System sys(cfg, tmk::makeTreadMarks({}));
        const RunResult r = sys.run(w);
        EXPECT_GT(r.net.messages, prev);
        prev = r.net.messages;
    }
}

TEST(Integration, HardwareDiffsShrinkWireBytes)
{
    // Hardware diffs also ship unchanged-but-written words, so they
    // move at least as many *diff words*; but they eliminate twin
    // traffic on the bus. Check the controller actually worked:
    sim::setQuiet(true);
    testutil::StencilWorkload w(4096, 4);
    SysConfig cfg = cfg8();
    cfg.mode.offload = cfg.mode.hw_diffs = true;
    System sys(cfg, tmk::makeTreadMarks(cfg.mode));
    sys.run(w);
    std::uint64_t dma = 0;
    for (unsigned i = 0; i < 8; ++i)
        dma += sys.node(i).controller.dmaBusyCycles();
    EXPECT_GT(dma, 0u);
}

TEST(Integration, OffloadUsesTheControllerCore)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w1(2048, 3), w2(2048, 3);

    SysConfig base = cfg8();
    System s1(base, tmk::makeTreadMarks(base.mode));
    s1.run(w1);
    std::uint64_t base_cmds = 0;
    for (unsigned i = 0; i < 8; ++i)
        base_cmds += s1.node(i).controller.commandsRun();

    SysConfig off = cfg8();
    off.mode.offload = true;
    System s2(off, tmk::makeTreadMarks(off.mode));
    s2.run(w2);
    std::uint64_t off_cmds = 0;
    for (unsigned i = 0; i < 8; ++i)
        off_cmds += s2.node(i).controller.commandsRun();

    EXPECT_EQ(base_cmds, 0u); // Base never touches the controller
    EXPECT_GT(off_cmds, 0u);
}

TEST(Integration, NetworkBandwidthKnobSlowsBothProtocols)
{
    // The fig-14 *mechanism* at miniature scale: strangling the network
    // measurably slows both protocols. (The comparative claim - AURC
    // suffering more - is a workload-scale property checked by the
    // fig14 bench, not asserted here.)
    sim::setQuiet(true);
    auto run = [](bool aurc, double bw) {
        testutil::StencilWorkload w(4096, 4);
        SysConfig cfg;
        cfg.num_procs = 8;
        cfg.heap_bytes = 8u << 20;
        cfg.net.setBandwidthMBs(bw);
        if (aurc) {
            System sys(cfg, aurc::makeAurc(false));
            return sys.run(w).exec_ticks;
        }
        cfg.mode.offload = cfg.mode.hw_diffs = true;
        System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        return sys.run(w).exec_ticks;
    };
    const double tm_ratio =
        static_cast<double>(run(false, 20)) / static_cast<double>(run(false, 200));
    const double au_ratio =
        static_cast<double>(run(true, 20)) / static_cast<double>(run(true, 200));
    EXPECT_GT(tm_ratio, 1.0);
    EXPECT_GT(au_ratio, 1.0);
}

TEST(Integration, RunResultStatsArePopulated)
{
    sim::setQuiet(true);
    testutil::CounterWorkload w(4);
    System sys(cfg8(), tmk::makeTreadMarks({}));
    const RunResult r = sys.run(w);
    EXPECT_TRUE(r.stats.has("tmk.lock_acquires"));
    EXPECT_GE(r.stats.value("tmk.lock_acquires"), 32.0);
    // The snapshot keeps the group name so JSON emission can key on it.
    EXPECT_EQ(r.stats.name, "tmk");
}

TEST(Integration, HarnessProtocolFactoryHonoursConfig)
{
    SysConfig cfg = cfg8();
    cfg.protocol = ProtocolKind::aurc;
    auto p = harness::makeProtocol(cfg);
    EXPECT_EQ(p->name(), "AURC");
    cfg.mode.prefetch = true;
    EXPECT_EQ(harness::makeProtocol(cfg)->name(), "AURC+P");
    cfg.protocol = ProtocolKind::treadmarks;
    cfg.mode.offload = cfg.mode.hw_diffs = true;
    EXPECT_EQ(harness::makeProtocol(cfg)->name(), "TreadMarks/I+P+D");
}

class QuantumSweep : public ::testing::TestWithParam<sim::Cycles>
{
};

TEST_P(QuantumSweep, ResultsAreValidAtAnyFlushQuantum)
{
    // The fiber time-quantum trades host speed for interleaving
    // precision; coherence must hold at any setting.
    sim::setQuiet(true);
    testutil::TokenWorkload w(4);
    SysConfig cfg = cfg8();
    cfg.time_quantum = GetParam();
    System sys(cfg, tmk::makeTreadMarks({}));
    EXPECT_GT(sys.run(w).exec_ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweep,
                         ::testing::Values(1u, 50u, 200u, 1000u, 10000u));

class HeapPressure : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HeapPressure, StencilValidatesAcrossSizes)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(GetParam(), 3);
    System sys(cfg8(), tmk::makeTreadMarks({}));
    EXPECT_GT(sys.run(w).exec_ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeapPressure,
                         ::testing::Values(64u, 512u, 4096u, 16384u));

// ---------------------------------------------------------------------
// Fast-path equivalence: the access-descriptor cache (cfg.fast_path) is
// a host-time optimization only. Every simulated observable - execution
// time, per-processor cycle attribution, network traffic, protocol
// stats - must be bit-identical with it forced off. The CI runs these
// under TSan with NDEBUG undefined, so the debug staleness cross-checks
// in the fast path execute too.

namespace
{

void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.exec_ticks, b.exec_ticks);
    ASSERT_EQ(a.bd.size(), b.bd.size());
    for (std::size_t i = 0; i < a.bd.size(); ++i) {
        for (unsigned c = 0; c < num_cats; ++c) {
            EXPECT_EQ(a.bd[i].cycles[c], b.bd[i].cycles[c])
                << "proc " << i << " cat "
                << catName(static_cast<Cat>(c));
        }
        EXPECT_EQ(a.bd[i].diff_op_cycles, b.bd[i].diff_op_cycles)
            << "proc " << i;
        EXPECT_EQ(a.bd[i].diff_op_ctrl_cycles, b.bd[i].diff_op_ctrl_cycles)
            << "proc " << i;
    }
    EXPECT_EQ(a.net.messages, b.net.messages);
    EXPECT_EQ(a.net.bytes, b.net.bytes);
    EXPECT_EQ(a.net.latency_cycles, b.net.latency_cycles);
    EXPECT_EQ(a.net.contention_cycles, b.net.contention_cycles);
    EXPECT_EQ(a.stats.flat(), b.stats.flat());
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.trace_dropped, b.trace_dropped);
}

struct ModeParam
{
    const char *tag; ///< gtest-safe name
    ProtocolKind kind;
    bool offload, hw_diffs, prefetch;
};

SysConfig
modeCfg(const ModeParam &m, bool fast)
{
    SysConfig cfg = cfg8();
    cfg.protocol = m.kind;
    cfg.mode.offload = m.offload;
    cfg.mode.hw_diffs = m.hw_diffs;
    cfg.mode.prefetch = m.prefetch;
    cfg.fast_path = fast;
    return cfg;
}

} // namespace

class FastPathModes : public ::testing::TestWithParam<ModeParam>
{
};

TEST_P(FastPathModes, StencilIsBitIdenticalEitherPath)
{
    sim::setQuiet(true);
    RunResult r[2];
    for (int fast = 0; fast < 2; ++fast) {
        testutil::StencilWorkload w(2048, 3);
        SysConfig cfg = modeCfg(GetParam(), fast != 0);
        System sys(cfg, harness::makeProtocol(cfg));
        r[fast] = sys.run(w);
    }
    expectIdenticalRuns(r[0], r[1]);
}

TEST_P(FastPathModes, TokenIsBitIdenticalEitherPath)
{
    sim::setQuiet(true);
    RunResult r[2];
    for (int fast = 0; fast < 2; ++fast) {
        testutil::TokenWorkload w(4);
        SysConfig cfg = modeCfg(GetParam(), fast != 0);
        System sys(cfg, harness::makeProtocol(cfg));
        r[fast] = sys.run(w);
    }
    expectIdenticalRuns(r[0], r[1]);
}

INSTANTIATE_TEST_SUITE_P(
    FastPathSweep, FastPathModes,
    ::testing::Values(
        ModeParam{"TmkBase", ProtocolKind::treadmarks, false, false, false},
        ModeParam{"TmkI", ProtocolKind::treadmarks, true, false, false},
        ModeParam{"TmkID", ProtocolKind::treadmarks, true, true, false},
        ModeParam{"TmkP", ProtocolKind::treadmarks, false, false, true},
        ModeParam{"TmkIP", ProtocolKind::treadmarks, true, false, true},
        ModeParam{"TmkIPD", ProtocolKind::treadmarks, true, true, true},
        ModeParam{"Aurc", ProtocolKind::aurc, false, false, false},
        ModeParam{"AurcP", ProtocolKind::aurc, false, false, true}),
    [](const ::testing::TestParamInfo<ModeParam> &info) {
        return info.param.tag;
    });

// ---------------------------------------------------------------------
// Parallel-executor equivalence: SysConfig::pdes_workers > 1 runs the
// same simulation on the conservative-window parallel scheduler. Every
// *structural* observable - message counts, bytes on the wire, the full
// protocol stat tree - must match the serial reference executor
// exactly. Timing is equivalent but not guaranteed bit-identical: when
// two messages from different nodes contend for the same link in the
// same lookahead window, the deferred drain reserves links in
// (departure, src) order where the serial executor reserves in global
// event order, so contention cycles can shift slightly (DESIGN.md,
// "Parallel in-run execution"). The figure benches happen to be
// bit-identical under 2 and 4 workers; this stencil deliberately
// synchronizes all nodes tightly enough to hit the residual case, so
// it pins down what is and is not allowed to drift. AURC is included
// deliberately - it is not shard-safe, so System must force it onto the
// serial scheduler (trivially identical) rather than crash or diverge.

namespace
{

void
expectEquivalentRuns(const RunResult &serial, const RunResult &par)
{
    EXPECT_EQ(serial.net.messages, par.net.messages);
    EXPECT_EQ(serial.net.bytes, par.net.bytes);
    EXPECT_EQ(serial.stats.flat(), par.stats.flat());
    ASSERT_EQ(serial.bd.size(), par.bd.size());
    // Timing: same order of magnitude, small contention-order drift.
    const double s = static_cast<double>(serial.exec_ticks);
    const double p = static_cast<double>(par.exec_ticks);
    EXPECT_LT(std::abs(s - p), 0.02 * s)
        << "serial " << serial.exec_ticks << " vs parallel "
        << par.exec_ticks;
}

} // namespace

class PdesExecutor : public ::testing::TestWithParam<unsigned>
{
  protected:
    static RunResult
    runOne(const ModeParam &m, unsigned workers, bool token)
    {
        SysConfig cfg = modeCfg(m, true);
        cfg.pdes_workers = workers;
        System sys(cfg, harness::makeProtocol(cfg));
        if (token) {
            testutil::TokenWorkload w(4);
            return sys.run(w);
        }
        testutil::StencilWorkload w(2048, 3);
        return sys.run(w);
    }
};

TEST_P(PdesExecutor, StencilStructureMatchesSerial)
{
    sim::setQuiet(true);
    for (const ModeParam &m :
         {ModeParam{"TmkBase", ProtocolKind::treadmarks, false, false,
                    false},
          ModeParam{"TmkIPD", ProtocolKind::treadmarks, true, true,
                    true}}) {
        const RunResult serial = runOne(m, 1, false);
        const RunResult par = runOne(m, GetParam(), false);
        SCOPED_TRACE(m.tag);
        expectEquivalentRuns(serial, par);
    }
}

TEST_P(PdesExecutor, LockTrafficMatchesSerialExactly)
{
    // TokenWorkload is lock-dominated: it drives the grant/forward
    // machinery and the cross-window lock rendezvous hardest, and its
    // traffic is sparse enough that no same-window link tie arises -
    // so here the parallel run must be bit-identical, not merely
    // equivalent.
    sim::setQuiet(true);
    for (const ModeParam &m :
         {ModeParam{"TmkBase", ProtocolKind::treadmarks, false, false,
                    false},
          ModeParam{"TmkIPD", ProtocolKind::treadmarks, true, true,
                    true}}) {
        const RunResult serial = runOne(m, 1, true);
        const RunResult par = runOne(m, GetParam(), true);
        SCOPED_TRACE(m.tag);
        expectIdenticalRuns(serial, par);
    }
}

TEST_P(PdesExecutor, UnsafeProtocolFallsBackToSerial)
{
    // AURC inherits pdesSafe() == false: any worker count must produce
    // the serial run, bit for bit.
    sim::setQuiet(true);
    const ModeParam aurc{"Aurc", ProtocolKind::aurc, false, false, false};
    const RunResult serial = runOne(aurc, 1, false);
    const RunResult par = runOne(aurc, GetParam(), false);
    expectIdenticalRuns(serial, par);
}

INSTANTIATE_TEST_SUITE_P(Workers, PdesExecutor,
                         ::testing::Values(2u, 4u, 8u));

namespace
{

/**
 * Each processor fills its slice of a shared array and then sums the
 * whole array, using either per-element get/put or the bulk
 * getBlock/putBlock APIs. Both forms must produce bit-identical
 * simulations (accessRange's contract).
 */
class SliceSumWorkload : public dsm::Workload
{
  public:
    SliceSumWorkload(bool bulk, unsigned elems)
        : bulk_(bulk), elems_(elems) {}

    std::string name() const override { return "slicesum"; }

    void
    plan(GlobalHeap &heap, const SysConfig &) override
    {
        arr_.base = heap.allocPages(elems_ * 8);
        out_.base = heap.allocPages(64 * 8);
    }

    void
    run(Proc &p) override
    {
        const unsigned n = p.nprocs();
        const unsigned lo = elems_ * p.id() / n;
        const unsigned hi = elems_ * (p.id() + 1) / n;

        std::vector<std::int64_t> mine(hi - lo);
        for (unsigned i = lo; i < hi; ++i)
            mine[i - lo] = static_cast<std::int64_t>(i) * 3 + 1;
        if (bulk_) {
            p.putBlock(arr_.at(lo), mine.data(), mine.size());
        } else {
            for (unsigned i = lo; i < hi; ++i)
                arr_.put(p, i, mine[i - lo]);
        }
        p.barrier(0);

        std::int64_t sum = 0;
        if (bulk_) {
            std::vector<std::int64_t> all(elems_);
            p.getBlock(arr_.at(0), all.data(), all.size());
            for (const std::int64_t v : all)
                sum += v;
        } else {
            for (unsigned i = 0; i < elems_; ++i)
                sum += arr_.get(p, i);
        }
        out_.put(p, p.id(), sum);
        p.barrier(1);
    }

    void
    validate(System &sys) override
    {
        std::int64_t want = 0;
        for (unsigned i = 0; i < elems_; ++i)
            want += static_cast<std::int64_t>(i) * 3 + 1;
        for (unsigned q = 0; q < sys.nprocs(); ++q) {
            const auto v = sys.readGlobal<std::int64_t>(out_.at(q));
            if (v != want)
                ncp2_fatal("slice sum mismatch on proc %u", q);
        }
    }

  private:
    bool bulk_;
    unsigned elems_;
    GArray<std::int64_t> arr_, out_;
};

} // namespace

TEST(FastPath, BulkAccessMatchesElementLoopExactly)
{
    // All four combinations of {element loop, bulk API} x {fast path
    // off, on} must simulate identically.
    sim::setQuiet(true);
    RunResult runs[4];
    unsigned i = 0;
    for (const bool bulk : {false, true}) {
        for (const bool fast : {false, true}) {
            SliceSumWorkload w(bulk, 4096);
            SysConfig cfg = cfg8();
            cfg.fast_path = fast;
            System sys(cfg, tmk::makeTreadMarks(cfg.mode));
            runs[i++] = sys.run(w);
        }
    }
    expectIdenticalRuns(runs[0], runs[1]);
    expectIdenticalRuns(runs[0], runs[2]);
    expectIdenticalRuns(runs[0], runs[3]);
}

// ---------------------------------------------------------------------
// Tracing: the event ring must be deterministic, count overflow drops
// exactly, and its cumulative breakdown snapshots must agree with the
// run's aggregate Breakdown rows.

namespace
{

SysConfig
tracedCfg(std::size_t capacity)
{
    SysConfig cfg = cfg8();
    cfg.trace_capacity = capacity;
    return cfg;
}

} // namespace

TEST(Trace, RepeatedRunsProduceIdenticalTraces)
{
    sim::setQuiet(true);
    RunResult r[2];
    for (int i = 0; i < 2; ++i) {
        testutil::StencilWorkload w(2048, 3);
        System sys(tracedCfg(1u << 18), tmk::makeTreadMarks({}));
        r[i] = sys.run(w);
    }
    ASSERT_FALSE(r[0].trace.empty());
    EXPECT_EQ(r[0].trace_dropped, 0u);
    EXPECT_EQ(r[0].trace, r[1].trace);
    // Emission order is not globally tick-sorted (fibers emit at their
    // lag-adjusted local time), but each node's CPU track must be
    // monotone: a fiber never emits into its own past.
    std::vector<sim::Tick> last_cpu(8, 0);
    for (const sim::TraceRecord &t : r[0].trace) {
        if (t.engine != sim::TraceEngine::cpu)
            continue;
        ASSERT_GE(t.tick, last_cpu[t.node]);
        last_cpu[t.node] = t.tick;
    }
}

TEST(Trace, IdenticalAcrossHarnessWorkerCounts)
{
    sim::setQuiet(true);
    auto jobs = []() {
        std::vector<harness::Job> js;
        for (unsigned n = 0; n < 3; ++n) {
            js.push_back({"stencil/" + std::to_string(n),
                          tracedCfg(1u << 16),
                          []() {
                              return std::make_unique<
                                  testutil::StencilWorkload>(1024, 2);
                          },
                          true});
        }
        return js;
    };
    const auto narrow = harness::ExperimentEngine(1).runAll(jobs());
    const auto wide = harness::ExperimentEngine(4).runAll(jobs());
    ASSERT_EQ(narrow.size(), wide.size());
    for (std::size_t i = 0; i < narrow.size(); ++i) {
        ASSERT_FALSE(narrow[i].run.trace.empty()) << "job " << i;
        EXPECT_EQ(narrow[i].run.trace, wide[i].run.trace) << "job " << i;
        EXPECT_EQ(narrow[i].run.trace_dropped, wide[i].run.trace_dropped);
    }
}

TEST(Trace, RingOverflowKeepsNewestAndCountsDrops)
{
    sim::setQuiet(true);
    RunResult big, small;
    {
        testutil::StencilWorkload w(2048, 3);
        System sys(tracedCfg(1u << 18), tmk::makeTreadMarks({}));
        big = sys.run(w);
    }
    {
        testutil::StencilWorkload w(2048, 3);
        System sys(tracedCfg(64), tmk::makeTreadMarks({}));
        small = sys.run(w);
    }
    ASSERT_EQ(big.trace_dropped, 0u);
    ASSERT_GT(big.trace.size(), 64u);
    ASSERT_EQ(small.trace.size(), 64u);
    EXPECT_EQ(small.trace_dropped, big.trace.size() - 64u);
    // The survivors are exactly the newest 64 records, oldest first.
    const std::vector<sim::TraceRecord> tail(big.trace.end() - 64,
                                             big.trace.end());
    EXPECT_EQ(small.trace, tail);
}

TEST(Trace, BreakdownSnapshotsMatchAggregates)
{
    // The cross-check trace_summary.py automates for the figure benches,
    // in-process on a small Water run: the final bd_snapshot per
    // (proc, category) must equal the aggregate Breakdown, and snapshots
    // must never decrease (per-epoch deltas are non-negative).
    sim::setQuiet(true);
    auto water = apps::make("Water", apps::Scale::tiny);
    SysConfig cfg = tracedCfg(1u << 20);
    cfg.mode.offload = cfg.mode.hw_diffs = true;
    System sys(cfg, tmk::makeTreadMarks(cfg.mode));
    const RunResult r = sys.run(*water);
    ASSERT_EQ(r.trace_dropped, 0u);

    constexpr unsigned slots = num_cats + 2; // + diff_op, diff_op_ctrl
    std::vector<std::array<std::uint64_t, slots>> last(r.bd.size());
    std::vector<std::array<bool, slots>> seen(r.bd.size());
    for (auto &a : last)
        a.fill(0);
    for (auto &s : seen)
        s.fill(false);
    bool saw_epoch = false;
    for (const sim::TraceRecord &t : r.trace) {
        if (t.kind == sim::TraceKind::barrier_epoch)
            saw_epoch = true;
        if (t.kind != sim::TraceKind::bd_snapshot)
            continue;
        ASSERT_LT(t.node, last.size());
        ASSERT_LT(t.aux, slots);
        ASSERT_GE(t.arg, last[t.node][t.aux]) << "snapshot went backwards";
        last[t.node][t.aux] = t.arg;
        seen[t.node][t.aux] = true;
    }
    EXPECT_TRUE(saw_epoch);
    for (std::size_t p = 0; p < r.bd.size(); ++p) {
        for (unsigned c = 0; c < num_cats; ++c) {
            ASSERT_TRUE(seen[p][c]) << "proc " << p << " cat " << c;
            EXPECT_EQ(last[p][c], r.bd[p].cycles[c])
                << "proc " << p << " cat " << catName(static_cast<Cat>(c));
        }
        EXPECT_EQ(last[p][num_cats], r.bd[p].diff_op_cycles) << "proc " << p;
        EXPECT_EQ(last[p][num_cats + 1], r.bd[p].diff_op_ctrl_cycles)
            << "proc " << p;
    }
}
