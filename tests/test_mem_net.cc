/**
 * @file
 * Unit and property tests for the node memory system (cache, write
 * buffer, TLB, memory bus) and the mesh interconnect.
 */

#include <gtest/gtest.h>

#include "dsm/system.hh"
#include "dsm/workload.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "mem/tlb.hh"
#include "mem/write_buffer.hh"
#include "net/mesh.hh"
#include "sim/rng.hh"
#include "tmk/treadmarks.hh"

using namespace mem;

TEST(MainMemory, TableOneTiming)
{
    // Table 1: setup 10 cycles + 3 cycles/word => a 32-byte (8-word)
    // block takes 34 cycles uncontended.
    MainMemory m("m", MemoryTiming{});
    EXPECT_EQ(m.serviceTime(8), 34u);
    EXPECT_EQ(m.access(0, 8), 34u);
    EXPECT_EQ(m.access(0, 8), 68u); // bus contention serializes
}

TEST(Cache, ReadMissInstallsLine)
{
    Cache c;
    EXPECT_FALSE(c.accessRead(0x1000));
    EXPECT_TRUE(c.accessRead(0x1000));
    EXPECT_TRUE(c.accessRead(0x101C)); // same 32-byte line
    EXPECT_FALSE(c.accessRead(0x1020)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c(CacheGeometry{1024, 32}); // 32 lines
    EXPECT_FALSE(c.accessRead(0));
    EXPECT_FALSE(c.accessRead(1024)); // same index, different tag
    EXPECT_FALSE(c.accessRead(0));    // evicted
}

TEST(Cache, SnoopInvalidationDropsLines)
{
    Cache c;
    c.accessRead(0x2000);
    c.accessRead(0x2020);
    c.invalidateRange(0x2000, 64);
    EXPECT_FALSE(c.accessRead(0x2000));
    EXPECT_FALSE(c.accessRead(0x2020));
    EXPECT_EQ(c.snoopInvalidations(), 2u);
}

TEST(Cache, WriteThroughNoAllocate)
{
    Cache c;
    EXPECT_FALSE(c.accessWrite(0x3000)); // miss does not install
    EXPECT_FALSE(c.accessRead(0x3000));  // still a miss (fills now)
    EXPECT_TRUE(c.accessWrite(0x3000));  // present: updated in place
}

TEST(WriteBuffer, StallsOnlyWhenFull)
{
    MainMemory m("m", MemoryTiming{});
    WriteBuffer wb(4, m);
    // Four quick stores fill the buffer without stalling.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(wb.push(0), 0u);
    // The fifth must wait for the oldest drain (13 cycles/word via the
    // serialized bus: 10+3 each).
    EXPECT_GT(wb.push(0), 0u);
    EXPECT_EQ(wb.fullStalls(), 1u);
}

TEST(WriteBuffer, DrainsWhenIdle)
{
    MainMemory m("m", MemoryTiming{});
    WriteBuffer wb(4, m);
    wb.push(0);
    const sim::Tick drained = wb.drainedAt();
    EXPECT_EQ(drained, 13u);
    EXPECT_EQ(wb.push(1000), 0u); // long idle: no stall
}

TEST(Tlb, MissChargesFillAndInstalls)
{
    Tlb t(16, 100);
    EXPECT_EQ(t.access(5), 100u);
    EXPECT_EQ(t.access(5), 0u);
    EXPECT_EQ(t.access(5 + 16), 100u); // conflict in direct-mapped slot
    EXPECT_EQ(t.access(5), 100u);      // got evicted
}

TEST(Tlb, InvalidateForcesRefill)
{
    Tlb t(16, 100);
    t.access(7);
    t.invalidate(7);
    EXPECT_EQ(t.access(7), 100u);
}

TEST(Tlb, CountersTrackEvictionAndRefill)
{
    Tlb t(16, 100);
    EXPECT_EQ(t.access(3), 100u);      // cold miss installs
    EXPECT_EQ(t.access(3), 0u);        // hit
    EXPECT_EQ(t.access(3 + 16), 100u); // alias evicts the resident entry
    EXPECT_EQ(t.access(3 + 16), 0u);   // the new occupant hits
    EXPECT_EQ(t.access(3), 100u);      // refill after eviction
    EXPECT_EQ(t.hits(), 2u);
    EXPECT_EQ(t.misses(), 3u);
}

TEST(WriteBuffer, FullOccupancyStallArithmetic)
{
    // Exact drain arithmetic at full occupancy: single-word drains cost
    // 13 cycles (setup 10 + 3) and serialize through the bus, so four
    // stores at t=0 drain at 13/26/39/52. The fifth store must wait for
    // the t=13 drain, and each drain it triggers starts only when the
    // bus frees, pushing later slots out further (65/78/91).
    MainMemory m("m", MemoryTiming{});
    WriteBuffer wb(4, m);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(wb.push(0), 0u);
    EXPECT_EQ(wb.push(0), 13u);
    EXPECT_EQ(wb.push(0), 26u);
    EXPECT_EQ(wb.push(0), 39u);
    EXPECT_EQ(wb.stores(), 7u);
    EXPECT_EQ(wb.fullStalls(), 3u);
    EXPECT_EQ(wb.stallCycles(), 78u);
    EXPECT_EQ(wb.drainedAt(), 91u);
}

// ---------------------------------------------------------------------

namespace
{

/**
 * Processor 0 issues three puts with deliberately awkward alignment on
 * one page; everyone else idles. No synchronization follows, so the
 * snooped write-bit vector survives to be inspected after the run.
 */
class SnoopBitWorkload : public dsm::Workload
{
  public:
    std::string name() const override { return "snoopbits"; }

    void
    plan(dsm::GlobalHeap &heap, const dsm::SysConfig &cfg) override
    {
        base_ = heap.allocPages(cfg.page_bytes);
    }

    void
    run(dsm::Proc &p) override
    {
        if (p.id() != 0)
            return;
        p.put<std::uint64_t>(base_ + 8, 0x1122334455667788ull);
        p.put<std::uint16_t>(base_ + 6, 0xbeefu);    // high half of word 1
        p.put<std::uint16_t>(base_ + 4094, 0x7777u); // tail of the page
    }

    void validate(dsm::System &) override {}

    sim::GAddr base_ = 0;
};

} // namespace

TEST(SnoopBits, UnalignedPutsSpanTheRightWords)
{
    // The snoop logic marks every word a store touches: a put at byte
    // offset o of b bytes covers (o%4 + b + 3)/4 words starting at o/4,
    // so sub-word stores in a word's high half and multi-word stores
    // both land on the right bits. Both access paths must agree.
    sim::setQuiet(true);
    for (const bool fast : {false, true}) {
        SnoopBitWorkload w;
        dsm::SysConfig cfg;
        cfg.num_procs = 2;
        cfg.heap_bytes = 1u << 20;
        cfg.mode.offload = cfg.mode.hw_diffs = true; // arms write bits
        cfg.fast_path = fast;
        dsm::System sys(cfg, tmk::makeTreadMarks(cfg.mode));
        sys.run(w);

        const sim::PageId pid = w.base_ / cfg.page_bytes;
        const dsm::NodePage &pg = sys.node(0).pages.page(pid);
        ASSERT_FALSE(pg.write_bits.empty()) << "fast=" << fast;
        auto set = [&pg](unsigned word) {
            return (pg.write_bits[word >> 6] >> (word & 63)) & 1u;
        };
        // 8B @ 8 -> words 2,3; 2B @ 6 -> word 1; 2B @ 4094 -> word 1023.
        EXPECT_FALSE(set(0)) << "fast=" << fast;
        EXPECT_TRUE(set(1)) << "fast=" << fast;
        EXPECT_TRUE(set(2)) << "fast=" << fast;
        EXPECT_TRUE(set(3)) << "fast=" << fast;
        EXPECT_FALSE(set(4)) << "fast=" << fast;
        EXPECT_FALSE(set(1022)) << "fast=" << fast;
        EXPECT_TRUE(set(1023)) << "fast=" << fast;
        EXPECT_EQ(dsm::PageStore::writtenWords(pg), 4u) << "fast=" << fast;
    }
}

// ---------------------------------------------------------------------

using net::MeshNetwork;
using net::NetTiming;

TEST(Mesh, DefaultBandwidthMatchesPaper)
{
    NetTiming t;
    EXPECT_DOUBLE_EQ(t.bandwidthMBs(), 50.0); // 8-bit path, wire 2
    t.setBandwidthMBs(200);
    EXPECT_NEAR(t.bandwidthMBs(), 200.0, 1.0);
}

TEST(Mesh, HopCountIsManhattan)
{
    MeshNetwork mesh(16, NetTiming{});
    EXPECT_EQ(mesh.width(), 4u);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(mesh.hops(5, 10), 2u);
}

TEST(Mesh, LatencyGrowsWithDistanceAndSize)
{
    MeshNetwork mesh(16, NetTiming{});
    const auto near = mesh.uncontendedLatency(0, 1, 64);
    const auto far = mesh.uncontendedLatency(0, 15, 64);
    const auto big = mesh.uncontendedLatency(0, 1, 4096);
    EXPECT_LT(near, far);
    EXPECT_LT(near, big);
}

TEST(Mesh, ContentionDelaysSharedLinks)
{
    MeshNetwork mesh(16, NetTiming{});
    const sim::Tick first = mesh.send(0, 0, 3, 1024);
    const sim::Tick second = mesh.send(0, 0, 3, 1024);
    EXPECT_GT(second, first);
    EXPECT_GT(mesh.stats().contention_cycles, 0u);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    MeshNetwork mesh(16, NetTiming{});
    const sim::Tick a = mesh.send(0, 0, 1, 256);
    const sim::Tick b = mesh.send(0, 14, 15, 256);
    EXPECT_EQ(a - 0, b - 0); // same shape, no shared links
}

TEST(Mesh, NonSquareNodeCountsRouteSafely)
{
    // 8 nodes on a 3x3 grid: routes may cross the unattached position.
    MeshNetwork mesh(8, NetTiming{});
    sim::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const auto s = static_cast<sim::NodeId>(rng.below(8));
        const auto d = static_cast<sim::NodeId>(rng.below(8));
        const sim::Tick t = mesh.send(static_cast<sim::Tick>(i * 10), s,
                                      d, 128);
        ASSERT_GE(t, static_cast<sim::Tick>(i * 10));
    }
}

class MeshDelivery : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MeshDelivery, DeliveryNeverPrecedesUncontendedBound)
{
    // Property: with contention, delivery >= the uncontended latency.
    MeshNetwork mesh(GetParam(), NetTiming{});
    sim::Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        const auto s = static_cast<sim::NodeId>(rng.below(GetParam()));
        const auto d = static_cast<sim::NodeId>(rng.below(GetParam()));
        if (s == d)
            continue; // loop-back skips the fabric entirely
        const auto bytes = static_cast<std::uint32_t>(rng.below(4096));
        const sim::Tick dep = static_cast<sim::Tick>(i);
        const sim::Tick del = mesh.send(dep, s, d, bytes);
        ASSERT_GE(del, dep + mesh.uncontendedLatency(s, d, bytes));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshDelivery,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(Mesh, MinCrossLatencyBoundsEveryPair)
{
    // The parallel executor's lookahead window is minCrossLatency():
    // an event at T must not cause a remote event before T + L. That is
    // only sound if L really is a lower bound over every cross pair,
    // every payload, with or without contention.
    for (const unsigned n : {2u, 3u, 8u, 16u}) {
        MeshNetwork mesh(n, NetTiming{});
        const sim::Cycles bound = mesh.minCrossLatency();
        ASSERT_GT(bound, 0u) << "n=" << n;
        for (sim::NodeId s = 0; s < n; ++s) {
            for (sim::NodeId d = 0; d < n; ++d) {
                if (s == d)
                    continue;
                EXPECT_LE(bound, mesh.uncontendedLatency(s, d, 0))
                    << "n=" << n << " " << s << "->" << d;
            }
        }
        // Contention and payload only add latency.
        sim::Rng rng(n);
        for (int i = 0; i < 500; ++i) {
            const auto s = static_cast<sim::NodeId>(rng.below(n));
            auto d = static_cast<sim::NodeId>(rng.below(n));
            if (s == d)
                d = static_cast<sim::NodeId>((d + 1) % n);
            const sim::Tick dep = static_cast<sim::Tick>(i % 7);
            const sim::Tick del =
                mesh.send(dep, s, d,
                          static_cast<std::uint32_t>(rng.below(4096)));
            ASSERT_GE(del, dep + bound) << "n=" << n;
        }
    }
    // A single-node mesh has no cross traffic: no finite lookahead.
    MeshNetwork solo(1, NetTiming{});
    EXPECT_EQ(solo.minCrossLatency(), sim::tick_never);
}

TEST(Mesh, SelfSendTouchesNoLinks)
{
    MeshNetwork mesh(16, NetTiming{});
    // selfLatency() is the pure form of what send() charges loop-back.
    const sim::Tick del = mesh.send(100, 5, 5, 256);
    EXPECT_EQ(del, 100 + mesh.selfLatency(256));

    // Hammering loop-back must leave the fabric untouched: a later
    // cross message sees zero contention.
    for (int i = 0; i < 64; ++i)
        mesh.send(static_cast<sim::Tick>(i), 5, 5, 4096);
    EXPECT_EQ(mesh.stats().contention_cycles, 0u);
    const sim::Tick cross = mesh.send(0, 5, 6, 256);
    EXPECT_EQ(cross - 0, mesh.uncontendedLatency(5, 6, 256));
    EXPECT_EQ(mesh.stats().contention_cycles, 0u);
}

TEST(Mesh, ContendedLinkDeliversInFifoOrder)
{
    // Wormhole links are FIFO resources: messages injected on the same
    // route in departure order come out in that order, however large
    // the backlog grows.
    MeshNetwork mesh(16, NetTiming{});
    sim::Rng rng(7);
    sim::Tick prev = 0;
    for (int i = 0; i < 200; ++i) {
        const auto bytes = static_cast<std::uint32_t>(1 + rng.below(4096));
        const sim::Tick del =
            mesh.send(static_cast<sim::Tick>(i), 0, 15, bytes);
        ASSERT_GT(del, prev) << "message " << i << " overtook its elder";
        prev = del;
    }
}
