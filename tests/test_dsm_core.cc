/**
 * @file
 * Unit tests for the DSM core types: vector clocks, pages and diffs,
 * the heap allocator, the protocol controller's command queue and DMA
 * timing model, and the CPU breakdown accounting.
 */

#include <gtest/gtest.h>

#include "ctrl/controller.hh"
#include "dsm/config.hh"
#include "dsm/cpu.hh"
#include "dsm/heap.hh"
#include "dsm/page.hh"
#include "dsm/vclock.hh"
#include "sim/event_queue.hh"

using namespace dsm;

TEST(VectorClock, MergeIsComponentwiseMax)
{
    VectorClock a(4), b(4);
    a[0] = 3;
    a[2] = 1;
    b[0] = 1;
    b[1] = 5;
    a.merge(b);
    EXPECT_EQ(a[0], 3u);
    EXPECT_EQ(a[1], 5u);
    EXPECT_EQ(a[2], 1u);
    EXPECT_EQ(a[3], 0u);
}

TEST(VectorClock, DominationIsPartialOrder)
{
    VectorClock a(3), b(3);
    a[0] = 1;
    b[0] = 1;
    b[1] = 2;
    EXPECT_TRUE(a.dominatedBy(b));
    EXPECT_FALSE(b.dominatedBy(a));
    // Concurrent clocks dominate neither way.
    VectorClock c(3), d(3);
    c[0] = 1;
    d[1] = 1;
    EXPECT_FALSE(c.dominatedBy(d));
    EXPECT_FALSE(d.dominatedBy(c));
    EXPECT_TRUE(c.dominatedBy(c));
}

TEST(GlobalHeap, AlignsAndExhausts)
{
    GlobalHeap h(8192, 4096);
    EXPECT_EQ(h.alloc(10), 0u);
    EXPECT_EQ(h.alloc(1, 64), 64u);
    EXPECT_EQ(h.allocPages(1), 4096u);
    EXPECT_THROW(h.allocPages(4096), std::logic_error);
}

TEST(PageStore, MaterializeZeroFills)
{
    PageStore store(4096, 64 * 1024, 4);
    NodePage &p = store.materialize(3);
    EXPECT_TRUE(p.present());
    for (unsigned i = 0; i < 4096; ++i)
        ASSERT_EQ(p.data[i], 0);
    EXPECT_EQ(p.applied.size(), 4u);
}

TEST(PageStore, TwinDiffRoundTrip)
{
    PageStore store(4096, 64 * 1024, 4);
    NodePage &p = store.materialize(0);
    store.makeTwin(p);
    auto *w = reinterpret_cast<std::uint32_t *>(p.data.get());
    w[5] = 0xdead;
    w[1000] = 0xbeef;
    const Diff d = store.diffFromTwin(0, p);
    ASSERT_EQ(d.words(), 2u);
    EXPECT_EQ(d.idx[0], 5);
    EXPECT_EQ(d.val[0], 0xdeadu);
    EXPECT_EQ(d.idx[1], 1000);

    // Applying the diff to a fresh copy reproduces the words.
    NodePage &q = store.materialize(1);
    d.apply(q.data.get());
    auto *qw = reinterpret_cast<std::uint32_t *>(q.data.get());
    EXPECT_EQ(qw[5], 0xdeadu);
    EXPECT_EQ(qw[1000], 0xbeefu);
}

TEST(PageStore, BitVectorDiffTracksWrites)
{
    PageStore store(4096, 64 * 1024, 4);
    NodePage &p = store.materialize(0);
    store.armWriteBits(p);
    auto *w = reinterpret_cast<std::uint32_t *>(p.data.get());
    w[7] = 42;
    PageStore::snoopWrite(p, 7);
    // An unchanged-but-written word is still included (the hardware
    // does not compare values).
    PageStore::snoopWrite(p, 9);
    EXPECT_EQ(PageStore::writtenWords(p), 2u);
    const Diff d = store.diffFromBits(0, p);
    ASSERT_EQ(d.words(), 2u);
    EXPECT_EQ(d.idx[0], 7);
    EXPECT_EQ(d.val[0], 42u);
    EXPECT_EQ(d.idx[1], 9);
    EXPECT_EQ(d.val[1], 0u);
}

TEST(PageStore, SnoopIsInertWhenUnarmed)
{
    PageStore store(4096, 64 * 1024, 4);
    NodePage &p = store.materialize(0);
    PageStore::snoopWrite(p, 3); // no bit vector: must not crash
    EXPECT_TRUE(p.write_bits.empty());
}

// ---------------------------------------------------------------------

namespace
{

dsm::SysConfig
ctrlConfig()
{
    dsm::SysConfig cfg;
    return cfg;
}

} // namespace

TEST(Controller, HighPriorityOvertakesLow)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg = ctrlConfig();
    mem::MainMemory memory("m", cfg.memory);
    pcib::PciBus pci("p", cfg.pci);
    ctrl::Controller c(0, eq, cfg, memory, pci);

    std::vector<int> done_order;
    // Occupy the core, then queue low before high; high must run first.
    c.submit(ctrl::Priority::high, [](sim::Tick) { return 100; },
             [&](sim::Tick) { done_order.push_back(0); });
    c.submit(ctrl::Priority::low, [](sim::Tick) { return 10; },
             [&](sim::Tick) { done_order.push_back(2); });
    c.submit(ctrl::Priority::high, [](sim::Tick) { return 10; },
             [&](sim::Tick) { done_order.push_back(1); });
    eq.run();
    EXPECT_EQ(done_order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(c.commandsRun(), 3u);
}

TEST(Controller, ScanCyclesMatchPaper)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg = ctrlConfig();
    mem::MainMemory memory("m", cfg.memory);
    pcib::PciBus pci("p", cfg.pci);
    ctrl::Controller c(0, eq, cfg, memory, pci);
    // Section 3.1: ~200 cycles for an untouched 4KB page, ~2100 fully
    // written, linear in between.
    EXPECT_EQ(c.scanCycles(0), 200u);
    EXPECT_EQ(c.scanCycles(1024), 2100u);
    EXPECT_NEAR(static_cast<double>(c.scanCycles(512)), 1150.0, 2.0);
}

TEST(Controller, HardwareDiffBeatsSoftware)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg = ctrlConfig();
    mem::MainMemory memory("m", cfg.memory);
    pcib::PciBus pci("p", cfg.pci);
    ctrl::Controller c(0, eq, cfg, memory, pci);
    // The paper's comparison: ~7K processor cycles for a software diff
    // vs 200..2100 controller cycles (+DMA) for the hardware one.
    const sim::Cycles hw = c.dmaCreateDiff(0, 128);
    mem::MainMemory memory2("m2", cfg.memory);
    pcib::PciBus pci2("p2", cfg.pci);
    ctrl::Controller c2(0, eq, cfg, memory2, pci2);
    const sim::Cycles sw = c2.swCreateDiff(0, 128);
    EXPECT_LT(hw, sw);
    EXPECT_GE(sw, 7 * 1024u); // full-page comparison cost
}

// ---------------------------------------------------------------------

TEST(Cpu, AdvanceAccumulatesIntoBreakdown)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg;
    dsm::Cpu cpu(0, eq, cfg);
    bool finished = false;
    cpu.start([&]() {
        cpu.advance(100, dsm::Cat::busy);
        cpu.advance(50, dsm::Cat::data);
        finished = true;
    });
    eq.run();
    EXPECT_TRUE(finished);
    EXPECT_TRUE(cpu.finished());
    EXPECT_EQ(cpu.bd.get(dsm::Cat::busy), 100u);
    EXPECT_EQ(cpu.bd.get(dsm::Cat::data), 50u);
    EXPECT_EQ(cpu.finishTick(), 150u);
}

TEST(Cpu, BlockAttributesWaitToCategory)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg;
    dsm::Cpu cpu(0, eq, cfg);
    cpu.start([&]() {
        cpu.advance(10, dsm::Cat::busy);
        cpu.block(dsm::Cat::synch);
        cpu.advance(5, dsm::Cat::busy);
    });
    eq.schedule(500, [&]() { cpu.wake(); });
    eq.run();
    EXPECT_EQ(cpu.bd.get(dsm::Cat::synch), 490u);
    EXPECT_EQ(cpu.finishTick(), 505u);
}

TEST(Cpu, InterruptsStealVisibleTimeWhenRunning)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg;
    cfg.time_quantum = 50;
    dsm::Cpu cpu(0, eq, cfg);
    cpu.start([&]() {
        for (int i = 0; i < 10; ++i)
            cpu.advance(100, dsm::Cat::busy);
    });
    eq.schedule(120, [&]() { cpu.interrupt(400); });
    eq.run();
    EXPECT_EQ(cpu.bd.get(dsm::Cat::busy), 1000u);
    EXPECT_EQ(cpu.bd.get(dsm::Cat::ipc), 400u);
    EXPECT_EQ(cpu.finishTick(), 1400u);
}

TEST(Cpu, InterruptsHideUnderBlocking)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg;
    dsm::Cpu cpu(0, eq, cfg);
    cpu.start([&]() { cpu.block(dsm::Cat::data); });
    eq.schedule(100, [&]() { cpu.interrupt(200); }); // ends at 300
    eq.schedule(1000, [&]() { cpu.wake(); });        // long after
    eq.run();
    EXPECT_EQ(cpu.bd.get(dsm::Cat::ipc), 0u); // fully hidden
    EXPECT_EQ(cpu.ipcHiddenCycles(), 200u);
    EXPECT_EQ(cpu.finishTick(), 1000u);
}

TEST(Cpu, InterruptStillRunningDelaysWake)
{
    sim::EventQueue eq;
    dsm::SysConfig cfg;
    dsm::Cpu cpu(0, eq, cfg);
    cpu.start([&]() { cpu.block(dsm::Cat::data); });
    eq.schedule(90, [&]() { cpu.interrupt(200); }); // busy until 290
    eq.schedule(100, [&]() { cpu.wake(); });
    eq.run();
    EXPECT_EQ(cpu.bd.get(dsm::Cat::data), 100u);
    EXPECT_EQ(cpu.bd.get(dsm::Cat::ipc), 190u); // visible remainder
    EXPECT_EQ(cpu.finishTick(), 290u);
}

TEST(Config, BandwidthAndLatencyHelpers)
{
    dsm::SysConfig cfg;
    EXPECT_NEAR(cfg.memBandwidthMBs(), 94.1, 0.1);
    EXPECT_DOUBLE_EQ(cfg.memLatencyNs(), 100.0);
    cfg.setMemLatencyNs(200);
    EXPECT_EQ(cfg.memory.setup_cycles, 20u);
    dsm::SysConfig fresh;
    fresh.setMemBandwidthMBs(200);
    EXPECT_NEAR(fresh.memBandwidthMBs(), 200.0, 40.0);
}

TEST(Config, ModeLabels)
{
    dsm::OverlapMode m;
    EXPECT_EQ(m.label(), "Base");
    m.offload = true;
    EXPECT_EQ(m.label(), "I");
    m.hw_diffs = true;
    EXPECT_EQ(m.label(), "I+D");
    m.prefetch = true;
    EXPECT_EQ(m.label(), "I+P+D");
}

TEST(Breakdown, TotalsAndOthers)
{
    dsm::Breakdown b;
    b.add(dsm::Cat::busy, 10);
    b.add(dsm::Cat::other_tlb, 5);
    b.add(dsm::Cat::other_wb, 7);
    EXPECT_EQ(b.total(), 22u);
    EXPECT_EQ(b.others(), 12u);
    dsm::Breakdown c;
    c.add(dsm::Cat::busy, 1);
    b += c;
    EXPECT_EQ(b.get(dsm::Cat::busy), 11u);
}
