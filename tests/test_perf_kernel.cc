/**
 * @file
 * Tests for the allocation-free simulation kernel: calendar-queue
 * equivalence against the original heap scheduler, the inline-storage
 * event type, the 64-bit diff fast path against its scalar oracle, and
 * the per-Context Diff buffer pool.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "dsm/diff_pool.hh"
#include "dsm/page.hh"
#include "sim/context.hh"
#include "sim/event_queue.hh"
#include "sim/inplace_event.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"

namespace
{

// ---------------------------------------------------------------------
// Calendar queue vs legacy heap
// ---------------------------------------------------------------------

/**
 * Drive @p queue with a seeded random schedule and record the execution
 * order as (id, tick) pairs. Delays span the ring tier, the overflow
 * tier (>= EventQueue::ring_size), same-tick ties, and events that
 * schedule further events.
 */
template <typename Queue>
std::vector<std::pair<int, sim::Tick>>
randomSchedule(Queue &queue, unsigned seed, int top_level, int children)
{
    std::vector<std::pair<int, sim::Tick>> order;
    sim::Rng rng(seed);
    int next_id = 0;
    for (int i = 0; i < top_level; ++i) {
        // Mix: mostly short delays, some at the ring horizon, some deep
        // into the overflow tier, frequent exact ties.
        sim::Cycles delay;
        switch (rng.below(8)) {
        case 0:
            delay = 0;
            break;
        case 1:
            delay = sim::EventQueue::ring_size - 1 + rng.below(3);
            break;
        case 2:
            delay = sim::EventQueue::ring_size * (1 + rng.below(4));
            break;
        default:
            delay = rng.below(97);
            break;
        }
        const int id = next_id++;
        queue.scheduleIn(delay, [&, id, children]() {
            order.emplace_back(id, queue.now());
            for (int c = 0; c < children; ++c) {
                const int cid = next_id++;
                const sim::Cycles cd = (c & 1)
                                           ? sim::Cycles(c)
                                           : sim::EventQueue::ring_size + c;
                queue.scheduleIn(cd, [&, cid]() {
                    order.emplace_back(cid, queue.now());
                });
            }
        });
    }
    queue.run();
    return order;
}

TEST(PerfKernel, CalendarMatchesLegacyHeapOrder)
{
    for (unsigned seed : {1u, 7u, 42u, 1234u}) {
        sim::EventQueue cal;
        sim::LegacyEventQueue heap;
        const auto a = randomSchedule(cal, seed, 2000, 4);
        const auto b = randomSchedule(heap, seed, 2000, 4);
        ASSERT_EQ(a.size(), b.size());
        ASSERT_GE(a.size(), 10000u); // 2000 * (1 + 4)
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_EQ(cal.now(), heap.now());
        EXPECT_EQ(cal.executed(), heap.executed());
    }
}

TEST(PerfKernel, RunLimitAdvancesTimeWithoutExecuting)
{
    sim::EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&]() { ++ran; });
    eq.schedule(100, [&]() { ++ran; });
    eq.schedule(sim::EventQueue::ring_size + 500, [&]() { ++ran; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 2u);
    // Resuming executes the rest, including the overflow-tier event.
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(ran, 3);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(PerfKernel, ResetDropsRingAndOverflowEvents)
{
    sim::EventQueue eq;
    int ran = 0;
    for (int i = 0; i < 64; ++i)
        eq.scheduleIn(static_cast<sim::Cycles>(i), [&]() { ++ran; });
    eq.scheduleIn(sim::EventQueue::ring_size * 2, [&]() { ++ran; });
    EXPECT_EQ(eq.pending(), 65u);
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(ran, 0);
    // The queue remains usable after reset.
    eq.schedule(5, [&]() { ++ran; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(ran, 1);
}

// ---------------------------------------------------------------------
// InplaceEvent
// ---------------------------------------------------------------------

TEST(PerfKernel, InplaceEventStoresSmallCapturesInline)
{
    int hits = 0;
    std::uint64_t a = 1, b = 2, c = 3; // 24 bytes of capture
    sim::InplaceEvent ev;
    ev.emplace([&hits, a, b, c]() { hits += static_cast<int>(a + b + c); });
    EXPECT_TRUE(ev.inlineStored());
    ev();
    EXPECT_EQ(hits, 6);
}

TEST(PerfKernel, InplaceEventFallsBackForLargeCaptures)
{
    char big[128] = {7};
    int hits = 0;
    sim::InplaceEvent ev;
    ev.emplace([&hits, big]() { hits += big[0]; });
    EXPECT_FALSE(ev.inlineStored());
    ev();
    EXPECT_EQ(hits, 7);
}

TEST(PerfKernel, InplaceEventHandlesMoveOnlyCallables)
{
    auto p = std::make_unique<int>(41);
    sim::InplaceEvent ev;
    int got = 0;
    ev.emplace([&got, p = std::move(p)]() { got = *p + 1; });
    // Move the event itself (what the queue's free list does implicitly
    // via emplace/reset cycles).
    sim::InplaceEvent moved = std::move(ev);
    EXPECT_FALSE(static_cast<bool>(ev));
    ASSERT_TRUE(static_cast<bool>(moved));
    moved();
    EXPECT_EQ(got, 42);
}

// ---------------------------------------------------------------------
// Diff fast path vs scalar oracle
// ---------------------------------------------------------------------

/** Fill page and twin with seeded noise, then flip @p flips words. */
void
randomizePage(dsm::PageStore &store, dsm::NodePage &pg, unsigned seed,
              unsigned flips)
{
    sim::Rng rng(seed);
    auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
    const unsigned words = store.pageWords();
    for (unsigned i = 0; i < words; ++i)
        w[i] = static_cast<std::uint32_t>(rng.below(1u << 30));
    store.makeTwin(pg);
    for (unsigned f = 0; f < flips; ++f)
        w[rng.below(words)] ^= 1u + static_cast<std::uint32_t>(rng.below(255));
}

TEST(PerfKernel, DiffFromTwinMatchesScalarReference)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    // Random flip counts from empty to fully dirty, plus edge patterns.
    for (unsigned flips : {0u, 1u, 2u, 7u, 64u, 333u, 1024u}) {
        randomizePage(store, pg, 100 + flips, flips);
        dsm::Diff fast, ref;
        store.diffFromTwin(0, pg, fast);
        store.diffFromTwinReference(0, pg, ref);
        EXPECT_EQ(fast.idx, ref.idx) << "flips " << flips;
        EXPECT_EQ(fast.val, ref.val) << "flips " << flips;
    }
    // Edges: first word, last word, adjacent word pairs.
    auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
    store.makeTwin(pg);
    w[0] ^= 1;
    w[1023] ^= 1;
    w[510] ^= 1;
    w[511] ^= 1;
    dsm::Diff fast, ref;
    store.diffFromTwin(0, pg, fast);
    store.diffFromTwinReference(0, pg, ref);
    EXPECT_EQ(fast.idx, ref.idx);
    EXPECT_EQ(fast.val, ref.val);
    ASSERT_EQ(fast.words(), 4u);
}

TEST(PerfKernel, DiffFromBitsReservesExactlyThePopcount)
{
    dsm::PageStore store(4096, 1 << 20, 4);
    dsm::NodePage &pg = store.materialize(0);
    store.armWriteBits(pg);
    auto *w = reinterpret_cast<std::uint32_t *>(pg.data.get());
    sim::Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const unsigned idx = static_cast<unsigned>(rng.below(1024));
        w[idx] = idx;
        dsm::PageStore::snoopWrite(pg, idx);
    }
    dsm::Diff d;
    store.diffFromBits(0, pg, d);
    EXPECT_EQ(d.words(), dsm::PageStore::writtenWords(pg));
    // reserve() only guarantees capacity() >= n, so exactness is not
    // portable across standard libraries; check the reservation covered
    // the popcount (no growth needed while filling).
    EXPECT_GE(d.idx.capacity(), dsm::PageStore::writtenWords(pg));
    for (unsigned i = 0; i < d.words(); ++i)
        EXPECT_EQ(d.val[i], d.idx[i]);
}

// ---------------------------------------------------------------------
// DiffPool
// ---------------------------------------------------------------------

TEST(PerfKernel, DiffPoolRecyclesBuffers)
{
    dsm::DiffPool pool;
    dsm::Diff d = pool.acquire();
    d.idx.resize(100);
    d.val.resize(100);
    const std::size_t cap = d.idx.capacity();
    pool.release(std::move(d));
    EXPECT_EQ(pool.pooled(), 1u);
    dsm::Diff again = pool.acquire();
    EXPECT_EQ(pool.pooled(), 0u);
    EXPECT_EQ(again.idx.size(), 0u);         // handed out cleared...
    EXPECT_GE(again.idx.capacity(), cap);    // ...but with capacity kept
    EXPECT_EQ(pool.acquires(), 2u);
    EXPECT_EQ(pool.reuses(), 1u);
}

TEST(PerfKernel, PooledDiffReturnsToTheInstalledContextsPool)
{
    sim::Context ctx;
    sim::Context::Scope scope(ctx);
    dsm::DiffPool &pool = dsm::DiffPool::current();
    EXPECT_EQ(&pool, &ctx.of<dsm::DiffPool>());
    {
        dsm::PooledDiff d;
        d->idx.push_back(1);
    }
    EXPECT_EQ(pool.pooled(), 1u);
    {
        dsm::PooledDiff d;
        EXPECT_EQ(pool.pooled(), 0u); // reused the released buffer
    }
    EXPECT_EQ(pool.reuses(), 1u);
}

TEST(PerfKernel, ContextsKeepSeparatePoolsAndTearDownCleanly)
{
    auto a = std::make_unique<sim::Context>();
    auto b = std::make_unique<sim::Context>();
    {
        sim::Context::Scope sa(*a);
        dsm::PooledDiff d; // populates a's pool on release
    }
    {
        sim::Context::Scope sb(*b);
        EXPECT_EQ(dsm::DiffPool::current().pooled(), 0u);
    }
    {
        sim::Context::Scope sa(*a);
        EXPECT_EQ(dsm::DiffPool::current().pooled(), 1u);
    }
    // Destroying the Contexts frees the pools (ASan/valgrind would flag
    // a leak here if slot teardown regressed).
    a.reset();
    b.reset();
}

} // namespace
