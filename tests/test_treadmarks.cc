/**
 * @file
 * End-to-end tests of the TreadMarks protocol: correctness of lazy
 * release consistency under every overlap mode, plus protocol-level
 * invariants (faults, diffs, twins, prefetch bookkeeping).
 */

#include <gtest/gtest.h>

#include "dsm/system.hh"
#include "sim/logging.hh"
#include "tests/workload_helpers.hh"
#include "tmk/treadmarks.hh"

using namespace dsm;
using namespace tmk;

namespace
{

SysConfig
smallConfig(unsigned procs)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    return cfg;
}

OverlapMode
modeFor(const char *label)
{
    OverlapMode m;
    const std::string s(label);
    m.offload = s.find('I') != std::string::npos;
    m.hw_diffs = s.find('D') != std::string::npos;
    m.prefetch = s.find('P') != std::string::npos;
    return m;
}

RunResult
runUnder(const char *label, Workload &w, unsigned procs = 8)
{
    sim::setQuiet(true);
    SysConfig cfg = smallConfig(procs);
    cfg.mode = modeFor(label);
    System sys(cfg, makeTreadMarks(cfg.mode));
    return sys.run(w); // run() validates the workload internally
}

} // namespace

class TmkModes : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TmkModes, LockCounterIsCoherent)
{
    testutil::CounterWorkload w(6);
    const RunResult r = runUnder(GetParam(), w);
    EXPECT_GT(r.exec_ticks, 0u);
}

TEST_P(TmkModes, BarrierStencilIsCoherent)
{
    testutil::StencilWorkload w(1024, 4);
    const RunResult r = runUnder(GetParam(), w);
    EXPECT_GT(r.exec_ticks, 0u);
}

TEST_P(TmkModes, MigratoryTokenIsCoherent)
{
    testutil::TokenWorkload w(5);
    const RunResult r = runUnder(GetParam(), w);
    EXPECT_GT(r.exec_ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllOverlapModes, TmkModes,
                         ::testing::Values("Base", "I", "I+D", "P", "I+P",
                                           "I+P+D"),
                         [](const auto &info) {
                             std::string s(info.param);
                             for (auto &c : s)
                                 if (c == '+')
                                     c = '_';
                             return s;
                         });

TEST(TreadMarks, SingleProcessorRunsWithoutProtocolTraffic)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(512, 3);
    SysConfig cfg = smallConfig(1);
    System sys(cfg, makeTreadMarks(cfg.mode));
    const RunResult r = sys.run(w);
    EXPECT_EQ(r.net.messages, 0u);
    EXPECT_GT(r.bd[0].get(Cat::busy), 0u);
    EXPECT_EQ(r.bd[0].get(Cat::data), 0u);
}

TEST(TreadMarks, BreakdownCoversExecutionTime)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(2048, 3);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeTreadMarks(cfg.mode));
    const RunResult r = sys.run(w);
    for (unsigned p = 0; p < 8; ++p) {
        // Each processor's categorized cycles must account for (almost)
        // all of its finish time.
        const double total = static_cast<double>(r.bd[p].total());
        EXPECT_GT(total, 0.0);
        EXPECT_LE(total, static_cast<double>(r.exec_ticks) * 1.02);
    }
}

TEST(TreadMarks, BaseModeCreatesTwinsAndDiffs)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(2048, 3);
    SysConfig cfg = smallConfig(8);
    System sys(cfg, makeTreadMarks(cfg.mode));
    auto *tm = static_cast<TreadMarks *>(&sys.protocol());
    sys.run(w);
    EXPECT_GT(tm->stats().twins_created.value(), 0u);
    EXPECT_GT(tm->stats().diffs_created.value(), 0u);
    EXPECT_GT(tm->stats().diffs_applied.value(), 0u);
    EXPECT_GT(tm->stats().page_fetches.value(), 0u);
    EXPECT_GT(tm->stats().intervals_closed.value(), 0u);
}

TEST(TreadMarks, HardwareDiffModeEliminatesTwins)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(2048, 3);
    SysConfig cfg = smallConfig(8);
    cfg.mode = modeFor("I+D");
    System sys(cfg, makeTreadMarks(cfg.mode));
    auto *tm = static_cast<TreadMarks *>(&sys.protocol());
    sys.run(w);
    EXPECT_EQ(tm->stats().twins_created.value(), 0u);
    EXPECT_GT(tm->stats().diffs_created.value(), 0u);
}

TEST(TreadMarks, HardwareDiffsReduceDiffOpTimeOnCpu)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w1(4096, 4), w2(4096, 4);

    SysConfig base = smallConfig(8);
    System s1(base, makeTreadMarks(base.mode));
    const RunResult r1 = s1.run(w1);

    SysConfig hw = smallConfig(8);
    hw.mode = modeFor("I+D");
    System s2(hw, makeTreadMarks(hw.mode));
    const RunResult r2 = s2.run(w2);

    EXPECT_GT(r1.total().diff_op_cycles, 0u);
    // With hardware diffs, the computation processors do (nearly) no
    // diff work themselves.
    EXPECT_LT(r2.total().diff_op_cycles, r1.total().diff_op_cycles / 4);
}

class PrefetchStrategies
    : public ::testing::TestWithParam<dsm::PrefetchStrategy>
{
};

TEST_P(PrefetchStrategies, CoherenceHoldsUnderEveryStrategy)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(4096, 4);
    SysConfig cfg = smallConfig(8);
    cfg.mode = modeFor("I+P+D");
    cfg.mode.prefetch_strategy = GetParam();
    System sys(cfg, makeTreadMarks(cfg.mode));
    const RunResult r = sys.run(w); // self-validates
    EXPECT_GT(r.exec_ticks, 0u);
}

TEST(TreadMarks, CappedStrategyLimitsBursts)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w1(8192, 4), w2(8192, 4);

    SysConfig always = smallConfig(8);
    always.mode = modeFor("I+P");
    System s1(always, makeTreadMarks(always.mode));
    auto *t1 = static_cast<TreadMarks *>(&s1.protocol());
    s1.run(w1);

    SysConfig capped = smallConfig(8);
    capped.mode = modeFor("I+P");
    capped.mode.prefetch_strategy = dsm::PrefetchStrategy::capped;
    capped.mode.prefetch_cap = 2;
    System s2(capped, makeTreadMarks(capped.mode));
    auto *t2 = static_cast<TreadMarks *>(&s2.protocol());
    s2.run(w2);

    EXPECT_LE(t2->stats().prefetches_issued.value(),
              t1->stats().prefetches_issued.value());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PrefetchStrategies,
    ::testing::Values(dsm::PrefetchStrategy::always,
                      dsm::PrefetchStrategy::adaptive,
                      dsm::PrefetchStrategy::capped),
    [](const auto &info) {
        switch (info.param) {
          case dsm::PrefetchStrategy::always: return "always";
          case dsm::PrefetchStrategy::adaptive: return "adaptive";
          default: return "capped";
        }
    });

TEST(TreadMarks, LazyHybridPiggybacksDiffsOnGrants)
{
    sim::setQuiet(true);
    testutil::TokenWorkload w1(6), w2(6);

    SysConfig plain = smallConfig(8);
    System s1(plain, makeTreadMarks(plain.mode));
    auto *t1 = static_cast<TreadMarks *>(&s1.protocol());
    s1.run(w1);

    SysConfig lh = smallConfig(8);
    lh.mode.lazy_hybrid = true;
    System s2(lh, makeTreadMarks(lh.mode));
    auto *t2 = static_cast<TreadMarks *>(&s2.protocol());
    s2.run(w2); // self-validates: piggybacked diffs must be coherent

    EXPECT_EQ(t1->stats().lh_updates.value(), 0u);
    EXPECT_GT(t2->stats().lh_updates.value(), 0u);
    // The whole point: updates-on-grant replace later demand faults.
    EXPECT_LT(t2->stats().diff_requests.value(), t1->stats().diff_requests.value());
}

TEST(TreadMarks, LazyHybridIsCoherentUnderAllModes)
{
    sim::setQuiet(true);
    for (const char *m : {"Base", "I", "I+D", "I+P+D"}) {
        testutil::CounterWorkload w(6);
        SysConfig cfg = smallConfig(8);
        cfg.mode = modeFor(m);
        cfg.mode.lazy_hybrid = true;
        System sys(cfg, makeTreadMarks(cfg.mode));
        EXPECT_GT(sys.run(w).exec_ticks, 0u) << m;
    }
}

TEST(TreadMarks, PrefetchModeIssuesPrefetches)
{
    sim::setQuiet(true);
    testutil::StencilWorkload w(4096, 4);
    SysConfig cfg = smallConfig(8);
    cfg.mode = modeFor("I+P");
    System sys(cfg, makeTreadMarks(cfg.mode));
    auto *tm = static_cast<TreadMarks *>(&sys.protocol());
    sys.run(w);
    EXPECT_GT(tm->stats().prefetches_issued.value(), 0u);
}
