/**
 * @file
 * The verification subsystem's own tests: the LRC oracle's legality
 * rules at the value level, an injected-stale-read proof that the
 * end-to-end hookup actually fires, oracle-on/off bit-identity of the
 * simulated results, torture runs under the oracle across protocol
 * variants, plus directed tests for the pieces the oracle leans on:
 * the access-descriptor cache's flush-on-transition contract, the
 * calendar queue's overflow-tier boundary, the global heap, vector
 * clocks, and the boolean knob parser.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/torture.hh"
#include "check/oracle.hh"
#include "dsm/access_desc.hh"
#include "dsm/heap.hh"
#include "dsm/proc.hh"
#include "dsm/system.hh"
#include "dsm/vclock.hh"
#include "dsm/workload.hh"
#include "harness/experiment.hh"
#include "harness/knobs.hh"
#include "harness/runner.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"
#include "tests/workload_helpers.hh"

using namespace dsm;

// ---------------------------------------------------------------------
// LRC oracle: value-level legality rules, driven through the same core
// the System hooks call (recordWrite/checkRead + the sync hooks).

namespace
{

/** Run @p read and return the violation report it raises ("" if none). */
template <typename F>
std::string
violationOf(check::LrcOracle &oracle, F &&read)
{
    std::string captured;
    oracle.setViolationHandler([&captured](const std::string &report) {
        captured = report;
        throw std::runtime_error("lrc violation");
    });
    try {
        read();
    } catch (const std::runtime_error &) {
    }
    return captured;
}

} // namespace

TEST(Oracle, InitialZeroLegalUntilAVisibleWrite)
{
    check::LrcOracle o(2, 4096);
    // Nothing written anywhere: the zero-filled initial contents are
    // the only legal value.
    o.checkRead(1, 3, 7, 0);
    const std::string rep =
        violationOf(o, [&] { o.checkRead(1, 3, 7, 42); });
    ASSERT_FALSE(rep.empty());
    EXPECT_NE(rep.find("LRC conformance violation"), std::string::npos);
    EXPECT_NE(rep.find("never written to this word"), std::string::npos);
}

TEST(Oracle, ConcurrentWriteAndInitialValueBothLegal)
{
    check::LrcOracle o(2, 4096);
    o.recordWrite(0, 5, 0, 111);
    // No synchronization between proc 0 and proc 1: LRC propagates
    // lazily, so proc 1 may see either the update or the old contents.
    o.checkRead(1, 5, 0, 111);
    o.checkRead(1, 5, 0, 0);
    // The writer itself, however, must see its own store.
    o.checkRead(0, 5, 0, 111);
    const std::string rep =
        violationOf(o, [&] { o.checkRead(0, 5, 0, 0); });
    ASSERT_FALSE(rep.empty());
    EXPECT_NE(rep.find("read : proc 0 @ page 5 word 0"), std::string::npos);
}

TEST(Oracle, LockTransferMakesWriteVisibleAndMasksOlderOnes)
{
    check::LrcOracle o(2, 4096);
    o.recordWrite(0, 5, 0, 111);
    o.onRelease(0, 7); // closes interval 1
    o.recordWrite(0, 5, 0, 222);
    o.onRelease(0, 7); // closes interval 2
    o.onAcquire(1, 7); // proc 1 now covers both intervals

    o.checkRead(1, 5, 0, 222);

    const std::string masked =
        violationOf(o, [&] { o.checkRead(1, 5, 0, 111); });
    ASSERT_FALSE(masked.empty());
    EXPECT_NE(masked.find("masked by proc 0 interval 2"),
              std::string::npos);

    // The initial zero is gone too: a visible writer exists.
    const std::string stale =
        violationOf(o, [&] { o.checkRead(1, 5, 0, 0); });
    ASSERT_FALSE(stale.empty());
    EXPECT_NE(stale.find("legal values:"), std::string::npos);
    EXPECT_NE(stale.find("[visible]"), std::string::npos);
}

TEST(Oracle, AcquireWithoutMatchingReleaseTransfersNothing)
{
    check::LrcOracle o(2, 4096);
    o.recordWrite(0, 5, 0, 111);
    o.onRelease(0, 7);
    o.onAcquire(1, 9); // a different lock: no happens-before edge
    o.checkRead(1, 5, 0, 0);
    o.checkRead(1, 5, 0, 111); // still legal - concurrent
}

TEST(Oracle, BarrierMakesAllArrivalWritesVisible)
{
    check::LrcOracle o(2, 4096);
    o.recordWrite(0, 5, 0, 111);
    o.onBarrierArrive(0, 0);
    o.onBarrierArrive(1, 0);
    o.onBarrierDepart(0, 0);
    o.onBarrierDepart(1, 0);
    o.checkRead(1, 5, 0, 111);
    const std::string rep =
        violationOf(o, [&] { o.checkRead(1, 5, 0, 0); });
    ASSERT_FALSE(rep.empty());
    EXPECT_NE(rep.find("written by proc 0 interval 1"), std::string::npos);
}

TEST(Oracle, ClocksAdvanceMonotonically)
{
    check::LrcOracle o(2, 4096);
    const IntervalSeq self0 = o.clockOf(0)[0];
    o.onRelease(0, 7);
    EXPECT_GT(o.clockOf(0)[0], self0);
    EXPECT_EQ(o.clockOf(1)[0], 0u); // nothing transferred yet
    o.onAcquire(1, 7);
    EXPECT_EQ(o.clockOf(1)[0], self0); // merged the closed interval
}

TEST(Oracle, CountersTrackRecordAndCheckVolume)
{
    check::LrcOracle o(2, 4096);
    EXPECT_EQ(o.wordsRecorded(), 0u);
    EXPECT_EQ(o.wordsChecked(), 0u);
    o.recordWrite(0, 1, 0, 1);
    o.recordWrite(0, 1, 1, 2);
    o.checkRead(0, 1, 0, 1);
    EXPECT_EQ(o.wordsRecorded(), 2u);
    EXPECT_EQ(o.wordsChecked(), 1u);
}

TEST(Oracle, HistoryPrunesOnceWritesAreGloballyCovered)
{
    // Two procs ping-ponging a word through a lock: every older write
    // becomes covered by the componentwise-min clock and must be GCed
    // rather than accumulating forever.
    check::LrcOracle o(2, 4096);
    for (unsigned r = 0; r < 600; ++r) {
        const sim::NodeId p = r & 1;
        o.onAcquire(p, 3);
        o.checkRead(p, 2, 0, r == 0 ? 0 : r - 1 + 1000);
        o.recordWrite(p, 2, 0, r + 1000);
        o.onRelease(p, 3);
    }
    EXPECT_GT(o.historyPrunes(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end negative test: corrupt one node's page copy mid-run and
// prove the System-side hookup reports it. This is the test that shows
// the oracle would actually catch a protocol bug (a stale read served
// from an unupdated copy), not just that its math is right.

namespace
{

/**
 * Proc 0 publishes a word through a barrier; proc 1 reads it back,
 * then (host-side, simulating a protocol bug) its own page copy is
 * reverted to the initial zero and it reads again.
 */
class StaleReadInjector : public Workload
{
  public:
    std::string name() const override { return "stale-read-injector"; }

    void
    plan(GlobalHeap &heap, const SysConfig &cfg) override
    {
        page_bytes_ = cfg.page_bytes;
        addr_ = heap.allocPages(cfg.page_bytes);
    }

    void
    run(Proc &p) override
    {
        if (p.id() == 0)
            p.put<std::uint32_t>(addr_, 0xABCD1234u);
        p.barrier(0);
        if (p.id() == 1) {
            const auto v = p.get<std::uint32_t>(addr_);
            ncp2_assert(v == 0xABCD1234u, "barrier did not publish");
            // The injected bug: node 1's copy silently loses the
            // update (as an unflushed write cache or a mid-upgrade
            // eviction would cause).
            NodePage &np =
                p.system().node(1).pages.page(addr_ / page_bytes_);
            ncp2_assert(np.present(), "copy vanished");
            std::memset(np.data.get(), 0, 4);
            p.get<std::uint32_t>(addr_); // must trip the oracle
        }
        p.barrier(1);
    }

    void validate(System &) override {}

  private:
    sim::GAddr addr_ = 0;
    unsigned page_bytes_ = 0;
};

SysConfig
smallCfg(unsigned procs)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    return cfg;
}

} // namespace

TEST(OracleEndToEnd, InjectedStaleReadFires)
{
    sim::setQuiet(true);
    for (const ProtocolKind kind :
         {ProtocolKind::treadmarks, ProtocolKind::aurc}) {
        StaleReadInjector w;
        SysConfig cfg = smallCfg(2);
        cfg.protocol = kind;
        cfg.check = true;
        System sys(cfg, harness::makeProtocol(cfg));
        ASSERT_NE(sys.oracle(), nullptr);
        std::string captured;
        sys.oracle()->setViolationHandler(
            [&captured](const std::string &report) {
                captured = report;
                throw std::runtime_error("lrc violation");
            });
        EXPECT_THROW(sys.run(w), std::runtime_error);
        ASSERT_FALSE(captured.empty());
        EXPECT_NE(captured.find("LRC conformance violation"),
                  std::string::npos);
        EXPECT_NE(captured.find("read : proc 1"), std::string::npos);
        EXPECT_NE(captured.find("written by proc 0 interval 1"),
                  std::string::npos);
    }
}

TEST(OracleEndToEnd, CleanRunsPassAndCountWords)
{
    sim::setQuiet(true);
    testutil::CounterWorkload w(6);
    SysConfig cfg = smallCfg(4);
    cfg.check = true;
    System sys(cfg, harness::makeProtocol(cfg));
    ASSERT_NE(sys.oracle(), nullptr);
    sys.run(w);
    EXPECT_GT(sys.oracle()->wordsChecked(), 0u);
    EXPECT_GT(sys.oracle()->wordsRecorded(), 0u);
}

TEST(OracleEndToEnd, OracleOffMeansNoOracle)
{
    sim::setQuiet(true);
    testutil::CounterWorkload w(2);
    SysConfig cfg = smallCfg(2);
    System sys(cfg, harness::makeProtocol(cfg));
    EXPECT_EQ(sys.oracle(), nullptr);
    sys.run(w);
}

// ---------------------------------------------------------------------
// Oracle on/off bit-identity: the oracle is pure observation. Every
// simulated observable must be unchanged by cfg.check across protocol
// variants (acceptance criterion for the whole subsystem).

namespace
{

void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.exec_ticks, b.exec_ticks);
    ASSERT_EQ(a.bd.size(), b.bd.size());
    for (std::size_t i = 0; i < a.bd.size(); ++i) {
        for (unsigned c = 0; c < num_cats; ++c) {
            EXPECT_EQ(a.bd[i].cycles[c], b.bd[i].cycles[c])
                << "proc " << i << " cat "
                << catName(static_cast<Cat>(c));
        }
        EXPECT_EQ(a.bd[i].diff_op_cycles, b.bd[i].diff_op_cycles)
            << "proc " << i;
        EXPECT_EQ(a.bd[i].diff_op_ctrl_cycles, b.bd[i].diff_op_ctrl_cycles)
            << "proc " << i;
    }
    EXPECT_EQ(a.net.messages, b.net.messages);
    EXPECT_EQ(a.net.bytes, b.net.bytes);
    EXPECT_EQ(a.net.latency_cycles, b.net.latency_cycles);
    EXPECT_EQ(a.net.contention_cycles, b.net.contention_cycles);
    EXPECT_EQ(a.stats.flat(), b.stats.flat());
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.trace_dropped, b.trace_dropped);
}

struct CheckModeParam
{
    const char *tag;
    ProtocolKind kind;
    bool offload, hw_diffs, prefetch;
};

SysConfig
checkModeCfg(const CheckModeParam &m, bool check)
{
    SysConfig cfg = smallCfg(8);
    cfg.protocol = m.kind;
    cfg.mode.offload = m.offload;
    cfg.mode.hw_diffs = m.hw_diffs;
    cfg.mode.prefetch = m.prefetch;
    cfg.check = check;
    return cfg;
}

} // namespace

class OracleBitIdentity : public ::testing::TestWithParam<CheckModeParam>
{
};

TEST_P(OracleBitIdentity, StencilUnchangedByCheck)
{
    sim::setQuiet(true);
    RunResult r[2];
    for (int check = 0; check < 2; ++check) {
        testutil::StencilWorkload w(2048, 3);
        const SysConfig cfg = checkModeCfg(GetParam(), check != 0);
        r[check] = harness::runOnce(cfg, w);
    }
    expectIdenticalRuns(r[0], r[1]);
}

TEST_P(OracleBitIdentity, TortureUnchangedByCheck)
{
    sim::setQuiet(true);
    apps::Torture::Params prm;
    prm.seed = 11;
    prm.rounds = 4;
    prm.data_pages = 2;
    prm.counters = 4;
    prm.pc_slots = 4;
    prm.max_compute = 100;
    RunResult r[2];
    for (int check = 0; check < 2; ++check) {
        apps::Torture w(prm);
        SysConfig cfg = checkModeCfg(GetParam(), check != 0);
        cfg.num_procs = 4;
        r[check] = harness::runOnce(cfg, w);
    }
    expectIdenticalRuns(r[0], r[1]);
}

INSTANTIATE_TEST_SUITE_P(
    CheckSweep, OracleBitIdentity,
    ::testing::Values(
        CheckModeParam{"TmkBase", ProtocolKind::treadmarks, false, false,
                       false},
        CheckModeParam{"TmkIPD", ProtocolKind::treadmarks, true, true,
                       true},
        CheckModeParam{"Aurc", ProtocolKind::aurc, false, false, false},
        CheckModeParam{"AurcP", ProtocolKind::aurc, false, false, true}),
    [](const ::testing::TestParamInfo<CheckModeParam> &info) {
        return info.param.tag;
    });

// ---------------------------------------------------------------------
// Torture under the oracle: a slice of the fuzz campaign small enough
// for tier 1 (the full corpus runs under ctest -L fuzz / CI).

TEST(TortureCheck, PassesOracleAcrossVariantsAndFastPath)
{
    sim::setQuiet(true);
    apps::Torture::Params prm;
    prm.seed = 5;
    prm.rounds = 5;
    prm.data_pages = 3;
    prm.counters = 6;
    prm.pc_slots = 6;
    prm.max_compute = 120;

    const CheckModeParam modes[] = {
        {"TmkBase", ProtocolKind::treadmarks, false, false, false},
        {"TmkIPD", ProtocolKind::treadmarks, true, true, true},
        {"Aurc", ProtocolKind::aurc, false, false, false},
        {"AurcP", ProtocolKind::aurc, false, false, true},
    };
    for (const auto &m : modes) {
        RunResult r[2];
        for (int fast = 0; fast < 2; ++fast) {
            apps::Torture w(prm);
            SysConfig cfg = checkModeCfg(m, true);
            cfg.num_procs = 4;
            cfg.fast_path = fast != 0;
            // runOnce validates the workload's own checksums too.
            r[fast] = harness::runOnce(cfg, w);
        }
        // The descriptor fast path must be invisible with the oracle
        // watching every access.
        expectIdenticalRuns(r[0], r[1]);
    }
}

// ---------------------------------------------------------------------
// DescCache: the flush-on-protection-transition contract (satellite).

TEST(DescCache, LookupHonorsTagAndGrantedMode)
{
    DescCache dc;
    EXPECT_EQ(dc.lookup(10, false), nullptr); // empty slot

    AccessDesc &e = dc.slot(10);
    e.page = 10;
    e.writable = false;
    EXPECT_NE(dc.lookup(10, false), nullptr);
    EXPECT_EQ(dc.lookup(10, true), nullptr); // read grant can't serve writes

    e.writable = true;
    EXPECT_NE(dc.lookup(10, true), nullptr);
    EXPECT_EQ(dc.lookup(11, false), nullptr); // different slot, empty
}

TEST(DescCache, DirectMappedAliasingEvicts)
{
    DescCache dc;
    dc.slot(3).page = 3;
    // page 3 + 64 maps to the same slot; installing it evicts page 3.
    const sim::PageId alias = 3 + DescCache::entries;
    EXPECT_EQ(&dc.slot(3), &dc.slot(alias));
    dc.slot(alias).page = alias;
    EXPECT_EQ(dc.lookup(3, false), nullptr);
    EXPECT_NE(dc.lookup(alias, false), nullptr);
}

TEST(DescCache, InvalidateFlushesOnlyTheMatchingPage)
{
    DescCache dc;
    dc.slot(7).page = 7;
    dc.invalidate(7 + DescCache::entries); // aliased but wrong tag
    EXPECT_NE(dc.lookup(7, false), nullptr);
    dc.invalidate(7); // access -> none transition
    EXPECT_EQ(dc.lookup(7, false), nullptr);
    EXPECT_EQ(dc.slot(7).page, AccessDesc::invalid_page);
}

TEST(DescCache, DowngradeWriteKeepsReadGrantDropsWriteState)
{
    DescCache dc;
    IntervalSeq ivals[4] = {};
    AccessDesc &e = dc.slot(12);
    e.page = 12;
    e.writable = true;
    e.hook = WriteHook::tmk_interval;
    e.word_interval = ivals;
    e.open_seq = 9;

    dc.downgradeWrite(12 + DescCache::entries); // wrong tag: untouched
    EXPECT_TRUE(dc.slot(12).writable);

    dc.downgradeWrite(12); // readwrite -> read transition
    AccessDesc *hit = dc.lookup(12, false);
    ASSERT_NE(hit, nullptr); // read grant survives
    EXPECT_EQ(dc.lookup(12, true), nullptr);
    EXPECT_FALSE(hit->writable);
    EXPECT_EQ(hit->hook, WriteHook::protocol);
    EXPECT_EQ(hit->word_interval, nullptr);
    EXPECT_EQ(hit->open_seq, 0u);
}

TEST(DescCache, ClearEmptiesEverySlot)
{
    DescCache dc;
    for (sim::PageId p = 0; p < DescCache::entries; ++p)
        dc.slot(p).page = p;
    dc.clear();
    for (sim::PageId p = 0; p < DescCache::entries; ++p)
        EXPECT_EQ(dc.lookup(p, false), nullptr);
}

// ---------------------------------------------------------------------
// EventQueue: the calendar ring / overflow-heap boundary (satellite).

TEST(EventQueueTier, BoundaryTicksExecuteInTickSeqOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    // Straddle the ring horizon: ring_size - 1 is the last ring tick,
    // ring_size and beyond start in the overflow heap.
    const sim::Tick edge = sim::EventQueue::ring_size;
    eq.schedule(edge + 1, [&] { order.push_back(3); });
    eq.schedule(edge, [&] { order.push_back(1); });
    eq.schedule(edge - 1, [&] { order.push_back(0); });
    eq.schedule(edge, [&] { order.push_back(2); }); // same tick: seq order
    EXPECT_EQ(eq.pending(), 4u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), edge + 1);
    EXPECT_EQ(eq.executed(), 4u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueueTier, OverflowEventsMergeBackAheadOfLaterRingEvents)
{
    sim::EventQueue eq;
    std::vector<int> order;
    const sim::Tick far = 3 * sim::EventQueue::ring_size + 17;
    eq.schedule(far, [&] { order.push_back(0); });      // overflow tier
    eq.schedule(far + 1, [&, far] {                     // also overflow
        order.push_back(1);
        // From inside the run the far tick is near: lands in the ring.
        eq.schedule(far + 2, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTier, RandomScheduleMatchesLegacyHeapExactly)
{
    // The calendar queue's contract: bit-identical execution order to
    // the original binary heap, including ties and re-scheduling from
    // inside callbacks, across both tiers.
    sim::Rng rng(0xfeedULL);
    std::vector<std::pair<sim::Tick, int>> plan;
    for (int i = 0; i < 400; ++i) {
        // Mix near (ring) and far (overflow) deltas, with repeats.
        const std::uint64_t delta =
            (i % 5 == 0) ? 4000 + rng.below(9000) : rng.below(64);
        plan.emplace_back(delta, i);
    }

    auto drive = [&plan](auto &queue) {
        std::vector<int> order;
        std::size_t next = 0;
        // Seed a pump that schedules the next few plan entries each
        // time it runs, so scheduling interleaves with execution.
        std::function<void()> pump = [&]() {
            for (int k = 0; k < 3 && next < plan.size(); ++k) {
                const auto [delta, id] = plan[next++];
                queue.schedule(queue.now() + delta,
                               [&order, id] { order.push_back(id); });
            }
            if (next < plan.size())
                queue.schedule(queue.now() + 1, pump);
        };
        queue.schedule(0, pump);
        queue.run();
        return order;
    };

    sim::EventQueue calendar;
    sim::LegacyEventQueue legacy;
    EXPECT_EQ(drive(calendar), drive(legacy));
    EXPECT_EQ(calendar.now(), legacy.now());
    EXPECT_EQ(calendar.executed(), legacy.executed());
}

TEST(EventQueueTier, SchedulingInThePastPanics)
{
    sim::EventQueue eq;
    eq.advanceIfIdle(100);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueueTier, ResetRestartsTheClockAndDropsEvents)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(5000, [&] { ++fired; }); // overflow tier too
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------
// GlobalHeap (satellite): alignment, page allocation, exhaustion, reuse.

TEST(Heap, AlignsAndBumps)
{
    GlobalHeap h(1u << 20, 4096);
    EXPECT_EQ(h.alloc(13), 0u);
    EXPECT_EQ(h.alloc(1), 16u); // 13 rounded up to the default align 8
    EXPECT_EQ(h.alloc(4, 256), 256u);
    EXPECT_EQ(h.used(), 260u);
    EXPECT_EQ(h.capacity(), 1u << 20);
    EXPECT_EQ(h.pageBytes(), 4096u);
}

TEST(Heap, AllocPagesStartsOnAFreshPage)
{
    GlobalHeap h(1u << 20, 4096);
    h.alloc(100);
    const sim::GAddr a = h.allocPages(10);
    EXPECT_EQ(a % 4096, 0u);
    const sim::GAddr b = h.allocPages(4097);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_EQ(b - a, 4096u);
}

TEST(Heap, RejectsNonPowerOfTwoAlignment)
{
    GlobalHeap h(1u << 20, 4096);
    EXPECT_THROW(h.alloc(8, 3), std::logic_error);
    EXPECT_THROW(h.alloc(8, 0), std::logic_error);
}

TEST(Heap, ExhaustionPanicsAndResetReuses)
{
    GlobalHeap h(8192, 4096);
    EXPECT_EQ(h.alloc(8000), 0u);
    EXPECT_THROW(h.alloc(8000), std::logic_error);
    h.reset();
    EXPECT_EQ(h.used(), 0u);
    EXPECT_EQ(h.alloc(8000), 0u); // same addresses after reset
}

// ---------------------------------------------------------------------
// VectorClock (satellite): merge/dominance edge cases.

TEST(VClock, StartsAtZeroAndComparesByValue)
{
    VectorClock a(4), b(4);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(a[i], 0u);
    EXPECT_TRUE(a == b);
    b[2] = 1;
    EXPECT_FALSE(a == b);
}

TEST(VClock, MergeIsComponentwiseMaxAndMonotone)
{
    VectorClock a(3), b(3);
    a[0] = 5;
    a[2] = 1;
    b[0] = 3;
    b[1] = 7;
    const VectorClock before = a;
    a.merge(b);
    EXPECT_EQ(a[0], 5u);
    EXPECT_EQ(a[1], 7u);
    EXPECT_EQ(a[2], 1u);
    EXPECT_TRUE(before.dominatedBy(a)); // merge never loses knowledge
    EXPECT_TRUE(b.dominatedBy(a));
    // Merging disjoint clocks is a plain union.
    VectorClock c(3), d(3);
    c[0] = 2;
    d[1] = 4;
    c.merge(d);
    EXPECT_EQ(c[0], 2u);
    EXPECT_EQ(c[1], 4u);
    EXPECT_EQ(c[2], 0u);
}

TEST(VClock, DominanceIsReflexiveAndStrictWhereItShouldBe)
{
    VectorClock a(2), b(2);
    EXPECT_TRUE(a.dominatedBy(a));
    a[0] = 1;
    b[1] = 1;
    EXPECT_FALSE(a.dominatedBy(b)); // concurrent
    EXPECT_FALSE(b.dominatedBy(a));
    b[0] = 1;
    EXPECT_TRUE(a.dominatedBy(b));
}

TEST(VClock, SurvivesNearMaxIntervalCounts)
{
    VectorClock a(2), b(2);
    a[0] = UINT32_MAX - 1;
    b[0] = UINT32_MAX;
    EXPECT_TRUE(a.dominatedBy(b));
    a.merge(b);
    EXPECT_EQ(a[0], UINT32_MAX);
}

// ---------------------------------------------------------------------
// Knobs (satellite): boolean normalization. NCP2_FAST_PATH historically
// compared against "0" only, so "false" silently meant *on*; the parser
// must accept the common spellings and reject junk loudly.

namespace
{

/** setenv/unsetenv guard restoring the prior value on destruction. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *v = std::getenv(name);
        if (v) {
            had_ = true;
            old_ = v;
        }
    }

    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

    void set(const char *v) { ::setenv(name_, v, 1); }
    void unset() { ::unsetenv(name_); }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

TEST(Knobs, BoolKnobsAcceptCommonSpellings)
{
    EnvGuard fast("NCP2_FAST_PATH"), check("NCP2_CHECK");
    for (const char *v : {"0", "false", "FALSE", "off", "No"}) {
        fast.set(v);
        check.set(v);
        EXPECT_FALSE(harness::knobs::fastPath()) << v;
        EXPECT_FALSE(harness::knobs::checkOracle()) << v;
    }
    for (const char *v : {"1", "true", "True", "ON", "yes"}) {
        fast.set(v);
        check.set(v);
        EXPECT_TRUE(harness::knobs::fastPath()) << v;
        EXPECT_TRUE(harness::knobs::checkOracle()) << v;
    }
}

TEST(Knobs, BoolKnobsDefaultsDifferWhenUnset)
{
    EnvGuard fast("NCP2_FAST_PATH"), check("NCP2_CHECK");
    fast.unset();
    check.unset();
    EXPECT_TRUE(harness::knobs::fastPath());    // opt-out knob
    EXPECT_FALSE(harness::knobs::checkOracle()); // opt-in knob
    fast.set("");
    check.set("");
    EXPECT_TRUE(harness::knobs::fastPath());
    EXPECT_FALSE(harness::knobs::checkOracle());
}

TEST(Knobs, BoolKnobsRejectJunkLoudly)
{
    EnvGuard fast("NCP2_FAST_PATH"), check("NCP2_CHECK");
    for (const char *v : {"2", "disabled", "ja", "0x1"}) {
        fast.set(v);
        EXPECT_THROW(harness::knobs::fastPath(), std::runtime_error) << v;
        check.set(v);
        EXPECT_THROW(harness::knobs::checkOracle(), std::runtime_error)
            << v;
    }
}
