/**
 * @file
 * The distributed-STL layer (src/gstl): container round-trips across
 * page boundaries, plan-time name/allocation discipline, the striped
 * hash map and sync kit under concurrent traffic with the LRC oracle
 * watching, fast-path invariance, and serial-vs-PDES equivalence of
 * the gstl torture workload.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "apps/gstl_torture.hh"
#include "gstl/gstl.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"

using dsm::ProtocolKind;
using dsm::RunResult;
using dsm::SysConfig;

namespace
{

SysConfig
smallCfg(unsigned procs)
{
    SysConfig cfg;
    cfg.num_procs = procs;
    cfg.heap_bytes = 8u << 20;
    return cfg;
}

/** The observables that must never move between two equal runs. */
void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.exec_ticks, b.exec_ticks);
    EXPECT_EQ(a.net.messages, b.net.messages);
    EXPECT_EQ(a.net.bytes, b.net.bytes);
    EXPECT_EQ(a.stats.flat(), b.stats.flat());
}

/** Structural equality; timing may drift by contention-order only. */
void
expectEquivalentRuns(const RunResult &serial, const RunResult &par)
{
    EXPECT_EQ(serial.net.messages, par.net.messages);
    EXPECT_EQ(serial.net.bytes, par.net.bytes);
    EXPECT_EQ(serial.stats.flat(), par.stats.flat());
    const double s = static_cast<double>(serial.exec_ticks);
    const double p = static_cast<double>(par.exec_ticks);
    EXPECT_LT(std::abs(s - p), 0.02 * s)
        << "serial " << serial.exec_ticks << " vs parallel "
        << par.exec_ticks;
}

// ---------------------------------------------------------------------
// g::vector: element and bulk round-trips across page boundaries.

/**
 * Proc 0 bulk-writes a pattern spanning several pages; everyone bulk-
 * reads it back, then each proc overwrites a disjoint slice element-
 * wise and reads its neighbour's slice after a barrier.
 */
class VectorRoundTrip : public g::App
{
  public:
    std::string name() const override { return "vector-round-trip"; }

    void
    plan(g::context &ctx) override
    {
        // Three full pages plus a ragged tail, so bulk ops must split
        // into several page runs.
        n_ = 3 * ctx.page_bytes() / 4 + 7;
        v_.allocate(ctx, n_);
        filled_ = ctx.make_barrier("filled");
        sliced_ = ctx.make_barrier("sliced");
    }

    void
    run(g::context &ctx) override
    {
        const unsigned np = ctx.nprocs();
        if (ctx.id() == 0) {
            std::vector<std::uint32_t> init(n_);
            for (std::uint64_t i = 0; i < n_; ++i)
                init[i] = pattern(i);
            v_.write(ctx, 0, init.data(), init.size());
        }
        filled_.wait(ctx);

        std::vector<std::uint32_t> all(n_);
        v_.read(ctx, 0, all.data(), all.size());
        for (std::uint64_t i = 0; i < n_; ++i)
            if (all[i] != pattern(i))
                ncp2_fatal("bulk read-back mismatch at %llu",
                           static_cast<unsigned long long>(i));

        const std::uint64_t lo = n_ * ctx.id() / np;
        const std::uint64_t hi = n_ * (ctx.id() + 1) / np;
        for (std::uint64_t i = lo; i < hi; ++i)
            v_.set(ctx, i, pattern(i) ^ 0xa5a5u);
        sliced_.wait(ctx);

        const unsigned peer = (ctx.id() + 1) % np;
        const std::uint64_t plo = n_ * peer / np;
        const std::uint64_t phi = n_ * (peer + 1) / np;
        for (std::uint64_t i = plo; i < phi; ++i)
            if (v_.get(ctx, i) != (pattern(i) ^ 0xa5a5u))
                ncp2_fatal("element read-back mismatch at %llu",
                           static_cast<unsigned long long>(i));
    }

    void
    validate(dsm::System &sys) override
    {
        for (std::uint64_t i = 0; i < n_; ++i)
            if (g::peek(sys, v_, i) != (pattern(i) ^ 0xa5a5u))
                ncp2_fatal("final state mismatch at %llu",
                           static_cast<unsigned long long>(i));
    }

  private:
    static std::uint32_t
    pattern(std::uint64_t i)
    {
        return static_cast<std::uint32_t>(i * 2654435761u + 17);
    }

    std::uint64_t n_ = 0;
    g::vector<std::uint32_t> v_;
    g::barrier filled_, sliced_;
};

TEST(GstlVector, RoundTripsAcrossPageBoundaries)
{
    sim::setQuiet(true);
    for (const ProtocolKind kind :
         {ProtocolKind::treadmarks, ProtocolKind::aurc}) {
        VectorRoundTrip w;
        SysConfig cfg = smallCfg(4);
        cfg.protocol = kind;
        cfg.check = true; // oracle watches every access
        harness::runOnce(cfg, w);
    }
}

// ---------------------------------------------------------------------
// g::vector::for_each_chunk: the chunks must tile [lo, hi) in order and
// never straddle a page.

class ChunkProbe : public g::App
{
  public:
    std::string name() const override { return "chunk-probe"; }

    void
    plan(g::context &ctx) override
    {
        // A deliberately page-misaligned base: chunking must split on
        // the page grid, not on multiples of the element count.
        ctx.plan_heap().alloc(4, 4);
        n_ = ctx.page_bytes() / 4 * 2 + 11;
        v_.allocate(ctx, n_, /*page_aligned=*/false);

        const std::uint64_t page = ctx.page_bytes();
        std::uint64_t expect_next = 3;
        v_.for_each_chunk(ctx, 3, n_, [&](std::uint64_t i,
                                          std::size_t cnt) {
            ncp2_assert(i == expect_next && cnt > 0, "chunk gap");
            // One page per chunk: first and last element on one page.
            ncp2_assert(v_.addr(i) / page ==
                            v_.addr(i + cnt - 1) / page,
                        "chunk straddles a page");
            // Maximal runs: a chunk ends only at a page edge or hi.
            ncp2_assert(i + cnt == n_ ||
                            v_.addr(i + cnt) / page !=
                                v_.addr(i + cnt - 1) / page,
                        "chunk split without a page edge");
            expect_next = i + cnt;
            ++chunks_;
        });
        ncp2_assert(expect_next == n_, "chunks do not tile the range");
    }

    void run(g::context &) override {}
    void validate(dsm::System &) override {}

    unsigned chunks_ = 0;

  private:
    std::uint64_t n_ = 0;
    g::vector<std::uint32_t> v_;
};

TEST(GstlVector, ForEachChunkTilesPageRuns)
{
    sim::setQuiet(true);
    ChunkProbe w;
    SysConfig cfg = smallCfg(2);
    dsm::GlobalHeap heap(cfg.heap_bytes, cfg.page_bytes);
    static_cast<dsm::Workload &>(w).plan(heap, cfg);
    // Two full pages + tail from a misaligned base: at least 3 chunks.
    EXPECT_GE(w.chunks_, 3u);
}

// ---------------------------------------------------------------------
// Plan-time discipline: name collisions and double allocation are
// fatal at plan time; re-planning the same object for a fresh run is
// not.

class CollidingNames : public g::App
{
  public:
    std::string name() const override { return "colliding-names"; }
    void
    plan(g::context &ctx) override
    {
        (void)ctx.make_mutex("mu");
        (void)ctx.make_mutex("mu"); // boom
    }
    void run(g::context &) override {}
    void validate(dsm::System &) override {}
};

class DoubleAllocation : public g::App
{
  public:
    std::string name() const override { return "double-allocation"; }
    void
    plan(g::context &ctx) override
    {
        v_.allocate(ctx, 8);
        v_.allocate(ctx, 8); // boom
    }
    void run(g::context &) override {}
    void validate(dsm::System &) override {}

  private:
    g::vector<std::uint32_t> v_;
};

class PlainPlan : public g::App
{
  public:
    std::string name() const override { return "plain-plan"; }
    void
    plan(g::context &ctx) override
    {
        v_.allocate(ctx, 8);
        mu_ = ctx.make_mutex("mu");
    }
    void run(g::context &) override {}
    void validate(dsm::System &) override {}

  private:
    g::vector<std::uint32_t> v_;
    g::mutex mu_;
};

TEST(GstlPlanTime, NameCollisionIsFatal)
{
    sim::setQuiet(true);
    CollidingNames w;
    SysConfig cfg = smallCfg(2);
    dsm::GlobalHeap heap(cfg.heap_bytes, cfg.page_bytes);
    EXPECT_THROW(static_cast<dsm::Workload &>(w).plan(heap, cfg),
                 std::runtime_error);
}

TEST(GstlPlanTime, DoubleAllocationInOnePlanIsFatal)
{
    sim::setQuiet(true);
    DoubleAllocation w;
    SysConfig cfg = smallCfg(2);
    dsm::GlobalHeap heap(cfg.heap_bytes, cfg.page_bytes);
    EXPECT_THROW(static_cast<dsm::Workload &>(w).plan(heap, cfg),
                 std::logic_error);
}

TEST(GstlPlanTime, ReplanForAFreshRunIsClean)
{
    sim::setQuiet(true);
    PlainPlan w;
    SysConfig cfg = smallCfg(2);
    // The same app object planned against two fresh systems (the
    // protocol-compare / reference-run pattern): names and storage
    // re-register cleanly.
    for (int i = 0; i < 2; ++i) {
        dsm::GlobalHeap heap(cfg.heap_bytes, cfg.page_bytes);
        EXPECT_NO_THROW(static_cast<dsm::Workload &>(w).plan(heap, cfg));
    }
}

// ---------------------------------------------------------------------
// GlobalHeap::allocArray (the allocation entry point behind every g::
// container): natural alignment must hold even after odd-sized prior
// allocations.

TEST(GstlHeap, AllocArrayRealignsAfterOddAllocation)
{
    dsm::GlobalHeap heap(1u << 20, 4096);
    heap.alloc(3, 1); // leave the bump pointer misaligned
    EXPECT_EQ(heap.allocArray<double>(5) % 8, 0u);
    heap.alloc(1, 1);
    EXPECT_EQ(heap.allocArray<std::uint32_t>(5) % 4, 0u);
    heap.alloc(5, 1);
    EXPECT_EQ(heap.allocArray<std::uint16_t>(3) % 2, 0u);
    EXPECT_EQ(heap.allocArray<std::uint64_t>(2, true) % 4096, 0u);
}

// ---------------------------------------------------------------------
// g::atomic + g::spsc_queue: the sync kit in one small deterministic
// app (GstlTorture exercises the same surface at fuzz scale).

class SyncKit : public g::App
{
  public:
    std::string name() const override { return "sync-kit"; }

    void
    plan(g::context &ctx) override
    {
        total_.allocate(ctx, "total");
        queues_.assign(ctx.nprocs(), {});
        for (unsigned q = 0; q < ctx.nprocs(); ++q)
            queues_[q].allocate(ctx, "q" + std::to_string(q), items);
        added_ = ctx.make_barrier("added");
    }

    void
    run(g::context &ctx) override
    {
        const unsigned np = ctx.nprocs();
        const unsigned me = ctx.id();
        total_.fetch_add(ctx, me + 1);
        added_.wait(ctx);
        if (total_.load(ctx) != np * (np + 1ull) / 2)
            ncp2_fatal("atomic sum not visible after the barrier");

        // Ring mailbox: push to my queue, drain my predecessor's in
        // FIFO order.
        for (unsigned j = 0; j < items; ++j)
            queues_[me].push(ctx, (std::uint64_t{me} << 8) | j);
        const unsigned pred = (me + np - 1) % np;
        for (unsigned j = 0; j < items; ++j)
            if (queues_[pred].pop(ctx) !=
                ((std::uint64_t{pred} << 8) | j))
                ncp2_fatal("queue popped out of order");
        if (queues_[pred].size(ctx) != 0)
            ncp2_fatal("queue not drained");
    }

    void
    validate(dsm::System &sys) override
    {
        const auto np = sys.cfg().num_procs;
        if (sys.readGlobal<std::uint64_t>(total_.addr()) !=
            np * (np + 1ull) / 2)
            ncp2_fatal("final atomic sum wrong");
    }

    static constexpr unsigned items = 5;

  private:
    g::atomic<std::uint64_t> total_;
    std::vector<g::spsc_queue<std::uint64_t>> queues_;
    g::barrier added_;
};

TEST(GstlSyncKit, AtomicsAndQueuesUnderOracle)
{
    sim::setQuiet(true);
    for (const ProtocolKind kind :
         {ProtocolKind::treadmarks, ProtocolKind::aurc}) {
        SyncKit w;
        SysConfig cfg = smallCfg(4);
        cfg.protocol = kind;
        cfg.check = true;
        harness::runOnce(cfg, w);
    }
}

// ---------------------------------------------------------------------
// Negative paths: lookups that must miss (find and the host-side
// peek_find), pops from an empty queue, pushes into a full ring, and
// the blocking variants unblocking once the peer makes room.

class ContainerNegativePaths : public g::App
{
  public:
    std::string name() const override { return "container-negative"; }

    void
    plan(g::context &ctx) override
    {
        map_.allocate(ctx, "neg/map", 64, 4);
        q_.allocate(ctx, "neg/q", ring_cap);
        filled_ = ctx.make_barrier("neg/filled");
    }

    void
    run(g::context &ctx) override
    {
        if (ctx.id() == 0) {
            // Misses before any insert, then around present keys.
            if (map_.find(ctx, 123).has_value())
                ncp2_fatal("find hit in an empty map");
            map_.insert(ctx, 1, 10);
            map_.insert(ctx, 2, 20);
            if (map_.find(ctx, 3).has_value())
                ncp2_fatal("find hit an absent key");
            if (map_.find(ctx, 2) != std::optional<std::uint64_t>(20))
                ncp2_fatal("find missed a present key");

            // Empty ring refuses to pop; a full ring refuses to push.
            if (q_.try_pop(ctx).has_value())
                ncp2_fatal("try_pop produced a value from an empty queue");
            for (std::uint64_t j = 0; j < ring_cap; ++j)
                if (!q_.try_push(ctx, j * 7))
                    ncp2_fatal("try_push refused below capacity");
            if (q_.try_push(ctx, 999))
                ncp2_fatal("try_push accepted into a full ring");
            if (q_.size(ctx) != ring_cap)
                ncp2_fatal("full ring reports wrong size");
        }
        filled_.wait(ctx);
        if (ctx.id() == 0) {
            // Blocking push into the still-full ring: spins until the
            // consumer below makes room.
            q_.push(ctx, 1000);
        } else if (ctx.id() == 1) {
            // Drain FIFO across the wrap; the fifth pop blocks until
            // the producer's post-barrier push lands.
            for (std::uint64_t j = 0; j < ring_cap; ++j)
                if (q_.pop(ctx) != j * 7)
                    ncp2_fatal("ring popped out of order");
            if (q_.pop(ctx) != 1000)
                ncp2_fatal("blocking pop missed the unblocking push");
            if (q_.try_pop(ctx).has_value())
                ncp2_fatal("queue not empty after the drain");
        }
    }

    void
    validate(dsm::System &sys) override
    {
        if (map_.peek_find(sys, 1) != std::optional<std::uint64_t>(10) ||
            map_.peek_find(sys, 2) != std::optional<std::uint64_t>(20))
            ncp2_fatal("peek_find missed a present key");
        if (map_.peek_find(sys, 3).has_value() ||
            map_.peek_find(sys, 123).has_value())
            ncp2_fatal("peek_find hit an absent key");
    }

    static constexpr std::uint64_t ring_cap = 4;

  private:
    g::hash_map<std::uint64_t, std::uint64_t> map_;
    g::spsc_queue<std::uint64_t> q_;
    g::barrier filled_;
};

TEST(GstlNegativePaths, MissesEmptyPopsAndFullPushes)
{
    sim::setQuiet(true);
    for (const ProtocolKind kind :
         {ProtocolKind::treadmarks, ProtocolKind::aurc}) {
        ContainerNegativePaths w;
        SysConfig cfg = smallCfg(4);
        cfg.protocol = kind;
        cfg.check = true;
        harness::runOnce(cfg, w);
    }
}

// ---------------------------------------------------------------------
// The gstl torture workload: striped hash_map under concurrent mixed
// insert/add/find traffic plus queues and atomics, with the LRC oracle
// checking every access, across protocol variants - and the descriptor
// fast path must be invisible.

struct ModeParam
{
    const char *tag;
    ProtocolKind kind;
    bool offload, hw_diffs, prefetch;
};

constexpr ModeParam kModes[] = {
    {"TmkBase", ProtocolKind::treadmarks, false, false, false},
    {"TmkIPD", ProtocolKind::treadmarks, true, true, true},
    {"Aurc", ProtocolKind::aurc, false, false, false},
    {"AurcP", ProtocolKind::aurc, false, false, true},
};

SysConfig
modeCfg(const ModeParam &m, unsigned procs)
{
    SysConfig cfg = smallCfg(procs);
    cfg.protocol = m.kind;
    cfg.mode.offload = m.offload;
    cfg.mode.hw_diffs = m.hw_diffs;
    cfg.mode.prefetch = m.prefetch;
    cfg.check = true;
    return cfg;
}

TEST(GstlTortureCheck, PassesOracleAcrossVariantsAndFastPath)
{
    sim::setQuiet(true);
    apps::GstlTorture::Params prm;
    prm.seed = 7;

    for (const auto &m : kModes) {
        RunResult r[2];
        for (int fast = 0; fast < 2; ++fast) {
            apps::GstlTorture w(prm);
            SysConfig cfg = modeCfg(m, 4);
            cfg.fast_path = fast != 0;
            // runOnce also runs the workload's host-replay validate().
            r[fast] = harness::runOnce(cfg, w);
        }
        SCOPED_TRACE(m.tag);
        expectIdenticalRuns(r[0], r[1]);
    }
}

TEST(GstlPdes, BarrierWorkloadStructureMatchesSerial)
{
    // VectorRoundTrip synchronizes through barriers only - no spin
    // loops - so the parallel executor must reproduce the serial run's
    // structure exactly (messages, bytes, the full stat tree).
    sim::setQuiet(true);
    RunResult r[2];
    for (int par = 0; par < 2; ++par) {
        VectorRoundTrip w;
        SysConfig cfg = smallCfg(4);
        cfg.check = true;
        cfg.pdes_workers = par ? 2 : 1;
        r[par] = harness::runOnce(cfg, w);
    }
    expectEquivalentRuns(r[0], r[1]);
}

TEST(GstlTortureCheck, PassesOracleUnderPdes)
{
    // The torture's blocking queue ops spin until the peer's cursor
    // becomes visible, so retry counts - and with them lock traffic
    // and diff requests - legitimately depend on executor timing.
    // What must hold at pdes_workers=2: the LRC oracle stays silent,
    // the host-replay validate() passes (both checked inside runOnce),
    // and the clock agrees with the serial run to within a few percent.
    sim::setQuiet(true);
    apps::GstlTorture::Params prm;
    prm.seed = 13;

    for (const auto &m : {kModes[0], kModes[1]}) {
        RunResult r[2];
        for (int par = 0; par < 2; ++par) {
            apps::GstlTorture w(prm);
            SysConfig cfg = modeCfg(m, 4);
            cfg.pdes_workers = par ? 2 : 1;
            r[par] = harness::runOnce(cfg, w);
        }
        SCOPED_TRACE(m.tag);
        // Schedule-independent counters must still match exactly.
        for (const char *key :
             {"tmk.barriers", "tmk.intervals", "tmk.write_faults",
              "tmk.write_notices"}) {
            EXPECT_EQ(r[0].stats.value(key), r[1].stats.value(key)) << key;
        }
        const double s = static_cast<double>(r[0].exec_ticks);
        const double p = static_cast<double>(r[1].exec_ticks);
        EXPECT_LT(std::abs(s - p), 0.10 * s)
            << "serial " << r[0].exec_ticks << " vs parallel "
            << r[1].exec_ticks;
    }
}

} // namespace
