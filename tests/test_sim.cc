/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, fibers,
 * RNG determinism, resources, stats and logging discipline.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/logging.hh"
#include "sim/resource.hh"
#include <algorithm>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace sim;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, LimitStopsExecution)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&]() { ++ran; });
    eq.schedule(100, [&]() { ++ran; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, []() {}), std::logic_error);
}

TEST(Fiber, RunsToCompletionAcrossYields)
{
    int steps = 0;
    Fiber f([&]() {
        for (int i = 0; i < 5; ++i) {
            ++steps;
            Fiber::yield();
        }
    });
    int resumes = 0;
    while (!f.finished()) {
        f.resume();
        ++resumes;
    }
    EXPECT_EQ(steps, 5);
    EXPECT_EQ(resumes, 6); // 5 yields + final return
}

TEST(Fiber, PropagatesExceptionsToResumer)
{
    Fiber f([]() { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.resume(), std::runtime_error);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecution)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&]() { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng r(7);
    double mean = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mean += u;
    }
    mean /= 10000;
    EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        lo |= v == 3;
        hi |= v == 7;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Resource, QueuesBehindEarlierWork)
{
    Resource r("bus");
    EXPECT_EQ(r.acquire(100, 10), 110u);
    EXPECT_EQ(r.acquire(100, 10), 120u); // queued behind the first
    EXPECT_EQ(r.acquire(200, 5), 205u);  // idle gap, starts immediately
    EXPECT_EQ(r.requests(), 3u);
    EXPECT_EQ(r.busyCycles(), 25u);
    EXPECT_EQ(r.queueCycles(), 10u);
}

TEST(Resource, PeekDoesNotReserve)
{
    Resource r("bus");
    EXPECT_EQ(r.peek(0, 10), 10u);
    EXPECT_EQ(r.peek(0, 10), 10u);
    EXPECT_EQ(r.freeAt(), 0u);
}

TEST(Stats, TableAlignsAndFormats)
{
    Table t({"a", "b"});
    t.addRow({"x", Table::fmt(1.234, 2)});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("1.23"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Stats, HistogramBucketsAndMoments)
{
    Histogram h({10, 100});
    h.sample(5);
    h.sample(50);
    h.sample(500);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_DOUBLE_EQ(h.max(), 500.0);
}

TEST(Stats, HistogramMaxOfAllNegativeSamples)
{
    // Regression: max_ used to start at 0, so an all-negative sample
    // stream reported max() == 0 instead of its largest element.
    Histogram h({-10, 0});
    h.sample(-50);
    h.sample(-3);
    h.sample(-20);
    EXPECT_DOUBLE_EQ(h.max(), -3.0);
    h.reset();
    h.sample(-7);
    EXPECT_DOUBLE_EQ(h.max(), -7.0);
}

TEST(Trace, RingKeepsNewestAndCountsDrops)
{
    Trace tr(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        tr.emit(i * 100, static_cast<std::uint32_t>(i), TraceEngine::cpu,
                TraceKind::page_fault, i, 1);
    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.emitted(), 10u);
    EXPECT_EQ(tr.dropped(), 6u);
    const auto recs = tr.drain();
    ASSERT_EQ(recs.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(recs[i].arg, 6 + i); // survivors are the newest four
        EXPECT_EQ(recs[i].tick, (6 + i) * 100);
        EXPECT_EQ(recs[i].aux, 1u);
        EXPECT_EQ(recs[i].kind, TraceKind::page_fault);
    }
}

TEST(Trace, NoDropsBelowCapacity)
{
    Trace tr(8);
    tr.emit(1, 0, TraceEngine::nic, TraceKind::msg_send, 64, 3);
    tr.emit(2, 3, TraceEngine::nic, TraceKind::msg_deliver, 64, 0);
    EXPECT_EQ(tr.dropped(), 0u);
    const auto recs = tr.drain();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].engine, TraceEngine::nic);
    EXPECT_EQ(recs[1].node, 3u);
}

TEST(Trace, ChromeExportIsWellFormedAndDeterministic)
{
    Trace tr(16);
    tr.emit(150, 0, TraceEngine::cpu, TraceKind::page_fault, 42, 1);
    tr.emit(250, 0, TraceEngine::ctrl, TraceKind::ctrl_queue, 2, 0);
    tr.emit(350, 1, TraceEngine::nic, TraceKind::msg_send, 4096, 0);
    std::ostringstream a, b;
    writeChromeTrace(a, tr.drain(), tr.dropped(), 2, {{"bench", "unit"}});
    writeChromeTrace(b, tr.drain(), tr.dropped(), 2, {{"bench", "unit"}});
    EXPECT_EQ(a.str(), b.str());
    const std::string doc = a.str();
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"page_fault\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos); // queue counter
    EXPECT_NE(doc.find("\"dropped\":0"), std::string::npos);
    EXPECT_NE(doc.find("\"bench\":\"unit\""), std::string::npos);
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
}

TEST(Logging, PanicThrowsLogicError)
{
    setQuiet(true);
    EXPECT_THROW(ncp2_panic("x %d", 1), std::logic_error);
    EXPECT_THROW(ncp2_fatal("y"), std::runtime_error);
    EXPECT_THROW(ncp2_assert(false, "z"), std::logic_error);
    ncp2_assert(true, "never printed");
}
